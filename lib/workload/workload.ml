module Intf = Mk_model.System_intf
module Rng = Mk_util.Rng

type shape = { label : string; weight : float; gets : Rng.t -> int; puts : int }
type locality = { shards : int; cross : float }

type t = {
  name : string;
  rng : Rng.t;
  zipf : Zipf.t;
  shapes : shape array;
  cumulative : float array;
  counts : int array;
  rmw : bool;  (** Read-modify-write: read set = write set (YCSB-T). *)
  mutable locality : locality option;
  mutable next_value : int;
}

let name t = t.name
let keys t = Zipf.n t.zipf

let make ?(rmw = false) ?locality ~name ~rng ~keys ~theta shapes =
  (match locality with
  | Some { shards; cross } ->
      if shards < 1 then
        invalid_arg "Workload.make: locality shards must be >= 1";
      if keys < shards then
        invalid_arg "Workload.make: locality needs keys >= shards";
      if cross < 0.0 || cross > 1.0 then
        invalid_arg "Workload.make: locality cross must be in [0, 1]"
  | None -> ());
  let shapes = Array.of_list shapes in
  let total = Array.fold_left (fun acc s -> acc +. s.weight) 0.0 shapes in
  let acc = ref 0.0 in
  let cumulative =
    Array.map
      (fun s ->
        acc := !acc +. (s.weight /. total);
        !acc)
      shapes
  in
  {
    name;
    rng;
    zipf = Zipf.create ~rng ~n:keys ~theta ();
    shapes;
    cumulative;
    counts = Array.make (Array.length shapes) 0;
    rmw;
    locality;
    next_value = 1;
  }

let pick_shape t =
  let u = Rng.uniform t.rng in
  let rec find i =
    if i = Array.length t.cumulative - 1 || u < t.cumulative.(i) then i
    else find (i + 1)
  in
  find 0

(* Draw [count] distinct keys; resampling terminates because workloads
   always use far fewer keys per transaction than the keyspace holds. *)
let distinct_keys t count =
  let chosen = Array.make count (-1) in
  let rec draw i =
    if i < count then begin
      let key = Zipf.sample t.zipf in
      let dup = Array.exists (fun k -> k = key) chosen in
      if dup then draw i
      else begin
        chosen.(i) <- key;
        draw (i + 1)
      end
    end
  in
  draw 0;
  chosen

(* --- Shard locality (the cross-shard knob, DESIGN.md §13). ---

   The knob assumes the router's default Mod placement (shard of key k
   = k mod shards); keys are remapped AFTER Zipf sampling, so the
   popularity skew survives: confining key k to shard h replaces k by
   the nearest key of shard h in the same mod-block, which has the
   same Zipf rank up to one block. *)

(* The key of shard [home] closest to [key], always in [0, nkeys). *)
let confine ~nkeys ~shards ~home key =
  let base = key - (key mod shards) + home in
  let k = if base >= nkeys then base - shards else base in
  if k < 0 || k >= nkeys then home mod nkeys else k

(* Restore pairwise distinctness after confinement, stepping by whole
   blocks so a bumped key never leaves its shard. The guard only
   matters in degenerate keyspaces smaller than the transaction. *)
let make_distinct ~nkeys ~shards keys =
  let n = Array.length keys in
  for i = 1 to n - 1 do
    let rec bump k guard =
      let dup = ref false in
      for j = 0 to i - 1 do
        if keys.(j) = k then dup := true
      done;
      if !dup && guard <= nkeys then
        bump (if k + shards < nkeys then k + shards else k mod shards) (guard + 1)
      else k
    in
    keys.(i) <- bump keys.(i) 0
  done

let localize t keys =
  (match t.locality with
  | None -> ()
  | Some { shards; cross } ->
      let n = Array.length keys in
      if n > 0 && shards > 1 then begin
        let nkeys = Zipf.n t.zipf in
        let shard_of k = k mod shards in
        if n > 1 && Rng.uniform t.rng < cross then begin
          (* Spanning transaction: if every sampled key landed in one
             shard, push the second key into the next shard over. *)
          let home = shard_of keys.(0) in
          if Array.for_all (fun k -> shard_of k = home) keys then
            keys.(1) <-
              confine ~nkeys ~shards ~home:((home + 1) mod shards) keys.(1)
        end
        else begin
          (* Local transaction: confine everything to the home shard
             of the first (Zipf-hottest draw) key. *)
          let home = shard_of keys.(0) in
          for i = 1 to n - 1 do
            keys.(i) <- confine ~nkeys ~shards ~home keys.(i)
          done
        end;
        make_distinct ~nkeys ~shards keys
      end);
  keys

let spans ~shards (req : Intf.txn_request) =
  let shard_set = Hashtbl.create 4 in
  Array.iter (fun k -> Hashtbl.replace shard_set (k mod shards) ()) req.Intf.reads;
  Array.iter
    (fun (k, _) -> Hashtbl.replace shard_set (k mod shards) ())
    req.Intf.writes;
  Hashtbl.length shard_set > 1

let next t =
  let idx = pick_shape t in
  let shape = t.shapes.(idx) in
  t.counts.(idx) <- t.counts.(idx) + 1;
  let ngets = shape.gets t.rng in
  let value = t.next_value in
  if t.rmw then begin
    (* Read-modify-write every key of the transaction. *)
    let keys = localize t (distinct_keys t ngets) in
    t.next_value <- value + ngets;
    {
      Intf.reads = keys;
      writes = Array.mapi (fun i key -> (key, value + i)) keys;
    }
  end
  else begin
    let keys = localize t (distinct_keys t (ngets + shape.puts)) in
    let reads = Array.sub keys 0 ngets in
    t.next_value <- value + shape.puts;
    let writes = Array.init shape.puts (fun i -> (keys.(ngets + i), value + i)) in
    { Intf.reads; writes }
  end

let const n = fun (_ : Rng.t) -> n
let rand_range lo hi = fun rng -> lo + Rng.int rng (hi - lo + 1)

let set_locality t locality =
  (match locality with
  | Some { shards; cross } ->
      if shards < 1 then
        invalid_arg "Workload.set_locality: shards must be >= 1";
      if Zipf.n t.zipf < shards then
        invalid_arg "Workload.set_locality: needs keys >= shards";
      if cross < 0.0 || cross > 1.0 then
        invalid_arg "Workload.set_locality: cross must be in [0, 1]"
  | None -> ());
  t.locality <- locality

let ycsb_t ~rng ~keys ~theta =
  (* YCSB workload F, transactional: one read-modify-write — the read
     and the write hit the same key. *)
  make ~rmw:true ~name:"YCSB-T" ~rng ~keys ~theta
    [ { label = "RMW"; weight = 1.0; gets = const 1; puts = 0 } ]

let rmw_pair ~rng ~keys ~theta =
  (* Two-key read-modify-write: the smallest transaction that can
     genuinely span shards — the cross-shard benchmark workload. *)
  make ~rmw:true ~name:"RMW-2" ~rng ~keys ~theta
    [ { label = "RMW2"; weight = 1.0; gets = const 2; puts = 0 } ]

let retwis ~rng ~keys ~theta =
  make ~name:"Retwis" ~rng ~keys ~theta
    [
      { label = "Add User"; weight = 0.05; gets = const 1; puts = 3 };
      { label = "Follow/Unfollow"; weight = 0.15; gets = const 2; puts = 2 };
      { label = "Post Tweet"; weight = 0.30; gets = const 3; puts = 5 };
      { label = "Load Timeline"; weight = 0.50; gets = rand_range 1 10; puts = 0 };
    ]

let read_only ~rng ~keys ~theta ~nreads =
  make ~name:"read-only" ~rng ~keys ~theta
    [ { label = "read"; weight = 1.0; gets = const nreads; puts = 0 } ]

let write_only ~rng ~keys ~theta ~nwrites =
  make ~name:"write-only" ~rng ~keys ~theta
    [ { label = "write"; weight = 1.0; gets = const 0; puts = nwrites } ]

let mix_report t =
  Array.to_list (Array.mapi (fun i s -> (s.label, t.counts.(i))) t.shapes)
