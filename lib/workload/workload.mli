(** Benchmark workload generators (§6.2).

    A workload is a stream of transaction requests (read keys plus
    write key/value pairs) over a keyspace, with key popularity
    following a Zipf distribution. Following the paper's methodology,
    the database is sized at [keys_per_core × total threads] so that
    the contention level stays constant as the system scales. *)

type t

type locality = { shards : int; cross : float }
(** The cross-shard knob (DESIGN.md §13), for multi-shard deployments
    using the router's default Mod placement (shard of key [k] =
    [k mod shards]). With probability [cross], a multi-key transaction
    is forced to span at least two shards; otherwise every sampled key
    is remapped to the home shard of the first draw — by whole
    mod-blocks, so the Zipf popularity skew survives the remap.
    Single-key transactions never span. [cross] must be in \[0, 1\]
    and the keyspace must hold at least [shards] keys. *)

val name : t -> string
val keys : t -> int

val next : t -> Mk_model.System_intf.txn_request
(** Generate the next transaction request. Keys within one request
    are distinct. *)

val spans : shards:int -> Mk_model.System_intf.txn_request -> bool
(** Does the request touch more than one shard under Mod placement?
    (The spanning-ratio measurement behind the {!locality} tests.) *)

val set_locality : t -> locality option -> unit
(** Install (or clear) the cross-shard knob on an existing workload —
    every subsequent {!next} draws through it.
    @raise Invalid_argument on an out-of-range knob (see {!locality}). *)

val ycsb_t : rng:Mk_util.Rng.t -> keys:int -> theta:float -> t
(** YCSB-T, transactional YCSB workload F: each transaction is a
    single read-modify-write on one key — short transactions with an
    even read/write mix (Fig. 4, 6a, 7a). *)

val rmw_pair : rng:Mk_util.Rng.t -> keys:int -> theta:float -> t
(** Two-key read-modify-write — the smallest transaction that can
    genuinely span shards, so the cross-shard benchmark workload. *)

val retwis : rng:Mk_util.Rng.t -> keys:int -> theta:float -> t
(** Retwis (Table 2): a Twitter-like mix of longer, read-heavy
    transactions —

    - 5%  Add User          (1 get, 3 puts)
    - 15% Follow/Unfollow   (2 gets, 2 puts)
    - 30% Post Tweet        (3 gets, 5 puts)
    - 50% Load Timeline     (rand(1,10) gets, 0 puts). *)

val read_only : rng:Mk_util.Rng.t -> keys:int -> theta:float -> nreads:int -> t
(** Pure reader workload, used by tests. *)

val write_only : rng:Mk_util.Rng.t -> keys:int -> theta:float -> nwrites:int -> t
(** Blind-writer workload, used by tests (exercises the Thomas write
    rule). *)

val mix_report : t -> (string * int) list
(** Count of generated transactions by type name (verifies Table 2's
    mix in the benches). *)
