(** Distributed transactions over partitioned data (§5.2.4).

    The keyspace is range-partitioned by [key mod partitions]; each
    partition is a full replicated Meerkat group (its own 2f+1
    replicas). A transaction coordinator executes reads against the
    owning partitions, then runs the {e validation phase in every
    involved partition in parallel}; because the per-partition commit
    protocol already provides decentralized atomic-commitment-style
    validation, the global outcome is simply the conjunction of the
    partitions' decisions, after which each partition's write phase
    runs with that outcome.

    The paper sketches but does not evaluate this extension; tests and
    an example exercise it here. *)

type t

val create :
  ?obs:Mk_obs.Obs.t ->
  Mk_sim.Engine.t ->
  partitions:int ->
  Mk_cluster.Cluster.config ->
  t
(** [create engine ~partitions cfg] builds [partitions] independent
    Meerkat groups. [cfg.keys] is the {e global} keyspace size;
    partition p owns the keys congruent to p. The observability handle
    (given or created) is shared with every group, so phase histograms
    and counters aggregate across partitions. *)

val partitions : t -> int
val partition_of_key : t -> int -> int
val group : t -> int -> Sim_system.t
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit

val submit_interactive :
  t ->
  client:int ->
  reads:int array ->
  compute:(int array -> (int * int) array) ->
  on_done:(committed:bool -> unit) ->
  unit
(** Cross-partition interactive transaction: writes are computed from
    the values the execute phase read (see
    {!Sim_system.submit_interactive}); the conjunction of per-partition
    validations guarantees atomicity. *)

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val server_busy_fraction : t -> float

val read_committed : t -> replica:int -> key:int -> int option
(** Read a key's committed value at the given replica of its owning
    partition. *)
