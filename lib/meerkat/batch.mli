(** Reusable emission batches: the zero-alloc replacement for the
    action lists at the {!Protocol} / {!Detector} boundary.

    A state machine emits actions into a caller-supplied batch; the
    driver iterates them front to back — the exact order the old
    lists carried (the determinism the golden suites pin) — then
    {!clear}s and reuses the batch. At steady-state capacity, {!emit}
    allocates nothing.

    Batches are single-owner values, not thread-safe: each driver
    loop keeps its own (or rents from a {!Pool} when its action
    callbacks may reenter the state machine synchronously). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty batch. The backing array materializes on first {!emit}
    and doubles as needed; after warm-up no growth occurs. *)

val emit : 'a t -> 'a -> unit
(** Append one action. O(1), allocation-free once at capacity. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Reset to empty without shrinking. Slots retain their previous
    values until overwritten (bounded, by construction — see the
    implementation note). *)

val get : 'a t -> int -> 'a
(** Random access below {!length}; raises [Invalid_argument]
    otherwise. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Apply front to back. Actions emitted into the same batch during
    iteration are visited too (drivers that fold follow-up steps into
    the batch rely on this). *)

val to_list : 'a t -> 'a list
(** Snapshot as a list — for tests and golden traces, not hot paths. *)

(** Recycled batches for reentrant drivers: a driver whose action
    callbacks can synchronously start the next protocol attempt rents
    a fresh batch per nesting level so inner emissions never scribble
    over a batch still being iterated. *)
module Pool : sig
  type 'a batch := 'a t
  type 'a t

  val create : unit -> 'a t

  val rent : 'a t -> 'a batch
  (** A cleared batch — recycled when one is free, fresh otherwise. *)

  val return : 'a t -> 'a batch -> unit
  (** Clear and recycle. The caller must not touch the batch after. *)

  val with_batch : 'a t -> ('a batch -> 'b) -> 'b
  (** [rent]/[return] bracket, exception-safe. *)
end
