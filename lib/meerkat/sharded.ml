module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Obs = Mk_obs.Obs
module Registry = Mk_obs.Registry

type t = {
  engine : Engine.t;
  obs : Obs.t;  (** Shared with every group, so the per-phase
                    histograms and retransmit counts aggregate across
                    partitions. *)
  groups : Sim_system.t array;
}

let create ?obs engine ~partitions cfg =
  if partitions < 1 then invalid_arg "Sharded.create: partitions must be >= 1";
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~clock:(fun () -> Engine.now engine) ()
  in
  (* Each group preloads the local images of its keys: global key k
     lives in group (k mod partitions) as local key (k / partitions). *)
  let local_keys = ((cfg.Cluster.keys - 1) / partitions) + 1 in
  let groups =
    Array.init partitions (fun p ->
        Sim_system.create ~obs engine
          { cfg with Cluster.keys = local_keys; seed = cfg.Cluster.seed + p })
  in
  { engine; obs; groups }

let partitions t = Array.length t.groups
let partition_of_key t key = key mod Array.length t.groups
let local_key t key = key / Array.length t.groups
let group t p = t.groups.(p)
let name t = Printf.sprintf "MEERKAT-%dP" (Array.length t.groups)
let threads t = Sim_system.threads t.groups.(0)

let obs t = t.obs
let counters t : Intf.counters = Intf.counters_of_obs t.obs

(* The global outcome is a conjunction of per-partition decisions, so
   it has no fast/slow classification of its own: only
   committed/aborted move here (the sub-attempts run with
   [count_stats:false]). *)
let note_outcome t ~committed =
  Registry.incr
    (Registry.counter (Obs.registry t.obs)
       (if committed then "txn.committed" else "txn.aborted"))

let submit_gen t ~client ~reads ~mk_writes ~on_done =
  let nreads = Array.length reads in
  let read_entries =
    Array.make nreads ({ key = 0; wts = Timestamp.zero } : Txn.read_entry)
  in
  let values = Array.make nreads 0 in
  (* Interactive execution against the owning partitions, one read at
     a time. Read-set entries carry the *global* key; the sub-read_set
     sent to each partition is translated to local keys below. *)
  let rec exec i k =
    if i >= nreads then k ()
    else begin
      let key = reads.(i) in
      let p = partition_of_key t key in
      Sim_system.execute_read t.groups.(p) ~client ~key:(local_key t key)
        (fun (value, wts) ->
          read_entries.(i) <- { key; wts };
          values.(i) <- value;
          exec (i + 1) k)
    end
  in
  let exec_started = Engine.now t.engine in
  exec 0 (fun () ->
      if nreads > 0 then
        Obs.span t.obs Mk_obs.Span.Execute ~tid:client ~start:exec_started ();
      let writes : (int * int) array = mk_writes values in
      (* One global tid and timestamp for all partitions: the
         serialization point must be the same everywhere. *)
      let tid, ts = Sim_system.fresh_txn_stamp t.groups.(0) ~client in
      let involved = Hashtbl.create 4 in
      let add p = if not (Hashtbl.mem involved p) then Hashtbl.add involved p () in
      Array.iter (fun (r : Txn.read_entry) -> add (partition_of_key t r.key)) read_entries;
      Array.iter (fun (key, _) -> add (partition_of_key t key)) writes;
      let parts = Hashtbl.fold (fun p () acc -> p :: acc) involved [] in
      let sub_txn p =
        let read_set =
          Array.to_list read_entries
          |> List.filter_map (fun (r : Txn.read_entry) ->
                 if partition_of_key t r.key = p then
                   Some ({ r with key = local_key t r.key } : Txn.read_entry)
                 else None)
        in
        let write_set =
          Array.to_list writes
          |> List.filter_map (fun (key, value) ->
                 if partition_of_key t key = p then
                   Some ({ key = local_key t key; value } : Txn.write_entry)
                 else None)
        in
        Txn.make ~tid ~read_set ~write_set
      in
      let sub_txns = List.map (fun p -> (p, sub_txn p)) parts in
      if sub_txns = [] then begin
        (* Empty transaction: trivially committed. *)
        note_outcome t ~committed:true;
        on_done ~committed:true
      end
      else begin
        let pending = ref (List.length sub_txns) in
        let all_commit = ref true in
        List.iter
          (fun (p, txn) ->
            Sim_system.prepare_txn t.groups.(p) ~txn ~ts ~on_prepared:(fun commit ->
                if not commit then all_commit := false;
                decr pending;
                if !pending = 0 then begin
                  let commit = !all_commit in
                  note_outcome t ~committed:commit;
                  List.iter
                    (fun (p, txn) ->
                      Sim_system.finalize_txn t.groups.(p) ~txn ~ts ~commit)
                    sub_txns;
                  on_done ~committed:commit
                end))
          sub_txns
      end)

let submit t ~client (req : Intf.txn_request) ~on_done =
  submit_gen t ~client ~reads:req.reads ~mk_writes:(fun _ -> req.writes) ~on_done

let submit_interactive t ~client ~reads ~compute ~on_done =
  submit_gen t ~client ~reads ~mk_writes:compute ~on_done

let server_busy_fraction t =
  let sum =
    Array.fold_left (fun acc g -> acc +. Sim_system.server_busy_fraction g) 0.0 t.groups
  in
  sum /. float_of_int (Array.length t.groups)

let read_committed t ~replica ~key =
  Sim_system.read_committed
    t.groups.(partition_of_key t key)
    ~replica ~key:(local_key t key)
