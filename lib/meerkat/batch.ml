(* Reusable emission batches for the action boundary (DESIGN.md §14).

   A batch is a growable array that a state machine emits actions into
   and a driver iterates front-to-back — the same order contract the
   old action *lists* had, minus the per-action cons cells. Once a
   batch has grown to its steady-state capacity, [emit] is a bounds
   check and two stores: nothing on the fast path allocates.

   [clear] only resets the length; the slots keep their last values
   alive until overwritten. Protocol actions are small (mostly shared
   constants), so the retention is bounded and harmless — and the
   alternative, blanking the slots, would make [clear] O(n) on a path
   that runs per event.

   The pool exists for reentrant drivers: a [Note_decided] callback
   may synchronously start the next attempt (the sharded live driver
   does exactly that), so the inner [Protocol.start] must not scribble
   over the batch the outer [handle] is still iterating. [rent] hands
   out distinct batches per nesting level and [return] recycles them;
   in steady state neither allocates. *)

type 'a t = { mutable buf : 'a array; mutable len : int; hint : int }

let create ?(capacity = 8) () =
  (* The backing array materializes on the first [emit]: a ['a array]
     cannot be built without a witness value. [capacity] sizes it. *)
  { buf = [||]; len = 0; hint = max 1 capacity }

let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0

let emit t x =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let grown = Array.make (if cap = 0 then t.hint else cap * 2) x in
    Array.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end;
  Array.unsafe_set t.buf t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Batch.get";
  Array.unsafe_get t.buf i

let iter f t =
  (* Index against the batch, not a saved bound: an action performed
     mid-iteration may legitimately emit follow-ups into the same
     batch (a driver folding its own steps in), and those must be
     seen. Emissions never shrink [len], so this terminates whenever
     the driver's own action graph does. *)
  let i = ref 0 in
  while !i < t.len do
    f (Array.unsafe_get t.buf !i);
    incr i
  done

let to_list t = List.init t.len (fun i -> Array.unsafe_get t.buf i)

module Pool = struct
  type 'a batch = 'a t

  let fresh_batch () : 'a batch = create ()

  type 'a t = { mutable free : 'a batch array; mutable n : int }

  let create () = { free = [||]; n = 0 }

  let rent p =
    if p.n = 0 then fresh_batch ()
    else begin
      p.n <- p.n - 1;
      (* [0 <= n < length free] by the branch above and [return]'s
         growth — in bounds by construction. *)
      (p.free.(p.n) [@mk_lint.allow "Z7"])
    end

  let return p b =
    clear b;
    let cap = Array.length p.free in
    if p.n = cap then begin
      let grown = Array.make (if cap = 0 then 4 else cap * 2) b in
      Array.blit p.free 0 grown 0 p.n;
      p.free <- grown
    end;
    (* [n < length free] after the growth branch just above. *)
    ((p.free.(p.n) <- b) [@mk_lint.allow "Z7"]);
    p.n <- p.n + 1

  let with_batch p f =
    let b = rent p in
    match f b with
    | v ->
        return p b;
        v
    | exception e ->
        return p b;
        (* Exception transparency, not a new failure mode: [e] was
           already in flight from [f]; this re-raise merely keeps the
           pool consistent on the way out. *)
        (raise e [@mk_lint.allow "Z7"])
end
