(** A Meerkat replica: one instance of the multicore transactional
    database (§4.1) — versioned storage + concurrency control +
    replication record.

    This module is pure protocol logic: handlers take requests and
    return replies, with no knowledge of the simulator. The simulation
    wiring (cores, network, CPU costs) lives in {!Sim_system}; tests
    drive handlers directly; the real-parallelism layer reuses the
    same logic from OCaml domains.

    A handler returns [None] when the replica cannot respond — it has
    crashed, or has paused transaction processing for an epoch change
    (§5.3.1). Coordinators handle this with retransmission, exactly as
    the paper's footnote prescribes. *)

type t

(** Immutable snapshot of a trecord entry, exchanged by the recovery
    protocols (records themselves are never shared between replicas). *)
type record_view = {
  txn : Mk_storage.Txn.t;
  ts : Mk_clock.Timestamp.t;
  status : Mk_storage.Txn.status;
  view : int;
  accept_view : int option;
}

(** What a durability layer must persist: every record finalization
    (the paper's acked commits/aborts — the WAL append) and every
    completed epoch install (the snapshot point: the merged state
    supersedes anything this replica's own log says). *)
type durable_event =
  | Finalized of { core : int; view : record_view }
  | Installed of { epoch : int }

val create : id:int -> quorum:Quorum.t -> cores:int -> t
val id : t -> int
val cores : t -> int
val quorum : t -> Quorum.t
val vstore : t -> Mk_storage.Vstore.t
val trecord : t -> Mk_storage.Trecord.t
val epoch : t -> int

val is_available : t -> bool
(** Neither crashed nor paused for an epoch change. *)

val load : t -> key:int -> value:int -> unit

(** {2 Failure injection} *)

val crash : t -> unit
(** Fail-stop: lose all state; every handler returns [None] until the
    epoch-change protocol re-integrates the replica. *)

val is_crashed : t -> bool

val is_paused : t -> bool
(** Up but not processing transactions (mid epoch change). Heartbeats
    report this so the failure detector can tell a stuck epoch change
    from a crash. *)

val begin_recovery : t -> unit
(** Restart after a crash with empty state: the replica is up (it can
    take part in the epoch change that will rebuild it) but does not
    process transactions until {!install_epoch} completes. *)

(** {2 Durability} *)

val set_durable_hook : t -> (durable_event -> unit) -> unit
(** Install the persistence callback (default: ignore). [Finalized
    {core; _}] fires inside core [core]'s handler — same domain
    affinity as the trecord partition, so a per-core log behind the
    hook has a single writer; [Installed _] fires only from the
    epoch-change driver while the replica is paused. *)

val restore :
  t ->
  epoch:int ->
  records:(int * record_view) list ->
  rows:(int * int * Mk_clock.Timestamp.t * Mk_clock.Timestamp.t) list ->
  unit
(** Reboot-time restore from stable storage: install the vstore [rows],
    adopt [records] (non-final views are kept verbatim), re-apply
    committed writes (idempotent under the Thomas write rule), and
    raise [epoch]/installed-epoch watermarks. Works at any epoch —
    including 0, where {!handle_epoch_complete}'s duplicate-install
    guard would wrongly no-op — and deliberately leaves the
    crash/pause flags alone: call {!begin_recovery} around it and let
    the §5.3.1 merge unpause the replica. *)

(** {2 Normal-case handlers (§5.2)} *)

val handle_get : t -> key:int -> (int * Mk_clock.Timestamp.t) option
(** Versioned read for the execute phase. *)

val handle_validate :
  t ->
  core:int ->
  txn:Mk_storage.Txn.t ->
  ts:Mk_clock.Timestamp.t ->
  Mk_storage.Txn.status option
(** Create the trecord entry and run Alg. 1 at timestamp [ts].
    Retransmission-safe: if the record exists, its current status is
    returned without re-validating. *)

val handle_accept :
  t ->
  core:int ->
  txn:Mk_storage.Txn.t ->
  ts:Mk_clock.Timestamp.t ->
  decision:[ `Commit | `Abort ] ->
  view:int ->
  [ `Accepted | `Stale of int | `Finalized of Mk_storage.Txn.status ] option
(** Slow-path accept (Paxos phase 2a): adopt the proposal unless this
    replica has joined a higher view for the transaction ([`Stale]) or
    already knows the final outcome ([`Finalized]). Carries the
    transaction so a replica that missed validation can still record
    the decision. *)

val handle_commit :
  t ->
  core:int ->
  txn:Mk_storage.Txn.t ->
  ts:Mk_clock.Timestamp.t ->
  commit:bool ->
  unit option
(** Write phase (§5.2.3): finalize the record and, on commit, install
    the writes (Thomas write rule) and advance read timestamps.
    Idempotent. *)

(** {2 Coordinator-recovery handlers (§5.3.2)} *)

val handle_coord_change :
  t ->
  core:int ->
  tid:Mk_clock.Timestamp.Tid.t ->
  view:int ->
  [ `View_ok of record_view option | `Stale of int ] option
(** Paxos-prepare analogue: join [view] (refusing proposals from lower
    views) and report this replica's record state, or [`Stale] if a
    higher view was already joined. [`View_ok None] means this replica
    has no record of the transaction. *)

(** {2 Epoch-change handlers (§5.3.1)} *)

val handle_epoch_change : t -> epoch:int -> record_view list option
(** Enter [epoch] (pausing new validations) and return the aggregated
    trecord; [None] if crashed or [epoch] is not newer. *)

val handle_epoch_complete :
  t ->
  epoch:int ->
  records:(int * record_view) list ->
  store:(int * int * Mk_clock.Timestamp.t * Mk_clock.Timestamp.t) list option ->
  unit option
(** Adopt the merged trecord (pairs of core id and record), apply every
    committed transaction it contains, optionally restore a vstore
    snapshot first (for a replica recovering from scratch), and resume
    processing. *)

val store_snapshot : t -> (int * int * Mk_clock.Timestamp.t * Mk_clock.Timestamp.t) list
(** (key, value, wts, rts) rows for state transfer to a recovering
    replica. *)

val record_views : t -> (int * record_view) list
(** Snapshot of the whole trecord as [(core, view)] pairs. *)

val trim_record : t -> before:Mk_clock.Timestamp.t -> int
(** Checkpoint-style trecord truncation (see
    {!Mk_storage.Trecord.trim_finalized}); keeps the record bounded in
    long runs. *)

(** {2 Introspection}

    Totals summed over per-core counter rows. Each core maintains its
    own padded row (written only from that core's handlers, so the
    live runtime needs no atomics on them); sums are exact whenever no
    handler is mid-flight. *)

val validations_ok : t -> int
val validations_abort : t -> int
val committed : t -> int
val aborted : t -> int
