(** Backup-coordinator outcome selection (§5.3.2).

    When a replica suspects a transaction's coordinator has failed, it
    starts a view change: the new view's proposer (the (view mod n)th
    replica) collects {!Replica.handle_coord_change} replies from a
    majority and must pick a {e safe} outcome — one that can not
    contradict anything a previous coordinator may already have told a
    client. The selection priority is the paper's:

    + an outcome already COMMITTED or ABORTED anywhere wins;
    + otherwise the decision accepted in the highest view wins;
    + otherwise, if enough VALIDATED-OK replies exist that the fast
      path {e may} have committed (⌈f/2⌉+1 within the majority — the
      quorum-intersection bound implied by the f+⌈f/2⌉+1 fast quorum),
      propose commit; symmetrically for VALIDATED-ABORT;
    + otherwise no coordinator can have decided, and abort is safe.

    The chosen outcome must then be driven through the slow path
    (accept at the new view, then commit) — {!Sim_system} does this in
    simulation and the tests do it directly. *)

type reply = No_record | Record of Replica.record_view

val choose : quorum:Quorum.t -> replies:(int * reply) list -> [ `Commit | `Abort ]
(** [choose ~quorum ~replies] picks the safe outcome from replica
    replies tagged with the replying replica's id. Replies are
    deduplicated by replica (first one wins) before any counting, so a
    duplicated or retransmitted reply can not double-count toward the
    ⌈f/2⌉+1 fast-recovery bound.

    @raise Invalid_argument on replies from fewer than a majority of
    {e distinct} replicas. *)
