module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ

type report = { replica : int; records : (int * Replica.record_view) list }

module Tid_table = Hashtbl.Make (struct
  type t = Timestamp.Tid.t

  let equal = Timestamp.Tid.equal
  let hash = Timestamp.Tid.hash
end)

(* All reports about one transaction, across replicas. *)
type gathered = {
  core : int;
  txn : Txn.t;
  ts : Timestamp.t;
  mutable views : Replica.record_view list;
}

let gather reports =
  let table = Tid_table.create 1024 in
  let order = ref [] in
  List.iter
    (fun report ->
      List.iter
        (fun (core, (v : Replica.record_view)) ->
          match Tid_table.find_opt table v.txn.Txn.tid with
          | Some g -> g.views <- v :: g.views
          | None ->
              let g = { core; txn = v.txn; ts = v.ts; views = [ v ] } in
              Tid_table.add table v.txn.Txn.tid g;
              order := g :: !order)
        report.records)
    reports;
  List.rev !order

let count pred views = List.length (List.filter pred views)

(* Rule 2: the accepted decision with the highest view, if any. *)
let latest_accepted views =
  List.fold_left
    (fun best (v : Replica.record_view) ->
      match (v.accept_view, v.status) with
      | Some av, (Txn.Accepted_commit | Txn.Accepted_abort) -> begin
          match best with
          | Some (bv, _) when bv >= av -> best
          | _ -> Some (av, v.status = Txn.Accepted_commit)
        end
      | _ -> best)
    None views

(* One report per replica (first wins): a duplicated report must not
   double-count its records toward the majority or fast-recovery
   bounds below. *)
let dedup_reports reports =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.replica then false
      else begin
        Hashtbl.add seen r.replica ();
        true
      end)
    reports

let merge ~quorum ~reports =
  let reports = dedup_reports reports in
  if List.length reports < Quorum.majority quorum then
    invalid_arg "Epoch.merge: needs reports from a majority of distinct replicas";
  let gathered = gather reports in
  (* Deterministic processing order: the proposed serialization order. *)
  let gathered =
    List.sort
      (fun a b ->
        let c = Timestamp.compare a.ts b.ts in
        if c <> 0 then c else Timestamp.Tid.compare a.txn.Txn.tid b.txn.Txn.tid)
      gathered
  in
  let decided = ref [] (* (core, view) accumulated in ts order *) in
  let revalidate_queue = ref [] in
  let final g ~commit =
    let status = if commit then Txn.Committed else Txn.Aborted in
    decided :=
      ( g.core,
        ({ txn = g.txn; ts = g.ts; status; view = 0; accept_view = None }
          : Replica.record_view) )
      :: !decided
  in
  List.iter
    (fun g ->
      let views = g.views in
      let committed = count (fun v -> v.Replica.status = Txn.Committed) views in
      let aborted = count (fun v -> v.Replica.status = Txn.Aborted) views in
      let ok = count (fun v -> v.Replica.status = Txn.Validated_ok) views in
      let vabort = count (fun v -> v.Replica.status = Txn.Validated_abort) views in
      if committed > 0 then final g ~commit:true
      else if aborted > 0 then final g ~commit:false
      else begin
        match latest_accepted views with
        | Some (_, commit) -> final g ~commit
        | None ->
            if ok >= Quorum.majority quorum then final g ~commit:true
            else if vabort >= Quorum.majority quorum then final g ~commit:false
            else if ok >= Quorum.fast_recovery quorum then
              (* Might have committed on the fast path: defer to OCC
                 re-validation against the merged history. *)
              revalidate_queue := g :: !revalidate_queue
            else final g ~commit:false
      end)
    gathered;
  (* Re-validate fast-path candidates in timestamp order against a
     scratch store that replays the decisions made so far. The scratch
     store starts from zero versions: the read-set wts values carried
     by each transaction supply the pre-crash versions, and only
     conflicts with merged commits can reject a candidate — matching
     the paper's argument that a fast-committed transaction can have
     no committed conflicter and thus always survives. *)
  let scratch = Vstore.create ~shards:16 () in
  let replay (v : Replica.record_view) =
    if v.status = Txn.Committed then begin
      (* Install writes and bump rts directly (no pending sets). *)
      Array.iter
        (fun (w : Txn.write_entry) ->
          let e = Vstore.find_or_create scratch w.key in
          Vstore.with_entry e (fun e ->
              if Timestamp.compare v.ts e.Vstore.wts > 0 then begin
                Vstore.set_value e w.value;
                Vstore.set_wts e v.ts
              end))
        v.txn.Txn.write_set;
      Array.iter
        (fun (r : Txn.read_entry) ->
          let e = Vstore.find_or_create scratch r.key in
          Vstore.with_entry e (fun e ->
              if Timestamp.compare v.ts e.Vstore.rts > 0 then Vstore.set_rts e v.ts;
              (* Reflect the version the reader observed so later writers
                 below it are rejected consistently. *)
              if Timestamp.compare r.wts e.Vstore.wts > 0 then Vstore.set_wts e r.wts))
        v.txn.Txn.read_set
    end
  in
  List.iter (fun (_, v) -> replay v) (List.rev !decided);
  let revalidated =
    List.rev_map
      (fun g ->
        let commit =
          match Occ.validate scratch g.txn ~ts:g.ts with
          | `Ok ->
              Occ.finish scratch g.txn ~ts:g.ts ~commit:true;
              true
          | `Abort -> false
        in
        let status = if commit then Txn.Committed else Txn.Aborted in
        ( g.core,
          ({ txn = g.txn; ts = g.ts; status; view = 0; accept_view = None }
            : Replica.record_view) ))
      !revalidate_queue
  in
  let all = List.rev_append !decided revalidated in
  List.sort
    (fun (_, (a : Replica.record_view)) (_, (b : Replica.record_view)) ->
      let c = Timestamp.compare a.ts b.ts in
      if c <> 0 then c else Timestamp.Tid.compare a.txn.Txn.tid b.txn.Txn.tid)
    all
