(** The failure detectors (§5.3) as a transport-agnostic state
    machine: heartbeat observations and scan ticks in, recovery
    {!action}s out.

    Like {!Protocol}, this module owns every decision and none of the
    transport. A driver (the simulator on engine time, the live
    runtime on wall-clock time) carries heartbeats between replicas
    over its own channels, reports each arrival with
    {!heartbeat_received}, calls {!scan} on each replica's scan tick,
    and performs the returned actions — running the §5.3.2 view
    change or §5.3.1 epoch change over its own transport and
    reporting the outcome back with {!view_change_finished} /
    {!epoch_change_finished}. Both backends therefore make exactly
    the same suspicion and recovery decisions from the same
    observations.

    One [t] holds the whole deployment's detector state (the n×n
    last-heard and paused matrices, per-observer stuck-record clocks,
    and the shared in-flight recovery guards); nothing here consumes
    randomness or reads a clock — [now] is always an argument. *)

type cfg = {
  heartbeat_every : float;  (** Replica-to-replica heartbeat period, µs. *)
  heartbeat_timeout : float;
      (** Silence after which a peer is suspected (crash/partition). *)
  pause_timeout : float;
      (** How long a peer may report itself paused before the detector
          reintegrates it (a stranded epoch change). *)
  stuck_timeout : float;
      (** Age after which a non-final trecord entry is considered
          abandoned by its coordinator and a view change starts. *)
  scan_every : float;  (** Trecord scan / suspicion evaluation period. *)
  epoch_cooldown : float;
      (** Minimum gap between detector-initiated epoch changes. *)
  give_up_after : float;
      (** Retransmission bound for detector-driven recovery rounds. *)
}

val default_cfg : cfg
(** Tuned to the simulator's µs timescale (heartbeat every 300 µs,
    suspect after 1.5 ms of silence). Live runs scale these to their
    wall-clock horizon. *)

type action =
  | Start_view_change of {
      observer : int;
      record : Mk_storage.Trecord.entry;
      view : int;
          (** The target view, precomputed: the smallest view above the
              record's current one owned by [observer]
              ([view mod n = observer]). *)
    }
      (** Drive the §5.3.2 backup-coordinator view change for this
          stuck record. The transaction is marked in flight; report the
          outcome with {!view_change_finished}. *)
  | Start_epoch_change of { initiator : int; recovering : int list }
      (** Drive the §5.3.1 epoch change reintegrating [recovering].
          Further initiations are suppressed until
          {!epoch_change_finished}. *)

type t

val create : cfg:cfg -> n:int -> now:float -> t
(** Fresh detector state for an [n]-replica deployment; every peer
    counts as heard-from at [now]. *)

val cfg : t -> cfg

val heartbeat_tick : t -> now:float -> replica:int -> unit
(** [replica] emitted its periodic heartbeat (it always hears
    itself). The driver sends the heartbeat to every peer over its
    (faulty) transport. *)

val heartbeat_received : t -> now:float -> observer:int -> from_:int -> paused:bool -> unit
(** A heartbeat from [from_], carrying whether the sender reports
    itself paused, was delivered to [observer]. *)

val scan :
  t ->
  now:float ->
  observer:int ->
  paused:bool ->
  available:bool ->
  records:(unit -> Mk_storage.Trecord.entry list) ->
  recoverable:(int -> bool) ->
  into:action Batch.t ->
  unit
(** One scan tick of replica [observer] (drivers skip ticks of crashed
    replicas). Updates the observer's own paused clock, scans its
    trecord for stuck records when [available] (the thunk is only
    forced then), evaluates suspicion, and appends the recovery
    actions to start to [into], in the order they must be performed:
    view changes in record order, then at most one epoch change.
    [recoverable p] says whether suspect [p] could be reintegrated
    right now (a crashed machine only after its reboot time). *)

val epoch_change_finished : t -> now:float -> success:bool -> recovering:int list -> unit
(** The epoch change from {!action.Start_epoch_change} completed.
    Re-arms initiation after the cooldown; on success, grants the
    reintegrated replicas a fresh grace period so stale silence does
    not immediately re-suspect them. *)

val view_change_finished :
  t ->
  now:float ->
  observer:int ->
  tid:Mk_clock.Timestamp.Tid.t ->
  outcome:[ `Finished | `Abandoned ] ->
  unit
(** The view change for [tid] completed ([`Finished]: the record was
    finalized) or gave up ([`Abandoned]: a higher view took over, or
    the retransmission deadline passed — the stuck clock restarts so
    the scanner retries later at a higher view). *)

val view_change_inflight : t -> Mk_clock.Timestamp.Tid.t -> bool
(** Whether a backup coordinator is currently driving [tid]. *)

val suspected : t -> now:float -> observer:int -> int list
(** The peers [observer] currently suspects (heartbeat silence beyond
    [heartbeat_timeout], or self-reported paused beyond
    [pause_timeout]), in replica order. Read-only — drivers use it to
    report detection (the cluster nodes' exit stats) without waiting
    for a recovery action to fire. *)
