(** The simulated Meerkat deployment: n replicas × k cores over the
    modelled transport, driven by per-client transaction coordinators
    (§5.2).

    Implements {!Mk_model.System_intf.SYSTEM}. The coordinator runs
    the full commit protocol: execute-phase reads against arbitrary
    replicas, client-chosen timestamps from a loosely synchronized
    clock, RSS core steering, fast-path supermajority decisions,
    slow-path accept rounds, asynchronous write-phase messages, and
    retransmission on timeout. *)

type t

type config = Mk_cluster.Cluster.config = {
  n_replicas : int;  (** Odd; n = 2f+1. *)
  threads : int;  (** Server threads (cores) per replica. *)
  n_clients : int;
  keys : int;  (** Keyspace size, preloaded before the run. *)
  transport : Mk_net.Transport.t;
  costs : Mk_model.Costs.t;
  clock_offset : float;  (** Max clock offset across clients, µs. *)
  clock_drift : float;
  seed : int;
}

val default_config : config

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> config -> t
(** [?obs] injects the observability handle (see
    {!Mk_cluster.Cluster.create}); defaults to a fresh one with
    tracing off. *)

val engine : t -> Mk_sim.Engine.t
val config : t -> config
val replicas : t -> Replica.t array
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters

val network : t -> Mk_net.Network.t
(** The simulated network the system sends through — where a nemesis
    installs its per-link fault rules. *)

val submit_interactive :
  t ->
  client:int ->
  reads:int array ->
  compute:(int array -> (int * int) array) ->
  on_done:(committed:bool -> unit) ->
  unit
(** Interactive transaction whose writes depend on the values read:
    the execute phase fetches the versioned values, [compute] derives
    the write set from them, and OCC validation guarantees that a
    commit implies the writes were computed from the latest committed
    state as of the transaction's timestamp. [compute] returning [||]
    makes the transaction read-only. *)

(** {2 Multi-partition building blocks (§5.2.4)}

    A distributed transaction runs its validation phase in every
    involved partition (each partition being one replicated Meerkat
    group) in parallel and commits only if all of them validate; these
    entry points let the multi-shard driver ([Mk_shard.Driver], as
    instantiated by [Mk_systems.Sharded_sim]) drive that. *)

val fresh_txn_stamp :
  t -> client:int -> Mk_clock.Timestamp.Tid.t * Mk_clock.Timestamp.t
(** Mint a globally unique tid and proposed timestamp from the
    client's loosely synchronized clock. *)

val execute_read :
  t -> client:int -> key:int -> (int * Mk_clock.Timestamp.t -> unit) -> unit
(** One execute-phase versioned GET (with retransmission). *)

val prepare_txn :
  t ->
  txn:Mk_storage.Txn.t ->
  ts:Mk_clock.Timestamp.t ->
  on_prepared:(bool -> unit) ->
  unit
(** Run the validation phase (fast/slow path included) to a decision
    but do {e not} send write-phase messages: the multi-partition
    coordinator combines the per-partition outcomes first. *)

val finalize_txn :
  t -> txn:Mk_storage.Txn.t -> ts:Mk_clock.Timestamp.t -> commit:bool -> unit
(** Broadcast the write-phase outcome to all replicas of this
    partition. *)

val read_committed : t -> replica:int -> key:int -> int option
(** Directly read a replica's committed value (test helper, bypasses
    the protocol). *)

val crash_replica : ?down_for:float -> t -> int -> unit
(** Fail-stop a replica mid-run; in-flight coordinators fall back to
    the slow path or stall on retransmission, as in the paper.
    [down_for] (µs, default 0) is how long the machine takes to
    reboot: the failure detector will not try to reintegrate the
    replica before that. *)

val crash_coordinator : t -> client:int -> down_for:float -> unit
(** Kill a client-side transaction coordinator mid-protocol (between
    validate and write): its in-flight attempts freeze — replies are
    ignored and retransmission timers skip — leaving VALIDATED records
    stranded on the replicas until the stuck-record detector finishes
    them through the §5.3.2 view change. After [down_for] µs the
    coordinator restarts and resumes its attempts, learning
    already-finalized outcomes through retransmission. If [client] has
    no attempt in flight, a coordinator that does is chosen instead
    (crashing an idle client exercises nothing). *)

val coordinator_is_down : t -> client:int -> bool

val inflight_attempts : t -> int
(** Number of undecided commit-protocol attempts across all
    coordinators (test/debug aid). *)

val run_epoch_change : t -> recovering:int list -> bool
(** Run the §5.3.1 epoch-change protocol synchronously (outside the
    simulated data path): pause replicas, aggregate and merge
    trecords, install the merged record everywhere, transfer state to
    the [recovering] replicas, and resume. Returns false if no
    majority of replicas is up. Convenient for tests; the in-protocol
    version is {!trigger_epoch_change}. *)

val trigger_epoch_change :
  ?max_rto:float ->
  t ->
  recovering:int list ->
  on_complete:(success:bool -> unit) ->
  unit
(** The message-driven epoch change (§5.3.1), running through the
    simulated network and paying CPU costs: the recovery coordinator —
    the (epoch mod n)th healthy replica — broadcasts
    ⟨epoch-change, e⟩, collects trecords from a majority (paying a
    per-record aggregation cost), merges them, and broadcasts
    ⟨epoch-change-complete, e, trecord⟩, with a store snapshot for
    each recovering replica. Messages are retransmitted on timeout;
    transactions validated mid-change are refused and retried by their
    coordinators, which is the paper's brief pause of new
    validations. [on_complete ~success:false] fires when no majority
    of replicas is up. [max_rto] (default: unbounded) caps the
    retransmission backoff: when the timeout exceeds it, the change
    gives up — reporting success if a majority installed (stragglers
    stay paused until a later epoch change reintegrates them). *)

(** {2 Failure detectors (detector-driven recovery)}

    The detection logic itself lives in {!Detector} (transport-agnostic,
    shared with the live runtime); this system only schedules its
    ticks, carries its heartbeats, and performs its actions. *)

type detector_cfg = Detector.cfg = {
  heartbeat_every : float;  (** Replica-to-replica heartbeat period, µs. *)
  heartbeat_timeout : float;
      (** Silence after which a peer is suspected (crash/partition). *)
  pause_timeout : float;
      (** How long a peer may report itself paused before the detector
          reintegrates it (a stranded epoch change). *)
  stuck_timeout : float;
      (** Age after which a non-final trecord entry is considered
          abandoned by its coordinator and a view change starts. *)
  scan_every : float;  (** Trecord scan / suspicion evaluation period. *)
  epoch_cooldown : float;
      (** Minimum gap between detector-initiated epoch changes. *)
  give_up_after : float;
      (** Retransmission bound for detector-driven recovery rounds. *)
}

val default_detector_cfg : detector_cfg

val start_detectors : ?cfg:detector_cfg -> t -> until:float -> unit -> unit
(** Arm the in-system failure detectors until simulated time [until]:
    per-replica heartbeats over the real (faulty) network feeding
    {!Detector}, whose actions drive §5.3.1 epoch changes and §5.3.2
    view changes (through {!Recovery.choose}) for transactions whose
    coordinator died. No recurring event is scheduled past [until], so
    [Engine.run] terminates. *)

val server_busy_fraction : t -> float
(** Mean utilization of server cores since the start of the run. *)
