(** Transport-agnostic Meerkat commit-protocol coordinator (§5.2.2).

    One value of type {!t} is the state machine of a single commit
    attempt: it consumes replica replies and timer expirations and
    emits the {!action}s a transport must perform — broadcast the
    validation round, broadcast the slow-path accept round, arm a
    timer, report the decision. It knows nothing about how messages
    travel or what time means: the deterministic simulator
    ({!Sim_system}) drives it with simulated microseconds and modelled
    message costs, and the live runtime ([Mk_live.Runtime]) drives the
    very same code with real OCaml 5 domains, mailboxes and the wall
    clock — so the two backends cannot drift.

    The machine is purely functional-in-spirit but imperative inside:
    [handle] mutates the attempt and emits the actions into the
    caller's {!Batch.t} in the exact order the driver must perform
    them (action order is what makes a simulated run bit-identical to
    the pre-extraction coordinator). Every parameterless action shape
    is a shared preallocated constant, so feeding an event through a
    warm batch allocates nothing; only [Arm_timer] (fresh floats,
    once per attempt) does. *)

type params = {
  n_replicas : int;
  quorum : Quorum.t;
  rto : float;
      (** Initial retransmission timeout, in the driver's time unit;
          doubles on every expiry. *)
  grace : float;
      (** Base fast-path grace: once a majority has replied but the
          fast quorum has not completed, wait
          [max grace (2 * time-to-majority)] before settling for the
          slow path. *)
}

type timer =
  | Retransmit of float
      (** Carries the timeout that was armed, so the driver can
          account for it and the machine can double it. *)
  | Fast_grace

type accept_reply =
  [ `Accepted | `Stale of int | `Finalized of Mk_storage.Txn.status ]
(** Replica replies to the slow-path accept round
    (see {!Replica.handle_accept}). *)

type action =
  | Send_validates of { only_missing : bool }
      (** Broadcast the validation request; when [only_missing], only
          to replicas for which {!needs_validate} holds. *)
  | Send_accepts of { decision : [ `Commit | `Abort ] }
      (** Broadcast the slow-path accept round at view 0 with the
          frozen proposal. *)
  | Arm_timer of { timer : timer; delay : float }
  | Note_validated
      (** A majority of validation replies is in hand (or the attempt
          moved on without one); close the validation phase — emitted
          at most once. *)
  | Note_decided of { commit : bool; fast : bool }
      (** The outcome is known; the driver performs the write phase
          and reports to the application — emitted exactly once. *)

type event =
  | Validate_reply of { replica : int; status : Mk_storage.Txn.status }
  | Accept_reply of { replica : int; reply : accept_reply }
  | Timer of timer
      (** A previously armed timer fired. The driver must drop timers
          of attempts that are already {!decided} and may suppress
          them while the coordinator process is down (crash
          injection); the machine additionally ignores any timer that
          no longer applies. *)
  | Resume
      (** The coordinator process restarted after a crash: re-fetch
          whatever is missing and re-evaluate. *)

type t

val start : params -> now:float -> into:action Batch.t -> t
(** Begin a commit attempt: returns the machine and appends the
    initial actions ([Send_validates] to everyone plus the
    retransmission timer) to [into]. *)

val handle : t -> now:float -> event -> into:action Batch.t -> unit
(** Feed one event; appends the actions to perform, in order, to
    [into] (which is not cleared — the driver owns its lifecycle).
    Duplicate replies (same replica, same round) are ignored, so a
    lossy or duplicating transport cannot double-count a quorum. *)

(** {2 Introspection (used by drivers and tests)} *)

val decided : t -> bool
val in_accept : t -> bool

val started : t -> float
(** [now] at {!start} — the base of validation/fast-path spans. *)

val accept_started : t -> float
(** [now] at first slow-path entry; NaN before that. *)

val needs_validate : t -> int -> bool
(** No validation reply from this replica yet. *)

val received : t -> int
(** Number of distinct validation replies in hand. *)
