module Engine = Mk_sim.Engine
module Network = Mk_net.Network
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span

type config = Cluster.config = {
  n_replicas : int;
  threads : int;
  n_clients : int;
  keys : int;
  transport : Mk_net.Transport.t;
  costs : Costs.t;
  clock_offset : float;
  clock_drift : float;
  seed : int;
}

let default_config = Cluster.default_config

type t = {
  cluster : Cluster.t;
  quorum : Quorum.t;
  replicas : Replica.t array;
}

let create ?obs engine cfg =
  let cluster = Cluster.create ?obs engine cfg in
  let quorum = Quorum.create ~n:cfg.n_replicas in
  let replicas =
    Array.init cfg.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:cfg.threads)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  { cluster; quorum; replicas }

let engine t = t.cluster.Cluster.engine
let config t = t.cluster.Cluster.cfg
let replicas t = t.replicas
let name _ = "MEERKAT"
let threads t = t.cluster.Cluster.cfg.threads
let obs t = Cluster.obs t.cluster
let counters t = Cluster.counters t.cluster
let net t = t.cluster.Cluster.net
let costs t = t.cluster.Cluster.cfg.costs
let core t r c = t.cluster.Cluster.cores.(r).(c)
let alive t r = not (Replica.is_crashed t.replicas.(r))

(* --- Commit protocol (§5.2.2): validation + fast/slow path. --- *)

type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  core_id : int;
  track : int;
      (** Trace track (client id, from the tid) lifecycle spans land
          on. *)
  started : Engine.time;
  replies : Txn.status option array;
  mutable in_accept : bool;
  mutable accept_started : Engine.time;
      (** When the slow path was first entered; NaN before that. *)
  mutable accept_acks : int;
  mutable decided : bool;
  mutable validated : bool;
      (** Whether the validation span has been closed (a majority of
          validation replies arrived, or the attempt moved on). *)
  mutable fast_grace_armed : bool;
      (** A short timer started once a majority has replied: if the
          fast quorum does not complete within a few RTTs (slow or
          failed replicas), settle for the slow path without waiting
          for the full retransmission timeout. *)
  count_stats : bool;
      (** False when driven by a multi-partition coordinator, which
          does its own accounting (§5.2.4). *)
}

(* Close the validation span: from the attempt's start to the moment a
   majority of validation replies is in hand (or the attempt moved on
   to a decision / the slow path without one, e.g. learning a
   finalized status from a retransmission). *)
let note_validated t a =
  if not a.validated then begin
    a.validated <- true;
    Obs.span (obs t) Span.Validate ~tid:a.track ~start:a.started ()
  end

(* First entry into the slow path (§5.2.2 step 4). Retransmissions of
   the accept round keep the original [accept_started], so the
   slow-accept span covers the whole round including retries. *)
let enter_accept t a =
  a.in_accept <- true;
  note_validated t a;
  if Float.is_nan a.accept_started then a.accept_started <- Engine.now (engine t)

let broadcast_commit t a ~commit =
  let nwrites = if commit then Array.length a.txn.Txn.write_set else 0 in
  let cost = Costs.commit (costs t) ~nwrites in
  let sent_at = Engine.now (engine t) in
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_work_to_core (net t) ~dst:(core t r a.core_id) ~cost (fun () ->
            ignore
              (Replica.handle_commit replica ~core:a.core_id ~txn:a.txn ~ts:a.ts
                 ~commit);
            (* Write-back latency as seen by replica [r]: from the
               asynchronous commit broadcast to the local apply. *)
            Obs.span (obs t) Span.Write_back ~pid:(Obs.replica_pid r)
              ~tid:a.core_id ~start:sent_at ()))
    t.replicas

(* The decision is reached: stop the attempt and report. The caller's
   [on_decided] is responsible for the write phase (single-partition
   transactions broadcast commit immediately; a multi-partition
   coordinator first combines the partitions' outcomes). *)
let decide t a ~commit ~fast ~on_decided =
  if not a.decided then begin
    a.decided <- true;
    note_validated t a;
    if fast then Obs.span (obs t) Span.Fast_quorum ~tid:a.track ~start:a.started ()
    else if not (Float.is_nan a.accept_started) then
      Obs.span (obs t) Span.Slow_accept ~tid:a.track ~start:a.accept_started ();
    if a.count_stats then Cluster.note_decision t.cluster ~committed:commit ~fast;
    on_decided ~commit ~fast
  end

let send_accepts t a ~commit ~on_decided =
  let decision = if commit then `Commit else `Abort in
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_work_to_core (net t) ~dst:(core t r a.core_id)
          ~cost:((costs t).Costs.accept +. Cluster.tx_cpu t.cluster)
          (fun () ->
            match
              Replica.handle_accept replica ~core:a.core_id ~txn:a.txn ~ts:a.ts
                ~decision ~view:0
            with
            | None -> ()
            | Some reply ->
                Network.send_to_client (net t) (fun () ->
                    if not a.decided then begin
                      match reply with
                      | `Accepted ->
                          a.accept_acks <- a.accept_acks + 1;
                          if a.accept_acks >= Quorum.majority t.quorum then
                            decide t a ~commit ~fast:false ~on_decided
                      | `Finalized st ->
                          decide t a ~commit:(st = Txn.Committed) ~fast:false
                            ~on_decided
                      | `Stale _ ->
                          (* A backup coordinator superseded us and will
                             finish the transaction; the retransmission
                             path learns the final status from the
                             replicas' records. *)
                          ()
                    end)))
    t.replicas

let majority_ok t a =
  Array.fold_left
    (fun acc reply -> if reply = Some Txn.Validated_ok then acc + 1 else acc)
    0 a.replies
  >= Quorum.majority t.quorum

let received t a =
  ignore t;
  Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 a.replies

let go_slow t a ~on_decided =
  if (not a.decided) && not a.in_accept then begin
    enter_accept t a;
    send_accepts t a ~commit:(majority_ok t a) ~on_decided
  end

let evaluate t a ~on_decided =
  if not a.decided then begin
    match Decision.evaluate ~quorum:t.quorum ~replies:a.replies with
    | Decision.Wait ->
        (* A majority answered but the fast quorum has not completed.
           Give stragglers a few RTTs, then settle for the slow path —
           without this grace timer a crashed replica would pin every
           transaction to the full retransmission timeout. *)
        if
          (not a.fast_grace_armed)
          && (not a.in_accept)
          && received t a >= Quorum.majority t.quorum
        then begin
          a.fast_grace_armed <- true;
          (* Scale the grace with the time the majority itself took:
             under deep queueing the straggler is probably just queued
             like everyone else; after a crash the majority arrived in
             one RTT and the grace stays short. *)
          let tr = (config t).transport in
          let base =
            (3.0 *. (tr.Mk_net.Transport.latency +. tr.Mk_net.Transport.jitter)) +. 2.0
          in
          let elapsed = Engine.now (engine t) -. a.started in
          Engine.schedule (engine t) ~delay:(Float.max base (2.0 *. elapsed)) (fun () ->
              go_slow t a ~on_decided)
        end
    | Decision.Final commit -> decide t a ~commit ~fast:false ~on_decided
    | Decision.Fast commit -> decide t a ~commit ~fast:true ~on_decided
    | Decision.Slow commit ->
        if not a.in_accept then begin
          (* Fast path impossible: slow path (§5.2.2 step 4). *)
          enter_accept t a;
          send_accepts t a ~commit ~on_decided
        end
  end

let send_validates t a ~only_missing ~on_decided =
  let cost =
    Costs.validate (costs t) ~nkeys:(Txn.nkeys a.txn) +. Cluster.tx_cpu t.cluster
  in
  Array.iteri
    (fun r replica ->
      if ((not only_missing) || a.replies.(r) = None)
         && not (Replica.is_crashed replica)
      then
        Network.send_to_core (net t) ~dst:(core t r a.core_id) ~cost (fun ~finish ->
            (match
               Replica.handle_validate replica ~core:a.core_id ~txn:a.txn ~ts:a.ts
             with
            | None -> ()
            | Some st ->
                Network.send_to_client (net t) (fun () ->
                    if a.replies.(r) = None then begin
                      a.replies.(r) <- Some st;
                      if received t a >= Quorum.majority t.quorum then
                        note_validated t a;
                      evaluate t a ~on_decided
                    end));
            finish ()))
    t.replicas

let rec arm_timer t a ~rto ~on_decided =
  Engine.schedule (engine t) ~delay:rto (fun () ->
      if not a.decided then begin
        Cluster.note_retransmit t.cluster ~rto ~tid:a.track;
        let received = Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 a.replies in
        let ok =
          Array.fold_left
            (fun acc reply -> if reply = Some Txn.Validated_ok then acc + 1 else acc)
            0 a.replies
        in
        if a.in_accept then begin
          (* Restart the accept round; replicas are idempotent for a
             same-view proposal, so acks are simply recounted. *)
          a.accept_acks <- 0;
          send_accepts t a ~commit:(ok >= Quorum.majority t.quorum) ~on_decided
        end
        else if received >= Quorum.majority t.quorum then begin
          (* The fast path did not complete within the timeout (slow or
             crashed replicas): settle for the slow path with the
             majority in hand, per §5.2.2 step 4. *)
          enter_accept t a;
          send_accepts t a ~commit:(ok >= Quorum.majority t.quorum) ~on_decided
        end
        else send_validates t a ~only_missing:true ~on_decided;
        arm_timer t a ~rto:(rto *. 2.0) ~on_decided
      end)

let start_attempt t ~txn ~ts ~count_stats ~on_decided =
  let core_id = Timestamp.Tid.hash txn.Txn.tid mod threads t in
  let a =
    {
      txn;
      ts;
      core_id;
      track = txn.Txn.tid.Timestamp.Tid.client_id;
      started = Engine.now (engine t);
      replies = Array.make (Array.length t.replicas) None;
      in_accept = false;
      accept_started = Float.nan;
      accept_acks = 0;
      decided = false;
      validated = false;
      fast_grace_armed = false;
      count_stats;
    }
  in
  send_validates t a ~only_missing:false ~on_decided;
  arm_timer t a ~rto:t.cluster.Cluster.rto ~on_decided;
  a

let finalize_txn t ~txn ~ts ~commit =
  let a =
    {
      txn;
      ts;
      core_id = Timestamp.Tid.hash txn.Txn.tid mod threads t;
      track = txn.Txn.tid.Timestamp.Tid.client_id;
      started = 0.0;
      replies = [||];
      in_accept = false;
      accept_started = Float.nan;
      accept_acks = 0;
      decided = true;
      validated = true;
      fast_grace_armed = true;
      count_stats = false;
    }
  in
  broadcast_commit t a ~commit

let prepare_txn t ~txn ~ts ~on_prepared =
  ignore
    (start_attempt t ~txn ~ts ~count_stats:false ~on_decided:(fun ~commit ~fast ->
         ignore fast;
         on_prepared commit))

let fresh_txn_stamp t ~client =
  let ctx = t.cluster.Cluster.clients.(client) in
  (Cluster.fresh_tid t.cluster ctx, Cluster.fresh_timestamp t.cluster ctx)

let execute_read t ~client ~key k =
  let ctx = t.cluster.Cluster.clients.(client) in
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  Cluster.do_get t.cluster ctx ~key ~read ~alive:(alive t) k

let commit_txn t client ~read_set ~writes ~on_done =
  let tid = Cluster.fresh_tid t.cluster client in
  let write_set =
    List.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) writes
  in
  let txn = Txn.make ~tid ~read_set ~write_set in
  let ts = Cluster.fresh_timestamp t.cluster client in
  let a = ref None in
  let attempt =
    start_attempt t ~txn ~ts ~count_stats:true ~on_decided:(fun ~commit ~fast ->
        ignore fast;
        (match !a with
        | Some attempt -> broadcast_commit t attempt ~commit
        | None -> ());
        (* The coordinator runs on the client machine, so handing the
           outcome to the application does not cross the (lossy)
           network; the write-phase commit message above is
           asynchronous (piggybacked in the paper). *)
        Engine.schedule (engine t) ~delay:0.0 (fun () -> on_done ~committed:commit))
  in
  a := Some attempt

(* Interactive execute phase (client-side GETs), bracketed by an
   [Execute] span on the client's track. Write-only transactions have
   no execute phase, so no span. *)
let execute_phase t ctx ~keys k =
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  let started = Engine.now (engine t) in
  Cluster.execute_reads t.cluster ctx ~keys ~read ~alive:(alive t)
    (fun read_set values ->
      if Array.length keys > 0 then
        Obs.span (Cluster.obs t.cluster) Span.Execute ~tid:ctx.Cluster.cid
          ~start:started ();
      k read_set values)

let submit t ~client (req : Intf.txn_request) ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  execute_phase t ctx ~keys:req.reads (fun read_set _values ->
      commit_txn t ctx ~read_set ~writes:(Array.to_list req.writes) ~on_done)

let submit_interactive t ~client ~reads ~compute ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  execute_phase t ctx ~keys:reads (fun read_set values ->
      let writes = Array.to_list (compute values) in
      commit_txn t ctx ~read_set ~writes ~on_done)

let read_committed t ~replica ~key =
  match Mk_storage.Vstore.find (Replica.vstore t.replicas.(replica)) key with
  | None -> None
  | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e))

let crash_replica t r = Replica.crash t.replicas.(r)

let run_epoch_change t ~recovering =
  let healthy =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not (Replica.is_crashed r)) && not (List.mem (Replica.id r) recovering))
  in
  if List.length healthy < Quorum.majority t.quorum then false
  else begin
    List.iter (fun id -> Replica.begin_recovery t.replicas.(id)) recovering;
    let epoch =
      1 + Array.fold_left (fun acc r -> max acc (Replica.epoch r)) 0 t.replicas
    in
    let reports =
      List.filter_map
        (fun r ->
          match Replica.handle_epoch_change r ~epoch with
          | None -> None
          | Some views ->
              ignore views;
              Some { Epoch.replica = Replica.id r; records = Replica.record_views r })
        healthy
    in
    if List.length reports < Quorum.majority t.quorum then false
    else begin
      let merged = Epoch.merge ~quorum:t.quorum ~reports in
      (* Healthy replicas install first so the snapshot sent to the
         recovering replicas reflects every merged commit. *)
      List.iter
        (fun r ->
          ignore (Replica.handle_epoch_complete r ~epoch ~records:merged ~store:None))
        healthy;
      let snapshot =
        match healthy with
        | r :: _ -> Replica.store_snapshot r
        | [] -> []
      in
      List.iter
        (fun id ->
          ignore
            (Replica.handle_epoch_complete t.replicas.(id) ~epoch ~records:merged
               ~store:(Some snapshot)))
        recovering;
      true
    end
  end

(* --- Message-driven epoch change (§5.3.1). ---

   CPU costs (µs) for the recovery path; these are cold-path constants
   kept local rather than in {!Costs} (they never affect steady-state
   figures, only the length of the availability gap measured by the
   recovery bench/test). *)

let epoch_gather_base = 2.0
let epoch_per_record = 0.05
let epoch_merge_per_record = 0.2
let epoch_install_base = 2.0
let epoch_install_per_record = 0.1
let epoch_snapshot_per_row = 0.005

type epoch_state = {
  epoch : int;
  coordinator : int;
  targets : int list;  (** All replicas that must install. *)
  recovering : int list;
  reports : (int, Epoch.report) Hashtbl.t;
  mutable merged : (int * Replica.record_view) list option;
  mutable installed : (int, unit) Hashtbl.t option;  (* None until merge *)
  mutable finished : bool;
}

let trigger_epoch_change t ~recovering ~on_complete =
  let n = Array.length t.replicas in
  let healthy r =
    (not (Replica.is_crashed t.replicas.(r))) && not (List.mem r recovering)
  in
  let healthy_ids = List.filter healthy (List.init n (fun r -> r)) in
  if List.length healthy_ids < Quorum.majority t.quorum then
    Engine.schedule (engine t) ~delay:0.0 (fun () -> on_complete ~success:false)
  else begin
    List.iter (fun id -> Replica.begin_recovery t.replicas.(id)) recovering;
    let base_epoch =
      1 + Array.fold_left (fun acc r -> max acc (Replica.epoch r)) 0 t.replicas
    in
    (* The (epoch mod n)th replica coordinates; skip over replicas that
       cannot (crashed or themselves recovering) by bumping the epoch,
       the standard liveness trick. *)
    let rec pick epoch = if healthy (epoch mod n) then epoch else pick (epoch + 1) in
    let epoch = pick base_epoch in
    let coordinator = epoch mod n in
    let st =
      {
        epoch;
        coordinator;
        targets = healthy_ids @ recovering;
        recovering;
        reports = Hashtbl.create 8;
        merged = None;
        installed = None;
        finished = false;
      }
    in
    let coord_core = core t coordinator 0 in
    let record_count records = List.length records in
    (* Phase 2: install the merged trecord everywhere; the recovering
       replicas additionally receive a store snapshot taken from the
       coordinator after its own install. *)
    let send_complete merged snapshot target =
      let is_recovering = List.mem target st.recovering in
      let store = if is_recovering then Some snapshot else None in
      let cost =
        epoch_install_base
        +. (epoch_install_per_record *. float_of_int (record_count merged))
        +. (if is_recovering then
              epoch_snapshot_per_row *. float_of_int (List.length snapshot)
            else 0.0)
      in
      Network.send_work_to_core (net t) ~dst:(core t target 0) ~cost (fun () ->
          match
            Replica.handle_epoch_complete t.replicas.(target) ~epoch:st.epoch
              ~records:merged ~store
          with
          | None -> ()
          | Some () ->
              Network.send_to_client (net t) (fun () ->
                  match st.installed with
                  | None -> ()
                  | Some table ->
                      Hashtbl.replace table target ();
                      if
                        (not st.finished)
                        && Hashtbl.length table >= List.length st.targets
                      then begin
                        st.finished <- true;
                        on_complete ~success:true
                      end))
    in
    let do_merge () =
      if st.merged = None then begin
        let reports = Hashtbl.fold (fun _ r acc -> r :: acc) st.reports [] in
        let merged = Epoch.merge ~quorum:t.quorum ~reports in
        st.merged <- Some merged;
        st.installed <- Some (Hashtbl.create 8);
        let merge_cost =
          epoch_merge_per_record *. float_of_int (record_count merged)
        in
        Mk_sim.Core.submit_work coord_core ~cost:merge_cost (fun () ->
            (* Coordinator installs first so the snapshot reflects the
               merged commits. *)
            (match
               Replica.handle_epoch_complete t.replicas.(st.coordinator)
                 ~epoch:st.epoch ~records:merged ~store:None
             with
            | Some () -> begin
                match st.installed with
                | Some table -> Hashtbl.replace table st.coordinator ()
                | None -> ()
              end
            | None -> ());
            let snapshot = Replica.store_snapshot t.replicas.(st.coordinator) in
            List.iter
              (fun target ->
                if target <> st.coordinator then send_complete merged snapshot target)
              st.targets)
      end
    in
    (* Phase 1: gather trecords from the healthy replicas. *)
    let send_gather target =
      Network.send_to_core (net t) ~dst:(core t target 0)
        ~cost:
          (epoch_gather_base
          +. (epoch_per_record
             *. float_of_int
                  (Mk_storage.Trecord.size (Replica.trecord t.replicas.(target)))))
        (fun ~finish ->
          let replica = t.replicas.(target) in
          let records =
            match Replica.handle_epoch_change replica ~epoch:st.epoch with
            | Some _ -> Some (Replica.record_views replica)
            | None ->
                (* Duplicate request for the epoch we already joined:
                   replying again keeps the gather idempotent. *)
                if (not (Replica.is_crashed replica)) && Replica.epoch replica = st.epoch
                then Some (Replica.record_views replica)
                else None
          in
          (match records with
          | None -> ()
          | Some records ->
              let reply_cost =
                epoch_gather_base
                +. (epoch_per_record *. float_of_int (List.length records))
              in
              Network.send_work_to_core (net t) ~dst:coord_core ~cost:reply_cost
                (fun () ->
                  if st.merged = None then begin
                    Hashtbl.replace st.reports target
                      { Epoch.replica = target; records };
                    if Hashtbl.length st.reports >= Quorum.majority t.quorum then
                      do_merge ()
                  end));
          finish ())
    in
    List.iter send_gather healthy_ids;
    (* Retransmission: re-gather from missing reporters, or re-send
       completes to replicas that have not installed. *)
    let rec retry ~rto =
      Engine.schedule (engine t) ~delay:rto (fun () ->
          if not st.finished then begin
            (match (st.merged, st.installed) with
            | Some merged, Some table ->
                let snapshot = Replica.store_snapshot t.replicas.(st.coordinator) in
                List.iter
                  (fun target ->
                    if not (Hashtbl.mem table target) then
                      send_complete merged snapshot target)
                  st.targets
            | _ ->
                List.iter
                  (fun target ->
                    if not (Hashtbl.mem st.reports target) then send_gather target)
                  healthy_ids);
            retry ~rto:(rto *. 2.0)
          end)
    in
    retry ~rto:t.cluster.Cluster.rto
  end

let server_busy_fraction t = Cluster.server_busy_fraction t.cluster
