module Engine = Mk_sim.Engine
module Network = Mk_net.Network
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span

type config = Cluster.config = {
  n_replicas : int;
  threads : int;
  n_clients : int;
  keys : int;
  transport : Mk_net.Transport.t;
  costs : Costs.t;
  clock_offset : float;
  clock_drift : float;
  seed : int;
}

let default_config = Cluster.default_config

(* --- Commit protocol (§5.2.2): validation + fast/slow path.

   The state machine itself lives in {!Protocol} (transport-agnostic,
   shared with the live runtime); an [attempt] binds one machine to
   this simulated deployment — the transaction payload, the steering
   target, and the continuation that runs the write phase. --- *)

type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  core_id : int;
  track : int;
      (** Trace track (client id, from the tid) lifecycle spans land
          on; also the coordinator's identity for fault injection. *)
  proto : Protocol.t;
  count_stats : bool;
      (** False when driven by a multi-partition coordinator, which
          does its own accounting (§5.2.4). *)
  mutable on_decided : commit:bool -> fast:bool -> unit;
}

type t = {
  cluster : Cluster.t;
  quorum : Quorum.t;
  replicas : Replica.t array;
  inflight : (int, attempt list) Hashtbl.t;
      (** Undecided attempts per coordinator (client) id, so a
          coordinator crash can freeze and later resume them. *)
  coord_down : (int, unit) Hashtbl.t;
  down_until : float array;
      (** Earliest time a crashed replica can be reintegrated (models
          the machine reboot); indexed by replica. *)
  act_pool : Protocol.action Batch.Pool.t;
      (** Recycled emission batches for [Protocol.start]/[handle].
          Pooled (not a single scratch) because [on_decided] may
          synchronously start the next attempt while the outer batch
          is still being iterated. *)
}

let create ?obs engine cfg =
  let cluster = Cluster.create ?obs engine cfg in
  let quorum = Quorum.create ~n:cfg.n_replicas in
  let replicas =
    Array.init cfg.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:cfg.threads)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  {
    cluster;
    quorum;
    replicas;
    inflight = Hashtbl.create 64;
    coord_down = Hashtbl.create 8;
    down_until = Array.make cfg.n_replicas 0.0;
    act_pool = Batch.Pool.create ();
  }

let engine t = t.cluster.Cluster.engine
let config t = t.cluster.Cluster.cfg
let replicas t = t.replicas
let name _ = "MEERKAT"
let threads t = t.cluster.Cluster.cfg.threads
let obs t = Cluster.obs t.cluster
let counters t = Cluster.counters t.cluster
let net t = t.cluster.Cluster.net
let network = net
let costs t = t.cluster.Cluster.cfg.costs
let core t r c = t.cluster.Cluster.cores.(r).(c)
let alive t r = not (Replica.is_crashed t.replicas.(r))
let coord_down t track = Hashtbl.mem t.coord_down track

let register_attempt t a =
  let l = Option.value ~default:[] (Hashtbl.find_opt t.inflight a.track) in
  Hashtbl.replace t.inflight a.track (a :: l)

let unregister_attempt t a =
  match Hashtbl.find_opt t.inflight a.track with
  | None -> ()
  | Some l -> begin
      match List.filter (fun x -> x != a) l with
      | [] -> Hashtbl.remove t.inflight a.track
      | l -> Hashtbl.replace t.inflight a.track l
    end

(* The fast-path grace base: a few RTTs. See [Protocol.params]. *)
let proto_params t =
  let tr = (config t).transport in
  let grace =
    (3.0 *. (tr.Mk_net.Transport.latency +. tr.Mk_net.Transport.jitter)) +. 2.0
  in
  {
    Protocol.n_replicas = Array.length t.replicas;
    quorum = t.quorum;
    rto = t.cluster.Cluster.rto;
    grace;
  }

let broadcast_commit t ~txn ~ts ~core_id ~track ~commit =
  let nwrites = if commit then Array.length txn.Txn.write_set else 0 in
  let cost = Costs.commit (costs t) ~nwrites in
  let sent_at = Engine.now (engine t) in
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_work_to_core (net t)
          ~link:(Network.Client track, Network.Replica r)
          ~dst:(core t r core_id) ~cost (fun () ->
            ignore (Replica.handle_commit replica ~core:core_id ~txn ~ts ~commit);
            (* Write-back latency as seen by replica [r]: from the
               asynchronous commit broadcast to the local apply. *)
            Obs.span (obs t) Span.Write_back ~pid:(Obs.replica_pid r)
              ~tid:core_id ~start:sent_at ()))
    t.replicas

(* The driver: performs the actions {!Protocol} emits, over the
   modelled network and engine. All protocol logic (quorum evaluation,
   slow-path entry, retransmission branching, dedup of replies) is in
   [Protocol.handle]; the driver owns what is deployment-specific —
   message costs, spans, stats, and coordinator crash injection (a
   down coordinator neither receives replies nor retransmits, gated
   here before any event reaches the machine). *)

let rec exec_action t a = function
  | Protocol.Send_validates { only_missing } -> send_validates t a ~only_missing
  | Protocol.Send_accepts { decision } -> send_accepts t a ~decision
  | Protocol.Arm_timer { timer; delay } -> arm_timer t a ~timer ~delay
  | Protocol.Note_validated ->
      (* Close the validation span: from the attempt's start to the
         moment a majority of validation replies is in hand (or the
         attempt moved on without one, e.g. learning a finalized
         status from a retransmission). *)
      Obs.span (obs t) Span.Validate ~tid:a.track
        ~start:(Protocol.started a.proto) ()
  | Protocol.Note_decided { commit; fast } ->
      (* The decision is reached: stop the attempt and report. The
         attempt's [on_decided] is responsible for the write phase
         (single-partition transactions broadcast commit immediately;
         a multi-partition coordinator first combines the partitions'
         outcomes). *)
      unregister_attempt t a;
      if fast then
        Obs.span (obs t) Span.Fast_quorum ~tid:a.track
          ~start:(Protocol.started a.proto) ()
      else if not (Float.is_nan (Protocol.accept_started a.proto)) then
        Obs.span (obs t) Span.Slow_accept ~tid:a.track
          ~start:(Protocol.accept_started a.proto) ();
      if a.count_stats then Cluster.note_decision t.cluster ~committed:commit ~fast;
      a.on_decided ~commit ~fast

and feed t a event =
  Batch.Pool.with_batch t.act_pool (fun into ->
      Protocol.handle a.proto ~now:(Engine.now (engine t)) event ~into;
      Batch.iter (exec_action t a) into)

and arm_timer t a ~timer ~delay =
  Engine.schedule (engine t) ~delay (fun () ->
      if not (Protocol.decided a.proto) then begin
        match timer with
        | Protocol.Fast_grace ->
            if not (coord_down t a.track) then feed t a (Protocol.Timer timer)
        | Protocol.Retransmit rto ->
            if coord_down t a.track then
              (* The coordinator process is down: no retransmissions.
                 The timer stays armed so the attempt resumes its
                 backoff schedule when the coordinator restarts. *)
              arm_timer t a ~timer ~delay:rto
            else begin
              Cluster.note_retransmit t.cluster ~rto ~tid:a.track;
              feed t a (Protocol.Timer timer)
            end
      end)

and send_accepts t a ~decision =
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_work_to_core (net t)
          ~link:(Network.Client a.track, Network.Replica r)
          ~dst:(core t r a.core_id)
          ~cost:((costs t).Costs.accept +. Cluster.tx_cpu t.cluster)
          (fun () ->
            match
              Replica.handle_accept replica ~core:a.core_id ~txn:a.txn ~ts:a.ts
                ~decision ~view:0
            with
            | None -> ()
            | Some reply ->
                Network.send_to_client (net t)
                  ~link:(Network.Replica r, Network.Client a.track)
                  (fun () ->
                    if not (coord_down t a.track) then
                      feed t a (Protocol.Accept_reply { replica = r; reply }))))
    t.replicas

and send_validates t a ~only_missing =
  let cost =
    Costs.validate (costs t) ~nkeys:(Txn.nkeys a.txn) +. Cluster.tx_cpu t.cluster
  in
  Array.iteri
    (fun r replica ->
      if ((not only_missing) || Protocol.needs_validate a.proto r)
         && not (Replica.is_crashed replica)
      then
        Network.send_to_core (net t)
          ~link:(Network.Client a.track, Network.Replica r)
          ~dst:(core t r a.core_id) ~cost (fun ~finish ->
            (match
               Replica.handle_validate replica ~core:a.core_id ~txn:a.txn ~ts:a.ts
             with
            | None -> ()
            | Some st ->
                Network.send_to_client (net t)
                  ~link:(Network.Replica r, Network.Client a.track)
                  (fun () ->
                    if not (coord_down t a.track) then
                      feed t a
                        (Protocol.Validate_reply { replica = r; status = st })));
            finish ()))
    t.replicas

let start_attempt t ~txn ~ts ~count_stats ~on_decided =
  let core_id = Timestamp.Tid.hash txn.Txn.tid mod threads t in
  Batch.Pool.with_batch t.act_pool (fun into ->
      let proto =
        Protocol.start (proto_params t) ~now:(Engine.now (engine t)) ~into
      in
      let a =
        {
          txn;
          ts;
          core_id;
          track = txn.Txn.tid.Timestamp.Tid.client_id;
          proto;
          count_stats;
          on_decided;
        }
      in
      register_attempt t a;
      Batch.iter (exec_action t a) into;
      a)

let finalize_txn t ~txn ~ts ~commit =
  broadcast_commit t ~txn ~ts
    ~core_id:(Timestamp.Tid.hash txn.Txn.tid mod threads t)
    ~track:txn.Txn.tid.Timestamp.Tid.client_id ~commit

let prepare_txn t ~txn ~ts ~on_prepared =
  ignore
    (start_attempt t ~txn ~ts ~count_stats:false ~on_decided:(fun ~commit ~fast ->
         ignore fast;
         on_prepared commit))

let fresh_txn_stamp t ~client =
  let ctx = t.cluster.Cluster.clients.(client) in
  (Cluster.fresh_tid t.cluster ctx, Cluster.fresh_timestamp t.cluster ctx)

let execute_read t ~client ~key k =
  let ctx = t.cluster.Cluster.clients.(client) in
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  Cluster.do_get t.cluster ctx ~key ~read ~alive:(alive t) k

let commit_txn t client ~read_set ~writes ~on_done =
  let tid = Cluster.fresh_tid t.cluster client in
  let write_set =
    List.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) writes
  in
  let txn = Txn.make ~tid ~read_set ~write_set in
  let ts = Cluster.fresh_timestamp t.cluster client in
  ignore
    (start_attempt t ~txn ~ts ~count_stats:true ~on_decided:(fun ~commit ~fast ->
         ignore fast;
         finalize_txn t ~txn ~ts ~commit;
         (* The coordinator runs on the client machine, so handing the
            outcome to the application does not cross the (lossy)
            network; the write-phase commit message above is
            asynchronous (piggybacked in the paper). *)
         Engine.schedule (engine t) ~delay:0.0 (fun () ->
             on_done ~committed:commit)))

(* Interactive execute phase (client-side GETs), bracketed by an
   [Execute] span on the client's track. Write-only transactions have
   no execute phase, so no span. *)
let execute_phase t ctx ~keys k =
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  let started = Engine.now (engine t) in
  Cluster.execute_reads t.cluster ctx ~keys ~read ~alive:(alive t)
    (fun read_set values ->
      if Array.length keys > 0 then
        Obs.span (Cluster.obs t.cluster) Span.Execute ~tid:ctx.Cluster.cid
          ~start:started ();
      k read_set values)

let submit t ~client (req : Intf.txn_request) ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  execute_phase t ctx ~keys:req.reads (fun read_set _values ->
      commit_txn t ctx ~read_set ~writes:(Array.to_list req.writes) ~on_done)

let submit_interactive t ~client ~reads ~compute ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  execute_phase t ctx ~keys:reads (fun read_set values ->
      let writes = Array.to_list (compute values) in
      commit_txn t ctx ~read_set ~writes ~on_done)

let read_committed t ~replica ~key =
  match Mk_storage.Vstore.find (Replica.vstore t.replicas.(replica)) key with
  | None -> None
  | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e))

(* --- Fault injection. --- *)

let crash_replica ?(down_for = 0.0) t r =
  t.down_until.(r) <- Engine.now (engine t) +. down_for;
  Replica.crash t.replicas.(r)

(* Resume a frozen attempt after its coordinator restarts: re-fetch
   whatever is missing and re-evaluate. If a backup coordinator
   finished the transaction meanwhile, the retransmitted validates
   return the final status and the attempt learns the outcome. *)
let resume_attempt t a = feed t a Protocol.Resume

let crash_coordinator t ~client ~down_for =
  (* Prefer a coordinator that is actually mid-protocol (between
     validate and write): crashing an idle client exercises nothing. *)
  let victim =
    if Hashtbl.mem t.inflight client then client
    else begin
      let best = ref client in
      (try
         Hashtbl.iter
           (fun c attempts ->
             if attempts <> [] then begin
               best := c;
               raise Exit
             end)
           t.inflight
       with Exit -> ());
      !best
    end
  in
  if not (Hashtbl.mem t.coord_down victim) then begin
    Hashtbl.replace t.coord_down victim ();
    Engine.schedule (engine t) ~delay:down_for (fun () ->
        Hashtbl.remove t.coord_down victim;
        match Hashtbl.find_opt t.inflight victim with
        | None -> ()
        | Some attempts -> List.iter (resume_attempt t) attempts)
  end

let coordinator_is_down t ~client = coord_down t client
let inflight_attempts t = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.inflight 0

(* --- Synchronous epoch change (test helper, §5.3.1). --- *)

let run_epoch_change t ~recovering =
  let healthy =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not (Replica.is_crashed r)) && not (List.mem (Replica.id r) recovering))
  in
  if List.length healthy < Quorum.majority t.quorum then false
  else begin
    List.iter (fun id -> Replica.begin_recovery t.replicas.(id)) recovering;
    let epoch =
      1 + Array.fold_left (fun acc r -> max acc (Replica.epoch r)) 0 t.replicas
    in
    let reports =
      List.filter_map
        (fun r ->
          match Replica.handle_epoch_change r ~epoch with
          | None -> None
          | Some views ->
              ignore views;
              Some { Epoch.replica = Replica.id r; records = Replica.record_views r })
        healthy
    in
    if List.length reports < Quorum.majority t.quorum then false
    else begin
      let merged = Epoch.merge ~quorum:t.quorum ~reports in
      (* Healthy replicas install first so the snapshot sent to the
         recovering replicas reflects every merged commit. *)
      List.iter
        (fun r ->
          ignore (Replica.handle_epoch_complete r ~epoch ~records:merged ~store:None))
        healthy;
      let snapshot =
        match healthy with
        | r :: _ -> Replica.store_snapshot r
        | [] -> []
      in
      List.iter
        (fun id ->
          ignore
            (Replica.handle_epoch_complete t.replicas.(id) ~epoch ~records:merged
               ~store:(Some snapshot)))
        recovering;
      true
    end
  end

(* --- Message-driven epoch change (§5.3.1). ---

   CPU costs (µs) for the recovery path; these are cold-path constants
   kept local rather than in {!Costs} (they never affect steady-state
   figures, only the length of the availability gap measured by the
   recovery bench/test). *)

let epoch_gather_base = 2.0
let epoch_per_record = 0.05
let epoch_merge_per_record = 0.2
let epoch_install_base = 2.0
let epoch_install_per_record = 0.1
let epoch_snapshot_per_row = 0.005

type epoch_state = {
  epoch : int;
  coordinator : int;
  targets : int list;  (** All replicas that must install. *)
  recovering : int list;
  reports : (int, Epoch.report) Hashtbl.t;
  mutable merged : (int * Replica.record_view) list option;
  mutable installed : (int, unit) Hashtbl.t option;  (* None until merge *)
  mutable finished : bool;
}

let trigger_epoch_change ?(max_rto = Float.infinity) t ~recovering ~on_complete =
  let n = Array.length t.replicas in
  let healthy r =
    (not (Replica.is_crashed t.replicas.(r))) && not (List.mem r recovering)
  in
  let healthy_ids = List.filter healthy (List.init n (fun r -> r)) in
  if List.length healthy_ids < Quorum.majority t.quorum then
    Engine.schedule (engine t) ~delay:0.0 (fun () -> on_complete ~success:false)
  else begin
    List.iter (fun id -> Replica.begin_recovery t.replicas.(id)) recovering;
    let base_epoch =
      1 + Array.fold_left (fun acc r -> max acc (Replica.epoch r)) 0 t.replicas
    in
    (* The (epoch mod n)th replica coordinates; skip over replicas that
       cannot (crashed or themselves recovering) by bumping the epoch,
       the standard liveness trick. *)
    let rec pick epoch = if healthy (epoch mod n) then epoch else pick (epoch + 1) in
    let epoch = pick base_epoch in
    let coordinator = epoch mod n in
    let st =
      {
        epoch;
        coordinator;
        targets = healthy_ids @ recovering;
        recovering;
        reports = Hashtbl.create 8;
        merged = None;
        installed = None;
        finished = false;
      }
    in
    let coord_core = core t coordinator 0 in
    let record_count records = List.length records in
    let finish ~success =
      if not st.finished then begin
        st.finished <- true;
        if success then Obs.note_epoch_change (obs t);
        on_complete ~success
      end
    in
    (* Phase 2: install the merged trecord everywhere; the recovering
       replicas additionally receive a store snapshot taken from the
       coordinator after its own install. *)
    let send_complete merged snapshot target =
      let is_recovering = List.mem target st.recovering in
      let store = if is_recovering then Some snapshot else None in
      let cost =
        epoch_install_base
        +. (epoch_install_per_record *. float_of_int (record_count merged))
        +. (if is_recovering then
              epoch_snapshot_per_row *. float_of_int (List.length snapshot)
            else 0.0)
      in
      Network.send_work_to_core (net t)
        ~link:(Network.Replica st.coordinator, Network.Replica target)
        ~dst:(core t target 0) ~cost (fun () ->
          match
            Replica.handle_epoch_complete t.replicas.(target) ~epoch:st.epoch
              ~records:merged ~store
          with
          | None -> ()
          | Some () ->
              Network.send_to_client (net t)
                ~link:(Network.Replica target, Network.Replica st.coordinator)
                (fun () ->
                  match st.installed with
                  | None -> ()
                  | Some table ->
                      Hashtbl.replace table target ();
                      if
                        (not st.finished)
                        && Hashtbl.length table >= List.length st.targets
                      then finish ~success:true))
    in
    let do_merge () =
      if st.merged = None then begin
        let reports = Hashtbl.fold (fun _ r acc -> r :: acc) st.reports [] in
        let merged = Epoch.merge ~quorum:t.quorum ~reports in
        st.merged <- Some merged;
        st.installed <- Some (Hashtbl.create 8);
        let merge_cost =
          epoch_merge_per_record *. float_of_int (record_count merged)
        in
        Mk_sim.Core.submit_work coord_core ~cost:merge_cost (fun () ->
            (* Coordinator installs first so the snapshot reflects the
               merged commits. *)
            (match
               Replica.handle_epoch_complete t.replicas.(st.coordinator)
                 ~epoch:st.epoch ~records:merged ~store:None
             with
            | Some () -> begin
                match st.installed with
                | Some table -> Hashtbl.replace table st.coordinator ()
                | None -> ()
              end
            | None -> ());
            let snapshot = Replica.store_snapshot t.replicas.(st.coordinator) in
            List.iter
              (fun target ->
                if target <> st.coordinator then send_complete merged snapshot target)
              st.targets)
      end
    in
    (* Phase 1: gather trecords from the healthy replicas. *)
    let send_gather target =
      Network.send_to_core (net t)
        ~link:(Network.Replica st.coordinator, Network.Replica target)
        ~dst:(core t target 0)
        ~cost:
          (epoch_gather_base
          +. (epoch_per_record
             *. float_of_int
                  (Mk_storage.Trecord.size (Replica.trecord t.replicas.(target)))))
        (fun ~finish ->
          let replica = t.replicas.(target) in
          let records =
            match Replica.handle_epoch_change replica ~epoch:st.epoch with
            | Some _ -> Some (Replica.record_views replica)
            | None ->
                (* Duplicate request for the epoch we already joined:
                   replying again keeps the gather idempotent. *)
                if (not (Replica.is_crashed replica)) && Replica.epoch replica = st.epoch
                then Some (Replica.record_views replica)
                else None
          in
          (match records with
          | None -> ()
          | Some records ->
              let reply_cost =
                epoch_gather_base
                +. (epoch_per_record *. float_of_int (List.length records))
              in
              Network.send_work_to_core (net t)
                ~link:(Network.Replica target, Network.Replica st.coordinator)
                ~dst:coord_core ~cost:reply_cost
                (fun () ->
                  if st.merged = None then begin
                    Hashtbl.replace st.reports target
                      { Epoch.replica = target; records };
                    if Hashtbl.length st.reports >= Quorum.majority t.quorum then
                      do_merge ()
                  end));
          finish ())
    in
    List.iter send_gather healthy_ids;
    (* Retransmission: re-gather from missing reporters, or re-send
       completes to replicas that have not installed. Bounded by
       [max_rto]: when a partition keeps some target unreachable the
       change gives up rather than retrying forever — the run counts
       as a success if a majority installed (the system serves), and
       the replicas left behind stay paused until a later epoch change
       reintegrates them (the failure detector sees them as paused and
       arranges exactly that). *)
    let rec retry ~rto =
      Engine.schedule (engine t) ~delay:rto (fun () ->
          if not st.finished then begin
            if rto > max_rto then begin
              let success =
                match st.installed with
                | Some table -> Hashtbl.length table >= Quorum.majority t.quorum
                | None -> false
              in
              finish ~success
            end
            else begin
              (match (st.merged, st.installed) with
              | Some merged, Some table ->
                  let snapshot = Replica.store_snapshot t.replicas.(st.coordinator) in
                  List.iter
                    (fun target ->
                      if not (Hashtbl.mem table target) then
                        send_complete merged snapshot target)
                    st.targets
              | _ ->
                  List.iter
                    (fun target ->
                      if not (Hashtbl.mem st.reports target) then send_gather target)
                    healthy_ids);
              retry ~rto:(rto *. 2.0)
            end
          end)
    in
    retry ~rto:t.cluster.Cluster.rto
  end

(* --- Failure detectors (the robustness layer). ---

   The detection logic — who suspects whom, which records are stuck,
   who initiates — lives in {!Detector} (transport-agnostic, shared
   with the live runtime). This driver owns what is
   deployment-specific: scheduling heartbeat/scan ticks on engine
   time, carrying heartbeats over the real (faulty) network, and
   running the recovery protocols the detector asks for over the
   simulated transport. *)

type detector_cfg = Detector.cfg = {
  heartbeat_every : float;
  heartbeat_timeout : float;
  pause_timeout : float;
  stuck_timeout : float;
  scan_every : float;
  epoch_cooldown : float;
  give_up_after : float;
}

let default_detector_cfg = Detector.default_cfg

(* Backup-coordinator view change for one stuck record (§5.3.2),
   initiated by replica [o] at [view] (both chosen by the detector). *)
let start_view_change t ~cfg ~detector o (e : Mk_storage.Trecord.entry) ~view =
  let n = Array.length t.replicas in
  let tid = e.txn.Txn.tid in
  let now () = Engine.now (engine t) in
  let deadline = now () +. cfg.give_up_after in
  let core_id = Timestamp.Tid.hash tid mod threads t in
  let finished = ref false in
  let abandon () =
    if not !finished then begin
      finished := true;
      Detector.view_change_finished detector ~now:(now ()) ~observer:o ~tid
        ~outcome:`Abandoned
    end
  in
  (* Phase 3: write-back the chosen outcome everywhere. *)
  let finish_commit ~commit =
    if not !finished then begin
      finished := true;
      let nwrites = if commit then Array.length e.txn.Txn.write_set else 0 in
      Array.iteri
        (fun r replica ->
          if not (Replica.is_crashed replica) then
            Network.send_work_to_core (net t)
              ~link:(Network.Replica o, Network.Replica r)
              ~dst:(core t r core_id)
              ~cost:(Costs.commit (costs t) ~nwrites)
              (fun () ->
                ignore
                  (Replica.handle_commit replica ~core:core_id ~txn:e.txn ~ts:e.ts
                     ~commit)))
        t.replicas;
      Detector.view_change_finished detector ~now:(now ()) ~observer:o ~tid
        ~outcome:`Finished;
      Obs.note_view_change (obs t)
    end
  in
  (* Phase 2: accept the chosen decision at the new view. *)
  let accept_from = Array.make n false in
  let chosen = ref None in
  let send_vc_accepts decision =
    Array.iteri
      (fun r replica ->
        if (not (Replica.is_crashed replica)) && not accept_from.(r) then
          Network.send_work_to_core (net t)
            ~link:(Network.Replica o, Network.Replica r)
            ~dst:(core t r core_id)
            ~cost:(costs t).Costs.accept
            (fun () ->
              match
                Replica.handle_accept replica ~core:core_id ~txn:e.txn ~ts:e.ts
                  ~decision ~view
              with
              | None -> ()
              | Some reply ->
                  Network.send_to_client (net t)
                    ~link:(Network.Replica r, Network.Replica o)
                    (fun () ->
                      if not !finished then begin
                        match reply with
                        | `Accepted ->
                            if not accept_from.(r) then begin
                              accept_from.(r) <- true;
                              let acks =
                                Array.fold_left
                                  (fun acc ok -> if ok then acc + 1 else acc)
                                  0 accept_from
                              in
                              if acks >= Quorum.majority t.quorum then
                                finish_commit ~commit:(decision = `Commit)
                            end
                        | `Finalized st ->
                            finish_commit ~commit:(st = Txn.Committed)
                        | `Stale _ ->
                            (* Another backup moved to a higher view;
                               leave the transaction to it. *)
                            abandon ()
                      end)))
      t.replicas
  in
  (* Phase 1: join the view at every replica and gather record state
     (Paxos-prepare analogue). Replies are keyed by replica so a
     duplicated reply cannot double-count — and {!Recovery.choose}
     dedups again on its side. *)
  let gathered : (int, Recovery.reply) Hashtbl.t = Hashtbl.create 8 in
  let send_gather r =
    let replica = t.replicas.(r) in
    if not (Replica.is_crashed replica) then
      Network.send_work_to_core (net t)
        ~link:(Network.Replica o, Network.Replica r)
        ~dst:(core t r core_id) ~cost:epoch_gather_base
        (fun () ->
          match Replica.handle_coord_change replica ~core:core_id ~tid ~view with
          | None -> ()
          | Some reply ->
              Network.send_to_client (net t)
                ~link:(Network.Replica r, Network.Replica o)
                (fun () ->
                  if (not !finished) && !chosen = None then begin
                    match reply with
                    | `Stale _ -> abandon ()
                    | `View_ok record ->
                        if not (Hashtbl.mem gathered r) then
                          Hashtbl.replace gathered r
                            (match record with
                            | None -> Recovery.No_record
                            | Some v -> Recovery.Record v);
                        if Hashtbl.length gathered >= Quorum.majority t.quorum
                        then begin
                          let replies =
                            Hashtbl.fold (fun r v acc -> (r, v) :: acc) gathered []
                          in
                          let decision =
                            Recovery.choose ~quorum:t.quorum ~replies
                          in
                          chosen := Some decision;
                          send_vc_accepts decision
                        end
                  end))
  in
  for r = 0 to n - 1 do
    send_gather r
  done;
  (* Retransmit whichever phase is pending until the deadline, then
     abandon (the scanner retries at a higher view). *)
  let rec retry ~rto =
    Engine.schedule (engine t) ~delay:rto (fun () ->
        if not !finished then begin
          if now () > deadline then abandon ()
          else begin
            (match !chosen with
            | Some decision -> send_vc_accepts decision
            | None ->
                for r = 0 to n - 1 do
                  if not (Hashtbl.mem gathered r) then send_gather r
                done);
            retry ~rto:(rto *. 2.0)
          end
        end)
  in
  retry ~rto:t.cluster.Cluster.rto

let start_detectors ?(cfg = default_detector_cfg) t ~until () =
  let n = Array.length t.replicas in
  let now () = Engine.now (engine t) in
  let detector = Detector.create ~cfg ~n ~now:(now ()) in
  let det_pool : Detector.action Batch.Pool.t = Batch.Pool.create () in
  (* Heartbeats travel the real (faulty) network, so a partitioned
     replica goes silent exactly like a crashed one. *)
  let rec hb_loop r =
    if now () <= until then begin
      if not (Replica.is_crashed t.replicas.(r)) then begin
        Detector.heartbeat_tick detector ~now:(now ()) ~replica:r;
        let paused = Replica.is_paused t.replicas.(r) in
        for p = 0 to n - 1 do
          if p <> r then
            Network.send_to_client (net t)
              ~link:(Network.Replica r, Network.Replica p)
              (fun () ->
                if not (Replica.is_crashed t.replicas.(p)) then
                  Detector.heartbeat_received detector ~now:(now ()) ~observer:p
                    ~from_:r ~paused)
        done
      end;
      Engine.schedule (engine t) ~delay:cfg.heartbeat_every (fun () -> hb_loop r)
    end
  in
  let perform = function
    | Detector.Start_view_change { observer; record; view } ->
        start_view_change t ~cfg ~detector observer record ~view
    | Detector.Start_epoch_change { initiator = _; recovering } ->
        trigger_epoch_change ~max_rto:cfg.give_up_after t ~recovering
          ~on_complete:(fun ~success ->
            Detector.epoch_change_finished detector ~now:(now ()) ~success
              ~recovering)
  in
  let rec scan_loop o =
    if now () <= until then begin
      (if not (Replica.is_crashed t.replicas.(o)) then
         let rep = t.replicas.(o) in
         Batch.Pool.with_batch det_pool (fun into ->
             Detector.scan detector ~now:(now ()) ~observer:o
               ~paused:(Replica.is_paused rep)
               ~available:(Replica.is_available rep)
               ~records:(fun () ->
                 List.map snd (Mk_storage.Trecord.entries (Replica.trecord rep)))
               ~recoverable:(fun p ->
                 (not (Replica.is_crashed t.replicas.(p)))
                 || now () >= t.down_until.(p))
               ~into;
             Batch.iter perform into));
      Engine.schedule (engine t) ~delay:cfg.scan_every (fun () -> scan_loop o)
    end
  in
  for r = 0 to n - 1 do
    Engine.schedule (engine t)
      ~delay:(float_of_int r *. cfg.heartbeat_every /. float_of_int n)
      (fun () -> hb_loop r);
    Engine.schedule (engine t)
      ~delay:(cfg.scan_every /. 2.0
             +. (float_of_int r *. cfg.scan_every /. float_of_int n))
      (fun () -> scan_loop r)
  done

let server_busy_fraction t = Cluster.server_busy_fraction t.cluster
