module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Trecord = Mk_storage.Trecord
module Occ = Mk_storage.Occ
module Owner = Mk_check.Owner

type record_view = {
  txn : Txn.t;
  ts : Timestamp.t;
  status : Txn.status;
  view : int;
  accept_view : int option;
}

type durable_event =
  | Finalized of { core : int; view : record_view }
  | Installed of { epoch : int }

(* Statistic counters are per-core rows in a flat array, one cache
   line apart, because in the live runtime each core's handlers run on
   a distinct domain: a shared mutable int would be a data race (and a
   contended line) there. Each core writes only its own row — the same
   data-access parallelism the trecord partitions follow — so plain
   ints suffice without atomics; the summed totals are exact once the
   system is quiescent. *)
let stat_stride = 8 (* ints per row = 64 bytes *)
let stat_ok = 0
let stat_abort = 1
let stat_committed = 2
let stat_aborted = 3

type t = {
  id : int;
  quorum : Quorum.t;
  ncores : int;
  mutable vstore : Vstore.t;
  mutable trecord : Trecord.t;
  mutable epoch : int;
  mutable installed_epoch : int;
      (** Highest epoch whose epoch-change-complete has been applied;
          retransmitted completes for it are acknowledged without
          re-installing (a re-install would erase records of
          transactions that finished after the first install). *)
  mutable paused : bool;
  mutable crashed : bool;
  stats : int array;
  mutable durable_hook : durable_event -> unit;
      (** Called with the same core-affinity as the handler that fired
          it: [Finalized {core; _}] only from core [core]'s handlers,
          [Installed _] only from the (paused) epoch-change driver —
          so a per-core WAL behind it has a single writer. *)
}

let bump t ~core stat =
  let i = (core * stat_stride) + stat in
  t.stats.(i) <- t.stats.(i) + 1

let stat_sum t stat =
  let acc = ref 0 in
  for core = 0 to t.ncores - 1 do
    acc := !acc + t.stats.((core * stat_stride) + stat)
  done;
  !acc

let create ~id ~quorum ~cores =
  {
    id;
    quorum;
    ncores = cores;
    vstore = Vstore.create ();
    trecord = Trecord.create ~cores;
    epoch = 0;
    installed_epoch = 0;
    paused = false;
    crashed = false;
    stats = Array.make (cores * stat_stride) 0;
    durable_hook = ignore;
  }

let set_durable_hook t f = t.durable_hook <- f

let id t = t.id
let cores t = t.ncores
let quorum t = t.quorum
let vstore t = t.vstore
let trecord t = t.trecord
let epoch t = t.epoch
let is_available t = (not t.crashed) && not t.paused
let load t ~key ~value = Vstore.load t.vstore ~key ~value

let crash t =
  t.crashed <- true;
  (* Fail-stop without stable storage: all state is gone (§5.3.1). *)
  t.vstore <- Vstore.create ();
  t.trecord <- Trecord.create ~cores:t.ncores

let is_crashed t = t.crashed
let is_paused t = t.paused

let begin_recovery t =
  t.crashed <- false;
  t.paused <- true

let view_of_entry (e : Trecord.entry) =
  { txn = e.txn; ts = e.ts; status = e.status; view = e.view; accept_view = e.accept_view }

let entry_of_view (v : record_view) : Trecord.entry =
  { txn = v.txn; ts = v.ts; status = v.status; view = v.view; accept_view = v.accept_view }

(* Guard: handlers answer only when the replica is up; a paused
   replica still answers reads and write-phase messages (the paper
   pauses only the *validation* of new transactions during an epoch
   change), but nothing is answered after a crash. *)

let handle_get t ~key =
  if t.crashed || t.paused then None
  else begin
    match Vstore.find t.vstore key with
    | Some e -> Some (Vstore.read_versioned e)
    | None -> Some (0, Timestamp.zero)
  end

(* The per-core handlers run under [Owner.with_core]: when the dynamic
   checker is on, any touch of a foreign trecord partition inside the
   handler body raises instead of silently breaking DAP. *)

let handle_validate t ~core ~txn ~ts =
  if t.crashed || t.paused then None
  else
    Owner.with_core core (fun () ->
        match Trecord.find t.trecord ~core txn.Txn.tid with
        | Some entry -> Some entry.status
        | None ->
            let status =
              match Occ.validate t.vstore txn ~ts with
              | `Ok ->
                  bump t ~core stat_ok;
                  Txn.Validated_ok
              | `Abort ->
                  bump t ~core stat_abort;
                  Txn.Validated_abort
            in
            let (_ : Trecord.entry) = Trecord.add t.trecord ~core ~txn ~ts ~status in
            Some status)

let handle_accept t ~core ~txn ~ts ~decision ~view =
  if t.crashed then None
  else
    Owner.with_core core (fun () ->
    let entry =
      match Trecord.find t.trecord ~core txn.Txn.tid with
      | Some e -> e
      | None ->
          (* This replica missed the validate message: record the
             proposal anyway — consensus is on the outcome, not on
             having validated. *)
          Trecord.add t.trecord ~core ~txn ~ts ~status:Txn.Validated_abort
    in
    if Txn.is_final entry.status then Some (`Finalized entry.status)
    else if view < entry.view then Some (`Stale entry.view)
    else begin
      entry.view <- view;
      entry.accept_view <- Some view;
      entry.status <-
        (match decision with
        | `Commit -> Txn.Accepted_commit
        | `Abort -> Txn.Accepted_abort);
      Some `Accepted
    end)

let finalize_entry t ~core (entry : Trecord.entry) ~commit =
  entry.status <- (if commit then Txn.Committed else Txn.Aborted);
  if commit then begin
    bump t ~core stat_committed;
    Occ.finish t.vstore entry.txn ~ts:entry.ts ~commit:true
  end
  else begin
    bump t ~core stat_aborted;
    (* Removing pending marks that were never added is a no-op, so we
       need not track whether this replica's validation succeeded. *)
    Occ.abort_pending t.vstore entry.txn ~ts:entry.ts
  end;
  t.durable_hook (Finalized { core; view = view_of_entry entry })

let handle_commit t ~core ~txn ~ts ~commit =
  if t.crashed then None
  else
    Owner.with_core core (fun () ->
        let entry =
          match Trecord.find t.trecord ~core txn.Txn.tid with
          | Some e -> e
          | None -> Trecord.add t.trecord ~core ~txn ~ts ~status:Txn.Validated_abort
        in
        if Txn.is_final entry.status then Some () (* retransmission *)
        else begin
          finalize_entry t ~core entry ~commit;
          Some ()
        end)

let handle_coord_change t ~core ~tid ~view =
  if t.crashed then None
  else
    Owner.with_core core (fun () ->
        match Trecord.find t.trecord ~core tid with
        | None -> Some (`View_ok None)
        | Some entry ->
            if view <= entry.view && entry.view > 0 then Some (`Stale entry.view)
            else begin
              entry.view <- view;
              Some (`View_ok (Some (view_of_entry entry)))
            end)

let handle_epoch_change t ~epoch =
  if t.crashed then None
  else if epoch <= t.epoch then None
  else begin
    t.epoch <- epoch;
    t.paused <- true;
    Some (List.map (fun (_, e) -> view_of_entry e) (Trecord.entries t.trecord))
  end

let handle_epoch_complete t ~epoch ~records ~store =
  if t.crashed then None
  else if epoch <= t.installed_epoch then
    (* Duplicate or stale: acknowledge so the recovery coordinator
       stops retransmitting, but do NOT re-install — the merged record
       predates transactions that may have finished since. *)
    Some ()
  else if epoch < t.epoch then None
  else begin
    t.epoch <- epoch;
    t.installed_epoch <- epoch;
    (match store with
    | None -> ()
    | Some rows ->
        let fresh = Vstore.create () in
        List.iter
          (fun (key, value, wts, rts) ->
            let e = Vstore.find_or_create fresh key in
            Vstore.with_entry e (fun e ->
                Vstore.set_value e value;
                Vstore.set_wts e wts;
                Vstore.set_rts e rts))
          rows;
        t.vstore <- fresh);
    (* Adopt the merged trecord. Every entry in it is final
       (COMMITTED/ABORTED) by construction of the merge (§5.3.1); we
       re-apply committed writes, which the Thomas write rule makes
       idempotent, so replicas that already executed them converge
       with ones that did not. *)
    Vstore.clear_pending t.vstore;
    let pairs = List.map (fun (core, v) -> (core, entry_of_view v)) records in
    let merged = Trecord.create ~cores:t.ncores in
    Trecord.replace_all merged pairs;
    t.trecord <- merged;
    List.iter
      (fun (_, (e : Trecord.entry)) ->
        match e.status with
        | Txn.Committed -> Occ.finish t.vstore e.txn ~ts:e.ts ~commit:true
        | Txn.Aborted -> Occ.abort_pending t.vstore e.txn ~ts:e.ts
        | Txn.Validated_ok | Txn.Validated_abort | Txn.Accepted_commit
        | Txn.Accepted_abort ->
            (* The merge never emits non-final records. *)
            assert false)
      (Trecord.entries merged);
    t.paused <- false;
    t.durable_hook (Installed { epoch });
    Some ()
  end

(* Reboot-time restore from stable storage. Unlike
   [handle_epoch_complete] this must work at any epoch (including 0,
   which the install dedup above would silently ack), must tolerate
   non-final record views (a WAL can legitimately persist accepted
   slow-path state), and must leave the pause/crash flags alone — the
   caller decides when the replica may process again (a rebooted node
   stays paused until the §5.3.1 merge reintegrates it). *)
let restore t ~epoch ~records ~rows =
  t.epoch <- max t.epoch epoch;
  t.installed_epoch <- max t.installed_epoch epoch;
  List.iter
    (fun (key, value, wts, rts) ->
      let e = Vstore.find_or_create t.vstore key in
      Vstore.with_entry e (fun e ->
          Vstore.set_value e value;
          Vstore.set_wts e wts;
          Vstore.set_rts e rts))
    rows;
  Vstore.clear_pending t.vstore;
  let pairs = List.map (fun (core, v) -> (core, entry_of_view v)) records in
  Trecord.replace_all t.trecord pairs;
  (* Re-apply committed writes (Thomas write rule makes this
     idempotent, so restore-twice equals restore-once); in-flight
     validation state is gone with the crash, which is safe — the
     coordinator's retransmission re-validates. *)
  List.iter
    (fun ((_, v) : int * record_view) ->
      match v.status with
      | Txn.Committed -> Occ.finish t.vstore v.txn ~ts:v.ts ~commit:true
      | Txn.Aborted -> Occ.abort_pending t.vstore v.txn ~ts:v.ts
      | Txn.Validated_ok | Txn.Validated_abort | Txn.Accepted_commit
      | Txn.Accepted_abort ->
          ())
    records

let store_snapshot t =
  let acc = ref [] in
  Vstore.iter t.vstore (fun e ->
      acc := (e.Vstore.key, e.Vstore.value, e.Vstore.wts, e.Vstore.rts) :: !acc);
  !acc

let record_views t =
  List.map (fun (core, e) -> (core, view_of_entry e)) (Trecord.entries t.trecord)

let trim_record t ~before = Trecord.trim_finalized t.trecord ~before

let validations_ok t = stat_sum t stat_ok
let validations_abort t = stat_sum t stat_abort
let committed t = stat_sum t stat_committed
let aborted t = stat_sum t stat_aborted
