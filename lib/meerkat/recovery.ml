module Txn = Mk_storage.Txn

type reply = No_record | Record of Replica.record_view

(* Keep one reply per replica (the first — under duplication or
   reordering later copies of the same view-change reply carry no new
   information, and counting them would let a single replica reach the
   ⌈f/2⌉+1 fast-recovery bound alone). *)
let dedup replies =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (replica, _) ->
      if Hashtbl.mem seen replica then false
      else begin
        Hashtbl.add seen replica ();
        true
      end)
    replies

let choose ~quorum ~replies =
  let replies = dedup replies in
  if List.length replies < Quorum.majority quorum then
    invalid_arg "Recovery.choose: needs a majority of distinct replicas";
  let records =
    List.filter_map
      (function _, No_record -> None | _, Record v -> Some v)
      replies
  in
  let count pred = List.length (List.filter pred records) in
  let final_commit = count (fun v -> v.Replica.status = Txn.Committed) > 0 in
  let final_abort = count (fun v -> v.Replica.status = Txn.Aborted) > 0 in
  if final_commit then `Commit
  else if final_abort then `Abort
  else begin
    let accepted =
      List.fold_left
        (fun best (v : Replica.record_view) ->
          match (v.accept_view, v.status) with
          | Some av, (Txn.Accepted_commit | Txn.Accepted_abort) -> begin
              match best with
              | Some (bv, _) when bv >= av -> best
              | _ -> Some (av, v.status = Txn.Accepted_commit)
            end
          | _ -> best)
        None records
    in
    match accepted with
    | Some (_, true) -> `Commit
    | Some (_, false) -> `Abort
    | None ->
        let ok = count (fun v -> v.Replica.status = Txn.Validated_ok) in
        if ok >= Quorum.fast_recovery quorum then `Commit else `Abort
  end
