(* The coordinator state machine of the commit protocol (§5.2.2),
   extracted from the simulator so the live runtime executes the same
   code. See protocol.mli for the driver contract.

   Actions are emitted into a caller-supplied batch, in order: drivers
   perform them front to back, which reproduces exactly the
   send/schedule sequence of the pre-extraction coordinator (the
   determinism the equivalence suite pins). Every parameterless action
   shape below is a preallocated constant, so the fast path — emit a
   few constants into a warm batch — allocates nothing; only
   [Arm_timer] (which carries fresh floats) still does, and timers are
   armed once per attempt, not per message. *)

module Txn = Mk_storage.Txn

type params = { n_replicas : int; quorum : Quorum.t; rto : float; grace : float }
type timer = Retransmit of float | Fast_grace

type accept_reply =
  [ `Accepted | `Stale of int | `Finalized of Mk_storage.Txn.status ]

type action =
  | Send_validates of { only_missing : bool }
  | Send_accepts of { decision : [ `Commit | `Abort ] }
  | Arm_timer of { timer : timer; delay : float }
  | Note_validated
  | Note_decided of { commit : bool; fast : bool }

type event =
  | Validate_reply of { replica : int; status : Mk_storage.Txn.status }
  | Accept_reply of { replica : int; reply : accept_reply }
  | Timer of timer
  | Resume

(* The preallocated action constants: one value per parameterless
   shape, shared by every attempt in the process. *)

let act_validates_all = Send_validates { only_missing = false }
let act_validates_missing = Send_validates { only_missing = true }
let act_accepts_commit = Send_accepts { decision = `Commit }
let act_accepts_abort = Send_accepts { decision = `Abort }
let act_decided_commit_fast = Note_decided { commit = true; fast = true }
let act_decided_commit_slow = Note_decided { commit = true; fast = false }
let act_decided_abort_fast = Note_decided { commit = false; fast = true }
let act_decided_abort_slow = Note_decided { commit = false; fast = false }

let act_decided ~commit ~fast =
  if commit then
    if fast then act_decided_commit_fast else act_decided_commit_slow
  else if fast then act_decided_abort_fast
  else act_decided_abort_slow

type t = {
  params : params;
  started : float;
  replies : Txn.status option array;
  mutable in_accept : bool;
  mutable accept_started : float;  (** NaN before the slow path. *)
  mutable accept_commit : bool;
      (** The decision proposed when the slow path was entered. Frozen
          there: a view-0 proposal must never change across
          retransmissions of the same accept round, or two replicas
          could hold different accepted decisions for the same
          transaction. *)
  accept_from : bool array;
      (** Which replicas acknowledged the current accept round. A
          per-replica flag rather than a counter: a duplicated
          [`Accepted] reply must not double-count toward the
          majority. *)
  mutable decided : bool;
  mutable validated : bool;
  mutable fast_grace_armed : bool;
}

let decided t = t.decided
let in_accept t = t.in_accept
let started t = t.started
let accept_started t = t.accept_started
let needs_validate t r = t.replies.(r) = None

let received t =
  Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 t.replies

let ok_count t =
  Array.fold_left
    (fun acc reply -> if reply = Some Txn.Validated_ok then acc + 1 else acc)
    0 t.replies

let accept_acks t =
  Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 t.accept_from

(* Emission helpers: each appends its actions to [into], preserving
   the pre-extraction call order. *)

let note_validated t ~into =
  if not t.validated then begin
    t.validated <- true;
    Batch.emit into Note_validated
  end

(* First entry into the slow path (§5.2.2 step 4); freezes the
   proposal and the slow-accept span base. *)
let enter_accept t ~now ~commit ~into =
  if not t.in_accept then begin
    t.in_accept <- true;
    t.accept_commit <- commit;
    note_validated t ~into;
    if Float.is_nan t.accept_started then t.accept_started <- now
  end

let decide t ~commit ~fast ~into =
  if not t.decided then begin
    t.decided <- true;
    note_validated t ~into;
    Batch.emit into (act_decided ~commit ~fast)
  end

let send_accepts t ~into =
  Batch.emit into (if t.accept_commit then act_accepts_commit else act_accepts_abort)

let evaluate t ~now ~into =
  if not t.decided then begin
    match Decision.evaluate ~quorum:t.params.quorum ~replies:t.replies with
    | Decision.Wait ->
        (* A majority answered but the fast quorum has not completed.
           Give stragglers a few RTTs, then settle for the slow path —
           without this grace timer a crashed replica would pin every
           transaction to the full retransmission timeout. The grace
           scales with the time the majority itself took: under deep
           queueing the straggler is probably just queued like
           everyone else; after a crash the majority arrived in one
           RTT and the grace stays short. *)
        if
          (not t.fast_grace_armed)
          && (not t.in_accept)
          && received t >= Quorum.majority t.params.quorum
        then begin
          t.fast_grace_armed <- true;
          let elapsed = now -. t.started in
          let delay = Float.max t.params.grace (2.0 *. elapsed) in
          Batch.emit into (Arm_timer { timer = Fast_grace; delay })
        end
    | Decision.Final commit -> decide t ~commit ~fast:false ~into
    | Decision.Fast commit -> decide t ~commit ~fast:true ~into
    | Decision.Slow commit ->
        if not t.in_accept then begin
          (* Fast path impossible: slow path (§5.2.2 step 4). *)
          enter_accept t ~now ~commit ~into;
          send_accepts t ~into
        end
  end

let start params ~now ~into =
  let t =
    {
      params;
      started = now;
      replies = Array.make params.n_replicas None;
      in_accept = false;
      accept_started = Float.nan;
      accept_commit = false;
      accept_from = Array.make params.n_replicas false;
      decided = false;
      validated = false;
      fast_grace_armed = false;
    }
  in
  Batch.emit into act_validates_all;
  Batch.emit into (Arm_timer { timer = Retransmit params.rto; delay = params.rto });
  t

let handle t ~now event ~into =
  if not t.decided then begin
    match event with
    | Validate_reply { replica; status } ->
        if t.replies.(replica) = None then begin
          t.replies.(replica) <- Some status;
          if received t >= Quorum.majority t.params.quorum then
            note_validated t ~into;
          evaluate t ~now ~into
        end
    | Accept_reply { replica; reply } -> begin
        match reply with
        | `Accepted ->
            if not t.accept_from.(replica) then begin
              t.accept_from.(replica) <- true;
              if accept_acks t >= Quorum.majority t.params.quorum then
                decide t ~commit:t.accept_commit ~fast:false ~into
            end
        | `Finalized st -> decide t ~commit:(st = Txn.Committed) ~fast:false ~into
        | `Stale _ ->
            (* A backup coordinator superseded us and will finish the
               transaction; the retransmission path learns the final
               status from the replicas' records. *)
            ()
      end
    | Timer Fast_grace ->
        if not t.in_accept then begin
          enter_accept t ~now
            ~commit:(ok_count t >= Quorum.majority t.params.quorum)
            ~into;
          send_accepts t ~into
        end
    | Timer (Retransmit rto) ->
        if t.in_accept then begin
          (* Restart the accept round with the frozen proposal;
             replicas are idempotent for a same-view proposal, so
             acks are simply recollected. *)
          Array.fill t.accept_from 0 (Array.length t.accept_from) false;
          send_accepts t ~into
        end
        else if received t >= Quorum.majority t.params.quorum then begin
          (* The fast path did not complete within the timeout (slow
             or crashed replicas): settle for the slow path with the
             majority in hand, per §5.2.2 step 4. *)
          enter_accept t ~now
            ~commit:(ok_count t >= Quorum.majority t.params.quorum)
            ~into;
          send_accepts t ~into
        end
        else Batch.emit into act_validates_missing;
        Batch.emit into
          (Arm_timer { timer = Retransmit (rto *. 2.0); delay = rto *. 2.0 })
    | Resume ->
        if t.in_accept then begin
          Array.fill t.accept_from 0 (Array.length t.accept_from) false;
          send_accepts t ~into
        end
        else begin
          Batch.emit into act_validates_missing;
          evaluate t ~now ~into
        end
  end
