(** The epoch-change merge (§5.3.1): compute the consistent trecord a
    recovery coordinator installs after polling a majority of
    replicas.

    Pure logic — the driver that pauses replicas, collects reports and
    distributes the result lives in {!Sim_system} (simulation) and in
    the tests. Given reports from at least f+1 replicas, [merge]
    produces a trecord in which {e every} entry is final, applying the
    paper's rules in order:

    + transactions COMMITTED or ABORTED anywhere keep that outcome;
    + transactions with an accepted slow-path proposal adopt the
      decision with the highest view;
    + transactions with ≥ f+1 matching VALIDATED-* reports become
      COMMITTED / ABORTED accordingly;
    + transactions with ≥ ⌈f/2⌉+1 VALIDATED-OK reports — the ones that
      may have committed on the fast path — are re-validated with OCC
      checks (Alg. 1) against a scratch store replaying the already
      merged commits in timestamp order;
    + everything else is ABORTED. *)

type report = {
  replica : int;
  records : (int * Replica.record_view) list;  (** (core, record). *)
}

val merge :
  quorum:Quorum.t -> reports:report list -> (int * Replica.record_view) list
(** @raise Invalid_argument if reports from fewer than
    [majority quorum] {e distinct} replicas are supplied. Duplicate
    reports from the same replica are dropped (first wins) before any
    counting, so a retransmitted report can not inflate the majority
    or fast-recovery tallies. The result preserves each record's core
    partition and is sorted by commit timestamp (deterministic). *)
