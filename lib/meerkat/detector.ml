(* The failure detectors (§5.3), as a pure state machine.

   Like [Protocol], this module holds every decision and none of the
   transport: drivers feed it heartbeat arrivals and periodic scan
   ticks, and it answers with the recovery actions to start — a
   §5.3.2 view change for a stuck record, or a §5.3.1 epoch change
   for a suspected replica set. The simulator schedules the ticks on
   engine time and carries heartbeats over the modelled (faulty)
   network; the live runtime does the same on wall-clock time over
   mailboxes. Neither backend owns any detector state, so both make
   byte-for-byte the same decisions from the same observations.

   Two detectors share the state:

   - the heartbeat detector: every replica pings its peers; silence
     beyond [heartbeat_timeout] (crash or partition), or a peer
     reporting itself paused longer than [pause_timeout] (an epoch
     change that lost its coordinator), makes the observer suspect
     the peer. The lowest-numbered replica that suspects no lower
     replica initiates the epoch change, so detectors do not duel.

   - the stuck-record scanner: each replica watches its own trecord
     for entries sitting in a non-final state past [stuck_timeout] —
     the signature of a coordinator that crashed between validate and
     write — and starts the backup-coordinator view change for them. *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Trecord = Mk_storage.Trecord

module Tid_table = Hashtbl.Make (struct
  type t = Timestamp.Tid.t

  let equal = Timestamp.Tid.equal
  let hash = Timestamp.Tid.hash
end)

type cfg = {
  heartbeat_every : float;
  heartbeat_timeout : float;
  pause_timeout : float;
  stuck_timeout : float;
  scan_every : float;
  epoch_cooldown : float;
  give_up_after : float;
}

let default_cfg =
  {
    heartbeat_every = 300.0;
    heartbeat_timeout = 1500.0;
    pause_timeout = 4000.0;
    stuck_timeout = 4000.0;
    scan_every = 500.0;
    epoch_cooldown = 3000.0;
    give_up_after = 8000.0;
  }

type action =
  | Start_view_change of {
      observer : int;
      record : Trecord.entry;
      view : int;
    }
  | Start_epoch_change of { initiator : int; recovering : int list }

type t = {
  cfg : cfg;
  n : int;
  hb_last : float array array;
      (** [hb_last.(o).(p)]: when observer [o] last heard from peer
          [p]. *)
  paused_since : float array array;
      (** Since when [p] has been reporting itself paused to [o]
          (NaN = not paused as far as [o] knows). *)
  self_paused_since : float array;
  first_seen : float Tid_table.t array;
      (** Per observer: when its scanner first saw each non-final
          record. *)
  vc_inflight : unit Tid_table.t;
      (** Transactions currently driven by a backup coordinator —
          shared across observers so scanners do not duel either. *)
  mutable ec_inflight : bool;
  mutable ec_cooldown_until : float;
}

let create ~cfg ~n ~now =
  {
    cfg;
    n;
    hb_last = Array.init n (fun _ -> Array.make n now);
    paused_since = Array.init n (fun _ -> Array.make n Float.nan);
    self_paused_since = Array.make n Float.nan;
    first_seen = Array.init n (fun _ -> Tid_table.create 256);
    vc_inflight = Tid_table.create 64;
    ec_inflight = false;
    ec_cooldown_until = 0.0;
  }

let cfg t = t.cfg

let heartbeat_tick t ~now ~replica = t.hb_last.(replica).(replica) <- now

let heartbeat_received t ~now ~observer ~from_ ~paused =
  t.hb_last.(observer).(from_) <- now;
  if paused then begin
    if Float.is_nan t.paused_since.(observer).(from_) then
      t.paused_since.(observer).(from_) <- now
  end
  else t.paused_since.(observer).(from_) <- Float.nan

(* Exposed as [suspected] so a driver can report which peers an
   observer currently considers failed — the cluster backend's nodes
   surface this in their exit stats (a SIGKILLed peer shows up here
   even though, with no reboot path yet, no epoch change follows). *)
let suspects t ~now o =
  List.filter
    (fun p ->
      p <> o
      && (now -. t.hb_last.(o).(p) > t.cfg.heartbeat_timeout
         || ((not (Float.is_nan t.paused_since.(o).(p)))
            && now -. t.paused_since.(o).(p) > t.cfg.pause_timeout)))
    (List.init t.n (fun p -> p))

let maybe_epoch_change t ~now o ~recoverable =
  if t.ec_inflight || now < t.ec_cooldown_until then None
  else begin
    let sus = suspects t ~now o in
    let self_stuck =
      (not (Float.is_nan t.self_paused_since.(o)))
      && now -. t.self_paused_since.(o) > t.cfg.pause_timeout
    in
    let sus = if self_stuck then sus @ [ o ] else sus in
    (* Only the lowest-numbered replica that does not suspect any
       lower replica initiates, so detectors do not duel. *)
    let initiator =
      List.for_all (fun p -> p >= o || List.mem p sus) (List.init t.n (fun p -> p))
    in
    (* A crashed machine can only be reintegrated once it has
       rebooted; partitioned or stuck-paused replicas reintegrate
       through state transfer immediately. *)
    let recovering = List.filter recoverable sus in
    if initiator && recovering <> [] then begin
      t.ec_inflight <- true;
      Some (Start_epoch_change { initiator = o; recovering })
    end
    else None
  end

let scan t ~now ~observer:o ~paused ~available ~records ~recoverable ~into =
  (* Track our own paused state so a replica stranded by a failed
     epoch change can ask to be reintegrated. *)
  if paused then begin
    if Float.is_nan t.self_paused_since.(o) then t.self_paused_since.(o) <- now
  end
  else t.self_paused_since.(o) <- Float.nan;
  if available then
    List.iter
      (fun (e : Trecord.entry) ->
        let tid = e.txn.Txn.tid in
        match e.status with
        | Txn.Committed | Txn.Aborted -> Tid_table.remove t.first_seen.(o) tid
        | Txn.Validated_ok | Txn.Validated_abort | Txn.Accepted_commit
        | Txn.Accepted_abort -> begin
            match Tid_table.find_opt t.first_seen.(o) tid with
            | None -> Tid_table.add t.first_seen.(o) tid now
            | Some since ->
                if
                  now -. since > t.cfg.stuck_timeout
                  && not (Tid_table.mem t.vc_inflight tid)
                then begin
                  Tid_table.replace t.vc_inflight tid ();
                  (* The smallest view above the record's current one
                     that this replica proposes for: view v is owned by
                     replica (v mod n). *)
                  let rec pick v = if v mod t.n = o then v else pick (v + 1) in
                  Batch.emit into
                    (Start_view_change
                       { observer = o; record = e; view = pick (e.view + 1) })
                end
          end)
      (records ());
  match maybe_epoch_change t ~now o ~recoverable with
  | Some a -> Batch.emit into a
  | None -> ()

let epoch_change_finished t ~now ~success ~recovering =
  t.ec_inflight <- false;
  t.ec_cooldown_until <- now +. t.cfg.epoch_cooldown;
  if success then
    (* Fresh grace period for the reintegrated replicas, so stale
       silence does not immediately re-suspect them. *)
    List.iter
      (fun p ->
        t.self_paused_since.(p) <- Float.nan;
        for o = 0 to t.n - 1 do
          t.hb_last.(o).(p) <- now;
          t.paused_since.(o).(p) <- Float.nan
        done)
      recovering

let view_change_finished t ~now ~observer ~tid ~outcome =
  Tid_table.remove t.vc_inflight tid;
  match outcome with
  | `Finished -> Tid_table.remove t.first_seen.(observer) tid
  | `Abandoned ->
      (* Restart the stuck clock: if the record is still not final the
         scanner will retry, at a higher view. *)
      Tid_table.replace t.first_seen.(observer) tid now

let view_change_inflight t tid = Tid_table.mem t.vc_inflight tid
let suspected t ~now ~observer = suspects t ~now observer
