(* The compiled form of a nemesis plan: pure per-message verdicts.

   [Nemesis.plan] is a declarative schedule; this module evaluates it
   against one (link, time) query without touching an engine or a
   network, so the same plan drives both backends: the simulator
   compiles {!rule_at} into a [Mk_net.Network.fault_fn] (via
   [Nemesis.install]) and lets the network make its own per-fault
   draws, while the live runtime asks {!verdict} for a single outcome
   per mailbox push ([Mk_live.Link]). Both paths fold the plan's
   windows in list order with [Network.combine], so a window schedule
   means the same thing on simulated and wall-clock time. *)

module Network = Mk_net.Network
module Rng = Mk_util.Rng

type outcome = Deliver | Drop | Duplicate | Delay of float

let rule_at = Nemesis.rule_at

(* One outcome per message, precedence drop > duplicate > delay. Every
   draw is conditional on a positive probability, so a Calm plan (or a
   closed window) consumes no randomness at all — the live fault layer
   inherits the sim's "no faults, no RNG perturbation" discipline. A
   duplicated message is delivered twice immediately (the receiver's
   at-most-once dedup absorbs it); only a non-duplicated delivery can
   take a delay spike. *)
let apply ~rng rule =
  match rule with
  | None -> Deliver
  | Some (r : Network.link_rule) ->
      if r.drop > 0.0 && Rng.uniform rng < r.drop then Drop
      else if r.dup > 0.0 && Rng.uniform rng < r.dup then Duplicate
      else if r.delay_prob > 0.0 && Rng.uniform rng < r.delay_prob then
        Delay r.delay
      else Deliver

let verdict plan ~now ~src ~dst ~rng = apply ~rng (rule_at plan ~now ~src ~dst)

let crashes (plan : Nemesis.plan) =
  List.stable_sort
    (fun a b ->
      let at = function
        | Nemesis.Replica_crash { at; _ } -> at
        | Nemesis.Coordinator_crash { at; _ } -> at
      in
      Float.compare (at a) (at b))
    plan.Nemesis.crashes

let window_edges (plan : Nemesis.plan) =
  List.concat_map
    (fun (w : Nemesis.window) ->
      let opens = (w.from_t, w.w_name ^ ":open") in
      if w.until_t < Float.infinity then
        [ opens; (w.until_t, w.w_name ^ ":close") ]
      else [ opens ])
    plan.Nemesis.windows
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
