(** Pure, transport-agnostic evaluation of a {!Nemesis.plan}.

    A plan is a schedule of fault windows and crash events; this module
    answers "what happens to one message on link (src → dst) at time
    [now]?" without an engine or a network, so the same plan drives
    both backends:

    - the simulator compiles {!rule_at} into the network's
      {!Mk_net.Network.fault_fn} (that is what {!Nemesis.install}
      does), letting the modelled network draw each fault class
      independently;
    - the live runtime asks {!verdict} for a single {!outcome} per
      mailbox push ([Mk_live.Link]), with wall-clock microseconds as
      [now].

    Both fold the windows in plan order with
    {!Mk_net.Network.combine}, so a schedule means the same thing under
    simulated and real time. *)

type outcome =
  | Deliver
  | Drop
  | Duplicate  (** Deliver twice, back to back (inline duplicate). *)
  | Delay of float  (** Deliver after this many extra µs. *)

val rule_at :
  Nemesis.plan ->
  now:float ->
  src:Mk_net.Network.endpoint ->
  dst:Mk_net.Network.endpoint ->
  Mk_net.Network.link_rule option
(** The combined rule of every window open at [now] whose scope covers
    the link; [None] when no window applies. Pure: same arguments, same
    rule. *)

val apply : rng:Mk_util.Rng.t -> Mk_net.Network.link_rule option -> outcome
(** Draw one outcome from a rule, precedence drop > duplicate > delay.
    Every draw is conditional on a positive probability, so a [None] or
    all-zero rule consumes no randomness. *)

val verdict :
  Nemesis.plan ->
  now:float ->
  src:Mk_net.Network.endpoint ->
  dst:Mk_net.Network.endpoint ->
  rng:Mk_util.Rng.t ->
  outcome
(** [apply ~rng (rule_at plan ~now ~src ~dst)]. *)

val crashes : Nemesis.plan -> Nemesis.crash list
(** The plan's crash events sorted by injection time — the iterator a
    wall-clock driver walks, applying each event whose time has
    passed. *)

val window_edges : Nemesis.plan -> (float * string) list
(** Window open/close instants with their observability labels
    ("name:open" / "name:close"), sorted by time — so a live driver can
    mirror the same fault events into [Mk_obs] that {!Nemesis.install}
    schedules in the simulator. *)
