(** Seeded nemesis schedules: timed fault windows and crash
    injections, in the style of a Jepsen nemesis.

    A {!plan} is a pure value — derived deterministically from a seed,
    a profile and the run horizon — listing per-link fault {!window}s
    (drop / duplicate / delay-spike rules over an interval of
    simulated time) and {!crash} injections (replica fail-stop and
    coordinator kill). {!install} compiles the windows into one
    {!Mk_net.Network.fault_fn} (overlapping windows combine with
    {!Mk_net.Network.combine}), schedules the crash callbacks, and
    mirrors every window open/close and crash into the observability
    registry ([fault.windows], with a trace instant per event).

    The plan's RNG is private to this module: installing a nemesis
    never perturbs the engine's or the network's random streams, so a
    [Calm] run is bit-identical to a run with no nemesis at all. *)

type profile =
  | Calm  (** No faults; the control group. *)
  | Dup_storm  (** Every link duplicates messages for part of the run. *)
  | Reorder  (** Delay spikes reorder messages against their peers. *)
  | Partition
      (** Asymmetric partition: one replica's outbound traffic is
          dropped while its inbound still flows. *)
  | Crash_replica  (** Fail-stop a replica, rebooting later. *)
  | Crash_reboot
      (** Fail-stop the {e same} replica twice: the first recovery must
          produce a replica that survives being killed again, and the
          durable invariant checks its WAL + snapshot replay. *)
  | Crash_coordinator
      (** Kill a client-side coordinator between validate and write. *)
  | Combo  (** All of the above, staggered to keep f = 1. *)

val all : profile list
val to_string : profile -> string
val of_string : string -> profile option

type scope =
  | All_links
  | From_replica of int
  | To_replica of int
  | Between of Mk_net.Network.endpoint * Mk_net.Network.endpoint

type window = {
  w_name : string;
  from_t : float;
  until_t : float;  (** [infinity] = never closes. *)
  scope : scope;
  rule : Mk_net.Network.link_rule;
}

type crash =
  | Replica_crash of { at : float; victim : int; down_for : float }
  | Coordinator_crash of { at : float; client : int; down_for : float }

type plan = { windows : window list; crashes : crash list }

type callbacks = {
  crash_replica : victim:int -> down_for:float -> unit;
  crash_coordinator : client:int -> down_for:float -> unit;
}

val plan :
  seed:int ->
  profile:profile ->
  horizon:float ->
  n_replicas:int ->
  n_clients:int ->
  plan
(** Deterministic in all five arguments. Fault windows sit inside the
    first ~80% of [horizon] and crashes reboot well before it, so a
    run with a grace period after the horizon ends fault-free. *)

val dup_all : prob:float -> plan
(** A single never-closing window duplicating every link with
    probability [prob] — the schedule behind the determinism test
    (duplicating everything must change no outcome). *)

val install :
  engine:Mk_sim.Engine.t ->
  net:Mk_net.Network.t ->
  obs:Mk_obs.Obs.t ->
  callbacks:callbacks ->
  plan ->
  unit
(** Must be called at simulated time 0, before [Engine.run]: window
    bounds and crash times are absolute. Installs the network fault
    function only when the plan has windows, so a windowless plan
    leaves the network untouched. *)

val scope_applies :
  scope -> src:Mk_net.Network.endpoint -> dst:Mk_net.Network.endpoint -> bool

val rule_at :
  plan ->
  now:float ->
  src:Mk_net.Network.endpoint ->
  dst:Mk_net.Network.endpoint ->
  Mk_net.Network.link_rule option
(** The combined rule of every window open at [now] on the link — the
    pure fold both backends share. [install] closes it over the sim
    clock; {!Verdict} re-exports it (and turns the rule into a single
    per-message outcome) for the live runtime. *)

val pp_plan : Format.formatter -> plan -> unit
