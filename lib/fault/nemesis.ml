module Engine = Mk_sim.Engine
module Network = Mk_net.Network
module Rng = Mk_util.Rng
module Obs = Mk_obs.Obs

type profile =
  | Calm
  | Dup_storm
  | Reorder
  | Partition
  | Crash_replica
  | Crash_reboot
  | Crash_coordinator
  | Combo

let all =
  [
    Calm;
    Dup_storm;
    Reorder;
    Partition;
    Crash_replica;
    Crash_reboot;
    Crash_coordinator;
    Combo;
  ]

let to_string = function
  | Calm -> "calm"
  | Dup_storm -> "dup"
  | Reorder -> "reorder"
  | Partition -> "partition"
  | Crash_replica -> "crash-replica"
  | Crash_reboot -> "crash-reboot"
  | Crash_coordinator -> "crash-coordinator"
  | Combo -> "combo"

let of_string s =
  List.find_opt (fun p -> to_string p = s) all

type scope =
  | All_links
  | From_replica of int
  | To_replica of int
  | Between of Network.endpoint * Network.endpoint

let scope_applies scope ~src ~dst =
  match scope with
  | All_links -> true
  | From_replica r -> src = Network.Replica r
  | To_replica r -> dst = Network.Replica r
  | Between (a, b) -> src = a && dst = b

type window = {
  w_name : string;
  from_t : float;
  until_t : float;  (** [infinity] = never closes. *)
  scope : scope;
  rule : Network.link_rule;
}

type crash =
  | Replica_crash of { at : float; victim : int; down_for : float }
  | Coordinator_crash of { at : float; client : int; down_for : float }

type plan = { windows : window list; crashes : crash list }

type callbacks = {
  crash_replica : victim:int -> down_for:float -> unit;
  crash_coordinator : client:int -> down_for:float -> unit;
}

let dup_all ~prob =
  {
    windows =
      [
        {
          w_name = "dup-all";
          from_t = 0.0;
          until_t = Float.infinity;
          scope = All_links;
          rule = { Network.pass with dup = prob };
        };
      ];
    crashes = [];
  }

(* Spike magnitude for reorder windows: far above the transport
   latencies used in this repo (eRPC-class, single-digit µs), so a
   spiked message really is overtaken by tens of later messages. *)
let default_spike = 200.0

(* Jittered window over [lo, hi] fractions of the horizon. *)
let frac rng ~horizon lo hi =
  let span = (hi -. lo) /. 4.0 in
  let a = (lo +. Rng.float rng span) *. horizon in
  let b = (hi -. Rng.float rng span) *. horizon in
  (a, Float.max b (a +. (0.05 *. horizon)))

let plan ~seed ~profile ~horizon ~n_replicas ~n_clients =
  let rng = Rng.create ~seed:(seed lxor 0x6d656b61 (* "meka" *)) in
  let victim () = Rng.int rng n_replicas in
  let client () = Rng.int rng n_clients in
  let dup_window ?(prob = 0.5) lo hi =
    let from_t, until_t = frac rng ~horizon lo hi in
    {
      w_name = "dup";
      from_t;
      until_t;
      scope = All_links;
      rule = { Network.pass with dup = prob };
    }
  in
  let reorder_window ?(prob = 0.3) lo hi =
    let from_t, until_t = frac rng ~horizon lo hi in
    {
      w_name = "reorder";
      from_t;
      until_t;
      scope = All_links;
      rule = { Network.pass with delay_prob = prob; delay = default_spike };
    }
  in
  (* Asymmetric partition: the victim's *outbound* traffic is dropped
     while its inbound still flows — peers hear silence and suspect a
     crash, yet the victim keeps receiving (and uselessly answering).
     The nastier direction for a failure detector. *)
  let partition_window v lo hi =
    let from_t, until_t = frac rng ~horizon lo hi in
    {
      w_name = Printf.sprintf "partition-r%d" v;
      from_t;
      until_t;
      scope = From_replica v;
      rule = Network.block;
    }
  in
  match profile with
  | Calm -> { windows = []; crashes = [] }
  | Dup_storm -> { windows = [ dup_window 0.1 0.7 ]; crashes = [] }
  | Reorder -> { windows = [ reorder_window 0.1 0.7 ]; crashes = [] }
  | Partition -> { windows = [ partition_window (victim ()) 0.2 0.5 ]; crashes = [] }
  | Crash_replica ->
      let at = (0.2 +. Rng.float rng 0.1) *. horizon in
      {
        windows = [];
        crashes =
          [ Replica_crash { at; victim = victim (); down_for = 0.2 *. horizon } ];
      }
  | Crash_reboot ->
      (* The same replica fail-stops twice. The first §5.3.1 merge must
         reintegrate a replica that then survives being killed again —
         and the durable end-of-run invariant checks that nothing
         committed before either crash is missing from a replay of the
         replica's WAL + snapshot images. Both reboots land well before
         the 80% mark so the grace period stays fault-free. *)
      let v = victim () in
      let first = (0.2 +. Rng.float rng 0.05) *. horizon in
      let second = (0.55 +. Rng.float rng 0.05) *. horizon in
      {
        windows = [];
        crashes =
          [
            Replica_crash { at = first; victim = v; down_for = 0.12 *. horizon };
            Replica_crash { at = second; victim = v; down_for = 0.12 *. horizon };
          ];
      }
  | Crash_coordinator ->
      let at = (0.2 +. Rng.float rng 0.15) *. horizon in
      {
        windows = [];
        crashes =
          [ Coordinator_crash { at; client = client (); down_for = 0.1 *. horizon } ];
      }
  | Combo ->
      (* Every fault class at once, staggered so that at most one
         replica is unavailable at any instant (f = 1 for n = 3): the
         partition isolates [v] early, and the same [v] is the crash
         victim after the partition heals. Coordinator crashes are
         client-side and do not count against f. *)
      let v = victim () in
      let crash_at = (0.45 +. Rng.float rng 0.05) *. horizon in
      {
        windows =
          [
            dup_window ~prob:0.3 0.05 0.8;
            reorder_window ~prob:0.2 0.2 0.6;
            partition_window v 0.15 0.35;
          ];
        crashes =
          [
            Replica_crash { at = crash_at; victim = v; down_for = 0.15 *. horizon };
            Coordinator_crash
              {
                at = (0.25 +. Rng.float rng 0.05) *. horizon;
                client = client ();
                down_for = 0.1 *. horizon;
              };
            Coordinator_crash
              {
                at = (0.6 +. Rng.float rng 0.05) *. horizon;
                client = client ();
                down_for = 0.08 *. horizon;
              };
          ];
      }

(* The pure heart of the schedule: every open window folded in plan
   order. Shared verbatim by both backends — [install] closes it over
   the sim clock below, and [Verdict] re-exports it for the live
   runtime's wall clock. *)
let rule_at plan ~now ~src ~dst =
  List.fold_left
    (fun acc w ->
      if now >= w.from_t && now < w.until_t && scope_applies w.scope ~src ~dst
      then
        Some
          (match acc with
          | None -> w.rule
          | Some r -> Network.combine r w.rule)
      else acc)
    None plan.windows

let install ~engine ~net ~obs ~callbacks plan =
  (* Windows are time-gated at send time, so a single install covers
     the whole schedule. *)
  let fault_fn ~src ~dst = rule_at plan ~now:(Engine.now engine) ~src ~dst in
  if plan.windows <> [] then Network.set_link_faults net (Some fault_fn);
  List.iter
    (fun w ->
      Engine.schedule_at engine w.from_t (fun () ->
          Obs.note_fault obs ~name:(w.w_name ^ ":open"));
      if w.until_t < Float.infinity then
        Engine.schedule_at engine w.until_t (fun () ->
            Obs.note_fault obs ~name:(w.w_name ^ ":close")))
    plan.windows;
  List.iter
    (fun c ->
      match c with
      | Replica_crash { at; victim; down_for } ->
          Engine.schedule_at engine at (fun () ->
              Obs.note_fault obs ~name:(Printf.sprintf "crash-r%d" victim);
              callbacks.crash_replica ~victim ~down_for)
      | Coordinator_crash { at; client; down_for } ->
          Engine.schedule_at engine at (fun () ->
              Obs.note_fault obs ~name:(Printf.sprintf "crash-c%d" client);
              callbacks.crash_coordinator ~client ~down_for))
    plan.crashes

let pp_scope ppf = function
  | All_links -> Format.fprintf ppf "*->*"
  | From_replica r -> Format.fprintf ppf "r%d->*" r
  | To_replica r -> Format.fprintf ppf "*->r%d" r
  | Between (a, b) ->
      let pp_ep ppf = function
        | Network.Client c -> Format.fprintf ppf "c%d" c
        | Network.Replica r -> Format.fprintf ppf "r%d" r
      in
      Format.fprintf ppf "%a->%a" pp_ep a pp_ep b

let pp_plan ppf plan =
  List.iter
    (fun w ->
      Format.fprintf ppf "window %-12s %a [%.0f, %.0f) drop=%.2f dup=%.2f spike=%.2f@%.0fus@."
        w.w_name pp_scope w.scope w.from_t w.until_t w.rule.Network.drop
        w.rule.Network.dup w.rule.Network.delay_prob w.rule.Network.delay)
    plan.windows;
  List.iter
    (fun c ->
      match c with
      | Replica_crash { at; victim; down_for } ->
          Format.fprintf ppf "crash replica %d at %.0f (down %.0fus)@." victim at
            down_for
      | Coordinator_crash { at; client; down_for } ->
          Format.fprintf ppf "crash coordinator %d at %.0f (down %.0fus)@." client
            at down_for)
    plan.crashes
