(** Versioned binary codec for every message that crosses a process
    boundary in the cluster backend (DESIGN.md §11).

    One constructor per wire message: the transaction fast path
    (execute-phase {!t.Get}, {!t.Validate}, slow-path {!t.Accept},
    asynchronous {!t.Write_back} — §5.2), the failure detector's
    {!t.Heartbeat} (§5.3), the backup-coordinator view change
    ({!t.Coord_change} / {!t.Vc_accept} and their replies — §5.3.2),
    the epoch change ({!t.Epoch_change} / {!t.Epoch_records} /
    {!t.Epoch_install} / {!t.Epoch_installed} — §5.3.1; driven by the
    nodes since the WAL work gave a killed node a reboot path), and
    deployment control ({!t.Shutdown}).

    {!encode} is deterministic — the same message always yields the
    same bytes. {!decode} is total — truncated, trailing, hostile, or
    garbage input yields [Error _] and never raises, and hostile
    sequence counts fail before any allocation.

    Requests do not name a target replica: the destination address
    {e is} the replica (as in Verdi's shims). Replies carry the
    replying replica's id because {!Mk_meerkat.Protocol} counts
    quorums by replica. *)

type decision = [ `Commit | `Abort ]

type accept_reply =
  [ `Accepted | `Stale of int | `Finalized of Mk_storage.Txn.status ]
(** = {!Mk_meerkat.Protocol.accept_reply}. *)

type coord_reply =
  [ `View_ok of Mk_meerkat.Replica.record_view option | `Stale of int ]
(** = the reply type of {!Mk_meerkat.Replica.handle_coord_change}. *)

type store_row = {
  key : int;
  value : int;
  wts : Mk_clock.Timestamp.t;
  rts : Mk_clock.Timestamp.t;
}
(** One row of {!Mk_meerkat.Replica.store_snapshot} (state transfer to
    a recovering replica). *)

type t =
  | Get of { coord : int; slot : int; seq : int; key : int }
      (** Execute-phase versioned read. [coord]/[slot]/[seq] route and
          deduplicate the reply exactly as in the live runtime. *)
  | Validate of {
      coord : int;
      slot : int;
      seq : int;
      txn : Mk_storage.Txn.t;
      ts : Mk_clock.Timestamp.t;
    }
  | Accept of {
      coord : int;
      slot : int;
      seq : int;
      txn : Mk_storage.Txn.t;
      ts : Mk_clock.Timestamp.t;
      decision : decision;
      view : int;
    }
  | Write_back of {
      txn : Mk_storage.Txn.t;
      ts : Mk_clock.Timestamp.t;
      commit : bool;
    }
  | Get_reply of {
      slot : int;
      seq : int;
      replica : int;
      key : int;
      value : int;
      wts : Mk_clock.Timestamp.t;
    }
  | Validated of {
      slot : int;
      seq : int;
      replica : int;
      status : Mk_storage.Txn.status;
    }
  | Accepted of { slot : int; seq : int; replica : int; reply : accept_reply }
  | Heartbeat of { from_ : int; paused : bool }
  | Coord_change of {
      observer : int;
      tid : Mk_clock.Timestamp.Tid.t;
      view : int;
    }
  | Coord_reply of {
      observer : int;
      replica : int;
      tid : Mk_clock.Timestamp.Tid.t;
      reply : coord_reply;
    }
  | Vc_accept of {
      observer : int;
      txn : Mk_storage.Txn.t;
      ts : Mk_clock.Timestamp.t;
      decision : decision;
      view : int;
    }
  | Vc_accept_reply of {
      observer : int;
      replica : int;
      tid : Mk_clock.Timestamp.Tid.t;
      reply : accept_reply;
    }
  | Epoch_change of { initiator : int; epoch : int }
  | Epoch_records of {
      replica : int;
      epoch : int;
      records : (int * Mk_meerkat.Replica.record_view) list;
    }
  | Epoch_install of {
      epoch : int;
      records : (int * Mk_meerkat.Replica.record_view) list;
      store : store_row list option;
    }
  | Epoch_installed of { replica : int; epoch : int }
      (** Ack for {!t.Epoch_install}: the initiator retransmits the
          install until every target has confirmed. *)
  | Shutdown

val kind : t -> int
(** Stable frame tag (1–17); new kinds append, old tags never move. *)

val kind_name : t -> string

val encode : t -> string
(** One complete frame (header + payload), ready for [sendto] —
    stamped shard group 0 (a single-group deployment). *)

val encode_shard : shard:int -> t -> string
(** {!encode} stamped with the sender's shard group (multi-group
    deployments; see {!Wire.frame}). *)

val encode_shard_into : scratch:Buffer.t -> out:Buffer.t -> shard:int -> t -> unit
(** Append one complete frame to [out] through the reused [scratch]
    payload buffer, with no intermediate strings (see
    {!Wire.frame_into}). [out] is not cleared: successive calls
    coalesce frames into one datagram. *)

val decode : string -> (t, Wire.error) result
(** Decode exactly one frame, discarding its shard id. Total: never
    raises. *)

val decode_shard : string -> (int * t, Wire.error) result
(** Decode exactly one frame, returning [(shard, msg)] so a node can
    refuse traffic addressed to another shard group. Total: never
    raises. *)

val decode_shard_at :
  string -> pos:int -> ((int * t) * int, Wire.error) result
(** Decode one frame of a multi-frame datagram starting at [pos],
    returning the message and the offset just past its frame (always
    [> pos]). Total: never raises. *)

val equal : t -> t -> bool
(** Structural equality via the dedicated [Timestamp]/[Tid]
    comparators (Z2-clean); the round-trip property in tests is
    [equal (decode (encode m)) m]. *)

val pp : Format.formatter -> t -> unit

(** {2 Component codecs}

    The building blocks of the payloads above, exported for other
    on-disk or on-wire formats that must stay byte-compatible with the
    cluster frames — the durable layer's WAL records and snapshot
    files ({!Mk_durable.Walcodec}) reuse them so a record view is the
    same bytes on disk as inside an [Epoch_records] frame. Writers
    append to a [Buffer.t]; readers are total over a {!Wire.cursor}. *)

val w_ts : Buffer.t -> Mk_clock.Timestamp.t -> unit
val r_ts : Wire.cursor -> (Mk_clock.Timestamp.t, Wire.error) result

val ts_bytes : int
(** Encoded size of a timestamp (16). *)

val w_status : Buffer.t -> Mk_storage.Txn.status -> unit
val r_status : Wire.cursor -> (Mk_storage.Txn.status, Wire.error) result

val status_tag : Mk_storage.Txn.status -> int
(** Stable wire tag (0–5) — doubles as a total order for
    newest-status merges during recovery. *)

val w_record_view : Buffer.t -> Mk_meerkat.Replica.record_view -> unit

val r_record_view :
  Wire.cursor -> (Mk_meerkat.Replica.record_view, Wire.error) result

val record_view_min : int
(** Minimum encoded size of a record view (bounds hostile counts). *)

val w_store_row : Buffer.t -> store_row -> unit
val r_store_row : Wire.cursor -> (store_row, Wire.error) result

val store_row_bytes : int
(** Encoded size of a store row (48). *)
