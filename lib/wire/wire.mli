(** Byte-level wire primitives (DESIGN.md §11).

    Deterministic little-endian writers over a [Buffer.t], and a
    bounds-checked reader cursor whose every operation is {e total}: a
    truncated, oversized, or garbage input yields [Error _], never an
    exception. {!Codec} builds every cross-process message from these;
    the framing (magic ["MK"], version, kind tag, payload length) is
    here so a future TCP transport can reuse it unchanged. *)

type error =
  | Truncated of { need : int; have : int }
      (** The input ends before [need] more bytes were available. *)
  | Bad_magic  (** Not a Meerkat frame at all. *)
  | Bad_version of int
  | Unknown_kind of int  (** Frame header carries an unassigned tag. *)
  | Trailing of int  (** Well-formed frame followed by junk bytes. *)
  | Malformed of string
      (** Structurally impossible payload: hostile sequence count, bad
          bool/option tag, negative length. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {2 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u16 : Buffer.t -> int -> unit

val w_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [0, 2^32): lengths and counts
    must never truncate into a frame that decodes wrongly. Encoding
    runs on the local, trusted side, so this is a programming error,
    not a wire condition. *)

val w_i64 : Buffer.t -> int -> unit
(** Full OCaml int as 64-bit two's complement. *)

val w_f64 : Buffer.t -> float -> unit
(** IEEE-754 bits: exact round-trip for every float, NaN included. *)

val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val w_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit

(** {2 Reader cursor} *)

type cursor
(** A read position over an immutable string slice; reads advance it.
    All readers are total. *)

val cursor : ?pos:int -> ?limit:int -> string -> cursor
val remaining : cursor -> int

val ( let* ) :
  ('a, error) result -> ('a -> ('b, error) result) -> ('b, error) result
(** [Result.bind], for composing decoders. *)

val r_u8 : cursor -> (int, error) result
val r_u16 : cursor -> (int, error) result
val r_u32 : cursor -> (int, error) result
val r_i64 : cursor -> (int, error) result
val r_f64 : cursor -> (float, error) result
val r_bool : cursor -> (bool, error) result
val r_string : cursor -> (string, error) result

val r_option :
  (cursor -> ('a, error) result) -> cursor -> ('a option, error) result

val r_list :
  elt_min:int ->
  (cursor -> ('a, error) result) ->
  cursor ->
  ('a list, error) result
(** [elt_min] is the smallest possible encoding of one element; a
    count claiming more elements than the remaining bytes could hold
    fails as [Malformed] {e before} any allocation, so a hostile
    4-billion-element header cannot balloon memory. *)

val r_array :
  elt_min:int ->
  (cursor -> ('a, error) result) ->
  cursor ->
  ('a array, error) result

(** {2 Framing} *)

val version : int
(** Current wire version, stamped into every frame header. Version 2
    added the shard-group id; version 1 frames are rejected. *)

val header_bytes : int
(** Frame header size: magic (2) + version (1) + kind (1) +
    shard (2, LE) + payload length (4, LE). *)

val max_shard : int
(** Largest shard-group id the u16 header field can carry. *)

val frame : ?shard:int -> kind:int -> string -> string
(** Wrap an encoded payload into one frame, stamped with the sender's
    shard group ([0] by default — a single-group deployment).
    Raises [Invalid_argument] outside [0, {!max_shard}]. *)

val frame_into :
  ?shard:int ->
  kind:int ->
  scratch:Buffer.t ->
  out:Buffer.t ->
  (Buffer.t -> unit) ->
  unit
(** Allocation-free framing over reused buffers: the payload writer
    fills [scratch] (cleared here first), and the complete frame —
    header then payload — is {e appended} to [out], which is never
    cleared, so successive calls coalesce several frames into one
    datagram. Same shard validation as {!frame}. *)

val unframe : string -> (int * int * cursor, error) result
(** Validate magic/version, read the kind tag and shard id, and return
    [(kind, shard, cursor)] with the cursor over exactly the payload.
    The input must be exactly one frame ([Trailing] otherwise — a UDP
    datagram carries one frame). *)

val unframe_at : string -> pos:int -> (int * int * cursor * int, error) result
(** One frame out of a multi-frame datagram, starting at byte [pos]:
    [(kind, shard, payload_cursor, next)] where [next] is the offset
    just past this frame (always [> pos], so a burst-decode loop over
    hostile input terminates). Unlike {!unframe}, bytes after the
    frame are the next frame, never [Trailing]. *)
