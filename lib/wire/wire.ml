(* Byte-level wire primitives: deterministic little-endian writers
   over a [Buffer.t] and a bounds-checked reader cursor whose every
   operation is total — a truncated or hostile input yields [Error],
   never an exception. The framing (magic, version, kind, length) and
   the message payloads in {!Codec} are both built from these.

   Integers travel as fixed-width two's-complement (u8/u16/u32 for
   tags and counts, i64 for OCaml ints), floats as their IEEE-754
   bits: fixed widths keep encoding deterministic (the same value is
   always the same bytes — golden frames in tests stay valid) and
   decoding trivially bounded. *)

type error =
  | Truncated of { need : int; have : int }
  | Bad_magic
  | Bad_version of int
  | Unknown_kind of int
  | Trailing of int
  | Malformed of string

let pp_error ppf = function
  | Truncated { need; have } ->
      Format.fprintf ppf "truncated frame: need %d bytes, have %d" need have
  | Bad_magic -> Format.fprintf ppf "bad magic (not a Meerkat frame)"
  | Bad_version v -> Format.fprintf ppf "unsupported wire version %d" v
  | Unknown_kind k -> Format.fprintf ppf "unknown message kind %d" k
  | Trailing n -> Format.fprintf ppf "%d trailing bytes after frame" n
  | Malformed what -> Format.fprintf ppf "malformed payload: %s" what

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u16 b v =
  w_u8 b v;
  w_u8 b (v lsr 8)

(* Lengths and counts travel as u32: a value that does not fit would
   silently truncate into a frame that decodes to the wrong length.
   Encoding is the local, trusted side, so an out-of-range value is a
   programming error — reject it loudly instead of emitting a
   corrupt frame. *)
let w_u32 b v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg (Printf.sprintf "Wire.w_u32: %d does not fit in 32 bits" v);
  w_u16 b (v land 0xffff);
  w_u16 b ((v lsr 16) land 0xffff)

let w_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_option w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

let w_array w b xs =
  w_u32 b (Array.length xs);
  Array.iter (w b) xs

(* ------------------------------------------------------------------ *)
(* Reader cursor                                                       *)
(* ------------------------------------------------------------------ *)

type cursor = { buf : string; mutable pos : int; limit : int }

let cursor ?(pos = 0) ?limit buf =
  let limit = match limit with Some l -> l | None -> String.length buf in
  { buf; pos; limit }

let remaining c = c.limit - c.pos
let ( let* ) = Result.bind

let take c n =
  if n < 0 then Error (Malformed "negative length")
  else if remaining c < n then Error (Truncated { need = n; have = remaining c })
  else begin
    let at = c.pos in
    c.pos <- at + n;
    Ok at
  end

(* Z7: the reader primitives below index [c.buf] only at offsets that
   [take] has just bounds-checked against [c.limit], so the raw
   [String.get]/[String.sub]/[get_int64_le] accesses cannot raise. *)
let[@mk_lint.allow "Z7"] r_u8 c =
  let* at = take c 1 in
  Ok (Char.code c.buf.[at])

let r_u16 c =
  let* lo = r_u8 c in
  let* hi = r_u8 c in
  Ok (lo lor (hi lsl 8))

let r_u32 c =
  let* lo = r_u16 c in
  let* hi = r_u16 c in
  Ok (lo lor (hi lsl 16))

let[@mk_lint.allow "Z7"] r_i64 c =
  let* at = take c 8 in
  Ok (Int64.to_int (String.get_int64_le c.buf at))

let[@mk_lint.allow "Z7"] r_f64 c =
  let* at = take c 8 in
  Ok (Int64.float_of_bits (String.get_int64_le c.buf at))

let r_bool c =
  let* v = r_u8 c in
  match v with
  | 0 -> Ok false
  | 1 -> Ok true
  | n -> Error (Malformed (Printf.sprintf "bool byte %d" n))

let[@mk_lint.allow "Z7"] r_string c =
  let* len = r_u32 c in
  let* at = take c len in
  Ok (String.sub c.buf at len)

let r_option r c =
  let* tag = r_u8 c in
  match tag with
  | 0 -> Ok None
  | 1 ->
      let* v = r c in
      Ok (Some v)
  | n -> Error (Malformed (Printf.sprintf "option tag %d" n))

(* A hostile count (e.g. 2^32 - 1) must fail fast, not allocate: every
   element occupies at least [elt_min] bytes, so any honest count is
   bounded by the bytes actually present. *)
let r_seq ~elt_min r c =
  let* count = r_u32 c in
  let elt_min = max 1 elt_min in
  if count > remaining c / elt_min then
    Error
      (Malformed
         (Printf.sprintf "sequence count %d exceeds %d remaining bytes" count
            (remaining c)))
  else begin
    let rec go acc i =
      if i = count then Ok (List.rev acc)
      else
        let* v = r c in
        go (v :: acc) (i + 1)
    in
    go [] 0
  end

let r_list ~elt_min r c = r_seq ~elt_min r c

let r_array ~elt_min r c =
  let* xs = r_seq ~elt_min r c in
  Ok (Array.of_list xs)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let magic0 = 'M'
let magic1 = 'K'

(* Version 2 (multi-group sharding): the header grew a u16 shard-group
   id between the kind tag and the payload length, so one socket fabric
   can carry several shard groups and a node can refuse frames
   addressed to another group before touching the payload. Version 1
   frames (no shard field) are rejected as [Bad_version] — the cluster
   is deployed as one unit, never mixed-version. *)
let version = 2
let header_bytes = 10
let max_shard = 0xffff

let check_shard shard =
  if shard < 0 || shard > max_shard then
    invalid_arg (Printf.sprintf "Wire.frame: shard %d outside [0, %d]" shard max_shard)

let add_header b ~kind ~shard ~len =
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  w_u8 b version;
  w_u8 b kind;
  w_u16 b shard;
  w_u32 b len

let frame ?(shard = 0) ~kind payload =
  check_shard shard;
  let b = Buffer.create (header_bytes + String.length payload) in
  add_header b ~kind ~shard ~len:(String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Allocation-free framing for reused buffers: the header carries the
   payload length, so the payload is staged in [scratch] (cleared
   here) and appended to [out] after the header. [out] is not cleared
   — frames accumulate, which is how a sender coalesces several
   frames into one datagram. *)
let frame_into ?(shard = 0) ~kind ~scratch ~out writer =
  check_shard shard;
  Buffer.clear scratch;
  writer scratch;
  add_header out ~kind ~shard ~len:(Buffer.length scratch);
  Buffer.add_buffer out scratch

let unframe s =
  let c = cursor s in
  if remaining c < header_bytes then
    Error (Truncated { need = header_bytes; have = remaining c })
  else begin
    let* m0 = r_u8 c in
    let* m1 = r_u8 c in
    if m0 <> Char.code magic0 || m1 <> Char.code magic1 then Error Bad_magic
    else
      let* v = r_u8 c in
      if v <> version then Error (Bad_version v)
      else
        let* kind = r_u8 c in
        let* shard = r_u16 c in
        let* len = r_u32 c in
        let* at = take c len in
        if remaining c > 0 then Error (Trailing (remaining c))
        else Ok (kind, shard, cursor ~pos:at ~limit:(at + len) s)
  end

(* One frame out of a multi-frame datagram: like {!unframe} but bytes
   after this frame are the next frame, not an error, so the caller
   also gets the offset where it ends. [next] always advances past
   [pos] (the header alone is [header_bytes]), so a decode-burst loop
   over a hostile datagram terminates. *)
let unframe_at s ~pos =
  let c = cursor ~pos s in
  if remaining c < header_bytes then
    Error (Truncated { need = header_bytes; have = remaining c })
  else begin
    let* m0 = r_u8 c in
    let* m1 = r_u8 c in
    if m0 <> Char.code magic0 || m1 <> Char.code magic1 then Error Bad_magic
    else
      let* v = r_u8 c in
      if v <> version then Error (Bad_version v)
      else
        let* kind = r_u8 c in
        let* shard = r_u16 c in
        let* len = r_u32 c in
        let* at = take c len in
        Ok (kind, shard, cursor ~pos:at ~limit:(at + len) s, at + len)
  end
