(* The cross-process message set and its binary codec.

   One constructor per message that crosses a process boundary in the
   cluster backend: the transaction fast path (execute-phase reads,
   validate, slow-path accept, write-back), the failure detector's
   heartbeats, the §5.3.2 backup-coordinator view change, the §5.3.1
   epoch change (driven by the nodes since the WAL work gave a killed
   node a reboot path), and deployment control.

   Encoding is deterministic (same message, same bytes — fixed-width
   integers, no maps); decoding is total and returns [Error] on any
   truncated, hostile, or garbage input. Replies carry the replying
   replica's id because the protocol counts quorums by replica;
   requests do not name their target — the destination address is the
   replica, exactly as in Verdi's shims. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Replica = Mk_meerkat.Replica
open Wire

type decision = [ `Commit | `Abort ]

type accept_reply =
  [ `Accepted | `Stale of int | `Finalized of Mk_storage.Txn.status ]

type coord_reply = [ `View_ok of Replica.record_view option | `Stale of int ]

type store_row = {
  key : int;
  value : int;
  wts : Timestamp.t;
  rts : Timestamp.t;
}

type t =
  (* client -> server: transaction fast path *)
  | Get of { coord : int; slot : int; seq : int; key : int }
  | Validate of {
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
    }
  | Accept of {
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : decision;
      view : int;
    }
  | Write_back of { txn : Txn.t; ts : Timestamp.t; commit : bool }
  (* server -> client *)
  | Get_reply of {
      slot : int;
      seq : int;
      replica : int;
      key : int;
      value : int;
      wts : Timestamp.t;
    }
  | Validated of { slot : int; seq : int; replica : int; status : Txn.status }
  | Accepted of { slot : int; seq : int; replica : int; reply : accept_reply }
  (* server <-> server: failure detector *)
  | Heartbeat of { from_ : int; paused : bool }
  (* server <-> server: §5.3.2 view change *)
  | Coord_change of { observer : int; tid : Tid.t; view : int }
  | Coord_reply of {
      observer : int;
      replica : int;
      tid : Tid.t;
      reply : coord_reply;
    }
  | Vc_accept of {
      observer : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : decision;
      view : int;
    }
  | Vc_accept_reply of {
      observer : int;
      replica : int;
      tid : Tid.t;
      reply : accept_reply;
    }
  (* server <-> server: §5.3.1 epoch change. [Epoch_installed] is the
     ack closing the three-step exchange: the initiator retransmits
     [Epoch_install] until every target confirmed. *)
  | Epoch_change of { initiator : int; epoch : int }
  | Epoch_records of {
      replica : int;
      epoch : int;
      records : (int * Replica.record_view) list;
    }
  | Epoch_install of {
      epoch : int;
      records : (int * Replica.record_view) list;
      store : store_row list option;
    }
  | Epoch_installed of { replica : int; epoch : int }
  (* deployment control *)
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Kind tags (stable across versions: new kinds append)                *)
(* ------------------------------------------------------------------ *)

let kind = function
  | Get _ -> 1
  | Get_reply _ -> 2
  | Validate _ -> 3
  | Validated _ -> 4
  | Accept _ -> 5
  | Accepted _ -> 6
  | Write_back _ -> 7
  | Heartbeat _ -> 8
  | Coord_change _ -> 9
  | Coord_reply _ -> 10
  | Vc_accept _ -> 11
  | Vc_accept_reply _ -> 12
  | Epoch_change _ -> 13
  | Epoch_records _ -> 14
  | Epoch_install _ -> 15
  | Shutdown -> 16
  | Epoch_installed _ -> 17

let kind_name = function
  | Get _ -> "get"
  | Get_reply _ -> "get_reply"
  | Validate _ -> "validate"
  | Validated _ -> "validated"
  | Accept _ -> "accept"
  | Accepted _ -> "accepted"
  | Write_back _ -> "write_back"
  | Heartbeat _ -> "heartbeat"
  | Coord_change _ -> "coord_change"
  | Coord_reply _ -> "coord_reply"
  | Vc_accept _ -> "vc_accept"
  | Vc_accept_reply _ -> "vc_accept_reply"
  | Epoch_change _ -> "epoch_change"
  | Epoch_records _ -> "epoch_records"
  | Epoch_install _ -> "epoch_install"
  | Shutdown -> "shutdown"
  | Epoch_installed _ -> "epoch_installed"

(* ------------------------------------------------------------------ *)
(* Component codecs                                                    *)
(* ------------------------------------------------------------------ *)

let w_ts b (ts : Timestamp.t) =
  w_f64 b ts.time;
  w_i64 b ts.client_id

let r_ts c =
  let* time = r_f64 c in
  let* client_id = r_i64 c in
  Ok (Timestamp.make ~time ~client_id)

let ts_bytes = 16

let w_tid b (tid : Tid.t) =
  w_i64 b tid.seq;
  w_i64 b tid.client_id

let r_tid c =
  let* seq = r_i64 c in
  let* client_id = r_i64 c in
  Ok (Tid.make ~seq ~client_id)

let w_read_entry b (e : Txn.read_entry) =
  w_i64 b e.key;
  w_ts b e.wts

let r_read_entry c =
  let* key = r_i64 c in
  let* wts = r_ts c in
  Ok ({ key; wts } : Txn.read_entry)

let w_write_entry b (e : Txn.write_entry) =
  w_i64 b e.key;
  w_i64 b e.value

let r_write_entry c =
  let* key = r_i64 c in
  let* value = r_i64 c in
  Ok ({ key; value } : Txn.write_entry)

let w_txn b (t : Txn.t) =
  w_tid b t.tid;
  w_array w_read_entry b t.read_set;
  w_array w_write_entry b t.write_set

let r_txn c =
  let* tid = r_tid c in
  let* read_set = r_array ~elt_min:(8 + ts_bytes) r_read_entry c in
  let* write_set = r_array ~elt_min:16 r_write_entry c in
  Ok { Txn.tid; read_set; write_set }

let status_tag = function
  | Txn.Validated_ok -> 0
  | Txn.Validated_abort -> 1
  | Txn.Accepted_commit -> 2
  | Txn.Accepted_abort -> 3
  | Txn.Committed -> 4
  | Txn.Aborted -> 5

let w_status b st = w_u8 b (status_tag st)

let r_status c =
  let* tag = r_u8 c in
  match tag with
  | 0 -> Ok Txn.Validated_ok
  | 1 -> Ok Txn.Validated_abort
  | 2 -> Ok Txn.Accepted_commit
  | 3 -> Ok Txn.Accepted_abort
  | 4 -> Ok Txn.Committed
  | 5 -> Ok Txn.Aborted
  | n -> Error (Malformed (Printf.sprintf "status tag %d" n))

let w_decision b (d : decision) = w_u8 b (match d with `Commit -> 0 | `Abort -> 1)

let r_decision c =
  let* tag = r_u8 c in
  match tag with
  | 0 -> Ok `Commit
  | 1 -> Ok `Abort
  | n -> Error (Malformed (Printf.sprintf "decision tag %d" n))

let w_accept_reply b (r : accept_reply) =
  match r with
  | `Accepted -> w_u8 b 0
  | `Stale view ->
      w_u8 b 1;
      w_i64 b view
  | `Finalized st ->
      w_u8 b 2;
      w_status b st

let r_accept_reply c : (accept_reply, error) result =
  let* tag = r_u8 c in
  match tag with
  | 0 -> Ok `Accepted
  | 1 ->
      let* view = r_i64 c in
      Ok (`Stale view)
  | 2 ->
      let* st = r_status c in
      Ok (`Finalized st)
  | n -> Error (Malformed (Printf.sprintf "accept-reply tag %d" n))

let w_record_view b (v : Replica.record_view) =
  w_txn b v.txn;
  w_ts b v.ts;
  w_status b v.status;
  w_i64 b v.view;
  w_option w_i64 b v.accept_view

let r_record_view c =
  let* txn = r_txn c in
  let* ts = r_ts c in
  let* status = r_status c in
  let* view = r_i64 c in
  let* accept_view = r_option r_i64 c in
  Ok { Replica.txn; ts; status; view; accept_view }

(* tid (16) + empty sets (8) + ts (16) + status (1) + view (8) +
   option tag (1) *)
let record_view_min = 50

let w_core_record b (core, v) =
  w_i64 b core;
  w_record_view b v

let r_core_record c =
  let* core = r_i64 c in
  let* v = r_record_view c in
  Ok (core, v)

let w_coord_reply b (r : coord_reply) =
  match r with
  | `View_ok v ->
      w_u8 b 0;
      w_option w_record_view b v
  | `Stale view ->
      w_u8 b 1;
      w_i64 b view

let r_coord_reply c : (coord_reply, error) result =
  let* tag = r_u8 c in
  match tag with
  | 0 ->
      let* v = r_option r_record_view c in
      Ok (`View_ok v)
  | 1 ->
      let* view = r_i64 c in
      Ok (`Stale view)
  | n -> Error (Malformed (Printf.sprintf "coord-reply tag %d" n))

let w_store_row b r =
  w_i64 b r.key;
  w_i64 b r.value;
  w_ts b r.wts;
  w_ts b r.rts

let store_row_bytes = 16 + ts_bytes + ts_bytes

let r_store_row c =
  let* key = r_i64 c in
  let* value = r_i64 c in
  let* wts = r_ts c in
  let* rts = r_ts c in
  Ok { key; value; wts; rts }

(* ------------------------------------------------------------------ *)
(* Message codec                                                       *)
(* ------------------------------------------------------------------ *)

let payload_into b msg =
  match msg with
  | Get { coord; slot; seq; key } ->
      w_i64 b coord;
      w_i64 b slot;
      w_i64 b seq;
      w_i64 b key
  | Get_reply { slot; seq; replica; key; value; wts } ->
      w_i64 b slot;
      w_i64 b seq;
      w_i64 b replica;
      w_i64 b key;
      w_i64 b value;
      w_ts b wts
  | Validate { coord; slot; seq; txn; ts } ->
      w_i64 b coord;
      w_i64 b slot;
      w_i64 b seq;
      w_txn b txn;
      w_ts b ts
  | Validated { slot; seq; replica; status } ->
      w_i64 b slot;
      w_i64 b seq;
      w_i64 b replica;
      w_status b status
  | Accept { coord; slot; seq; txn; ts; decision; view } ->
      w_i64 b coord;
      w_i64 b slot;
      w_i64 b seq;
      w_txn b txn;
      w_ts b ts;
      w_decision b decision;
      w_i64 b view
  | Accepted { slot; seq; replica; reply } ->
      w_i64 b slot;
      w_i64 b seq;
      w_i64 b replica;
      w_accept_reply b reply
  | Write_back { txn; ts; commit } ->
      w_txn b txn;
      w_ts b ts;
      w_bool b commit
  | Heartbeat { from_; paused } ->
      w_i64 b from_;
      w_bool b paused
  | Coord_change { observer; tid; view } ->
      w_i64 b observer;
      w_tid b tid;
      w_i64 b view
  | Coord_reply { observer; replica; tid; reply } ->
      w_i64 b observer;
      w_i64 b replica;
      w_tid b tid;
      w_coord_reply b reply
  | Vc_accept { observer; txn; ts; decision; view } ->
      w_i64 b observer;
      w_txn b txn;
      w_ts b ts;
      w_decision b decision;
      w_i64 b view
  | Vc_accept_reply { observer; replica; tid; reply } ->
      w_i64 b observer;
      w_i64 b replica;
      w_tid b tid;
      w_accept_reply b reply
  | Epoch_change { initiator; epoch } ->
      w_i64 b initiator;
      w_i64 b epoch
  | Epoch_records { replica; epoch; records } ->
      w_i64 b replica;
      w_i64 b epoch;
      w_list w_core_record b records
  | Epoch_install { epoch; records; store } ->
      w_i64 b epoch;
      w_list w_core_record b records;
      w_option (w_list w_store_row) b store
  | Epoch_installed { replica; epoch } ->
      w_i64 b replica;
      w_i64 b epoch
  | Shutdown -> ()

let payload msg =
  let b = Buffer.create 64 in
  payload_into b msg;
  Buffer.contents b

let encode_shard ~shard msg = frame ~shard ~kind:(kind msg) (payload msg)
let encode msg = encode_shard ~shard:0 msg

(* Reused-buffer encoding: append one complete frame to [out] (the
   payload staged through [scratch]) with no intermediate strings —
   the socket shim encodes every outbound message through this, into
   buffers it owns, and flushes several frames per datagram. *)
let encode_shard_into ~scratch ~out ~shard msg =
  frame_into ~shard ~kind:(kind msg) ~scratch ~out (fun b -> payload_into b msg)

let decode_payload ~kind c =
  match kind with
  | 1 ->
      let* coord = r_i64 c in
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* key = r_i64 c in
      Ok (Get { coord; slot; seq; key })
  | 2 ->
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* replica = r_i64 c in
      let* key = r_i64 c in
      let* value = r_i64 c in
      let* wts = r_ts c in
      Ok (Get_reply { slot; seq; replica; key; value; wts })
  | 3 ->
      let* coord = r_i64 c in
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* txn = r_txn c in
      let* ts = r_ts c in
      Ok (Validate { coord; slot; seq; txn; ts })
  | 4 ->
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* replica = r_i64 c in
      let* status = r_status c in
      Ok (Validated { slot; seq; replica; status })
  | 5 ->
      let* coord = r_i64 c in
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* txn = r_txn c in
      let* ts = r_ts c in
      let* decision = r_decision c in
      let* view = r_i64 c in
      Ok (Accept { coord; slot; seq; txn; ts; decision; view })
  | 6 ->
      let* slot = r_i64 c in
      let* seq = r_i64 c in
      let* replica = r_i64 c in
      let* reply = r_accept_reply c in
      Ok (Accepted { slot; seq; replica; reply })
  | 7 ->
      let* txn = r_txn c in
      let* ts = r_ts c in
      let* commit = r_bool c in
      Ok (Write_back { txn; ts; commit })
  | 8 ->
      let* from_ = r_i64 c in
      let* paused = r_bool c in
      Ok (Heartbeat { from_; paused })
  | 9 ->
      let* observer = r_i64 c in
      let* tid = r_tid c in
      let* view = r_i64 c in
      Ok (Coord_change { observer; tid; view })
  | 10 ->
      let* observer = r_i64 c in
      let* replica = r_i64 c in
      let* tid = r_tid c in
      let* reply = r_coord_reply c in
      Ok (Coord_reply { observer; replica; tid; reply })
  | 11 ->
      let* observer = r_i64 c in
      let* txn = r_txn c in
      let* ts = r_ts c in
      let* decision = r_decision c in
      let* view = r_i64 c in
      Ok (Vc_accept { observer; txn; ts; decision; view })
  | 12 ->
      let* observer = r_i64 c in
      let* replica = r_i64 c in
      let* tid = r_tid c in
      let* reply = r_accept_reply c in
      Ok (Vc_accept_reply { observer; replica; tid; reply })
  | 13 ->
      let* initiator = r_i64 c in
      let* epoch = r_i64 c in
      Ok (Epoch_change { initiator; epoch })
  | 14 ->
      let* replica = r_i64 c in
      let* epoch = r_i64 c in
      let* records = r_list ~elt_min:(8 + record_view_min) r_core_record c in
      Ok (Epoch_records { replica; epoch; records })
  | 15 ->
      let* epoch = r_i64 c in
      let* records = r_list ~elt_min:(8 + record_view_min) r_core_record c in
      let* store = r_option (r_list ~elt_min:store_row_bytes r_store_row) c in
      Ok (Epoch_install { epoch; records; store })
  | 16 -> Ok Shutdown
  | 17 ->
      let* replica = r_i64 c in
      let* epoch = r_i64 c in
      Ok (Epoch_installed { replica; epoch })
  | k -> Error (Unknown_kind k)

let decode_shard s =
  let* kind, shard, c = unframe s in
  let* msg = decode_payload ~kind c in
  if remaining c > 0 then Error (Trailing (remaining c)) else Ok (shard, msg)

let decode s =
  let* _, msg = decode_shard s in
  Ok msg

(* One frame out of a multi-frame datagram. [Trailing] here means junk
   inside this frame's own payload; bytes after the frame belong to
   the next one and are reported through [next]. *)
let decode_shard_at s ~pos =
  let* kind, shard, c, next = unframe_at s ~pos in
  let* msg = decode_payload ~kind c in
  if remaining c > 0 then Error (Trailing (remaining c))
  else Ok ((shard, msg), next)

(* ------------------------------------------------------------------ *)
(* Equality and printing (tests, debug)                                *)
(* ------------------------------------------------------------------ *)

let equal_txn (a : Txn.t) (b : Txn.t) =
  Tid.equal a.tid b.tid
  && Array.length a.read_set = Array.length b.read_set
  && Array.length a.write_set = Array.length b.write_set
  && Array.for_all2
       (fun (x : Txn.read_entry) (y : Txn.read_entry) ->
         x.key = y.key && Timestamp.equal x.wts y.wts)
       a.read_set b.read_set
  && Array.for_all2
       (fun (x : Txn.write_entry) (y : Txn.write_entry) ->
         x.key = y.key && x.value = y.value)
       a.write_set b.write_set

let equal_status a b = status_tag a = status_tag b

let equal_accept_reply (a : accept_reply) (b : accept_reply) =
  match (a, b) with
  | `Accepted, `Accepted -> true
  | `Stale v, `Stale w -> v = w
  | `Finalized s, `Finalized t -> equal_status s t
  | _ -> false

let equal_record_view (a : Replica.record_view) (b : Replica.record_view) =
  equal_txn a.txn b.txn
  && Timestamp.equal a.ts b.ts
  && equal_status a.status b.status
  && a.view = b.view
  && Option.equal ( = ) a.accept_view b.accept_view

let equal_coord_reply (a : coord_reply) (b : coord_reply) =
  match (a, b) with
  | `View_ok x, `View_ok y -> Option.equal equal_record_view x y
  | `Stale v, `Stale w -> v = w
  | _ -> false

let equal_records a b =
  List.length a = List.length b
  && List.for_all2
       (fun (c1, v1) (c2, v2) -> c1 = c2 && equal_record_view v1 v2)
       a b

let equal_store_row a b =
  a.key = b.key && a.value = b.value
  && Timestamp.equal a.wts b.wts
  && Timestamp.equal a.rts b.rts

let equal a b =
  match (a, b) with
  | Get a, Get b ->
      a.coord = b.coord && a.slot = b.slot && a.seq = b.seq && a.key = b.key
  | Get_reply a, Get_reply b ->
      a.slot = b.slot && a.seq = b.seq && a.replica = b.replica
      && a.key = b.key && a.value = b.value
      && Timestamp.equal a.wts b.wts
  | Validate a, Validate b ->
      a.coord = b.coord && a.slot = b.slot && a.seq = b.seq
      && equal_txn a.txn b.txn
      && Timestamp.equal a.ts b.ts
  | Validated a, Validated b ->
      a.slot = b.slot && a.seq = b.seq && a.replica = b.replica
      && equal_status a.status b.status
  | Accept a, Accept b ->
      a.coord = b.coord && a.slot = b.slot && a.seq = b.seq
      && equal_txn a.txn b.txn
      && Timestamp.equal a.ts b.ts
      && a.decision = b.decision && a.view = b.view
  | Accepted a, Accepted b ->
      a.slot = b.slot && a.seq = b.seq && a.replica = b.replica
      && equal_accept_reply a.reply b.reply
  | Write_back a, Write_back b ->
      equal_txn a.txn b.txn
      && Timestamp.equal a.ts b.ts
      && a.commit = b.commit
  | Heartbeat a, Heartbeat b -> a.from_ = b.from_ && a.paused = b.paused
  | Coord_change a, Coord_change b ->
      a.observer = b.observer && Tid.equal a.tid b.tid && a.view = b.view
  | Coord_reply a, Coord_reply b ->
      a.observer = b.observer && a.replica = b.replica
      && Tid.equal a.tid b.tid
      && equal_coord_reply a.reply b.reply
  | Vc_accept a, Vc_accept b ->
      a.observer = b.observer
      && equal_txn a.txn b.txn
      && Timestamp.equal a.ts b.ts
      && a.decision = b.decision && a.view = b.view
  | Vc_accept_reply a, Vc_accept_reply b ->
      a.observer = b.observer && a.replica = b.replica
      && Tid.equal a.tid b.tid
      && equal_accept_reply a.reply b.reply
  | Epoch_change a, Epoch_change b ->
      a.initiator = b.initiator && a.epoch = b.epoch
  | Epoch_records a, Epoch_records b ->
      a.replica = b.replica && a.epoch = b.epoch
      && equal_records a.records b.records
  | Epoch_install a, Epoch_install b ->
      a.epoch = b.epoch
      && equal_records a.records b.records
      && Option.equal
           (fun x y ->
             List.length x = List.length y && List.for_all2 equal_store_row x y)
           a.store b.store
  | Epoch_installed a, Epoch_installed b ->
      a.replica = b.replica && a.epoch = b.epoch
  | Shutdown, Shutdown -> true
  | _ -> false

let pp ppf msg =
  match msg with
  | Get { coord; slot; seq; key } ->
      Format.fprintf ppf "get[c%d.%d#%d key=%d]" coord slot seq key
  | Get_reply { replica; key; value; _ } ->
      Format.fprintf ppf "get_reply[r%d key=%d=%d]" replica key value
  | Validate { coord; slot; seq; txn; _ } ->
      Format.fprintf ppf "validate[c%d.%d#%d %a]" coord slot seq Tid.pp
        txn.Txn.tid
  | Validated { replica; status; _ } ->
      Format.fprintf ppf "validated[r%d %a]" replica Txn.pp_status status
  | Accept { coord; slot; seq; view; _ } ->
      Format.fprintf ppf "accept[c%d.%d#%d v%d]" coord slot seq view
  | Accepted { replica; _ } -> Format.fprintf ppf "accepted[r%d]" replica
  | Write_back { txn; commit; _ } ->
      Format.fprintf ppf "write_back[%a %s]" Tid.pp txn.Txn.tid
        (if commit then "commit" else "abort")
  | Heartbeat { from_; paused } ->
      Format.fprintf ppf "heartbeat[r%d%s]" from_ (if paused then " paused" else "")
  | Coord_change { observer; tid; view } ->
      Format.fprintf ppf "coord_change[o%d %a v%d]" observer Tid.pp tid view
  | Coord_reply { observer; replica; tid; _ } ->
      Format.fprintf ppf "coord_reply[o%d r%d %a]" observer replica Tid.pp tid
  | Vc_accept { observer; txn; view; _ } ->
      Format.fprintf ppf "vc_accept[o%d %a v%d]" observer Tid.pp txn.Txn.tid view
  | Vc_accept_reply { observer; replica; tid; _ } ->
      Format.fprintf ppf "vc_accept_reply[o%d r%d %a]" observer replica Tid.pp
        tid
  | Epoch_change { initiator; epoch } ->
      Format.fprintf ppf "epoch_change[r%d e%d]" initiator epoch
  | Epoch_records { replica; epoch; records } ->
      Format.fprintf ppf "epoch_records[r%d e%d n=%d]" replica epoch
        (List.length records)
  | Epoch_install { epoch; records; store } ->
      Format.fprintf ppf "epoch_install[e%d n=%d%s]" epoch (List.length records)
        (match store with Some _ -> " +store" | None -> "")
  | Epoch_installed { replica; epoch } ->
      Format.fprintf ppf "epoch_installed[r%d e%d]" replica epoch
  | Shutdown -> Format.fprintf ppf "shutdown"
