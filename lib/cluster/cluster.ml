module Engine = Mk_sim.Engine
module Core = Mk_sim.Core
module Network = Mk_net.Network
module Transport = Mk_net.Transport
module Timestamp = Mk_clock.Timestamp
module Sync_clock = Mk_clock.Sync_clock
module Rng = Mk_util.Rng
module Intf = Mk_model.System_intf
module Obs = Mk_obs.Obs

type config = {
  n_replicas : int;
  threads : int;
  n_clients : int;
  keys : int;
  transport : Transport.t;
  costs : Mk_model.Costs.t;
  clock_offset : float;
  clock_drift : float;
  seed : int;
}

let default_config =
  {
    n_replicas = 3;
    threads = 8;
    n_clients = 64;
    keys = 65536;
    transport = Transport.erpc;
    costs = Mk_model.Costs.default;
    clock_offset = 5.0;
    clock_drift = 1e-4;
    seed = 42;
  }

type client = {
  cid : int;
  clock : Sync_clock.t;
  rng : Rng.t;
  mutable seq : int;
  mutable last_time : float;
}

type t = {
  engine : Engine.t;
  cfg : config;
  net : Network.t;
  cores : Core.t array array;
  clients : client array;
  rto : float;
  obs : Obs.t;
}

let create ?obs engine cfg =
  if cfg.n_replicas < 1 || cfg.n_replicas mod 2 = 0 then
    invalid_arg "Cluster.create: n_replicas must be odd";
  let rng = Rng.split (Engine.rng engine) in
  let net = Network.create engine ~rng:(Rng.split rng) ~transport:cfg.transport in
  let cores =
    Array.init cfg.n_replicas (fun r ->
        Array.init cfg.threads (fun c -> Core.create engine ~id:((r * 1000) + c)))
  in
  let clients =
    Array.init cfg.n_clients (fun cid ->
        {
          cid;
          clock =
            Sync_clock.random (Rng.split rng) ~max_offset:cfg.clock_offset
              ~max_drift:cfg.clock_drift;
          rng = Rng.split rng;
          seq = 0;
          last_time = 0.0;
        })
  in
  (* The RTO must sit well above worst-case queueing delay at
     saturation (peak-throughput measurements imply deep server
     queues), or retransmissions amplify overload into congestion
     collapse. Kernel-bypass stacks use adaptive RTOs; a generous
     constant with exponential backoff serves the same purpose. *)
  let tr = cfg.transport in
  let rto = Float.max 500.0 (20.0 *. (tr.Transport.latency +. tr.Transport.jitter)) in
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~clock:(fun () -> Engine.now engine) ()
  in
  Network.set_observer net (function
    | `Sent -> Obs.note_send obs
    | `Dropped -> Obs.note_drop obs
    | `Duplicated -> Obs.note_duplicate obs
    | `Delayed -> Obs.note_delay obs);
  if Obs.tracing obs then begin
    (* Name the trace tracks and mirror each core's busy intervals;
       wired only when tracing so idle runs pay nothing per job. *)
    let tracer = Obs.tracer obs in
    Mk_obs.Tracer.set_process_name tracer ~pid:Obs.client_pid "clients";
    Mk_obs.Tracer.set_process_name tracer ~pid:Obs.net_pid "network";
    Array.iteri
      (fun r percore ->
        let pid = Obs.replica_pid r in
        Mk_obs.Tracer.set_process_name tracer ~pid (Printf.sprintf "replica %d" r);
        Array.iteri
          (fun c core ->
            Mk_obs.Tracer.set_thread_name tracer ~pid ~tid:c
              (Printf.sprintf "core %d" c);
            Core.set_observer core (fun ~start ~finish ->
                Obs.core_busy obs ~pid ~tid:c ~start ~finish))
          percore)
      cores
  end;
  { engine; cfg; net; cores; clients; rto; obs }

let tx_cpu t = Network.tx_cpu t.net

let fresh_tid _t client =
  client.seq <- client.seq + 1;
  Timestamp.Tid.make ~seq:client.seq ~client_id:client.cid

let fresh_timestamp t client =
  let now = Engine.now t.engine in
  let time = Sync_clock.read client.clock ~now in
  let time = if time <= client.last_time then client.last_time +. 1e-6 else time in
  client.last_time <- time;
  Timestamp.make ~time ~client_id:client.cid

let obs t = t.obs
let counters t : Intf.counters = Intf.counters_of_obs t.obs
let note_decision t ~committed ~fast = Obs.note_decision t.obs ~committed ~fast

let note_retransmit t ~rto ~tid =
  Obs.note_retransmit t.obs;
  (* The span covers the wait that timed out: armed rto ago, fired
     now. *)
  let now = Engine.now t.engine in
  Obs.span t.obs Mk_obs.Span.Retransmit ~tid ~start:(now -. rto) ~finish:now ()

let pick_replica t client ~alive =
  let n = t.cfg.n_replicas in
  let start = Rng.int client.rng n in
  let rec probe i =
    if i = n then None
    else begin
      let r = (start + i) mod n in
      if alive r then Some r else probe (i + 1)
    end
  in
  probe 0

let do_get t client ~key ~read ~alive k =
  let rec attempt ~rto =
    match pick_replica t client ~alive with
    | None ->
        (* Every replica looks down; retry later, as a client library
           would. *)
        Engine.schedule t.engine ~delay:rto (fun () -> attempt ~rto:(rto *. 2.0))
    | Some r ->
        let core = t.cores.(r).(Rng.int client.rng t.cfg.threads) in
        let answered = ref false in
        Network.send_work_to_core t.net
          ~link:(Network.Client client.cid, Network.Replica r)
          ~dst:core
          ~cost:(t.cfg.costs.Mk_model.Costs.get +. tx_cpu t)
          (fun () ->
            match read ~replica:r ~key with
            | None -> ()
            | Some versioned ->
                Network.send_to_client t.net
                  ~link:(Network.Replica r, Network.Client client.cid)
                  (fun () ->
                    if not !answered then begin
                      answered := true;
                      k versioned
                    end));
        Engine.schedule t.engine ~delay:rto (fun () ->
            if not !answered then begin
              note_retransmit t ~rto ~tid:client.cid;
              answered := true;
              attempt ~rto:(rto *. 2.0)
            end)
  in
  attempt ~rto:t.rto

let execute_reads t client ~keys ~read ~alive k =
  let nreads = Array.length keys in
  let read_set =
    Array.make nreads ({ key = 0; wts = Timestamp.zero } : Mk_storage.Txn.read_entry)
  in
  let values = Array.make nreads 0 in
  let rec exec i =
    if i >= nreads then k (Array.to_list read_set) values
    else
      do_get t client ~key:keys.(i) ~read ~alive (fun (value, wts) ->
          read_set.(i) <- { key = keys.(i); wts };
          values.(i) <- value;
          exec (i + 1))
  in
  exec 0

let server_busy_fraction t =
  let now = Engine.now t.engine in
  if now <= 0.0 then 0.0
  else begin
    let busy = ref 0.0 and ncores = ref 0 in
    Array.iter
      (fun percore ->
        Array.iter
          (fun c ->
            busy := !busy +. Core.busy_time c;
            incr ncores)
          percore)
      t.cores;
    !busy /. (now *. float_of_int !ncores)
  end
