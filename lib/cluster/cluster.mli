(** Shared deployment scaffolding for all four simulated systems
    (Meerkat, Meerkat-PB, TAPIR, KuaFu++).

    The paper gives every prototype the same three-layer structure
    with a shared transport and storage substrate so that measured
    differences come from coordination alone (§6.1); this module is
    that shared substrate: replica servers with per-thread cores, a
    population of closed-loop client machines with loosely
    synchronized clocks, versioned-GET plumbing with retransmission,
    and protocol counters. Each system adds its own commit protocol on
    top. *)

type config = {
  n_replicas : int;
  threads : int;  (** Server threads (cores) per replica. *)
  n_clients : int;
  keys : int;
  transport : Mk_net.Transport.t;
  costs : Mk_model.Costs.t;
  clock_offset : float;
  clock_drift : float;
  seed : int;
}

val default_config : config

type client = {
  cid : int;
  clock : Mk_clock.Sync_clock.t;
  rng : Mk_util.Rng.t;
  mutable seq : int;
  mutable last_time : float;
}

type t = {
  engine : Mk_sim.Engine.t;
  cfg : config;
  net : Mk_net.Network.t;
  cores : Mk_sim.Core.t array array;  (** [cores.(replica).(thread)]. *)
  clients : client array;
  rto : float;  (** Initial retransmission timeout, µs. *)
  obs : Mk_obs.Obs.t;
      (** Protocol counters, per-phase latencies and (optionally) the
          span trace — see {!Mk_obs.Obs}. *)
}

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> config -> t
(** [?obs] injects a shared observability handle (e.g. one with
    tracing enabled); by default the cluster creates its own with
    tracing off. Either way the network and — when tracing — every
    core is wired into it. *)

val tx_cpu : t -> float

val fresh_tid : t -> client -> Mk_clock.Timestamp.Tid.t
val fresh_timestamp : t -> client -> Mk_clock.Timestamp.t
(** Client-local clock reading, forced strictly monotone per client. *)

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters

val note_decision : t -> committed:bool -> fast:bool -> unit

val note_retransmit : t -> rto:float -> tid:int -> unit
(** Count a retransmission and record a [Retransmit] span covering the
    [rto] wait that just timed out, on client track [tid]. *)

val do_get :
  t ->
  client ->
  key:int ->
  read:(replica:int -> key:int -> (int * Mk_clock.Timestamp.t) option) ->
  alive:(int -> bool) ->
  ((int * Mk_clock.Timestamp.t) -> unit) ->
  unit
(** Execute-phase GET: pick a live replica (uniform load-balancing
    over replicas and their cores), charge the server core, call
    [read]; retransmit with exponential backoff until an answer
    arrives. [read] returning [None] models a server that cannot
    answer (paused or crashed after the message was sent). *)

val execute_reads :
  t ->
  client ->
  keys:int array ->
  read:(replica:int -> key:int -> (int * Mk_clock.Timestamp.t) option) ->
  alive:(int -> bool) ->
  (Mk_storage.Txn.read_entry list -> int array -> unit) ->
  unit
(** Interactive execute phase: issue {!do_get} for each key in order,
    one at a time, and deliver the accumulated read set together with
    the values read (for transactions whose writes depend on them). *)

val server_busy_fraction : t -> float
