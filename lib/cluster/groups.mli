(** A sharded deployment is a set of groups plus a router
    (DESIGN.md §13): this is that shape, generic over what one group
    is (a simulated {!Mk_meerkat.Sim_system}, a live runtime group, a
    set of node processes).

    Each shard is a full independent deployment of the per-group
    {!Cluster.config} — its own 2f+1 replicas, cores, clients and
    clocks — owning the dense local keyspace the router assigns it.
    [make] derives the per-shard configs (local keyspace size,
    decorrelated seeds) so every backend slices the global config the
    same way. *)

type 'g t = { router : Mk_shard.Router.t; groups : 'g array }

val make :
  ?policy:Mk_shard.Router.policy ->
  shards:int ->
  Cluster.config ->
  (shard:int -> Cluster.config -> 'g) ->
  'g t
(** [make ~shards cfg build] routes [cfg.keys] global keys over
    [shards] groups and builds each group from its derived config:
    [keys] becomes the shard's local keyspace size (at least 1, so a
    group can always boot) and [seed] is decorrelated per shard.
    Raises [Invalid_argument] for [shards < 1]. *)

val shards : 'g t -> int
val group : 'g t -> int -> 'g
val iter : (int -> 'g -> unit) -> 'g t -> unit
val fold : ('a -> 'g -> 'a) -> 'a -> 'g t -> 'a
