(* Groups + router: the shared shape of a sharded deployment
   (DESIGN.md §13), generic over the backend's group type. *)

module Router = Mk_shard.Router

type 'g t = { router : Router.t; groups : 'g array }

let make ?policy ~shards (cfg : Cluster.config) build =
  let router = Router.create ?policy ~shards ~keys:cfg.keys () in
  let groups =
    Array.init shards (fun shard ->
        (* [max 1]: a Range split of a tiny keyspace can leave a shard
           empty; it still needs a bootable (if idle) group. *)
        let keys = max 1 (Router.local_keys router ~shard) in
        build ~shard { cfg with keys; seed = cfg.seed + shard })
  in
  { router; groups }

let shards t = Array.length t.groups
let group t s = t.groups.(s)
let iter f t = Array.iteri f t.groups
let fold f acc t = Array.fold_left f acc t.groups
