(** Transaction timestamps and transaction ids (§5.2.2 step 1).

    A proposed commit timestamp is the pair (client local time,
    client id); a tid is (client-local sequence number, client id).
    Including the client id makes both globally unique, which the
    protocol requires: timestamps are the serialization order, tids
    key the trecord. *)

type t = { time : float; client_id : int }

val compare : t -> t -> int
(** Lexicographic on (time, client_id); a total order. *)

val equal : t -> t -> bool
val zero : t
(** Smaller than every timestamp a client can produce. *)

val infinity : t
(** Larger than every timestamp a client can produce. *)

val make : time:float -> client_id:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
(** Ordered sets of timestamps, used for the vstore's pending
    [readers]/[writers] lists — [min_elt]/[max_elt] give the
    MIN(writers)/MAX(readers) terms of Alg. 1. *)

module Tid : sig
  type t = { seq : int; client_id : int }

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  (** Mixed hash of both fields, always non-negative (safe as
      [hash mod n] for partition steering). Use this — never
      [Hashtbl.hash] — on tids (lint rule Z2). *)

  val make : seq:int -> client_id:int -> t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
