type t = { time : float; client_id : int }

let compare a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.client_id b.client_id

let equal a b = compare a b = 0
let zero = { time = neg_infinity; client_id = min_int }
let infinity = { time = Float.infinity; client_id = max_int }
let make ~time ~client_id = { time; client_id }
let pp ppf t = Format.fprintf ppf "%.3f@@c%d" t.time t.client_id
let to_string t = Format.asprintf "%a" pp t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tid = struct
  type t = { seq : int; client_id : int }

  let compare a b =
    let c = Int.compare a.client_id b.client_id in
    if c <> 0 then c else Int.compare a.seq b.seq

  let equal a b = a.seq = b.seq && a.client_id = b.client_id

  (* Multiplicative mix of both fields, masked non-negative. The old
     [client_id * 1_000_003 + seq] overflowed to negative for client
     ids above ~2^42, and a negative hash turns [hash mod partitions]
     into a negative partition index — an out-of-range crash in
     Trecord steering. Constants fit in 62 bits so the literals are
     valid on 64-bit OCaml; wrap-around during mixing is intended. *)
  let hash t =
    let h = (t.client_id * 0x9E3779B1) lxor (t.seq * 0x85EBCA77) in
    let h = (h lxor (h lsr 31)) * 0x27D4EB2F in
    (h lxor (h lsr 29)) land max_int
  let make ~seq ~client_id = { seq; client_id }
  let pp ppf t = Format.fprintf ppf "t%d.%d" t.client_id t.seq
  let to_string t = Format.asprintf "%a" pp t
end
