module Tid = Mk_clock.Timestamp.Tid
module Owner = Mk_check.Owner

type entry = {
  txn : Txn.t;
  mutable ts : Mk_clock.Timestamp.t;
  mutable status : Txn.status;
  mutable view : int;
  mutable accept_view : int option;
}

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

type t = { partitions : entry Tid_table.t array }

let create ~cores =
  if cores <= 0 then invalid_arg "Trecord.create: cores must be positive";
  { partitions = Array.init cores (fun _ -> Tid_table.create 256) }

let cores t = Array.length t.partitions

let partition_of_tid t tid = Tid.hash tid mod Array.length t.partitions

let check_core t core =
  if core < 0 || core >= Array.length t.partitions then
    invalid_arg (Printf.sprintf "Trecord: core %d out of range" core)

(* Partition ownership (ZCP): each partition belongs to one core;
   normal-case operations assert the ambient actor set by the replica
   handlers matches. Whole-record maintenance ([entries],
   [replace_all], [trim_finalized]) runs outside any actor scope
   during epoch changes and is exempt by construction. *)

let find t ~core tid =
  check_core t core;
  Owner.check_partition ~core ~what:"find";
  Tid_table.find_opt t.partitions.(core) tid

let add t ~core ~txn ~ts ~status =
  check_core t core;
  Owner.check_partition ~core ~what:"add";
  let entry = { txn; ts; status; view = 0; accept_view = None } in
  Tid_table.replace t.partitions.(core) txn.Txn.tid entry;
  entry

let remove t ~core tid =
  check_core t core;
  Owner.check_partition ~core ~what:"remove";
  Tid_table.remove t.partitions.(core) tid

let size t = Array.fold_left (fun acc p -> acc + Tid_table.length p) 0 t.partitions

let entries t =
  let acc = ref [] in
  Array.iteri
    (fun core p -> Tid_table.iter (fun _ e -> acc := (core, e) :: !acc) p)
    t.partitions;
  !acc

let core_entries t ~core =
  check_core t core;
  Tid_table.fold (fun _ e acc -> e :: acc) t.partitions.(core) []

let replace_all t pairs =
  Array.iter Tid_table.reset t.partitions;
  List.iter
    (fun (core, e) ->
      check_core t core;
      Tid_table.replace t.partitions.(core) e.txn.Txn.tid e)
    pairs

let trim_finalized t ~before =
  let removed = ref 0 in
  Array.iter
    (fun p ->
      let victims =
        Tid_table.fold
          (fun tid e acc ->
            if Txn.is_final e.status && Mk_clock.Timestamp.compare e.ts before < 0
            then tid :: acc
            else acc)
          p []
      in
      List.iter
        (fun tid ->
          Tid_table.remove p tid;
          incr removed)
        victims)
    t.partitions;
  !removed

let count_status t status =
  List.length (List.filter (fun (_, e) -> e.status = status) (entries t))
