module Timestamp = Mk_clock.Timestamp
module Owner = Mk_check.Owner

type entry = {
  key : Txn.key;
  lock : Mutex.t;
  owner : Owner.slot;
  mutable value : Txn.value;
  mutable wts : Timestamp.t;
  mutable rts : Timestamp.t;
  mutable readers : Timestamp.Set.t;
  mutable writers : Timestamp.Set.t;
}

type shard = {
  table : (Txn.key, entry) Hashtbl.t;
  shard_lock : Mutex.t;
  shard_owner : Owner.slot;
}

type t = { shards : shard array; mask : int }

let create ?(shards = 64) () =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg "Vstore.create: shards must be a positive power of two";
  {
    shards =
      Array.init shards (fun i ->
          {
            table = Hashtbl.create 1024;
            shard_lock = Mutex.create ();
            shard_owner = Owner.slot (Printf.sprintf "vstore.shard[%d]" i);
          });
    mask = shards - 1;
  }

(* Finalize-style mix so adjacent keys land in different shards. *)
let hash_key k =
  let k = k * 0x9E3779B1 in
  (k lxor (k lsr 16)) land max_int

let shard_of t key = t.shards.(hash_key key land t.mask)

(* The only place the shard lock is taken: every table operation runs
   inside [with_shard] (Z3), and the dynamic checker learns who holds
   the lock so unguarded accesses fail loudly (Mk_check.Owner). *)
let with_shard s f =
  Mutex.lock s.shard_lock;
  Owner.acquired s.shard_owner;
  match f () with
  | r ->
      Owner.released s.shard_owner;
      Mutex.unlock s.shard_lock;
      r
  | exception e ->
      Owner.released s.shard_owner;
      Mutex.unlock s.shard_lock;
      raise e

(* Likewise for the per-key entry lock. *)
let with_entry e f =
  Mutex.lock e.lock;
  Owner.acquired e.owner;
  match f e with
  | r ->
      Owner.released e.owner;
      Mutex.unlock e.lock;
      r
  | exception exn ->
      Owner.released e.owner;
      Mutex.unlock e.lock;
      raise exn

(* Entry mutations go through these so the checker can assert, at the
   mutation itself, that the mutating domain holds the entry lock. *)
let set_value e v =
  Owner.check e.owner ~what:"value<-";
  e.value <- v

let set_wts e ts =
  Owner.check e.owner ~what:"wts<-";
  e.wts <- ts

let set_rts e ts =
  Owner.check e.owner ~what:"rts<-";
  e.rts <- ts

let set_readers e s =
  Owner.check e.owner ~what:"readers<-";
  e.readers <- s

let set_writers e s =
  Owner.check e.owner ~what:"writers<-";
  e.writers <- s

let fresh_entry key value =
  {
    key;
    lock = Mutex.create ();
    owner = Owner.slot (Printf.sprintf "vstore.entry[%d]" key);
    value;
    wts = Timestamp.zero;
    rts = Timestamp.zero;
    readers = Timestamp.Set.empty;
    writers = Timestamp.Set.empty;
  }

let load t ~key ~value =
  let s = shard_of t key in
  with_shard s (fun () -> Hashtbl.replace s.table key (fresh_entry key value))

(* Readers take the shard lock too: a bare [Hashtbl.find_opt] races
   with a concurrent resize in [load]/[find_or_create] under real
   domains (the pre-fix bug this module is the regression site for). *)
let find t key =
  let s = shard_of t key in
  with_shard s (fun () -> Hashtbl.find_opt s.table key)

let find_exn t key =
  match find t key with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Vstore.find_exn: key %d not loaded" key)

let find_or_create t key =
  let s = shard_of t key in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.table key with
      | Some e -> e
      | None ->
          let e = fresh_entry key 0 in
          Hashtbl.add s.table key e;
          e)

let size t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> Hashtbl.length s.table))
    0 t.shards

let read_versioned e = with_entry e (fun e -> (e.value, e.wts))

let iter t f =
  Array.iter
    (fun s -> with_shard s (fun () -> Hashtbl.iter (fun _ e -> f e) s.table))
    t.shards

let clear_pending t =
  iter t (fun e ->
      with_entry e (fun e ->
          set_readers e Timestamp.Set.empty;
          set_writers e Timestamp.Set.empty))

let pending_counts t =
  let readers = ref 0 and writers = ref 0 in
  iter t (fun e ->
      with_entry e (fun e ->
          readers := !readers + Timestamp.Set.cardinal e.readers;
          writers := !writers + Timestamp.Set.cardinal e.writers));
  (!readers, !writers)

module For_testing = struct
  (* The pre-fix shape of [find]: a table read that takes no shard
     lock. Kept (never called by production code) so the dynamic
     checker's ability to catch the original race stays demonstrable;
     the static twin lives in test/lint_fixtures/. *)
  let[@mk_lint.allow "Z3"] unguarded_find t key =
    let s = shard_of t key in
    Owner.check s.shard_owner ~what:"Hashtbl.find_opt (pre-fix Vstore.find shape)";
    Hashtbl.find_opt s.table key

  (* An entry mutation that skips the entry lock. *)
  let unguarded_bump_rts e ts = set_rts e ts
end
