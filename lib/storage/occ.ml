module Timestamp = Mk_clock.Timestamp

type outcome = [ `Ok | `Abort ]

let with_lock = Vstore.with_entry

(* Remove [ts] from the reader sets of read-set entries [0, upto) and
   the writer sets of write-set entries [0, wupto) — Alg. 1's
   cleanup_readers_writers, restricted to what was actually added. *)
let cleanup store (txn : Txn.t) ~ts ~upto ~wupto =
  for i = 0 to upto - 1 do
    let e = Vstore.find_or_create store txn.read_set.(i).key in
    with_lock e (fun e ->
        Vstore.set_readers e (Timestamp.Set.remove ts e.readers))
  done;
  for i = 0 to wupto - 1 do
    let e = Vstore.find_or_create store txn.write_set.(i).key in
    with_lock e (fun e ->
        Vstore.set_writers e (Timestamp.Set.remove ts e.writers))
  done

let validate store (txn : Txn.t) ~ts =
  let nreads = Array.length txn.read_set in
  let nwrites = Array.length txn.write_set in
  (* Validate the read set. *)
  let rec check_reads i =
    if i >= nreads then `Ok
    else begin
      let r = txn.read_set.(i) in
      let e = Vstore.find_or_create store r.key in
      let ok =
        with_lock e (fun e ->
            let stale = Timestamp.compare e.wts r.wts > 0 in
            (* Not in Alg. 1 as printed, but required once clocks may
               be far apart: a client whose clock lags can read a
               version written at a *larger* timestamp than its own
               proposal. Serializing that reader below the version it
               observed is not sound (it may simultaneously read other
               keys as of its own, earlier, timestamp), so reject —
               another conservative check in the spirit of the paper's
               "small atomic regions at the cost of precision". With
               PTP-grade synchronization it essentially never fires. *)
            let future = Timestamp.compare r.wts ts > 0 in
            let behind_writer =
              (not (Timestamp.Set.is_empty e.writers))
              && Timestamp.compare ts (Timestamp.Set.min_elt e.writers) > 0
            in
            if stale || future || behind_writer then false
            else begin
              Vstore.set_readers e (Timestamp.Set.add ts e.readers);
              true
            end)
      in
      if ok then check_reads (i + 1) else `Abort_at i
    end
  in
  (* Validate the write set. *)
  let rec check_writes i =
    if i >= nwrites then `Ok
    else begin
      let w = txn.write_set.(i) in
      let e = Vstore.find_or_create store w.key in
      let ok =
        with_lock e (fun e ->
            let before_rts = Timestamp.compare ts e.rts < 0 in
            let before_reader =
              (not (Timestamp.Set.is_empty e.readers))
              && Timestamp.compare ts (Timestamp.Set.max_elt e.readers) < 0
            in
            if before_rts || before_reader then false
            else begin
              Vstore.set_writers e (Timestamp.Set.add ts e.writers);
              true
            end)
      in
      if ok then check_writes (i + 1) else `Abort_at i
    end
  in
  match check_reads 0 with
  | `Abort_at i ->
      cleanup store txn ~ts ~upto:i ~wupto:0;
      `Abort
  | `Ok -> begin
      match check_writes 0 with
      | `Abort_at i ->
          cleanup store txn ~ts ~upto:nreads ~wupto:i;
          `Abort
      | `Ok -> `Ok
    end

let abort_pending store (txn : Txn.t) ~ts =
  cleanup store txn ~ts ~upto:(Array.length txn.read_set)
    ~wupto:(Array.length txn.write_set)

let finish store (txn : Txn.t) ~ts ~commit =
  if commit then begin
    Array.iter
      (fun (w : Txn.write_entry) ->
        let e = Vstore.find_or_create store w.key in
        with_lock e (fun e ->
            (* Thomas write rule: an older write is simply skipped. *)
            if Timestamp.compare ts e.wts > 0 then begin
              Vstore.set_value e w.value;
              Vstore.set_wts e ts
            end;
            Vstore.set_writers e (Timestamp.Set.remove ts e.writers)))
      txn.write_set;
    Array.iter
      (fun (r : Txn.read_entry) ->
        let e = Vstore.find_or_create store r.key in
        with_lock e (fun e ->
            if Timestamp.compare ts e.rts > 0 then Vstore.set_rts e ts;
            Vstore.set_readers e (Timestamp.Set.remove ts e.readers)))
      txn.read_set
  end
  else abort_pending store txn ~ts
