(** The trecord: per-core-partitioned transaction record (§4.2,
    Fig. 2).

    Every transaction's record lives in exactly one core's partition —
    the core the coordinator steered the transaction to — so in normal
    operation a partition is only ever touched by its own core and no
    cross-core synchronization exists (DAP). Only the epoch-change
    protocol aggregates across partitions, and it runs with normal
    processing paused.

    When [Mk_check.Owner] is enabled, {!find}/{!add}/{!remove} assert
    that the ambient actor (set by the replica handlers with
    [Owner.with_core]) matches the partition touched; the cross-core
    maintenance operations ({!entries}, {!replace_all},
    {!trim_finalized}) run outside any actor scope and are exempt. *)

type entry = {
  txn : Txn.t;
  mutable ts : Mk_clock.Timestamp.t;  (** Proposed commit timestamp. *)
  mutable status : Txn.status;
  mutable view : int;
      (** Highest coordinator view this replica has joined for this
          transaction; 0 is the original coordinator (§5.3.2). *)
  mutable accept_view : int option;
      (** View in which a slow-path proposal was last accepted, if
          any — the Paxos acceptor state. *)
}

type t

val create : cores:int -> t
val cores : t -> int

val partition_of_tid : t -> Mk_clock.Timestamp.Tid.t -> int
(** Default steering rule: hash of the tid. The coordinator uses the
    same rule to pick the core id it steers messages to. *)

val find : t -> core:int -> Mk_clock.Timestamp.Tid.t -> entry option

val add :
  t ->
  core:int ->
  txn:Txn.t ->
  ts:Mk_clock.Timestamp.t ->
  status:Txn.status ->
  entry
(** Insert (or replace) the record for [txn.tid] in [core]'s
    partition with view 0 and no accepted proposal. *)

val remove : t -> core:int -> Mk_clock.Timestamp.Tid.t -> unit
val size : t -> int

val entries : t -> (int * entry) list
(** All records as [(core, entry)] pairs — the cross-core aggregation
    used by epoch change. *)

val core_entries : t -> core:int -> entry list
(** One core's partition only — the snapshot a live server domain
    takes of its own partition for the failure detector (uninstrumented
    like {!entries}; callers copy the entries before crossing
    domains). *)

val replace_all : t -> (int * entry) list -> unit
(** Install a merged trecord (epoch-change-complete), preserving the
    per-core partitioning carried in the pairs. *)

val count_status : t -> Txn.status -> int

val trim_finalized : t -> before:Mk_clock.Timestamp.t -> int
(** Drop COMMITTED/ABORTED records with commit timestamps below
    [before], returning how many were removed. The paper trims the
    trecord at epoch changes once a checkpoint covers it; this is the
    steady-state analogue (a coordinator retransmitting a validate for
    a trimmed transaction simply gets it re-validated and aborted by
    the conservative OCC checks, which is safe because the outcome was
    already delivered). Non-final records are never trimmed. *)
