(** The vstore: versioned backing storage shared by all cores of a
    replica (§4.2).

    Each key carries its committed value, the write timestamp [wts] of
    the transaction that installed it, the read timestamp [rts] of the
    latest committed reader, and the pending [readers]/[writers]
    timestamp sets used by Alg. 1. State is partitioned per key —
    there is no structure shared between non-conflicting transactions,
    which is what DAP demands.

    The table is sharded and every entry has its own mutex, so the
    same implementation serves both the (single-threaded,
    deterministic) simulator and the real-parallelism layer in
    [Mk_multicore], where OCaml domains genuinely race on entries.

    Lock discipline (enforced by [bin/mk_lint.exe] rule Z3 statically
    and by [Mk_check.Owner] dynamically): table lookups run under the
    shard lock via {!with_shard}; entry field mutations run under the
    entry lock via {!with_entry} and the [set_*] mutators. *)

type entry = {
  key : Txn.key;
  lock : Mutex.t;  (** The paper's fine-grained per-key lock. *)
  owner : Mk_check.Owner.slot;
      (** Dynamic-checker shadow of [lock]; maintained by
          {!with_entry}. *)
  mutable value : Txn.value;
  mutable wts : Mk_clock.Timestamp.t;
  mutable rts : Mk_clock.Timestamp.t;
  mutable readers : Mk_clock.Timestamp.Set.t;
      (** Pending validated readers (uncommitted). *)
  mutable writers : Mk_clock.Timestamp.Set.t;
      (** Pending validated writers (uncommitted). *)
}

type t

val create : ?shards:int -> unit -> t
(** [shards] must be a power of two (default 64). *)

val load : t -> key:Txn.key -> value:Txn.value -> unit
(** Pre-load a key with the initial version (timestamp zero), as the
    paper loads the database before each run. Replaces any previous
    entry. *)

val find : t -> Txn.key -> entry option
val find_exn : t -> Txn.key -> entry

val find_or_create : t -> Txn.key -> entry
(** Used by blind writes to keys never loaded. Thread-safe. *)

val size : t -> int

val with_entry : entry -> (entry -> 'a) -> 'a
(** Run [f] with the entry lock held (and the dynamic checker told).
    All reads of related fields that must be consistent, and every
    mutation, belong inside. *)

val set_value : entry -> Txn.value -> unit
val set_wts : entry -> Mk_clock.Timestamp.t -> unit
val set_rts : entry -> Mk_clock.Timestamp.t -> unit
val set_readers : entry -> Mk_clock.Timestamp.Set.t -> unit

val set_writers : entry -> Mk_clock.Timestamp.Set.t -> unit
(** The [set_*] mutators assert (when [Mk_check.Owner] is enabled)
    that the caller holds the entry lock, i.e. runs inside
    {!with_entry}. *)

val read_versioned : entry -> Txn.value * Mk_clock.Timestamp.t
(** Atomically snapshot (value, wts) under the entry lock — the GET
    handler. *)

val iter : t -> (entry -> unit) -> unit
(** Iterates shard by shard under each shard lock. [f] may take entry
    locks (shard → entry is the global lock order) but must not touch
    the store's tables. *)

val clear_pending : t -> unit
(** Empty every entry's pending reader/writer sets. Used when an epoch
    change finishes: all in-flight transactions of the old epoch have
    been decided, so marks left behind by non-participant replicas are
    stale and would otherwise block future validations forever. *)

val pending_counts : t -> int * int
(** Totals of pending (readers, writers) across all entries; test and
    invariant-checking helper. *)

(** Deliberately broken access paths for exercising the dynamic
    checker; never called by production code. *)
module For_testing : sig
  val unguarded_find : t -> Txn.key -> entry option
  (** The pre-fix shape of {!find}: no shard lock. Raises
      [Mk_check.Owner.Violation] when the checker is enabled — the
      regression demonstration for the original race. *)

  val unguarded_bump_rts : entry -> Mk_clock.Timestamp.t -> unit
  (** An entry mutation outside {!with_entry}; caught the same way. *)
end
