type hop = { what : string; hop_file : string; hop_line : int; hop_col : int }

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
  chain : hop list;
}

let hop_of_location ~what ~file (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    what;
    hop_file = file;
    hop_line = p.Lexing.pos_lnum;
    hop_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
  }

let make ?(chain = []) ~rule ~file ~line ~col msg =
  { rule; file; line; col; msg; chain }

let of_location ?(chain = []) ~rule ~file (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
    chain;
  }

(* Deterministic report order: position first, then rule id so two
   findings on one expression always print the same way. A finding's
   identity is (rule, location): the message and chain are the report
   for that site, so two findings that differ only there are
   duplicates and the engine's sort_uniq keeps one. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else begin
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else begin
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
    end
  end

let to_string f =
  let head = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg in
  match f.chain with
  | [] -> head
  | chain ->
      let hops =
        List.map
          (fun h ->
            Printf.sprintf "    via %s at %s:%d:%d" h.what h.hop_file h.hop_line
              h.hop_col)
          chain
      in
      String.concat "\n" (head :: hops)
