type t = { rule : string; file : string; line : int; col : int; msg : string }

let make ~rule ~file ~line ~col msg = { rule; file; line; col; msg }

let of_location ~rule ~file (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
  }

(* Deterministic report order: position first, then rule id so two
   findings on one expression always print the same way. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else begin
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else begin
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
    end
  end

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg
