(* Dynamic lock-discipline and ownership checker (layer 2 of Mk_check).

   Same cost model as Mk_obs tracing: when disabled, every entry point
   is a single immutable bool load and an untaken branch — nothing is
   allocated, no table is touched, and the hot paths of the storage
   layer are unchanged. When enabled (tests, chaos runs, CI), each
   guarded lock records which domain holds it and each guarded
   mutation asserts that the mutating domain is the holder, so a
   missing-lock bug fails loudly at the faulty call site instead of
   corrupting a hash table once in a thousand runs. *)

exception Violation of string

let () =
  Printexc.register_printer (function
    | Violation msg -> Some (Printf.sprintf "Mk_check.Owner.Violation: %s" msg)
    | _ -> None)

(* A plain ref, not an atomic: the flag is flipped before domains are
   spawned (test main, env var at startup) and only read afterwards,
   so there is no write/write race to order. *)
let enabled =
  ref
    (match Sys.getenv_opt "MK_CHECK" with
    | Some ("1" | "true" | "on") -> true
    | _ -> false)

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

type slot = { name : string; mutable holder : int }

let no_holder = -1
let slot name = { name; holder = no_holder }
let self () = (Domain.self () :> int)

let acquired s = if !enabled then s.holder <- self ()
let released s = if !enabled then s.holder <- no_holder

let check s ~what =
  if !enabled then begin
    let me = self () in
    if s.holder <> me then
      raise
        (Violation
           (Printf.sprintf
              "%s: %s by domain %d without holding the lock (holder: %s)" s.name
              what me
              (if s.holder = no_holder then "nobody"
               else string_of_int s.holder)))
  end

(* Ambient actor for partition-ownership checks: which logical core the
   current domain is executing on behalf of. Per-domain so the real
   multicore layer and the single-domain simulator share one mechanism. *)
let actor : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_core core f =
  if not !enabled then f ()
  else begin
    let prev = Domain.DLS.get actor in
    Domain.DLS.set actor (Some core);
    match f () with
    | r ->
        Domain.DLS.set actor prev;
        r
    | exception e ->
        Domain.DLS.set actor prev;
        raise e
  end

let current_core () = if !enabled then Domain.DLS.get actor else None

let check_partition ~core ~what =
  if !enabled then begin
    match Domain.DLS.get actor with
    | Some c when c <> core ->
        raise
          (Violation
             (Printf.sprintf
                "trecord partition %d: %s while executing on core %d (ZCP: \
                 partitions are single-owner)"
                core what c))
    | Some _ | None -> ()
  end
