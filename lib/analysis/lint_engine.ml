(* Driver: walk the requested paths, parse each .ml once with
   compiler-libs, run the per-file rules (Z1–Z4) and the whole-program
   reachability rules (Z5–Z8) over the shared ASTs, and render a
   deterministic report. *)

type result = { findings : Lint_findings.t list; files : int }

let rec collect_ml acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else collect_ml acc (Filename.concat path name))
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_implementation path =
  (* Fresh location bookkeeping per file so positions are exact. *)
  Location.input_name := path;
  Pparse.parse_implementation ~tool_name:"mk_lint" path

let parse_file path =
  match parse_implementation path with
  | structure -> (path, Ok structure)
  | exception exn -> (path, Error (Printexc.to_string exn))

let per_file_findings config (path, parsed) =
  let ast_findings =
    match parsed with
    | Ok structure -> Lint_rules.check_structure config ~path structure
    | Error msg ->
        [
          Lint_findings.make ~rule:"PARSE" ~file:path ~line:1 ~col:0
            (Printf.sprintf "cannot parse: %s" msg);
        ]
  in
  ast_findings @ Lint_rules.check_mli config ~path

let lint_file config path = per_file_findings config (parse_file path)

(* Map wrapped-library module names to source directories by reading
   each analyzed directory's [dune] file: `(name mk_wire)` means the
   directory's modules are reachable as [Mk_wire.*]. Directories
   without a dune file (or outside a library) simply contribute
   nothing — references into them stay unresolved, which the effect
   analysis treats conservatively. *)
let libmap_of_files files =
  let read_file path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Some text
    with Sys_error _ -> None
  in
  let names_in text =
    let tokens =
      String.map (fun c -> if c = '(' || c = ')' || c = '\n' then ' ' else c) text
      |> String.split_on_char ' '
      |> List.filter (fun t -> t <> "")
    in
    let rec go acc = function
      | "name" :: n :: rest -> go (n :: acc) rest
      | _ :: rest -> go acc rest
      | [] -> List.rev acc
    in
    go [] tokens
  in
  let dirs =
    List.map Filename.dirname files |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun dir ->
      match read_file (Filename.concat dir "dune") with
      | None -> []
      | Some text ->
          List.map (fun n -> (String.capitalize_ascii n, dir)) (names_in text))
    dirs

let run ~config ~paths =
  let files =
    List.fold_left (fun acc p -> collect_ml acc p) [] paths
    |> List.sort_uniq String.compare
  in
  let parsed = List.map parse_file files in
  let local = List.concat_map (per_file_findings config) parsed in
  let summaries =
    List.filter_map
      (fun (path, p) ->
        match p with
        | Ok structure -> Some (Callgraph.summarize ~path structure)
        | Error _ -> None)
      parsed
  in
  let program = Callgraph.link ~libmap:(libmap_of_files files) summaries in
  let global = Reachability.check ~config ~program in
  {
    findings = List.sort_uniq Lint_findings.compare (local @ global);
    files = List.length files;
  }

(* Keep [PARSE] through any filter: a file that does not parse was not
   checked by the requested rules either. *)
let filter_rules rules r =
  let want = List.map String.uppercase_ascii rules in
  {
    r with
    findings =
      List.filter
        (fun (f : Lint_findings.t) -> f.rule = "PARSE" || List.mem f.rule want)
        r.findings;
  }

let render r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Lint_findings.to_string f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.add_string b
    (if r.findings = [] then
       Printf.sprintf "mk_lint: %d files checked, no findings\n" r.files
     else
       Printf.sprintf "mk_lint: %d finding%s in %d files checked\n"
         (List.length r.findings)
         (if List.length r.findings = 1 then "" else "s")
         r.files);
  Buffer.contents b

(* --- JSON report (for CI artifacts): hand-rolled like the config
   parser, to stay dependency-free. --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json r =
  let hop (h : Lint_findings.hop) =
    Printf.sprintf "{\"what\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d}"
      (json_escape h.what) (json_escape h.hop_file) h.hop_line h.hop_col
  in
  let finding (f : Lint_findings.t) =
    Printf.sprintf
      "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"msg\":\"%s\",\"chain\":[%s]}"
      (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.msg)
      (String.concat "," (List.map hop f.chain))
  in
  Printf.sprintf "{\"files\":%d,\"findings\":[%s]}\n" r.files
    (String.concat "," (List.map finding r.findings))
