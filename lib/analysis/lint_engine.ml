(* Driver: walk the requested paths, parse each .ml with compiler-libs,
   run the rules, and render a deterministic report. *)

type result = { findings : Lint_findings.t list; files : int }

let rec collect_ml acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else collect_ml acc (Filename.concat path name))
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let parse_implementation path =
  (* Fresh location bookkeeping per file so positions are exact. *)
  Location.input_name := path;
  Pparse.parse_implementation ~tool_name:"mk_lint" path

let lint_file config path =
  let ast_findings =
    match parse_implementation path with
    | structure -> Lint_rules.check_structure config ~path structure
    | exception exn ->
        [
          Lint_findings.make ~rule:"PARSE" ~file:path ~line:1 ~col:0
            (Printf.sprintf "cannot parse: %s" (Printexc.to_string exn));
        ]
  in
  ast_findings @ Lint_rules.check_mli config ~path

let run ~config ~paths =
  let files =
    List.fold_left (fun acc p -> collect_ml acc p) [] paths
    |> List.sort_uniq String.compare
  in
  let findings = List.concat_map (lint_file config) files in
  { findings = List.sort_uniq Lint_findings.compare findings; files = List.length files }

let render r =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Lint_findings.to_string f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.add_string b
    (if r.findings = [] then
       Printf.sprintf "mk_lint: %d files checked, no findings\n" r.files
     else
       Printf.sprintf "mk_lint: %d finding%s in %d files checked\n"
         (List.length r.findings)
         (if List.length r.findings = 1 then "" else "s")
         r.files);
  Buffer.contents b
