(* The interprocedural rule families, all driven by the same linked
   {!Callgraph.program}:

   Z5  layering — no file under a scope prefix may transitively depend
       on a forbidden path prefix or external module.
   Z6  boundary purity — no definition in a transport-pure file may
       transitively reach an impure primitive (or an unresolved
       non-benign module, the "unknown = effectful" conservatism).
   Z7  wire totality — no raising primitive reachable from a decode
       entry point.
   Z8  hot-path blocking — no blocking primitive reachable from a
       hot-path entry point.

   Every finding carries a call-chain witness: one hop per step from
   the checked boundary to the offending use. Traversal is BFS with
   deterministic expansion order (defs and dependency edges are
   sorted), so witnesses — and therefore reports — are stable.

   Allowlists are path prefixes and mark accepted *subtrees*: a def in
   an allowed file is neither checked nor expanded (the layer below a
   validated boundary). [[@mk_lint.allow "Z7"]] at a use or binding
   removes just that site or definition from the rule. *)

module Findings = Lint_findings
module G = Callgraph

let path_allowed prefixes path =
  List.exists (fun prefix -> Lint_rules.path_has_prefix ~prefix path) prefixes

(* ------------------------------------------------------------------ *)
(* Z5: file-level layering                                             *)
(* ------------------------------------------------------------------ *)

let dep_name = function
  | G.Dep_file f -> f
  | G.Dep_external m -> "module " ^ m

(* Does a dependency target violate one of the forbidden entries?
   Entries containing '/' are path prefixes (match files); bare
   entries are external module names. *)
let forbidden_match forbidden target =
  List.find_opt
    (fun entry ->
      if String.contains entry '/' then
        match target with
        | G.Dep_file f -> Lint_rules.path_has_prefix ~prefix:entry f
        | G.Dep_external _ -> false
      else
        match target with
        | G.Dep_external m -> m = entry
        | G.Dep_file _ -> false)
    forbidden

let check_z5 ~(config : Lint_config.t) ~program =
  let findings = ref [] in
  List.iter
    (fun (scope, forbidden) ->
      let sources =
        G.files program
        |> List.filter (fun f ->
               Lint_rules.path_has_prefix ~prefix:scope f
               && not (path_allowed config.layering_allow f))
      in
      List.iter
        (fun src ->
          (* BFS over file deps; one finding per forbidden entry. *)
          let claimed = Hashtbl.create 4 in
          let visited = Hashtbl.create 16 in
          Hashtbl.replace visited src ();
          let queue = Queue.create () in
          List.iter
            (fun (t, loc) -> Queue.add (t, loc, src, []) queue)
            (G.file_deps program src);
          while not (Queue.is_empty queue) do
            let target, loc, from, chain = Queue.take queue in
            let hop =
              Findings.hop_of_location
                ~what:("dependency on " ^ dep_name target)
                ~file:from loc
            in
            let chain = chain @ [ hop ] in
            (match forbidden_match forbidden target with
            | Some entry when not (Hashtbl.mem claimed entry) ->
                Hashtbl.replace claimed entry ();
                let anchor = List.hd chain in
                findings :=
                  Findings.make ~chain ~rule:"Z5" ~file:src
                    ~line:anchor.Findings.hop_line ~col:anchor.Findings.hop_col
                    (Printf.sprintf
                       "%s transitively depends on %s (forbidden for %s): the \
                        protocol core must stay transport-agnostic"
                       src (dep_name target) scope)
                  :: !findings
            | _ -> (
                (* keep walking through non-violating files *)
                match target with
                | G.Dep_external _ -> ()
                | G.Dep_file f ->
                    if not (Hashtbl.mem visited f) then begin
                      Hashtbl.replace visited f ();
                      List.iter
                        (fun (t, loc) -> Queue.add (t, loc, f, chain) queue)
                        (G.file_deps program f)
                    end))
          done)
        sources)
    config.layering;
  !findings

(* ------------------------------------------------------------------ *)
(* Shared def-level BFS machinery (Z6/Z7/Z8)                           *)
(* ------------------------------------------------------------------ *)

(* Walk the call graph from [roots]; for every reachable definition
   outside the allowed subtrees, hand each unsuppressed use to
   [on_use] along with the hop chain from the root to the enclosing
   definition. [on_use] returns true to keep traversing. *)
let walk_defs ~program ~rule ~allow ~roots ~on_use =
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun root ->
      if not (Hashtbl.mem visited root) then begin
        Hashtbl.replace visited root ();
        let d = G.def program root in
        let hop =
          Findings.hop_of_location ~what:d.G.d_name
            ~file:(G.def_file program root) d.G.d_loc
        in
        Queue.add (root, [ hop ]) queue
      end)
    roots;
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty queue) do
    let id, chain = Queue.take queue in
    let d = G.def program id in
    let file = G.def_file program id in
    if (not (path_allowed allow file)) && not (List.mem rule d.G.d_allow) then
      List.iter
        (fun ((u : G.use), (r : G.resolution)) ->
          if !continue_ && not (List.mem rule u.G.u_allow) then begin
            if not (on_use ~chain ~file u r) then continue_ := false;
            List.iter
              (fun tid ->
                if not (Hashtbl.mem visited tid) then begin
                  Hashtbl.replace visited tid ();
                  let td = G.def program tid in
                  let hop =
                    Findings.hop_of_location
                      ~what:("call to " ^ G.last_segment td.G.d_name)
                      ~file u.G.u_loc
                  in
                  Queue.add (tid, chain @ [ hop ]) queue
                end)
              r.G.r_targets
          end)
        (G.def_uses program id)
  done

(* ------------------------------------------------------------------ *)
(* Z6: boundary purity                                                 *)
(* ------------------------------------------------------------------ *)

let check_z6 ~(config : Lint_config.t) ~program =
  let findings = ref [] in
  let boundary_files =
    G.files program |> List.filter (fun f -> path_allowed config.pure_files f)
  in
  List.iter
    (fun file ->
      if not (path_allowed config.pure_allow file) then
        List.iter
          (fun id ->
            let d = G.def program id in
            if not (List.mem "Z6" d.G.d_allow) then
              (* one witness per impure-reaching boundary def *)
              walk_defs ~program ~rule:"Z6" ~allow:config.pure_allow
                ~roots:[ id ] ~on_use:(fun ~chain ~file:ufile u r ->
                  let impure =
                    match Effects.match_prims config.impure_prims r.G.r_comps with
                    | spec :: _ -> Some spec
                    | [] -> (
                        match r.G.r_unknown with
                        | Some m -> Some ("unresolved module " ^ m)
                        | None -> None)
                  in
                  match impure with
                  | None -> true
                  | Some what ->
                      let use_hop =
                        Findings.hop_of_location
                          ~what:
                            (Printf.sprintf "impure use %s"
                               (String.concat "." u.G.u_comps))
                          ~file:ufile u.G.u_loc
                      in
                      findings :=
                        Findings.of_location
                          ~chain:(chain @ [ use_hop ])
                          ~rule:"Z6" ~file d.G.d_loc
                          (Printf.sprintf
                             "%s reaches %s: protocol/detector/recovery must \
                              stay transport-pure (inject time via ~now, no \
                              sockets or domains)"
                             d.G.d_name what)
                        :: !findings;
                      false))
          (G.defs_in_file program file))
    boundary_files;
  !findings

(* ------------------------------------------------------------------ *)
(* Z7/Z8: primitives reachable from entry points                       *)
(* ------------------------------------------------------------------ *)

let parse_entry spec =
  match String.rindex_opt spec ':' with
  | None -> None
  | Some i ->
      Some
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )

let check_entries ~rule ~entries ~prims ~allow ~describe ~program =
  let findings = ref [] in
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun spec ->
      match parse_entry spec with
      | None ->
          findings :=
            Findings.make ~rule ~file:"mk_lint.toml" ~line:1 ~col:0
              (Printf.sprintf "malformed entry %S (want \"file.ml:def\")" spec)
            :: !findings
      | Some (file, name) ->
          if G.has_file program file then begin
            match G.find_defs program ~file ~name with
            | [] ->
                findings :=
                  Findings.make ~rule ~file ~line:1 ~col:0
                    (Printf.sprintf
                       "entry point %s not found in %s: fix the [%s] entries \
                        list"
                       name file (String.lowercase_ascii rule))
                  :: !findings
            | roots ->
                walk_defs ~program ~rule ~allow ~roots
                  ~on_use:(fun ~chain ~file:ufile u r ->
                    (match Effects.match_prims prims r.G.r_comps with
                    | [] -> ()
                    | spec_hit :: _ ->
                        let key = (ufile, G.loc_key u.G.u_loc, rule) in
                        if not (Hashtbl.mem claimed key) then begin
                          Hashtbl.replace claimed key ();
                          findings :=
                            Findings.of_location ~chain ~rule ~file:ufile
                              u.G.u_loc
                              (Printf.sprintf "%s %s reachable from %s %s:%s"
                                 describe spec_hit
                                 (String.lowercase_ascii rule)
                                 file name)
                            :: !findings
                        end);
                    true)
          end)
    (List.sort String.compare entries);
  !findings

let check ~(config : Lint_config.t) ~program =
  check_z5 ~config ~program
  @ check_z6 ~config ~program
  @ check_entries ~rule:"Z7" ~entries:config.total_entries
      ~prims:config.raising_prims ~allow:config.total_allow
      ~describe:"raising primitive" ~program
  @ check_entries ~rule:"Z8" ~entries:config.nonblock_entries
      ~prims:config.blocking_prims ~allow:config.nonblock_allow
      ~describe:"blocking primitive" ~program
