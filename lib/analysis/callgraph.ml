(* A conservative, purely syntactic call graph over the analyzed file
   set, powering the interprocedural rules (Z5–Z8).

   Per file, {!summarize} collects:
   - module aliases ([module Codec = Mk_wire.Codec], functor
     applications included) and [open]s;
   - definitions: every module-level binding, plus nested bindings
     whose right-hand side is a syntactic function (a nested non-
     function [let] is evaluated when its enclosing definition runs,
     so its uses are attributed to the enclosing definition);
   - uses: value identifiers (plus [let*]-style binding operators and
     [assert], which raises), each with its location and the set of
     [[@mk_lint.allow]] rules lexically in force at the site;
   - module references (types, constructors, record fields, module
     exprs) which carry file-level dependencies but no calls.

   {!link} then resolves uses across files: a local definition by
   name, an [open]ed sibling, a [Mk_lib.Module.f] path via the
   dune-derived library map, or a sibling module file in the same
   directory. Anything else is unresolved — classified conservatively
   by {!Effects}. Name matching is by final component, and a use
   resolves to {e all} same-named candidates: the graph
   over-approximates, which is the safe direction for "must not
   reach" rules. *)

open Parsetree

type use = { u_comps : string list; u_loc : Location.t; u_allow : string list }

type def = {
  d_name : string;
  d_loc : Location.t;
  d_allow : string list;
  mutable d_uses : use list;
}

type mref = { m_comps : string list; m_loc : Location.t }

type summary = {
  s_path : string;
  mutable s_aliases : (string * string list) list;
  mutable s_opens : string list list;
  mutable s_defs : def list;
  mutable s_mrefs : mref list;
}

let last_segment name =
  match List.rev (String.split_on_char '.' name) with
  | [] -> name
  | x :: _ -> x

(* ------------------------------------------------------------------ *)
(* Per-file summary                                                    *)
(* ------------------------------------------------------------------ *)

let rec is_function_rhs (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function_rhs e
  | _ -> false

let summarize ~path structure =
  let sum =
    { s_path = path; s_aliases = []; s_opens = []; s_defs = []; s_mrefs = [] }
  in
  let toplevel =
    {
      d_name = "(toplevel)";
      d_loc = Location.in_file path;
      d_allow = [];
      d_uses = [];
    }
  in
  sum.s_defs <- [ toplevel ];
  let cur = ref toplevel in
  let prefix = ref [] (* reversed module/def path *) in
  let allows = ref [] in
  let allow_now () = List.concat !allows in
  let qualify name = String.concat "." (List.rev (name :: !prefix)) in
  let add_use comps loc =
    !cur.d_uses <- { u_comps = comps; u_loc = loc; u_allow = allow_now () } :: !cur.d_uses
  in
  let add_mref comps loc =
    if comps <> [] then sum.s_mrefs <- { m_comps = comps; m_loc = loc } :: sum.s_mrefs
  in
  let with_allow rules f =
    if rules = [] then f ()
    else begin
      allows := rules :: !allows;
      f ();
      allows := List.tl !allows
    end
  in
  let with_cur d f =
    let old = !cur in
    cur := d;
    f ();
    cur := old
  in
  let new_def name loc =
    let d =
      { d_name = qualify name; d_loc = loc; d_allow = allow_now (); d_uses = [] }
    in
    sum.s_defs <- d :: sum.s_defs;
    d
  in
  let handle_binding (it : Ast_iterator.iterator) ~at_toplevel vb =
    let attrs = Lint_rules.allowed_rules_of_attrs vb.pvb_attributes in
    with_allow attrs (fun () ->
        match Lint_rules.pattern_name vb.pvb_pat with
        | Some n when at_toplevel || is_function_rhs vb.pvb_expr ->
            let d = new_def n vb.pvb_pat.ppat_loc in
            (* nested defs carry the enclosing path ("launch.deliver"),
               so bare-name resolution can prefer the closest scope *)
            prefix := n :: !prefix;
            with_cur d (fun () -> it.expr it vb.pvb_expr);
            prefix := List.tl !prefix
        | _ ->
            if at_toplevel then begin
              (* unnamed or destructuring module-level binding: its
                 effects still run at init — give it its own node *)
              let d = new_def "_" vb.pvb_pat.ppat_loc in
              with_cur d (fun () -> it.expr it vb.pvb_expr)
            end
            else it.expr it vb.pvb_expr);
    it.pat it vb.pvb_pat
  in
  let rec peel_module (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure str -> `Struct str
    | Pmod_functor (_, body) -> peel_module body
    | Pmod_ident { txt; _ } -> `Path (Lint_rules.lid_components txt, me.pmod_loc)
    | Pmod_apply (f, arg) -> begin
        match peel_module f with
        | `Path (comps, loc) -> `Apply (comps, loc, arg)
        | _ -> `Other
      end
    | Pmod_constraint (m, _) -> peel_module m
    | _ -> `Other
  in
  let in_module name f =
    prefix := name :: !prefix;
    f ();
    prefix := List.tl !prefix
  in
  let handle_module (it : Ast_iterator.iterator) name_opt mexpr =
    let name = match name_opt with Some n -> n | None -> "_" in
    match peel_module mexpr with
    | `Struct str -> in_module name (fun () -> it.structure it str)
    | `Path (comps, loc) ->
        sum.s_aliases <- (name, comps) :: sum.s_aliases;
        add_mref comps loc
    | `Apply (comps, loc, arg) ->
        (* [module Net = Shim.Make (struct ... end)]: Net aliases the
           functor result; the argument's definitions live under Net *)
        sum.s_aliases <- (name, comps) :: sum.s_aliases;
        add_mref comps loc;
        in_module name (fun () -> it.module_expr it arg)
    | `Other -> it.module_expr it mexpr
  in
  let handle_open (it : Ast_iterator.iterator) (od : open_declaration) =
    match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } ->
        let comps = Lint_rules.lid_components txt in
        sum.s_opens <- comps :: sum.s_opens;
        add_mref comps od.popen_expr.pmod_loc
    | _ -> it.module_expr it od.popen_expr
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter (handle_binding it ~at_toplevel:true) vbs
          | Pstr_module mb ->
              with_allow
                (Lint_rules.allowed_rules_of_attrs mb.pmb_attributes)
                (fun () -> handle_module it mb.pmb_name.txt mb.pmb_expr)
          | Pstr_recmodule mbs ->
              List.iter (fun mb -> handle_module it mb.pmb_name.txt mb.pmb_expr) mbs
          | Pstr_open od -> handle_open it od
          | Pstr_eval (e, attrs) ->
              with_allow (Lint_rules.allowed_rules_of_attrs attrs) (fun () ->
                  let d = new_def "_" si.pstr_loc in
                  with_cur d (fun () -> it.expr it e))
          | _ -> Ast_iterator.default_iterator.structure_item it si)
      ;
      expr =
        (fun it e ->
          with_allow (Lint_rules.allowed_rules_of_attrs e.pexp_attributes)
            (fun () ->
              match e.pexp_desc with
              | Pexp_ident { txt; loc } ->
                  add_use (Lint_rules.lid_components txt) loc
              | Pexp_let (_, vbs, body) ->
                  List.iter (handle_binding it ~at_toplevel:false) vbs;
                  it.expr it body
              | Pexp_letmodule (name, mexpr, body) ->
                  handle_module it name.txt mexpr;
                  it.expr it body
              | Pexp_open (od, body) ->
                  handle_open it od;
                  it.expr it body
              | Pexp_letop { let_; ands; body } ->
                  let binding_op (b : binding_op) =
                    add_use [ b.pbop_op.txt ] b.pbop_op.loc;
                    it.pat it b.pbop_pat;
                    it.expr it b.pbop_exp
                  in
                  binding_op let_;
                  List.iter binding_op ands;
                  it.expr it body
              | Pexp_construct ({ txt; loc }, _) ->
                  add_mref (Lint_rules.module_components txt) loc;
                  Ast_iterator.default_iterator.expr it e
              | Pexp_field (_, { txt; loc }) | Pexp_setfield (_, { txt; loc }, _)
                ->
                  add_mref (Lint_rules.module_components txt) loc;
                  Ast_iterator.default_iterator.expr it e
              | Pexp_record (fields, _) ->
                  List.iter
                    (fun (({ txt; loc } : Longident.t Location.loc), _) ->
                      add_mref (Lint_rules.module_components txt) loc)
                    fields;
                  Ast_iterator.default_iterator.expr it e
              | Pexp_assert _ ->
                  add_use [ "assert" ] e.pexp_loc;
                  Ast_iterator.default_iterator.expr it e
              | _ -> Ast_iterator.default_iterator.expr it e))
      ;
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; loc }, _) ->
              add_mref (Lint_rules.module_components txt) loc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p)
      ;
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) ->
              add_mref (Lint_rules.module_components txt) loc
          | _ -> ());
          Ast_iterator.default_iterator.typ it t)
      ;
      module_expr =
        (fun it m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; _ } ->
              add_mref (Lint_rules.lid_components txt) m.pmod_loc
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it m)
      ;
    }
  in
  iter.structure iter structure;
  sum.s_aliases <- List.rev sum.s_aliases;
  sum.s_opens <- List.rev sum.s_opens;
  sum.s_defs <- List.rev sum.s_defs;
  sum.s_mrefs <- List.rev sum.s_mrefs;
  List.iter (fun d -> d.d_uses <- List.rev d.d_uses) sum.s_defs;
  sum

(* ------------------------------------------------------------------ *)
(* Whole-program link                                                  *)
(* ------------------------------------------------------------------ *)

type dep_target = Dep_file of string | Dep_external of string

type resolution = {
  r_targets : int list;
  r_comps : string list;
  r_deps : dep_target list;
  r_unknown : string option;
}

type program = {
  p_files : summary array;
  p_defs : (int * def) array;
  p_file_of : (string, int) Hashtbl.t;
  p_defs_of : int list array;
  p_named : (string, int list) Hashtbl.t array; (* per file: last name -> ids *)
  p_libmap : (string * string) list;
  p_resolved : (use * resolution) list array; (* per def id *)
}

(* Expand a leading local alias to a fixed point: [module Tid =
   Timestamp.Tid] where [Timestamp] is itself [Mk_clock.Timestamp]
   needs two steps before the library map can see [Mk_clock]. The
   [seen] set guards against mutually-aliased cycles. *)
let expand_alias (s : summary) comps =
  let rec go seen comps =
    match comps with
    | m0 :: rest when not (List.mem m0 seen) -> begin
        match List.assoc_opt m0 s.s_aliases with
        | Some target -> go (m0 :: seen) (target @ rest)
        | None -> comps
      end
    | _ -> comps
  in
  go [] comps

let defs_named p fi name =
  match Hashtbl.find_opt p.p_named.(fi) name with Some ids -> ids | None -> []

let file_index p path = Hashtbl.find_opt p.p_file_of path

let module_file ~dir m =
  Filename.concat dir (String.uncapitalize_ascii m ^ ".ml")

let has_submodule (s : summary) m0 =
  let pref = m0 ^ "." in
  List.exists
    (fun d ->
      String.length d.d_name > String.length pref
      && String.sub d.d_name 0 (String.length pref) = pref)
    s.s_defs

let no_resolution comps = { r_targets = []; r_comps = comps; r_deps = []; r_unknown = None }

(* Resolve a qualified path (>= 2 components) seen in file [fi]. *)
let resolve_qualified p fi comps =
  let s = p.p_files.(fi) in
  let name = match List.rev comps with x :: _ -> x | [] -> "" in
  let m0 = List.hd comps in
  (* a locally defined submodule: match by final name within it *)
  let local =
    if has_submodule s m0 then
      defs_named p fi name
      |> List.filter (fun id ->
             let d = snd p.p_defs.(id) in
             List.mem m0 (String.split_on_char '.' d.d_name))
    else []
  in
  if local <> [] then { r_targets = local; r_comps = comps; r_deps = []; r_unknown = None }
  else begin
    match List.assoc_opt m0 p.p_libmap with
    | Some dir -> begin
        (* Mk_lib.Module....name *)
        match comps with
        | _ :: sub :: _ :: _ -> begin
            match file_index p (module_file ~dir sub) with
            | Some tfi ->
                {
                  r_targets = defs_named p tfi name;
                  r_comps = comps;
                  r_deps = [ Dep_file p.p_files.(tfi).s_path ];
                  r_unknown = None;
                }
            | None -> no_resolution comps (* internal, outside the analyzed set *)
          end
        | _ -> no_resolution comps
      end
    | None -> begin
        (* a sibling module file in the same directory *)
        match file_index p (module_file ~dir:(Filename.dirname s.s_path) m0) with
        | Some tfi ->
            {
              r_targets = defs_named p tfi name;
              r_comps = comps;
              r_deps = [ Dep_file p.p_files.(tfi).s_path ];
              r_unknown = None;
            }
        | None ->
            if Effects.is_internal_module m0 then no_resolution comps
            else
              {
                r_targets = [];
                r_comps = comps;
                r_deps = [ Dep_external m0 ];
                r_unknown =
                  (if Effects.is_benign_module m0 then None else Some m0);
              }
      end
  end

(* Among same-named candidates, keep those whose enclosing scope
   shares the longest dotted prefix with the use's enclosing def —
   [loop] inside [server_loop] means [server_loop.loop], not some
   other nested [loop] in the file. Ties keep every candidate (the
   over-approximation direction). *)
let prefer_closest p ~scope ids =
  let rec common a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> 1 + common a' b'
    | _ -> 0
  in
  let affinity id =
    let d = snd p.p_defs.(id) in
    match List.rev (String.split_on_char '.' d.d_name) with
    | [] -> 0
    | _ :: parents -> common scope (List.rev parents)
  in
  match ids with
  | [] | [ _ ] -> ids
  | _ ->
      let best = List.fold_left (fun acc id -> max acc (affinity id)) 0 ids in
      List.filter (fun id -> affinity id = best) ids

let resolve_use p fi ~scope (u : use) =
  let s = p.p_files.(fi) in
  let comps = expand_alias s u.u_comps in
  match comps with
  | [] -> no_resolution comps
  | [ x ] ->
      let local = prefer_closest p ~scope (defs_named p fi x) in
      if local <> [] then
        { r_targets = local; r_comps = comps; r_deps = []; r_unknown = None }
      else begin
        (* fall back to the file's opens, in order; merge every
           resolution that found something (over-approximation). An
           open of a local alias ([module W = Mk_wire.Wire] then
           [open W]) expands to its target first, so the identifier
           resolves across libraries instead of reporting the alias
           as an unknown module. *)
        let candidates =
          List.map
            (fun o -> resolve_qualified p fi (expand_alias s (o @ [ x ])))
            s.s_opens
        in
        let hits =
          List.filter
            (fun r -> r.r_targets <> [] || r.r_unknown <> None)
            candidates
        in
        match hits with
        | [] -> no_resolution comps
        | first :: _ ->
            {
              r_targets = List.concat_map (fun r -> r.r_targets) hits;
              r_comps = first.r_comps;
              r_deps = List.concat_map (fun r -> r.r_deps) hits;
              r_unknown = first.r_unknown;
            }
      end
  | _ -> resolve_qualified p fi comps

let resolve_mref p fi (m : mref) =
  let s = p.p_files.(fi) in
  let comps = expand_alias s m.m_comps in
  match comps with
  | [] -> []
  | m0 :: rest ->
      if has_submodule s m0 then []
      else begin
        match List.assoc_opt m0 p.p_libmap with
        | Some dir -> begin
            match rest with
            | sub :: _ -> begin
                match file_index p (module_file ~dir sub) with
                | Some tfi -> [ Dep_file p.p_files.(tfi).s_path ]
                | None -> []
              end
            | [] -> []
          end
        | None -> begin
            match
              file_index p (module_file ~dir:(Filename.dirname s.s_path) m0)
            with
            | Some tfi -> [ Dep_file p.p_files.(tfi).s_path ]
            | None -> if Effects.is_internal_module m0 then [] else [ Dep_external m0 ]
          end
      end

let link ~libmap summaries =
  let files =
    List.sort (fun a b -> String.compare a.s_path b.s_path) summaries
    |> Array.of_list
  in
  let file_of = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.replace file_of s.s_path i) files;
  let defs =
    Array.to_list files
    |> List.mapi (fun fi s -> List.map (fun d -> (fi, d)) s.s_defs)
    |> List.concat |> Array.of_list
  in
  let defs_of = Array.make (Array.length files) [] in
  let named = Array.init (Array.length files) (fun _ -> Hashtbl.create 16) in
  Array.iteri
    (fun id (fi, d) ->
      defs_of.(fi) <- id :: defs_of.(fi);
      let key = last_segment d.d_name in
      let prev =
        match Hashtbl.find_opt named.(fi) key with Some l -> l | None -> []
      in
      Hashtbl.replace named.(fi) key (id :: prev))
    defs;
  Array.iteri (fun fi ids -> defs_of.(fi) <- List.rev ids) defs_of;
  (* restore source order in the name index *)
  Array.iter
    (fun tbl ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.iter (fun (k, v) -> Hashtbl.replace tbl k (List.rev v)))
    named;
  let p =
    {
      p_files = files;
      p_defs = defs;
      p_file_of = file_of;
      p_defs_of = defs_of;
      p_named = named;
      p_libmap = libmap;
      p_resolved = Array.make (Array.length defs) [];
    }
  in
  Array.iteri
    (fun id (fi, d) ->
      (* the use's scope is the full dotted path of its enclosing def:
         a use inside [server_loop] prefers [server_loop.loop] *)
      let scope = String.split_on_char '.' d.d_name in
      p.p_resolved.(id) <-
        List.map (fun u -> (u, resolve_use p fi ~scope u)) d.d_uses)
    defs;
  p

let files p = Array.to_list p.p_files |> List.map (fun s -> s.s_path)
let has_file p path = Hashtbl.mem p.p_file_of path
let def p id = snd p.p_defs.(id)
let def_file p id = p.p_files.(fst p.p_defs.(id)).s_path
let def_uses p id = p.p_resolved.(id)

let defs_in_file p path =
  match file_index p path with Some fi -> p.p_defs_of.(fi) | None -> []

let find_defs p ~file ~name =
  match file_index p file with
  | None -> []
  | Some fi -> defs_named p fi name

let loc_key (loc : Location.t) =
  let pos = loc.Location.loc_start in
  (pos.Lexing.pos_lnum, pos.Lexing.pos_cnum - pos.Lexing.pos_bol)

(* File-level dependency edges of [path]: every distinct target with
   the earliest location that establishes it, sorted by target so the
   traversal order (hence every witness chain) is deterministic. *)
let file_deps p path =
  match file_index p path with
  | None -> []
  | Some fi ->
      let s = p.p_files.(fi) in
      let acc : (dep_target, Location.t) Hashtbl.t = Hashtbl.create 16 in
      let note target loc =
        let better =
          match Hashtbl.find_opt acc target with
          | None -> true
          | Some old -> loc_key loc < loc_key old
        in
        if better then Hashtbl.replace acc target loc
      in
      List.iter
        (fun id ->
          List.iter
            (fun ((u : use), r) ->
              List.iter (fun t -> note t u.u_loc) r.r_deps;
              List.iter
                (fun tid ->
                  let tpath = def_file p tid in
                  if tpath <> path then note (Dep_file tpath) u.u_loc)
                r.r_targets)
            (def_uses p id))
        (defs_in_file p path);
      List.iter (fun m -> List.iter (fun t -> note t m.m_loc) (resolve_mref p fi m)) s.s_mrefs;
      Hashtbl.fold (fun t loc acc -> (t, loc) :: acc) acc []
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
