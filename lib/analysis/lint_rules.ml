(* The four ZCP-conformance rules, as one pass over a parsed
   implementation (untyped AST via compiler-libs' [Ast_iterator]).

   Z1  no coordination primitives (Mutex/Atomic/Domain/...) and no
       top-level mutable state outside the configured allowlist — the
       zero-coordination principle, mechanized.
   Z2  no polymorphic [=]/[compare]/[Hashtbl.hash] applied to
       timestamp- or tid-bearing expressions; use [Timestamp.compare],
       [Tid.equal], [Tid.hash].
   Z3  in domain-shared modules, every [Hashtbl] operation must be
       lexically inside the module's lock-guard helper.
   Z4  every [.ml] under the configured prefixes ships an [.mli]
       (checked from the filesystem, not the AST).

   The pass is purely syntactic: with no type information it
   over-approximates taint by identifier and field names, which is
   exactly what makes findings cheap, local and deterministic. A rule
   can be silenced at a binding or expression with
   [[@mk_lint.allow "Z3"]]. *)

open Parsetree
module Findings = Lint_findings

let rec lid_components = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> lid_components p @ [ s ]
  | Longident.Lapply (a, b) -> lid_components a @ lid_components b

(* Module components of a value path: everything but the final name. *)
let module_components lid =
  match List.rev (lid_components lid) with [] -> [] | _ :: mods -> List.rev mods

let last_component lid =
  match List.rev (lid_components lid) with [] -> None | x :: _ -> Some x

(* --- [@mk_lint.allow "Z1 Z3"] suppression --- *)

let allowed_rules_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "mk_lint.allow" then []
      else begin
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> r <> "")
        | _ -> []
      end)
    attrs

(* --- the pass --- *)

type state = {
  cfg : Lint_config.t;
  file : string;
  mutable findings : Findings.t list;
  z1_active : bool;
  z3_active : bool;
  mutable guard_depth : int;
  mutable suppressed : string list list;
}

let path_has_prefix ~prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix
  && (String.length path = String.length prefix
     || path.[String.length prefix] = '/')

let emit st ~rule loc msg =
  if not (List.exists (List.mem rule) st.suppressed) then
    st.findings <- Findings.of_location ~rule ~file:st.file loc msg :: st.findings

let check_z1_path st loc comps =
  if st.z1_active then
    List.iter
      (fun c ->
        if List.mem c st.cfg.coordination_modules then
          emit st ~rule:"Z1" loc
            (Printf.sprintf
               "use of %s: coordination primitives are forbidden outside the \
                allowlist (ZCP)"
               c))
      (List.sort_uniq String.compare comps)

(* Top-level mutable state: a module-level binding whose right-hand
   side creates a ref/table/buffer outside any function body is a
   process-global — exactly the shared counter the paper's Fig. 1
   measures the cost of. *)
let mutable_ctor lid =
  match lid_components lid with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ m; f ] | [ "Stdlib"; m; f ] -> begin
      match (m, f) with
      | ("Hashtbl" | "Queue" | "Stack" | "Buffer"), "create" -> Some (m ^ ".create")
      | "Atomic", "make" -> Some "Atomic.make"
      | "Array", "make" -> Some "Array.make"
      | "Bytes", ("create" | "make") -> Some ("Bytes." ^ f)
      | _ -> None
    end
  | _ -> None

let scan_toplevel_mutable st (vb : value_binding) =
  let sub =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              () (* created per call: per-transaction state is fine *)
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when mutable_ctor txt <> None ->
              let what = Option.get (mutable_ctor txt) in
              emit st ~rule:"Z1" e.pexp_loc
                (Printf.sprintf
                   "top-level mutable state (%s): shared globals are forbidden \
                    outside the allowlist (ZCP)"
                   what)
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  sub.expr sub vb.pvb_expr

(* --- Z2: polymorphic comparison / hashing on timestamp-ish values --- *)

let poly_callee (f : expression) =
  match f.pexp_desc with
  | Pexp_ident { txt = Longident.Lident (("=" | "<>" | "compare") as op); _ } ->
      Some op
  | Pexp_ident
      { txt = Longident.Ldot (Lident "Stdlib", (("=" | "<>" | "compare") as op)); _ }
    ->
      Some ("Stdlib." ^ op)
  | Pexp_ident { txt = Longident.Ldot (Lident "Hashtbl", "hash"); _ }
  | Pexp_ident
      { txt = Longident.Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "hash"); _ } ->
      Some "Hashtbl.hash"
  | _ -> None

let name_tainted st s = List.mem (String.lowercase_ascii s) st.cfg.tainted_idents

(* Does the expression syntactically carry a timestamp/tid? Results of
   dedicated [X.compare]/[X.equal]/[X.hash] calls are plain ints/bools,
   so those subtrees are skipped — [Timestamp.compare a b = 0] is fine. *)
let tainted_expr st e0 =
  let found = ref false in
  let sub =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if !found then ()
          else begin
            match e.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
              when (match last_component txt with
                   | Some ("compare" | "equal" | "hash") ->
                       module_components txt <> []
                   | _ -> false) ->
                ()
            | Pexp_ident { txt; _ } ->
                (match last_component txt with
                | Some last when name_tainted st last -> found := true
                | _ -> ());
                if
                  List.exists
                    (fun m -> m = "Timestamp" || m = "Tid")
                    (module_components txt)
                then found := true
            | Pexp_field (_, { txt; _ }) ->
                (match last_component txt with
                | Some last when name_tainted st last -> found := true
                | _ -> ());
                Ast_iterator.default_iterator.expr it e
            | _ -> Ast_iterator.default_iterator.expr it e
          end);
    }
  in
  sub.expr sub e0;
  !found

let check_z2 st (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> begin
      match poly_callee f with
      | Some op when List.exists (fun (_, a) -> tainted_expr st a) args ->
          emit st ~rule:"Z2" e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on a timestamp/tid-bearing expression; use \
                Timestamp.compare / Tid.equal / Tid.hash"
               op)
      | _ -> ()
    end
  | _ -> ()

(* --- Z3: Hashtbl operations in domain-shared modules --- *)

let hashtbl_op (lid : Longident.t) =
  match lid_components lid with
  | [ "Hashtbl"; op ] | [ "Stdlib"; "Hashtbl"; op ] ->
      if op = "create" || op = "hash" || op = "seeded_hash" then None else Some op
  | _ -> None

let check_z3 st (e : expression) =
  if st.z3_active && st.guard_depth = 0 then begin
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> begin
        match hashtbl_op txt with
        | Some op ->
            emit st ~rule:"Z3" e.pexp_loc
              (Printf.sprintf
                 "Hashtbl.%s outside the module's lock guard (%s): domain-shared \
                  tables must be accessed under their shard lock"
                 op
                 (String.concat "/" st.cfg.lock_guards))
        | None -> ()
      end
    | _ -> ()
  end

let is_guard_callee st (f : expression) =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> begin
      match last_component txt with
      | Some n -> List.mem n st.cfg.lock_guards
      | None -> false
    end
  | _ -> false

let rec pattern_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pattern_name p
  | _ -> None

let check_structure cfg ~path structure =
  let z1_active =
    not
      (List.exists
         (fun prefix -> path_has_prefix ~prefix path)
         cfg.Lint_config.coordination_allow)
  in
  let z3_active = List.mem path cfg.Lint_config.shared_modules in
  let st =
    {
      cfg;
      file = path;
      findings = [];
      z1_active;
      z3_active;
      guard_depth = 0;
      suppressed = [];
    }
  in
  let with_suppressed st rules f =
    if rules = [] then f ()
    else begin
      st.suppressed <- rules :: st.suppressed;
      f ();
      st.suppressed <- List.tl st.suppressed
    end
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          with_suppressed st (allowed_rules_of_attrs e.pexp_attributes) (fun () ->
              let bump =
                match e.pexp_desc with
                | Pexp_apply (f, _) when is_guard_callee st f -> true
                | _ -> false
              in
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> check_z1_path st loc (module_components txt)
              | _ -> ());
              check_z2 st e;
              check_z3 st e;
              if bump then st.guard_depth <- st.guard_depth + 1;
              Ast_iterator.default_iterator.expr it e;
              if bump then st.guard_depth <- st.guard_depth - 1));
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) ->
              if st.z1_active then check_z1_path st loc (module_components txt)
          | _ -> ());
          Ast_iterator.default_iterator.typ it t);
      module_expr =
        (fun it m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; loc } ->
              if st.z1_active then check_z1_path st loc (lid_components txt)
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it m);
      value_binding =
        (fun it vb ->
          with_suppressed st (allowed_rules_of_attrs vb.pvb_attributes) (fun () ->
              let bump =
                match pattern_name vb.pvb_pat with
                | Some n -> List.mem n st.cfg.lock_guards
                | None -> false
              in
              if bump then st.guard_depth <- st.guard_depth + 1;
              Ast_iterator.default_iterator.value_binding it vb;
              if bump then st.guard_depth <- st.guard_depth - 1));
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) when st.z1_active ->
              List.iter
                (fun vb ->
                  with_suppressed st
                    (allowed_rules_of_attrs vb.pvb_attributes)
                    (fun () -> scan_toplevel_mutable st vb))
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  iter.structure iter structure;
  List.rev st.findings

(* --- Z4: .mli presence (filesystem, not AST) --- *)

let check_mli ?(file_exists = Sys.file_exists) cfg ~path =
  let applies =
    List.exists
      (fun prefix -> path_has_prefix ~prefix path)
      cfg.Lint_config.mli_required_under
  in
  let exempt =
    List.exists
      (fun suffix -> Filename.check_suffix path suffix)
      cfg.Lint_config.mli_exempt_suffixes
  in
  if applies && (not exempt) && not (file_exists (path ^ "i")) then
    [
      Findings.make ~rule:"Z4" ~file:path ~line:1 ~col:0
        "module has no .mli: every lib/ module must declare its interface";
    ]
  else []
