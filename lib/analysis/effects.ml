(* Effect classification for the interprocedural rules (Z6/Z7/Z8).

   Effects are assigned to *use sites* from curated primitive lists
   ("M.*", "M.f", or a bare "f"), and to unresolved references by a
   conservative module policy:

   - a reference that resolves to a definition in the analyzed file set
     carries whatever its callee's body carries (computed by
     {!Reachability});
   - a reference into a known-benign stdlib module carries nothing
     beyond what the prim lists say about it;
   - a reference into one of this repo's own [Mk_*] libraries whose
     file is outside the analyzed set carries nothing (CI analyzes the
     whole tree, where every internal reference resolves — partial
     runs must not drown in false positives);
   - any other unresolved module reference is treated as effectful
     (Impure) — the "unresolved calls = effectful" conservatism.

   Raising and Blocking are never guessed: they come only from the
   prim lists plus propagation through resolved definitions, so the
   curated lists are the analysis' trusted base. *)

type kind = Impure | Raising | Blocking

let kind_to_string = function
  | Impure -> "impure"
  | Raising -> "raising"
  | Blocking -> "blocking"

(* Module components of an expanded path: everything but the final
   name. *)
let modules_of comps =
  match List.rev comps with [] -> [] | _ :: mods -> List.rev mods

let last_of comps = match List.rev comps with [] -> None | x :: _ -> Some x

(* Does one prim spec match a use path (alias-expanded components)?
   "f"    — an unqualified (or Stdlib-qualified) use of f
   "M.*"  — any use with M among its module components
   "M.f"  — a use of f with M among its module components *)
let prim_matches spec comps =
  match String.split_on_char '.' spec with
  | [ f ] -> begin
      match comps with
      | [ x ] -> x = f
      | [ "Stdlib"; x ] -> x = f
      | _ -> false
    end
  | [ m; "*" ] -> List.mem m (modules_of comps)
  | [ m; f ] -> last_of comps = Some f && List.mem m (modules_of comps)
  | _ -> false

let match_prims prims comps =
  List.filter (fun spec -> prim_matches spec comps) prims

(* Stdlib modules whose operations are pure/total enough not to count
   as "unknown effectful". Specific members can still be flagged by
   the prim lists (Sys.time, Hashtbl.find, Mutex.lock, ...): prim
   matching runs regardless of this set. *)
let benign_modules =
  [
    "Stdlib";
    "List";
    "ListLabels";
    "Array";
    "ArrayLabels";
    "String";
    "StringLabels";
    "Bytes";
    "BytesLabels";
    "Char";
    "Uchar";
    "Int";
    "Int32";
    "Int64";
    "Nativeint";
    "Float";
    "Bool";
    "Unit";
    "Option";
    "Result";
    "Either";
    "Fun";
    "Seq";
    "Map";
    "Set";
    "Hashtbl";
    "Queue";
    "Stack";
    "Buffer";
    "Printf";
    "Format";
    "Scanf";
    "Lazy";
    "Filename";
    "Complex";
    "Bigarray";
    "Atomic";
    "Mutex";
    "Condition";
    "Semaphore";
    "Sys";
    "Random";
    "Gc";
    "Printexc";
    "Arg";
    "Marshal";
    "Digest";
    "Weak";
    "Ephemeron";
    "Obj";
    "Callback";
    "Lexing";
    "Parsing";
  ]

let is_benign_module m = List.mem m benign_modules

(* This repo's library namespace: references into Mk_* that do not
   resolve (file outside the analyzed set) are internal, not unknown —
   they are checked whenever the full tree is analyzed. *)
let is_internal_module m =
  String.length m >= 3 && String.sub m 0 3 = "Mk_"

(* Classification of an *unresolved* use (no definition found in the
   analyzed files): which effects does it carry on its own? *)
let classify_unresolved ~impure_prims ~raising_prims ~blocking_prims comps =
  let from_prims =
    (if match_prims impure_prims comps <> [] then [ Impure ] else [])
    @ (if match_prims raising_prims comps <> [] then [ Raising ] else [])
    @ if match_prims blocking_prims comps <> [] then [ Blocking ] else []
  in
  if from_prims <> [] then from_prims
  else begin
    match modules_of comps with
    | [] -> [] (* bare unqualified name: a local or pervasive, benign *)
    | head :: _ ->
        if is_benign_module head || is_internal_module head then [] else [ Impure ]
  end
