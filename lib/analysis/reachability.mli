(** The interprocedural rule families over a linked call graph:

    - [Z5] layering — no file under a scope prefix may transitively
      depend on a forbidden path prefix or external module;
    - [Z6] boundary purity — no definition in a transport-pure file may
      transitively reach an impure primitive or unresolved non-benign
      module;
    - [Z7] wire totality — no raising primitive reachable from a
      configured decode entry point;
    - [Z8] hot-path blocking — no blocking primitive reachable from a
      configured hot-path entry point.

    Every finding carries a deterministic call-chain witness. Entry
    points whose file is outside the analyzed set are skipped, so
    partial-tree runs stay quiet; an entry naming a missing definition
    in an analyzed file is itself a finding (it means the config is
    stale). *)

val check :
  config:Lint_config.t -> program:Callgraph.program -> Lint_findings.t list
(** All of Z5–Z8; unsorted (the engine sorts the combined report). *)
