(** Effect classification for the interprocedural rules (Z6/Z7/Z8):
    curated primitive lists plus a conservative policy for unresolved
    module references. See DESIGN.md §7. *)

type kind = Impure | Raising | Blocking

val kind_to_string : kind -> string

val modules_of : string list -> string list
(** Module components of an expanded use path (all but the last). *)

val last_of : string list -> string option

val prim_matches : string -> string list -> bool
(** [prim_matches spec comps] — does the prim spec (["f"], ["M.*"] or
    ["M.f"]) match the alias-expanded path components? *)

val match_prims : string list -> string list -> string list
(** All specs in the list matching the path. *)

val is_benign_module : string -> bool
(** Stdlib modules whose unlisted members carry no effects. *)

val is_internal_module : string -> bool
(** [Mk_*]: this repo's own libraries — unresolved references into them
    are "not analyzed here", not "unknown effectful". *)

val classify_unresolved :
  impure_prims:string list ->
  raising_prims:string list ->
  blocking_prims:string list ->
  string list ->
  kind list
(** Effects carried by a use that resolves to no analyzed definition:
    prim-list matches first; otherwise [Impure] for a non-benign,
    non-internal module head; otherwise nothing. *)
