(** Lint driver: collect [.ml] files, parse with compiler-libs, apply
    {!Lint_rules}, report deterministically. *)

type result = { findings : Lint_findings.t list; files : int }

val lint_file : Lint_config.t -> string -> Lint_findings.t list
(** All rules over a single file (unsorted). A file that does not parse
    yields one [PARSE] finding. *)

val run : config:Lint_config.t -> paths:string list -> result
(** [paths] are files or directories (recursed, [_build] and dotfiles
    skipped, files sorted), relative to the current directory; findings
    come back sorted by file/line/col/rule. *)

val render : result -> string
(** One line per finding plus a summary line. *)
