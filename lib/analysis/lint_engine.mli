(** Lint driver: collect [.ml] files, parse each once with
    compiler-libs, apply the per-file rules ({!Lint_rules}, Z1–Z4) and
    the whole-program reachability rules ({!Reachability}, Z5–Z8),
    report deterministically. *)

type result = { findings : Lint_findings.t list; files : int }

val lint_file : Lint_config.t -> string -> Lint_findings.t list
(** Per-file rules only (Z1–Z4) over a single file (unsorted). A file
    that does not parse yields one [PARSE] finding. *)

val run : config:Lint_config.t -> paths:string list -> result
(** [paths] are files or directories (recursed, [_build] and dotfiles
    skipped, files sorted), relative to the current directory; findings
    come back sorted by file/line/col/rule. The whole-program rules see
    exactly the collected file set: entry points and boundary files
    outside it are skipped. *)

val filter_rules : string list -> result -> result
(** Keep only findings whose rule id is in the list (case-insensitive);
    [PARSE] findings always survive. *)

val render : result -> string
(** One line per finding (plus indented call-chain hops) and a summary
    line. *)

val render_json : result -> string
(** The same report as a single-line JSON object:
    [{"files":N,"findings":[{rule,file,line,col,msg,chain:[...]},...]}]. *)
