type t = {
  coordination_modules : string list;
  coordination_allow : string list;
  tainted_idents : string list;
  shared_modules : string list;
  lock_guards : string list;
  mli_required_under : string list;
  mli_exempt_suffixes : string list;
}

let default =
  {
    coordination_modules =
      [ "Mutex"; "Atomic"; "Domain"; "Condition"; "Semaphore"; "Thread" ];
    coordination_allow =
      [ "lib/storage"; "lib/multicore"; "lib/baselines"; "lib/analysis"; "bench" ];
    tainted_idents = [ "ts"; "wts"; "rts"; "tid"; "timestamp"; "tsa"; "tsb" ];
    shared_modules = [ "lib/storage/vstore.ml" ];
    lock_guards = [ "with_shard"; "with_entry" ];
    mli_required_under = [ "lib" ];
    mli_exempt_suffixes = [ "_intf.ml" ];
  }

exception Parse_error of string

(* --- A minimal TOML subset: [section] headers, `key = "str"` and
   `key = ["a", "b"]`, '#' comments. That is all the config needs, and
   hand-rolling it keeps the linter dependency-free (the container has
   no toml package). --- *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do
    incr i
  done;
  while !j >= !i && is_space s.[!j] do
    decr j
  done;
  String.sub s !i (!j - !i + 1)

let strip_comment line =
  (* '#' outside quotes starts a comment. *)
  let buf = Buffer.create (String.length line) in
  let in_str = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_str := not !in_str;
         if c = '#' && not !in_str then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let parse_string_list ~line s =
  let s = strip s in
  let fail () =
    raise
      (Parse_error (Printf.sprintf "line %d: expected a string or [\"...\"] list" line))
  in
  let parse_quoted s =
    let s = strip s in
    let n = String.length s in
    if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then fail ()
    else String.sub s 1 (n - 2)
  in
  if s = "" then fail ()
  else if s.[0] = '[' then begin
    let n = String.length s in
    if s.[n - 1] <> ']' then fail ();
    let inner = strip (String.sub s 1 (n - 2)) in
    if inner = "" then []
    else List.map parse_quoted (String.split_on_char ',' inner)
  end
  else [ parse_quoted s ]

let apply cfg ~section ~key ~value ~line =
  match (section, key) with
  | "z1", "modules" -> { cfg with coordination_modules = value }
  | "z1", "allow" -> { cfg with coordination_allow = value }
  | "z2", "tainted" -> { cfg with tainted_idents = value }
  | "z3", "shared" -> { cfg with shared_modules = value }
  | "z3", "guards" -> { cfg with lock_guards = value }
  | "z4", "require_under" -> { cfg with mli_required_under = value }
  | "z4", "exempt" -> { cfg with mli_exempt_suffixes = value }
  | _ ->
      raise
        (Parse_error
           (Printf.sprintf "line %d: unknown key %s.%s" line section key))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let cfg = ref default in
  let section = ref "" in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = strip (strip_comment raw) in
      if line = "" then ()
      else if line.[0] = '[' then begin
        let n = String.length line in
        if n < 3 || line.[n - 1] <> ']' then
          raise (Parse_error (Printf.sprintf "line %d: malformed section" lineno));
        section := String.sub line 1 (n - 2)
      end
      else begin
        match String.index_opt line '=' with
        | None ->
            raise
              (Parse_error (Printf.sprintf "line %d: expected key = value" lineno))
        | Some eq ->
            let key = strip (String.sub line 0 eq) in
            let value =
              parse_string_list ~line:lineno
                (String.sub line (eq + 1) (String.length line - eq - 1))
            in
            cfg := apply !cfg ~section:!section ~key ~value ~line:lineno
      end)
    lines;
  !cfg

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
