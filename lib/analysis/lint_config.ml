type t = {
  coordination_modules : string list;
  coordination_allow : string list;
  tainted_idents : string list;
  shared_modules : string list;
  lock_guards : string list;
  mli_required_under : string list;
  mli_exempt_suffixes : string list;
  layering : (string * string list) list;
  layering_allow : string list;
  pure_files : string list;
  pure_allow : string list;
  impure_prims : string list;
  total_entries : string list;
  raising_prims : string list;
  total_allow : string list;
  nonblock_entries : string list;
  blocking_prims : string list;
  nonblock_allow : string list;
}

(* The default prim lists are the curated ground truth of the effect
   analysis: Raising and Blocking classifications come only from here
   (plus local propagation), never from guessing about unresolved
   modules — see DESIGN.md §7. *)

let default_impure_prims =
  [
    "Unix.*";
    "Domain.*";
    "Thread.*";
    "Sys.time";
    "Sys.getenv";
    "Sys.getenv_opt";
    "Random.self_init";
    "Random.init";
    "print_string";
    "print_endline";
    "print_newline";
    "print_int";
    "print_char";
    "print_float";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "output_string";
    "output_char";
    "output_bytes";
    "open_in";
    "open_in_bin";
    "open_out";
    "open_out_bin";
    "read_line";
    "read_int";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
  ]

let default_raising_prims =
  [
    "raise";
    "raise_notrace";
    "failwith";
    "invalid_arg";
    "exit";
    "assert";
    "List.hd";
    "List.tl";
    "List.nth";
    "List.find";
    "List.assoc";
    "Option.get";
    "Hashtbl.find";
    "Array.get";
    "Array.set";
    "String.get";
    "String.sub";
    "String.get_int64_le";
    "String.get_int32_le";
    "Bytes.get";
    "Bytes.set";
    "Char.chr";
    "int_of_string";
    "float_of_string";
    "Int64.of_string";
    "Int32.of_string";
  ]

(* [Mailbox.push] (bounded spin on try_push) is deliberately absent:
   spinning under backpressure is the sanctioned ZCP idiom; parking is
   what the hot path must never do. [Mailbox.pop] parks. *)
let default_blocking_prims =
  [
    "Mutex.lock";
    "Condition.wait";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.select";
    "Unix.recv";
    "Unix.recvfrom";
    "Unix.read";
    "Unix.accept";
    "Unix.connect";
    "Unix.wait";
    "Unix.waitpid";
    "Thread.join";
    "Domain.join";
    "Spawn.join";
    "Spawn.parallel";
    "Mailbox.pop";
  ]

let default =
  {
    coordination_modules =
      [ "Mutex"; "Atomic"; "Domain"; "Condition"; "Semaphore"; "Thread" ];
    coordination_allow =
      [ "lib/storage"; "lib/multicore"; "lib/baselines"; "lib/analysis"; "bench" ];
    tainted_idents = [ "ts"; "wts"; "rts"; "tid"; "timestamp"; "tsa"; "tsb" ];
    shared_modules = [ "lib/storage/vstore.ml" ];
    lock_guards = [ "with_shard"; "with_entry" ];
    mli_required_under = [ "lib" ];
    mli_exempt_suffixes = [ "_intf.ml" ];
    layering = [];
    layering_allow = [];
    pure_files = [];
    pure_allow = [];
    impure_prims = default_impure_prims;
    total_entries = [];
    raising_prims = default_raising_prims;
    total_allow = [];
    nonblock_entries = [];
    blocking_prims = default_blocking_prims;
    nonblock_allow = [];
  }

exception Parse_error of string

(* --- A minimal TOML subset: [section] headers, `key = "str"` and
   `key = ["a", "b"]`, '#' comments. That is all the config needs, and
   hand-rolling it keeps the linter dependency-free (the container has
   no toml package). --- *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do
    incr i
  done;
  while !j >= !i && is_space s.[!j] do
    decr j
  done;
  String.sub s !i (!j - !i + 1)

let strip_comment line =
  (* '#' outside quotes starts a comment. *)
  let buf = Buffer.create (String.length line) in
  let in_str = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_str := not !in_str;
         if c = '#' && not !in_str then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let parse_string_list ~line s =
  let s = strip s in
  let fail () =
    raise
      (Parse_error (Printf.sprintf "line %d: expected a string or [\"...\"] list" line))
  in
  let parse_quoted s =
    let s = strip s in
    let n = String.length s in
    if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then fail ()
    else String.sub s 1 (n - 2)
  in
  if s = "" then fail ()
  else if s.[0] = '[' then begin
    let n = String.length s in
    if s.[n - 1] <> ']' then fail ();
    let inner = strip (String.sub s 1 (n - 2)) in
    if inner = "" then []
    else
      (* trailing commas are fine: multi-line lists end with one *)
      String.split_on_char ',' inner
      |> List.filter_map (fun seg ->
             let seg = strip seg in
             if seg = "" then None else Some (parse_quoted seg))
  end
  else [ parse_quoted s ]

(* A Z5 rule string: "SCOPE : FORBIDDEN FORBIDDEN ...". The scope is a
   path prefix; each forbidden entry is a path prefix (contains '/')
   or an external module name. *)
let parse_layering_rule ~line s =
  match String.index_opt s ':' with
  | None ->
      raise
        (Parse_error
           (Printf.sprintf "line %d: z5 rule needs \"scope : forbidden...\"" line))
  | Some i ->
      let scope = strip (String.sub s 0 i) in
      let rhs = strip (String.sub s (i + 1) (String.length s - i - 1)) in
      let forbidden =
        String.split_on_char ' ' rhs |> List.filter (fun x -> x <> "")
      in
      if scope = "" || forbidden = [] then
        raise
          (Parse_error
             (Printf.sprintf "line %d: z5 rule needs \"scope : forbidden...\"" line))
      else (scope, forbidden)

let apply cfg ~section ~key ~value ~line =
  match (section, key) with
  | "z1", "modules" -> { cfg with coordination_modules = value }
  | "z1", "allow" -> { cfg with coordination_allow = value }
  | "z2", "tainted" -> { cfg with tainted_idents = value }
  | "z3", "shared" -> { cfg with shared_modules = value }
  | "z3", "guards" -> { cfg with lock_guards = value }
  | "z4", "require_under" -> { cfg with mli_required_under = value }
  | "z4", "exempt" -> { cfg with mli_exempt_suffixes = value }
  | "z5", "rules" ->
      { cfg with layering = List.map (parse_layering_rule ~line) value }
  | "z5", "allow" -> { cfg with layering_allow = value }
  | "z6", "pure" -> { cfg with pure_files = value }
  | "z6", "impure" -> { cfg with impure_prims = value }
  | "z6", "allow" -> { cfg with pure_allow = value }
  | "z7", "entries" -> { cfg with total_entries = value }
  | "z7", "raising" -> { cfg with raising_prims = value }
  | "z7", "allow" -> { cfg with total_allow = value }
  | "z8", "entries" -> { cfg with nonblock_entries = value }
  | "z8", "blocking" -> { cfg with blocking_prims = value }
  | "z8", "allow" -> { cfg with nonblock_allow = value }
  | _ ->
      raise
        (Parse_error
           (Printf.sprintf "line %d: unknown key %s.%s" line section key))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let cfg = ref default in
  let section = ref "" in
  (* A list value may span lines: accumulate from `key = [` until the
     closing `]`. *)
  let pending = ref None in
  let feed ~key ~value ~lineno =
    cfg := apply !cfg ~section:!section ~key ~value:(parse_string_list ~line:lineno value) ~line:lineno
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = strip (strip_comment raw) in
      match !pending with
      | Some (key, start, buf) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf line;
          if line <> "" && line.[String.length line - 1] = ']' then begin
            pending := None;
            feed ~key ~value:(Buffer.contents buf) ~lineno:start
          end
      | None ->
          if line = "" then ()
          else if line.[0] = '[' then begin
            let n = String.length line in
            if n < 3 || line.[n - 1] <> ']' then
              raise
                (Parse_error (Printf.sprintf "line %d: malformed section" lineno));
            section := String.sub line 1 (n - 2)
          end
          else begin
            match String.index_opt line '=' with
            | None ->
                raise
                  (Parse_error
                     (Printf.sprintf "line %d: expected key = value" lineno))
            | Some eq ->
                let key = strip (String.sub line 0 eq) in
                let value =
                  strip (String.sub line (eq + 1) (String.length line - eq - 1))
                in
                if
                  value <> ""
                  && value.[0] = '['
                  && value.[String.length value - 1] <> ']'
                then begin
                  let buf = Buffer.create 128 in
                  Buffer.add_string buf value;
                  pending := Some (key, lineno, buf)
                end
                else feed ~key ~value ~lineno
          end)
    lines;
  (match !pending with
  | Some (key, start, _) ->
      raise
        (Parse_error (Printf.sprintf "line %d: unterminated list for %s" start key))
  | None -> ());
  !cfg

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
