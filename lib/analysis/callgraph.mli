(** Conservative syntactic call graph over the analyzed files: per-file
    def/use summaries linked into a whole-program graph. Unresolved
    references stay unresolved (classified by {!Effects}); resolution
    is by final name component and returns {e all} candidates, so the
    graph over-approximates — the safe direction for the "must not
    reach" rules (Z5–Z8). See DESIGN.md §7. *)

type use = { u_comps : string list; u_loc : Location.t; u_allow : string list }
(** One value reference: raw path components as written, location, and
    the [[@mk_lint.allow]] rules lexically in force at the site. *)

type def = {
  d_name : string;  (** dotted path within the file, e.g. ["launch.deliver"] *)
  d_loc : Location.t;
  d_allow : string list;
  mutable d_uses : use list;
}

type mref = { m_comps : string list; m_loc : Location.t }
(** A module-level reference (type, constructor, field, open, module
    expr): a file dependency that is not a call. *)

type summary = {
  s_path : string;
  mutable s_aliases : (string * string list) list;
  mutable s_opens : string list list;
  mutable s_defs : def list;
  mutable s_mrefs : mref list;
}

val last_segment : string -> string
(** Final component of a dotted definition name. *)

val summarize : path:string -> Parsetree.structure -> summary

type dep_target = Dep_file of string | Dep_external of string

type resolution = {
  r_targets : int list;  (** ids of analyzed defs this use may call *)
  r_comps : string list;  (** alias/open-expanded path components *)
  r_deps : dep_target list;  (** file-level dependencies established *)
  r_unknown : string option;
      (** unresolved head module that is neither benign stdlib nor an
          internal [Mk_*] library — treated as effectful *)
}

type program

val link : libmap:(string * string) list -> summary list -> program
(** [libmap] maps wrapped-library module names (["Mk_wire"]) to their
    source directories (["lib/wire"]), derived from [dune] files. *)

val files : program -> string list
(** Analyzed file paths, sorted. *)

val has_file : program -> string -> bool
val def : program -> int -> def
val def_file : program -> int -> string
val def_uses : program -> int -> (use * resolution) list
val defs_in_file : program -> string -> int list
(** Def ids in source order; [[]] for a file outside the program. *)

val find_defs : program -> file:string -> name:string -> int list
(** Defs in [file] whose final name component is [name]. *)

val loc_key : Location.t -> int * int
(** (line, col) of a location's start — a stable dedup key. *)

val file_deps : program -> string -> (dep_target * Location.t) list
(** Distinct dependency targets of a file, each with the earliest
    location establishing it, sorted by target (deterministic). *)
