(** The ZCP-conformance rules (Z1–Z4), as passes over one file.

    Rule ids are stable: they appear in findings, in CI output, and in
    [[@mk_lint.allow "..."]] suppressions.

    - [Z1] — coordination primitives ([Mutex]/[Atomic]/[Domain]/...)
      or top-level mutable state outside the configured allowlist.
    - [Z2] — polymorphic [=]/[<>]/[compare]/[Hashtbl.hash] applied to a
      timestamp- or tid-bearing expression (syntactic taint by
      identifier/field name and [Timestamp.]/[Tid.] paths).
    - [Z3] — in a configured domain-shared module, a [Hashtbl]
      operation lexically outside the module's lock-guard helper.
    - [Z4] — a [.ml] under the configured prefixes with no [.mli]. *)

val lid_components : Longident.t -> string list
(** Flattened path components of a longident, outermost first. *)

val module_components : Longident.t -> string list
(** Module components of a value path: everything but the final name. *)

val allowed_rules_of_attrs : Parsetree.attributes -> string list
(** Rule ids named by [[@mk_lint.allow "Z1 Z3"]] attributes. *)

val path_has_prefix : prefix:string -> string -> bool
(** ['/']-component-aware path prefix test (["lib/wire"] matches
    ["lib/wire/codec.ml"] but not ["lib/wire2/x.ml"]). *)

val pattern_name : Parsetree.pattern -> string option
(** The variable bound by a pattern, looking through constraints. *)

val check_structure :
  Lint_config.t -> path:string -> Parsetree.structure -> Lint_findings.t list
(** AST rules (Z1–Z3) over one parsed implementation. [path] is the
    repo-relative path used both for findings and for allowlist
    matching. *)

val check_mli :
  ?file_exists:(string -> bool) ->
  Lint_config.t ->
  path:string ->
  Lint_findings.t list
(** Z4 for one [.ml] path. [file_exists] is injectable for tests. *)
