(** The ZCP-conformance rules (Z1–Z4), as passes over one file.

    Rule ids are stable: they appear in findings, in CI output, and in
    [[@mk_lint.allow "..."]] suppressions.

    - [Z1] — coordination primitives ([Mutex]/[Atomic]/[Domain]/...)
      or top-level mutable state outside the configured allowlist.
    - [Z2] — polymorphic [=]/[<>]/[compare]/[Hashtbl.hash] applied to a
      timestamp- or tid-bearing expression (syntactic taint by
      identifier/field name and [Timestamp.]/[Tid.] paths).
    - [Z3] — in a configured domain-shared module, a [Hashtbl]
      operation lexically outside the module's lock-guard helper.
    - [Z4] — a [.ml] under the configured prefixes with no [.mli]. *)

val check_structure :
  Lint_config.t -> path:string -> Parsetree.structure -> Lint_findings.t list
(** AST rules (Z1–Z3) over one parsed implementation. [path] is the
    repo-relative path used both for findings and for allowlist
    matching. *)

val check_mli :
  ?file_exists:(string -> bool) ->
  Lint_config.t ->
  path:string ->
  Lint_findings.t list
(** Z4 for one [.ml] path. [file_exists] is injectable for tests. *)
