(** Lint configuration: the rule parameters and the coordination
    allowlist, normally read from the checked-in [mk_lint.toml]. *)

type t = {
  coordination_modules : string list;
      (** Z1: module names whose use means cross-core coordination. *)
  coordination_allow : string list;
      (** Z1: path prefixes (repo-relative, '/'-separated) where
          coordination is sanctioned by the paper's design. *)
  tainted_idents : string list;
      (** Z2: identifier/field names that mark a value as timestamp- or
          tid-bearing (compared lowercase, exact match). *)
  shared_modules : string list;
      (** Z3: domain-shared files whose [Hashtbl] operations must be
          lexically guarded. *)
  lock_guards : string list;
      (** Z3: names of the guard helpers ([with_shard], ...). *)
  mli_required_under : string list;
      (** Z4: path prefixes whose [.ml] files must ship an [.mli]. *)
  mli_exempt_suffixes : string list;
      (** Z4: basename suffixes exempt from the [.mli] requirement
          (module-type-only files such as [_intf.ml]). *)
}

val default : t

exception Parse_error of string

val of_string : string -> t
(** Parse a TOML-subset config text; unknown keys raise {!Parse_error}
    so typos cannot silently disable a rule. Starts from {!default}, so
    a config file only overrides the keys it mentions. *)

val load : string -> t
(** [load path] — {!of_string} on the file contents. *)
