(** Lint configuration: the rule parameters and the coordination
    allowlist, normally read from the checked-in [mk_lint.toml]. *)

type t = {
  coordination_modules : string list;
      (** Z1: module names whose use means cross-core coordination. *)
  coordination_allow : string list;
      (** Z1: path prefixes (repo-relative, '/'-separated) where
          coordination is sanctioned by the paper's design. *)
  tainted_idents : string list;
      (** Z2: identifier/field names that mark a value as timestamp- or
          tid-bearing (compared lowercase, exact match). *)
  shared_modules : string list;
      (** Z3: domain-shared files whose [Hashtbl] operations must be
          lexically guarded. *)
  lock_guards : string list;
      (** Z3: names of the guard helpers ([with_shard], ...). *)
  mli_required_under : string list;
      (** Z4: path prefixes whose [.ml] files must ship an [.mli]. *)
  mli_exempt_suffixes : string list;
      (** Z4: basename suffixes exempt from the [.mli] requirement
          (module-type-only files such as [_intf.ml]). *)
  layering : (string * string list) list;
      (** Z5: [(scope, forbidden)] pairs — no file under the [scope]
          path prefix may transitively depend on any [forbidden] target
          (a path prefix when it contains '/', otherwise an external
          module name such as ["Unix"]). *)
  layering_allow : string list;
      (** Z5: path prefixes exempt as dependency {e sources} (their
          outgoing deps are not checked; they still count as targets). *)
  pure_files : string list;
      (** Z6: transport-pure boundary files — no definition in them may
          transitively reach an impure primitive. *)
  pure_allow : string list;
      (** Z6: path prefixes whose defs are exempt even when reached. *)
  impure_prims : string list;
      (** Z6: impure primitives, as ["M.*"], ["M.f"] or bare ["f"]. *)
  total_entries : string list;
      (** Z7: ["file:def"] decode entry points that must be total. *)
  raising_prims : string list;
      (** Z7: raising primitives, same syntax as {!impure_prims}. *)
  total_allow : string list;
      (** Z7: path prefixes whose reachable raises are accepted (layers
          below the wire boundary that only see validated input). *)
  nonblock_entries : string list;
      (** Z8: ["file:def"] hot-path entry points that must not block. *)
  blocking_prims : string list;
      (** Z8: blocking primitives, same syntax as {!impure_prims}. *)
  nonblock_allow : string list;
      (** Z8: path prefixes whose reachable blocking is sanctioned
          (shim boundary, shard locks). *)
}

val default : t

exception Parse_error of string

val of_string : string -> t
(** Parse a TOML-subset config text; unknown keys raise {!Parse_error}
    so typos cannot silently disable a rule. Starts from {!default}, so
    a config file only overrides the keys it mentions. *)

val load : string -> t
(** [load path] — {!of_string} on the file contents. *)
