(** A single lint finding: stable rule id + location + message. *)

type t = { rule : string; file : string; line : int; col : int; msg : string }

val make : rule:string -> file:string -> line:int -> col:int -> string -> t

val of_location : rule:string -> file:string -> Location.t -> string -> t
(** Location of the offending AST node within [file]. *)

val compare : t -> t -> int
(** Total order: file, line, column, rule — report order is
    deterministic. *)

val to_string : t -> string
(** [file:line:col: [RULE] message]. *)
