(** A single lint finding: stable rule id + location + message, plus an
    optional call-chain witness for the interprocedural rules. *)

type hop = { what : string; hop_file : string; hop_line : int; hop_col : int }
(** One step of a call-chain witness: [what] happens at
    [hop_file:hop_line:hop_col] (a definition reached, a call made, or
    the offending primitive itself). *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  msg : string;
  chain : hop list;
}

val hop_of_location : what:string -> file:string -> Location.t -> hop

val make :
  ?chain:hop list -> rule:string -> file:string -> line:int -> col:int -> string -> t

val of_location :
  ?chain:hop list -> rule:string -> file:string -> Location.t -> string -> t
(** Location of the offending AST node within [file]. *)

val compare : t -> t -> int
(** Order: file, line, column, rule — report order is deterministic,
    and two findings for the same rule at the same site are duplicates
    (the message and chain are a witness, not identity). *)

val to_string : t -> string
(** [file:line:col: [RULE] message], followed by one indented
    ["    via ..."] line per chain hop. *)
