(** Dynamic lock-discipline and ownership checker — layer 2 of the
    ZCP-conformance tooling ([Mk_check]).

    The static lint ([Mk_check_lint]) proves lexical properties; this
    module checks the runtime ones it cannot see: that the domain
    mutating a [Vstore] entry actually holds that entry's lock (or the
    shard lock for table operations), and that a [Trecord] partition is
    only touched by the core that owns it.

    Cost model (the [Mk_obs] tracing pattern): disabled — the default —
    every function here is one bool load and an untaken branch; no
    allocation, no synchronization. Enable explicitly with {!enable} or
    by setting [MK_CHECK=1] in the environment before start-up. The
    flag must be flipped before domains are spawned. *)

exception Violation of string
(** Raised (only when enabled) at the faulty call site when a guarded
    mutation runs without its lock or a partition is touched by a
    foreign core. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** {2 Lock holdership}

    A [slot] shadows one mutex. The code path that takes the mutex
    calls {!acquired}/{!released}; every mutation the mutex protects
    calls {!check}. *)

type slot

val slot : string -> slot
(** [slot name] — [name] appears in violation messages. *)

val acquired : slot -> unit
(** Record the calling domain as holder. Call with the mutex held. *)

val released : slot -> unit
(** Clear the holder. Call before releasing the mutex. *)

val check : slot -> what:string -> unit
(** Assert the calling domain is the recorded holder; raises
    {!Violation} otherwise (when enabled). *)

(** {2 Partition ownership}

    The simulator dispatches replica work to logical cores; trecord
    partitions are single-owner per core. Handlers bracket their body
    with {!with_core}; [Trecord] operations call {!check_partition}. *)

val with_core : int -> (unit -> 'a) -> 'a
(** Run [f] with the ambient actor set to [core] (per-domain; nests and
    restores on exit). Identity when disabled. *)

val current_core : unit -> int option
(** Ambient actor, if any ([None] when disabled). *)

val check_partition : core:int -> what:string -> unit
(** Assert that, if an ambient actor is set, it matches [core]. Code
    running outside any {!with_core} scope (recovery merges, tests) is
    not constrained. *)
