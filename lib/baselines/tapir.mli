(** The TAPIR-emulating baseline (§6.1): no cross-replica
    coordination, but cross-core coordination remains.

    Like Meerkat, replicas are leaderless, clients pick timestamps,
    and the coordinator uses the same fast/slow-path quorum rule. The
    difference is the transaction record: one {e shared} record per
    replica, protected by a mutex (the paper's prototype uses a C++
    [std::mutex]). Every validation and every write-phase message
    serializes on that mutex, so per-replica throughput caps at
    roughly 1 / (2 × critical section) no matter how many cores the
    replica has — the Fig. 4 bottleneck at ~8 threads. *)

type t

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> Mk_cluster.Cluster.config -> t
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val server_busy_fraction : t -> float
val read_committed : t -> replica:int -> key:int -> int option
val record_mutex_busy : t -> float array
(** Total hold time of each replica's record mutex — the contended
    resource (observability for tests/benches). *)
