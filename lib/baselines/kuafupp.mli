(** KuaFu++ (§6.1): the classic log-based primary-backup baseline that
    violates both halves of ZCP.

    The primary orders committing transactions with a {e shared atomic
    counter}, validates them with the same OCC checks as the other
    systems, and appends each committed transaction to a {e shared
    log} that is also the replication channel; backups consume the log
    concurrently, but every append/consume passes through the log's
    mutex. Unlike the original KuaFu it needs no replay barriers —
    OCC validation at the primary already rejects transactions that
    observed inconsistent backup reads (hence the "++").

    Cross-core cost: counter + log critical sections serialize all
    primary (and backup) cores — the Fig. 4 cap near 0.6 M txn/s at ~6
    threads. Cross-replica cost: the client reply waits for a backup
    ack, an extra message delay per transaction. *)

type t

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> Mk_cluster.Cluster.config -> t
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val server_busy_fraction : t -> float
val read_committed : t -> replica:int -> key:int -> int option

val log_length : t -> int
(** Committed transactions appended to the shared log. *)

val counter_busy : t -> float
val log_busy : t -> float array
(** Hold time of the atomic counter / each replica's log mutex. *)
