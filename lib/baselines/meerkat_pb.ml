module Engine = Mk_sim.Engine
module Network = Mk_net.Network
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span

let primary = 0

type t = {
  cluster : Cluster.t;
  quorum : Quorum.t;
  replicas : Replica.t array;
}

let create ?obs engine cfg =
  let cluster = Cluster.create ?obs engine cfg in
  let quorum = Quorum.create ~n:cfg.Cluster.n_replicas in
  let replicas =
    Array.init cfg.Cluster.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:cfg.Cluster.threads)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.Cluster.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  { cluster; quorum; replicas }

let name _ = "MEERKAT-PB"
let threads t = t.cluster.Cluster.cfg.Cluster.threads
let obs t = Cluster.obs t.cluster
let counters t = Cluster.counters t.cluster
let server_busy_fraction t = Cluster.server_busy_fraction t.cluster
let net t = t.cluster.Cluster.net
let costs t = t.cluster.Cluster.cfg.Cluster.costs
let core t r c = t.cluster.Cluster.cores.(r).(c)

(* One transaction in flight at the primary. *)
type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  core_id : int;
  mutable backup_acks : int;
  mutable replied : bool;
}

let submit t ~client (req : Intf.txn_request) ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  let alive r = not (Replica.is_crashed t.replicas.(r)) in
  let exec_started = Engine.now t.cluster.Cluster.engine in
  Cluster.execute_reads t.cluster ctx ~keys:req.reads ~read ~alive (fun read_set _values ->
      if Array.length req.reads > 0 then
        Obs.span (Cluster.obs t.cluster) Span.Execute ~tid:ctx.Cluster.cid
          ~start:exec_started ();
      let tid = Cluster.fresh_tid t.cluster ctx in
      let write_set =
        Array.to_list
          (Array.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) req.writes)
      in
      let txn = Txn.make ~tid ~read_set ~write_set in
      let ts = Cluster.fresh_timestamp t.cluster ctx in
      let core_id = Timestamp.Tid.hash tid mod threads t in
      let a = { txn; ts; core_id; backup_acks = 0; replied = false } in
      let n = t.cluster.Cluster.cfg.Cluster.n_replicas in
      let needed_acks = Quorum.majority t.quorum - 1 (* primary counts itself *) in
      let finish_commit () =
        if not a.replied then begin
          a.replied <- true;
          Cluster.note_decision t.cluster ~committed:true ~fast:false;
          Network.send_to_client (net t) (fun () -> on_done ~committed:true)
        end
      in
      (* Backup ack arriving at the primary's matched core. *)
      let on_backup_ack () =
        Network.send_work_to_core (net t) ~dst:(core t primary a.core_id) ~cost:0.2
          (fun () ->
            a.backup_acks <- a.backup_acks + 1;
            if a.backup_acks >= needed_acks then finish_commit ())
      in
      (* The client's commit request, steered to the chosen core of the
         primary. Validation cost plus the replication fan-out
         (marshalling + ack handling) paid by the primary alone. *)
      let validate_cost =
        Costs.validate (costs t) ~nkeys:(Txn.nkeys txn) +. Cluster.tx_cpu t.cluster
      in
      let validate_sent = Engine.now t.cluster.Cluster.engine in
      Network.send_work_to_core (net t) ~dst:(core t primary a.core_id)
        ~cost:validate_cost (fun () ->
          let verdict =
            Replica.handle_validate t.replicas.(primary) ~core:a.core_id ~txn ~ts
          in
          (* The validation round is a single primary-side check. *)
          Obs.span (Cluster.obs t.cluster) Span.Validate ~tid:ctx.Cluster.cid
            ~start:validate_sent ();
          match verdict with
          | None | Some Txn.Validated_abort ->
              (* Primary-only decision: abort immediately; nothing was
                 replicated, so nothing needs undoing at backups. *)
              ignore
                (Replica.handle_commit t.replicas.(primary) ~core:a.core_id ~txn ~ts
                   ~commit:false);
              Cluster.note_decision t.cluster ~committed:false ~fast:true;
              Network.send_to_client (net t) (fun () -> on_done ~committed:false)
          | Some _ ->
              (* Commit decided. Apply at the primary, then replicate to
                 every backup's matched core; reply once a majority of
                 the group holds the transaction. *)
              let apply_cost =
                Costs.commit (costs t) ~nwrites:(Array.length txn.Txn.write_set)
              in
              let replication_cost =
                (costs t).Costs.pb_replication
                +. (Cluster.tx_cpu t.cluster *. float_of_int (n - 1))
              in
              let apply_sent = Engine.now t.cluster.Cluster.engine in
              Network.send_work_to_core (net t) ~dst:(core t primary a.core_id)
                ~cost:(apply_cost +. replication_cost) (fun () ->
                  ignore
                    (Replica.handle_commit t.replicas.(primary) ~core:a.core_id ~txn
                       ~ts ~commit:true);
                  Obs.span (Cluster.obs t.cluster) Span.Write_back
                    ~pid:(Obs.replica_pid primary) ~tid:a.core_id ~start:apply_sent ());
              for r = 0 to n - 1 do
                if r <> primary && not (Replica.is_crashed t.replicas.(r)) then begin
                  let backup_cost =
                    Costs.commit (costs t) ~nwrites:(Array.length txn.Txn.write_set)
                    +. Cluster.tx_cpu t.cluster
                  in
                  Network.send_work_to_core (net t) ~dst:(core t r a.core_id)
                    ~cost:backup_cost (fun () ->
                      (* Timestamp-ordered and conflict-free: backups
                         apply in arrival order with no checks. *)
                      ignore
                        (Replica.handle_commit t.replicas.(r) ~core:a.core_id ~txn
                           ~ts ~commit:true);
                      Obs.span (Cluster.obs t.cluster) Span.Write_back
                        ~pid:(Obs.replica_pid r) ~tid:a.core_id ~start:apply_sent ();
                      Network.send_to_client (net t) on_backup_ack)
                end
              done))

let read_committed t ~replica ~key =
  match Mk_storage.Vstore.find (Replica.vstore t.replicas.(replica)) key with
  | None -> None
  | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e))
