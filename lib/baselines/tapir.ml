module Engine = Mk_sim.Engine
module Resource = Mk_sim.Resource
module Network = Mk_net.Network
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Decision = Mk_meerkat.Decision
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span

type t = {
  cluster : Cluster.t;
  quorum : Quorum.t;
  replicas : Replica.t array;
  record_mutex : Resource.t array;
      (** One shared-record mutex per replica: the cross-core
          coordination point TAPIR keeps and Meerkat eliminates. *)
}

let create ?obs engine cfg =
  let cluster = Cluster.create ?obs engine cfg in
  let quorum = Quorum.create ~n:cfg.Cluster.n_replicas in
  let replicas =
    (* cores:1 — a single trecord partition is exactly the shared
       record of the TAPIR prototype. *)
    Array.init cfg.Cluster.n_replicas (fun id -> Replica.create ~id ~quorum ~cores:1)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.Cluster.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  let record_mutex =
    Array.init cfg.Cluster.n_replicas (fun i ->
        Resource.create engine ~name:(Printf.sprintf "tapir-record-%d" i))
  in
  { cluster; quorum; replicas; record_mutex }

let name _ = "TAPIR"
let threads t = t.cluster.Cluster.cfg.Cluster.threads
let obs t = Cluster.obs t.cluster
let counters t = Cluster.counters t.cluster
let server_busy_fraction t = Cluster.server_busy_fraction t.cluster
let net t = t.cluster.Cluster.net
let costs t = t.cluster.Cluster.cfg.Cluster.costs

(* Any core may process any message (no steering is needed — the
   record is shared anyway), so spread load uniformly. *)
let random_core t client r =
  t.cluster.Cluster.cores.(r).(Mk_util.Rng.int client.Cluster.rng (threads t))

type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  started : Engine.time;
  client : Cluster.client;
  replies : Txn.status option array;
  mutable in_accept : bool;
  mutable accept_started : Engine.time;  (** NaN until the slow path. *)
  mutable accept_acks : int;
  mutable decided : bool;
  mutable validated : bool;
  mutable fast_grace_armed : bool;
}

(* Same span discipline as the Meerkat coordinator: the validation
   span closes when a majority of replies is in (or the attempt moves
   on); the slow-accept span covers the whole accept round including
   retransmissions. *)
let note_validated t a =
  if not a.validated then begin
    a.validated <- true;
    Obs.span (Cluster.obs t.cluster) Span.Validate ~tid:a.client.Cluster.cid
      ~start:a.started ()
  end

let enter_accept t a =
  a.in_accept <- true;
  note_validated t a;
  if Float.is_nan a.accept_started then
    a.accept_started <- Engine.now t.cluster.Cluster.engine

let broadcast_commit t a ~commit =
  let nwrites = if commit then Array.length a.txn.Txn.write_set else 0 in
  let cost = Costs.commit (costs t) ~nwrites in
  let sent_at = Engine.now t.cluster.Cluster.engine in
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_to_core (net t) ~dst:(random_core t a.client r) ~cost
          (fun ~finish ->
            (* The write phase must update the shared record: one more
               pass through the record mutex. *)
            Resource.use t.record_mutex.(r)
              ~hold:(costs t).Costs.record_mutex
              (fun () ->
                ignore
                  (Replica.handle_commit replica ~core:0 ~txn:a.txn ~ts:a.ts ~commit);
                (* tid 0: any core may apply (shared record). *)
                Obs.span (Cluster.obs t.cluster) Span.Write_back
                  ~pid:(Obs.replica_pid r) ~tid:0 ~start:sent_at ();
                finish ())))
    t.replicas

let decide t a ~commit ~fast ~on_done =
  if not a.decided then begin
    a.decided <- true;
    note_validated t a;
    (if fast then
       Obs.span (Cluster.obs t.cluster) Span.Fast_quorum ~tid:a.client.Cluster.cid
         ~start:a.started ()
     else if not (Float.is_nan a.accept_started) then
       Obs.span (Cluster.obs t.cluster) Span.Slow_accept ~tid:a.client.Cluster.cid
         ~start:a.accept_started ());
    Cluster.note_decision t.cluster ~committed:commit ~fast;
    broadcast_commit t a ~commit;
    (* Coordinator and application share the client machine: the
       outcome handoff does not cross the lossy network. *)
    Engine.schedule t.cluster.Cluster.engine ~delay:0.0 (fun () ->
        on_done ~committed:commit)
  end

let send_accepts t a ~commit ~on_done =
  let decision = if commit then `Commit else `Abort in
  Array.iteri
    (fun r replica ->
      if not (Replica.is_crashed replica) then
        Network.send_to_core (net t) ~dst:(random_core t a.client r)
          ~cost:((costs t).Costs.accept +. Cluster.tx_cpu t.cluster)
          (fun ~finish ->
            Resource.use t.record_mutex.(r)
              ~hold:(costs t).Costs.record_mutex
              (fun () ->
                (match
                   Replica.handle_accept replica ~core:0 ~txn:a.txn ~ts:a.ts
                     ~decision ~view:0
                 with
                | None -> ()
                | Some reply ->
                    Network.send_to_client (net t) (fun () ->
                        if not a.decided then begin
                          match reply with
                          | `Accepted ->
                              a.accept_acks <- a.accept_acks + 1;
                              if a.accept_acks >= Quorum.majority t.quorum then
                                decide t a ~commit ~fast:false ~on_done
                          | `Finalized st ->
                              decide t a ~commit:(st = Txn.Committed) ~fast:false
                                ~on_done
                          | `Stale _ -> ()
                        end));
                finish ())))
    t.replicas

let majority_ok t a =
  Array.fold_left
    (fun acc reply -> if reply = Some Txn.Validated_ok then acc + 1 else acc)
    0 a.replies
  >= Quorum.majority t.quorum

let evaluate t a ~on_done =
  if not a.decided then begin
    match Decision.evaluate ~quorum:t.quorum ~replies:a.replies with
    | Decision.Wait ->
        (* Same fast-path grace period as the Meerkat coordinator. *)
        let received =
          Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 a.replies
        in
        if
          (not a.fast_grace_armed)
          && (not a.in_accept)
          && received >= Quorum.majority t.quorum
        then begin
          a.fast_grace_armed <- true;
          let tr = t.cluster.Cluster.cfg.Cluster.transport in
          let base =
            (3.0 *. (tr.Mk_net.Transport.latency +. tr.Mk_net.Transport.jitter)) +. 2.0
          in
          let elapsed = Engine.now t.cluster.Cluster.engine -. a.started in
          Engine.schedule t.cluster.Cluster.engine ~delay:(Float.max base (2.0 *. elapsed))
            (fun () ->
              if (not a.decided) && not a.in_accept then begin
                enter_accept t a;
                send_accepts t a ~commit:(majority_ok t a) ~on_done
              end)
        end
    | Decision.Final commit -> decide t a ~commit ~fast:false ~on_done
    | Decision.Fast commit -> decide t a ~commit ~fast:true ~on_done
    | Decision.Slow commit ->
        if not a.in_accept then begin
          enter_accept t a;
          send_accepts t a ~commit ~on_done
        end
  end

let send_validates t a ~only_missing ~on_done =
  let cost =
    Costs.validate (costs t) ~nkeys:(Txn.nkeys a.txn) +. Cluster.tx_cpu t.cluster
  in
  Array.iteri
    (fun r replica ->
      if ((not only_missing) || a.replies.(r) = None)
         && not (Replica.is_crashed replica)
      then
        Network.send_to_core (net t) ~dst:(random_core t a.client r) ~cost
          (fun ~finish ->
            (* Creating the entry in the shared record serializes all
               cores of the replica on its mutex. *)
            Resource.use t.record_mutex.(r)
              ~hold:(costs t).Costs.record_mutex
              (fun () ->
                (match Replica.handle_validate replica ~core:0 ~txn:a.txn ~ts:a.ts with
                | None -> ()
                | Some st ->
                    Network.send_to_client (net t) (fun () ->
                        if a.replies.(r) = None then begin
                          a.replies.(r) <- Some st;
                          let received =
                            Array.fold_left
                              (fun acc x -> if x = None then acc else acc + 1)
                              0 a.replies
                          in
                          if received >= Quorum.majority t.quorum then
                            note_validated t a;
                          evaluate t a ~on_done
                        end));
                finish ())))
    t.replicas

let rec arm_timer t a ~rto ~on_done =
  Engine.schedule t.cluster.Cluster.engine ~delay:rto (fun () ->
      if not a.decided then begin
        Cluster.note_retransmit t.cluster ~rto ~tid:a.client.Cluster.cid;
        let received = Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 a.replies in
        let ok =
          Array.fold_left
            (fun acc reply -> if reply = Some Txn.Validated_ok then acc + 1 else acc)
            0 a.replies
        in
        if a.in_accept then begin
          (* Restart the accept round; replicas are idempotent for a
             same-view proposal, so acks are simply recounted. *)
          a.accept_acks <- 0;
          send_accepts t a ~commit:(ok >= Quorum.majority t.quorum) ~on_done
        end
        else if received >= Quorum.majority t.quorum then begin
          (* The fast path did not complete within the timeout (slow or
             crashed replicas): settle for the slow path with the
             majority in hand, per §5.2.2 step 4. *)
          enter_accept t a;
          send_accepts t a ~commit:(ok >= Quorum.majority t.quorum) ~on_done
        end
        else send_validates t a ~only_missing:true ~on_done;
        arm_timer t a ~rto:(rto *. 2.0) ~on_done
      end)

let submit t ~client (req : Intf.txn_request) ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  let alive r = not (Replica.is_crashed t.replicas.(r)) in
  let exec_started = Engine.now t.cluster.Cluster.engine in
  Cluster.execute_reads t.cluster ctx ~keys:req.reads ~read ~alive (fun read_set _values ->
      if Array.length req.reads > 0 then
        Obs.span (Cluster.obs t.cluster) Span.Execute ~tid:ctx.Cluster.cid
          ~start:exec_started ();
      let tid = Cluster.fresh_tid t.cluster ctx in
      let write_set =
        Array.to_list
          (Array.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) req.writes)
      in
      let txn = Txn.make ~tid ~read_set ~write_set in
      let ts = Cluster.fresh_timestamp t.cluster ctx in
      let a =
        {
          txn;
          ts;
          started = Engine.now t.cluster.Cluster.engine;
          client = ctx;
          replies = Array.make t.cluster.Cluster.cfg.Cluster.n_replicas None;
          in_accept = false;
          accept_started = Float.nan;
          accept_acks = 0;
          decided = false;
          validated = false;
          fast_grace_armed = false;
        }
      in
      send_validates t a ~only_missing:false ~on_done;
      arm_timer t a ~rto:t.cluster.Cluster.rto ~on_done)

let read_committed t ~replica ~key =
  match Mk_storage.Vstore.find (Replica.vstore t.replicas.(replica)) key with
  | None -> None
  | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e))

let record_mutex_busy t = Array.map Resource.busy_time t.record_mutex
