(** Meerkat-PB (§6.1): Meerkat's data structures and concurrency
    control, but primary-backup replication — no cross-core
    coordination, cross-replica coordination retained.

    Clients still pick timestamps, but submit every transaction to the
    primary, whose cores run the only OCC validation; conflicting
    transactions are therefore resolved by a single site (fewer aborts
    under contention than Meerkat — Fig. 6/7). Each backup core is
    matched to a primary core and applies exactly its transactions, so
    no structure is shared between cores anywhere. The primary answers
    the client only after a majority of the replica group (itself plus
    f backups) holds the transaction, costing one extra message delay
    and per-transaction replication CPU at the primary — the price of
    cross-replica coordination that Fig. 4/5 isolates. *)

type t

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> Mk_cluster.Cluster.config -> t
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val server_busy_fraction : t -> float
val read_committed : t -> replica:int -> key:int -> int option
