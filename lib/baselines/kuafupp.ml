module Engine = Mk_sim.Engine
module Resource = Mk_sim.Resource
module Network = Mk_net.Network
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Cluster = Mk_cluster.Cluster
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span

let primary = 0

type t = {
  cluster : Cluster.t;
  quorum : Quorum.t;
  replicas : Replica.t array;
  counter : Resource.t;  (** Shared atomic commit-sequence counter. *)
  mutable next_seq : int;
  logs : Resource.t array;  (** Per-replica shared-log mutex. *)
  mutable log_length : int;
}

let create ?obs engine cfg =
  let cluster = Cluster.create ?obs engine cfg in
  let quorum = Quorum.create ~n:cfg.Cluster.n_replicas in
  let replicas =
    Array.init cfg.Cluster.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:1)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.Cluster.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  {
    cluster;
    quorum;
    replicas;
    counter = Resource.create engine ~name:"kuafu-counter";
    next_seq = 0;
    logs =
      Array.init cfg.Cluster.n_replicas (fun i ->
          Resource.create engine ~name:(Printf.sprintf "kuafu-log-%d" i));
    log_length = 0;
  }

let name _ = "KuaFu++"
let threads t = t.cluster.Cluster.cfg.Cluster.threads
let obs t = Cluster.obs t.cluster
let counters t = Cluster.counters t.cluster
let server_busy_fraction t = Cluster.server_busy_fraction t.cluster
let net t = t.cluster.Cluster.net
let costs t = t.cluster.Cluster.cfg.Cluster.costs
let core t r c = t.cluster.Cluster.cores.(r).(c)

let random_core t client r =
  core t r (Mk_util.Rng.int client.Cluster.rng (threads t))

let submit t ~client (req : Intf.txn_request) ~on_done =
  let ctx = t.cluster.Cluster.clients.(client) in
  let read ~replica ~key = Replica.handle_get t.replicas.(replica) ~key in
  let alive r = not (Replica.is_crashed t.replicas.(r)) in
  let exec_started = Engine.now t.cluster.Cluster.engine in
  Cluster.execute_reads t.cluster ctx ~keys:req.reads ~read ~alive (fun read_set _values ->
      if Array.length req.reads > 0 then
        Obs.span (Cluster.obs t.cluster) Span.Execute ~tid:ctx.Cluster.cid
          ~start:exec_started ();
      let tid = Cluster.fresh_tid t.cluster ctx in
      let write_set =
        Array.to_list
          (Array.map (fun (key, value) -> ({ key; value } : Txn.write_entry)) req.writes)
      in
      let txn = Txn.make ~tid ~read_set ~write_set in
      let n = t.cluster.Cluster.cfg.Cluster.n_replicas in
      let needed_acks = Quorum.majority t.quorum - 1 in
      let acks = ref 0 and replied = ref false in
      let primary_core = random_core t ctx primary in
      let trecord_core = 0 in
      (* All state lives in core 0's partition: KuaFu++ has one shared
         record (the log) per replica; mutual exclusion is modelled by
         the log/counter resources, not by partitioning. *)
      let finish_commit () =
        if not !replied then begin
          replied := true;
          Cluster.note_decision t.cluster ~committed:true ~fast:false;
          Network.send_to_client (net t) (fun () -> on_done ~committed:true)
        end
      in
      let on_backup_ack () =
        Network.send_work_to_core (net t) ~dst:primary_core ~cost:0.2 (fun () ->
            incr acks;
            if !acks >= needed_acks then finish_commit ())
      in
      let validate_cost =
        Costs.validate (costs t) ~nkeys:(Txn.nkeys txn) +. Cluster.tx_cpu t.cluster
      in
      (* Commit request to the primary. The handling core first bumps
         the shared commit counter (every transaction pays the
         cache-line ping-pong), then validates, then — commits only —
         appends to the shared log under its mutex. *)
      let validate_sent = Engine.now t.cluster.Cluster.engine in
      Network.send_to_core (net t) ~dst:primary_core ~cost:validate_cost
        (fun ~finish ->
          Resource.use t.counter ~hold:(costs t).Costs.atomic_counter (fun () ->
              t.next_seq <- t.next_seq + 1;
              let ts =
                (* Commit sequence numbers order transactions; encode
                   them as timestamps so the shared OCC machinery
                   applies unchanged. *)
                Timestamp.make ~time:(float_of_int t.next_seq) ~client_id:0
              in
              let verdict =
                Replica.handle_validate t.replicas.(primary) ~core:trecord_core ~txn
                  ~ts
              in
              (* Validation = counter bump + OCC check at the primary. *)
              Obs.span (Cluster.obs t.cluster) Span.Validate ~tid:ctx.Cluster.cid
                ~start:validate_sent ();
              match verdict with
              | None | Some Txn.Validated_abort ->
                  ignore
                    (Replica.handle_commit t.replicas.(primary) ~core:trecord_core
                       ~txn ~ts ~commit:false);
                  Cluster.note_decision t.cluster ~committed:false ~fast:true;
                  Network.send_to_client (net t) (fun () -> on_done ~committed:false);
                  finish ()
              | Some _ ->
                  (* Append to the shared log (critical section), apply
                     at the primary, ship log entries to the backups. *)
                  Resource.use t.logs.(primary) ~hold:(costs t).Costs.shared_log
                    (fun () ->
                      t.log_length <- t.log_length + 1;
                      let apply_sent = Engine.now t.cluster.Cluster.engine in
                      let apply_cost =
                        Costs.commit (costs t)
                          ~nwrites:(Array.length txn.Txn.write_set)
                        +. (Cluster.tx_cpu t.cluster *. float_of_int (n - 1))
                      in
                      Network.send_work_to_core (net t) ~dst:primary_core
                        ~cost:apply_cost (fun () ->
                          ignore
                            (Replica.handle_commit t.replicas.(primary)
                               ~core:trecord_core ~txn ~ts ~commit:true);
                          Obs.span (Cluster.obs t.cluster) Span.Write_back
                            ~pid:(Obs.replica_pid primary) ~tid:trecord_core
                            ~start:apply_sent ());
                      for r = 0 to n - 1 do
                        if r <> primary && not (Replica.is_crashed t.replicas.(r))
                        then begin
                          let backup_core = random_core t ctx r in
                          let consume_cost =
                            Costs.commit (costs t)
                              ~nwrites:(Array.length txn.Txn.write_set)
                            +. Cluster.tx_cpu t.cluster
                          in
                          (* Concurrent log replay: any backup core picks
                             the entry up, but must take the log mutex to
                             consume it. *)
                          Network.send_to_core (net t) ~dst:backup_core
                            ~cost:consume_cost (fun ~finish ->
                              Resource.use t.logs.(r)
                                ~hold:(costs t).Costs.shared_log (fun () ->
                                  ignore
                                    (Replica.handle_commit t.replicas.(r)
                                       ~core:trecord_core ~txn ~ts ~commit:true);
                                  Obs.span (Cluster.obs t.cluster) Span.Write_back
                                    ~pid:(Obs.replica_pid r) ~tid:trecord_core
                                    ~start:apply_sent ();
                                  Network.send_to_client (net t) on_backup_ack;
                                  finish ()))
                        end
                      done;
                      finish ())))
        )

let read_committed t ~replica ~key =
  match Mk_storage.Vstore.find (Replica.vstore t.replicas.(replica)) key with
  | None -> None
  | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e))

let log_length t = t.log_length
let counter_busy t = Resource.busy_time t.counter
let log_busy t = Array.map Resource.busy_time t.logs
