(** Cluster membership for the cross-process backend (DESIGN.md §11).

    A deployment is described by `name host:port` lines — the format
    Verdi's shims use — with [#] comments and blank lines ignored.
    Replica ids are positional: the node on line [i] is replica [i],
    so every process parsing the same text agrees on the id space.
    The launcher builds one of these after the port handshake and
    feeds the same text to every node over its stdin pipe. *)

type node = { name : string; host : string; port : int }

type t = node array
(** Indexed by replica id. *)

val parse : string -> (t, string) result
(** Parse a whole config text. Errors (with a line number) on
    malformed lines, bad ports, duplicate names, or an empty
    config. *)

val load : string -> (t, string) result
(** [parse] the contents of a file. *)

val line : node -> string
(** One config line, [name host:port]. *)

val to_string : t -> string
(** The canonical text form; [parse (to_string t) = Ok t]. *)

val find : t -> string -> int option
(** Replica id of the named node. *)

val sockaddr : node -> (Unix.sockaddr, string) result
(** Resolve one endpoint (numeric address first, then hostname
    lookup). *)

val sockaddrs : t -> (Unix.sockaddr array, string) result
(** Resolve every endpoint, in replica-id order. *)
