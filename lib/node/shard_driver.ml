(* Cross-shard closed-loop clients driving S independent node fleets
   over UDP — the cluster backend's port of the live runtime's
   {!Mk_live.Multi} coordinators (DESIGN.md §13).

   Each coordinator domain owns ONE poll-mode shim socket for every
   shard group: wire v2 frames carry the shard-group stamp, requests
   are stamped with the destination group and replies come back
   stamped by the answering node, so one socket can multiplex S
   groups without ambiguity. Routing inside the coordinator is by
   coordinator-local ids — a monotone read id for execute-phase
   [Get]s and a monotone attempt id (carried in the frames' [slot]
   field) for per-shard validation attempts — both unique across
   clients AND shards, so a stale reply for a finished attempt can
   never be taken for a live one, and a reply whose shard stamp
   disagrees with the attempt it names is a counted drop.

   The cross-shard commit is the paper's §5.2.4 client-side 2PC,
   shared with the other two backends through {!Mk_shard.Driver}: one
   {!Mk_meerkat.Protocol} attempt per involved shard run to its
   decision with the write-back withheld ([prepare_txn]), the global
   outcome the conjunction of the per-shard decisions, and the
   write-phase broadcast only then ([finalize_txn]). Timers — the
   per-read replica-rotation timeout and each attempt's protocol
   timers — ride the poll loop exactly as in {!Client_driver}. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Intf = Mk_model.System_intf
module Quorum = Mk_meerkat.Quorum
module Batch = Mk_meerkat.Batch
module Protocol = Mk_meerkat.Protocol
module Codec = Mk_wire.Codec
module Spawn = Mk_live.Spawn
module Workload = Mk_workload.Workload
module Obs = Mk_obs.Obs
module Histogram = Mk_util.Histogram
module Router = Mk_shard.Router
module History = Mk_shard.History

module Net = Shim.Make (struct
  type msg = int * Codec.t

  let encode_into ~scratch ~out (shard, m) =
    Codec.encode_shard_into ~scratch ~out ~shard m

  let decode_at = Codec.decode_shard_at
end)

type config = {
  shards : int;
  coordinators : int;
  clients : int;
  keys : int;  (** Global keyspace, spread over the shards. *)
  theta : float;
  workload : Client_driver.workload_kind;
  cross : float;  (** Probability a multi-key txn spans >1 shard. *)
  txns_per_client : int;
  duration : float option;
  seed : int;
  rto_us : float;
  grace_us : float;
  get_rto_us : float;
}

let default_config =
  {
    shards = 2;
    coordinators = 2;
    clients = 8;
    keys = 1024;
    theta = 0.6;
    workload = Client_driver.Ycsb_t;
    cross = 0.1;
    txns_per_client = 50;
    duration = None;
    seed = 42;
    rto_us = 100_000.0;
    grace_us = 5_000.0;
    get_rto_us = 50_000.0;
  }

type result = {
  committed : (Txn.t * Timestamp.t) list;
      (** The merged global history over global keys. *)
  sub_histories : (int * (Txn.t * Timestamp.t) list) list;
  committed_count : int;
  aborted : int;
  cross_shard : int;
  fast_path : int;  (** Per-shard sub-attempts, not global txns. *)
  slow_path : int;
  retransmits : int;
  submitted : int;
  acked : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_decode_errors : int;
  wire_shard_drops : int;
}

(* ------------------------------------------------------------------ *)
(* One coordinator domain                                              *)
(* ------------------------------------------------------------------ *)

(* One outstanding execute-phase read against one shard, rotating
   replicas on timeout (loss, a busy node and a dead one all look
   like silence). *)
type read_state = {
  r_shard : int;
  r_key : int;  (** Local key inside [r_shard]. *)
  mutable r_target : int;
  mutable r_rto : float;
  mutable r_retry_at : float;
  r_cb : int * Timestamp.t -> unit;
}

(* One per-shard validation attempt: a {!Protocol} run to its
   decision with the write-back withheld (the 2PC prepare). *)
type att = {
  a_aid : int;
  a_shard : int;
  a_txn : Txn.t;
  a_ts : Timestamp.t;
  a_proto : Protocol.t;
  mutable a_timers : (Protocol.timer * float) list;  (* absolute µs *)
  a_on_prepared : bool -> unit;
}

type stamp = { mutable s_seq : int; mutable s_last : float }

type coord_state = {
  cs_id : int;
  cs_net : Net.t;
  cs_addrs : Unix.sockaddr array array;  (** [.(shard).(replica)]. *)
  cs_n : int;  (** Replicas per shard (same for every shard). *)
  cs_wall : unit -> float;
  cs_params : Protocol.params;
  cs_rto_cap : float;
  cs_get_rto : float;
  cs_reads : (int, read_state) Hashtbl.t;
  mutable cs_next_rid : int;
  cs_atts : (int, att) Hashtbl.t;
  mutable cs_next_aid : int;
  cs_stamps : (int, stamp) Hashtbl.t;  (* client -> stamp state *)
  mutable cs_fast : int;
  mutable cs_slow : int;
  cs_pool : Protocol.action Batch.Pool.t;
      (** Pooled: [a_on_prepared] runs synchronously from a
          [Note_decided] and may start the next per-shard attempt
          while the outer batch is still being iterated. *)
}

(* Z7: [a_shard]/[r_shard] index [cs_addrs] and are coordinator-made
   (from the router, in [0, shards)), never off the wire; the replica
   loops run over [0, cs_n). *)
let[@mk_lint.allow "Z7"] send_get cs (r : read_state) ~rid =
  Net.send cs.cs_net ~dst:cs.cs_addrs.(r.r_shard).(r.r_target)
    ( r.r_shard,
      Codec.Get { coord = cs.cs_id; slot = 0; seq = rid; key = r.r_key } )

let[@mk_lint.allow "Z7"] exec cs (a : att) (action : Protocol.action) =
  let addrs = cs.cs_addrs.(a.a_shard) in
  match action with
  | Protocol.Send_validates { only_missing } ->
      for r = 0 to cs.cs_n - 1 do
        if (not only_missing) || Protocol.needs_validate a.a_proto r then
          Net.send cs.cs_net ~dst:addrs.(r)
            ( a.a_shard,
              Codec.Validate
                {
                  coord = cs.cs_id;
                  slot = a.a_aid;
                  seq = 0;
                  txn = a.a_txn;
                  ts = a.a_ts;
                } )
      done
  | Protocol.Send_accepts { decision } ->
      for r = 0 to cs.cs_n - 1 do
        Net.send cs.cs_net ~dst:addrs.(r)
          ( a.a_shard,
            Codec.Accept
              {
                coord = cs.cs_id;
                slot = a.a_aid;
                seq = 0;
                txn = a.a_txn;
                ts = a.a_ts;
                decision;
                view = 0;
              } )
      done
  | Protocol.Arm_timer { timer; delay } ->
      let timer, delay =
        match timer with
        | Protocol.Retransmit rto when rto > cs.cs_rto_cap ->
            (Protocol.Retransmit cs.cs_rto_cap, Float.min delay cs.cs_rto_cap)
        | _ -> (timer, delay)
      in
      a.a_timers <- (timer, cs.cs_wall () +. delay) :: a.a_timers
  | Protocol.Note_validated -> ()
  | Protocol.Note_decided { commit; fast } ->
      if fast then cs.cs_fast <- cs.cs_fast + 1 else cs.cs_slow <- cs.cs_slow + 1;
      (* NO write-back here: the outcome broadcast waits for the
         global conjunction ([finalize_txn]). *)
      Hashtbl.remove cs.cs_atts a.a_aid;
      a.a_on_prepared commit

let feed cs a event =
  Batch.Pool.with_batch cs.cs_pool (fun into ->
      Protocol.handle a.a_proto ~now:(cs.cs_wall ()) event ~into;
      Batch.iter (exec cs a) into)

(* The four GROUP operations of one shard, as seen from one
   coordinator's socket. *)
module Sock_group = struct
  type t = { sg_shard : int; sg_cs : coord_state }

  let execute_read g ~client ~key k =
    let cs = g.sg_cs in
    let rid = cs.cs_next_rid in
    cs.cs_next_rid <- rid + 1;
    let r =
      {
        r_shard = g.sg_shard;
        r_key = key;
        r_target = (client + cs.cs_id) mod cs.cs_n;
        r_rto = cs.cs_get_rto;
        r_retry_at = cs.cs_wall () +. cs.cs_get_rto;
        r_cb = k;
      }
    in
    Hashtbl.replace cs.cs_reads rid r;
    send_get cs r ~rid

  let fresh_txn_stamp g ~client =
    let cs = g.sg_cs in
    let s =
      match Hashtbl.find_opt cs.cs_stamps client with
      | Some s -> s
      | None ->
          let s = { s_seq = 0; s_last = 0.0 } in
          Hashtbl.add cs.cs_stamps client s;
          s
    in
    s.s_seq <- s.s_seq + 1;
    let now = cs.cs_wall () in
    (* Strictly increasing per client even when the wall clock stalls
       within one microsecond. *)
    let time = if now <= s.s_last then s.s_last +. 1e-3 else now in
    s.s_last <- time;
    ( Tid.make ~seq:s.s_seq ~client_id:client,
      Timestamp.make ~time ~client_id:client )

  let prepare_txn g ~txn ~ts ~on_prepared =
    let cs = g.sg_cs in
    let aid = cs.cs_next_aid in
    cs.cs_next_aid <- aid + 1;
    let now = cs.cs_wall () in
    Batch.Pool.with_batch cs.cs_pool (fun into ->
        let proto = Protocol.start cs.cs_params ~now ~into in
        let a =
          {
            a_aid = aid;
            a_shard = g.sg_shard;
            a_txn = txn;
            a_ts = ts;
            a_proto = proto;
            a_timers = [];
            a_on_prepared = on_prepared;
          }
        in
        Hashtbl.replace cs.cs_atts aid a;
        Batch.iter (exec cs a) into)

  (* Z7: [sg_shard] is a router shard id, in [0, shards) by
     construction. *)
  let[@mk_lint.allow "Z7"] finalize_txn g ~txn ~ts ~commit =
    let cs = g.sg_cs in
    let addrs = cs.cs_addrs.(g.sg_shard) in
    for r = 0 to cs.cs_n - 1 do
      Net.send cs.cs_net ~dst:addrs.(r)
        (g.sg_shard, Codec.Write_back { txn; ts; commit })
    done
end

module Driver2pc = Mk_shard.Driver.Make (Sock_group)

type client = { cid : int; mutable active : bool; mutable done_txns : int }

type coord_result = {
  c_sub : (int * (Txn.t * Timestamp.t) list) list;
  c_committed : int;
  c_aborted : int;
  c_cross : int;
  c_fast : int;
  c_slow : int;
  c_submitted : int;
  c_lat : Histogram.t;
  c_obs : Obs.t;
}

let coordinator (cfg : config) ~router ~addrs ~t0 ~coord_id =
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let obs = Obs.create ~clock:wall_us () in
  let net =
    match Net.bind () with
    | Ok net -> net
    | Error msg -> failwith ("client socket: " ^ msg)
  in
  Net.set_obs net obs;
  let n = Array.length addrs.(0) in
  let cs =
    {
      cs_id = coord_id;
      cs_net = net;
      cs_addrs = addrs;
      cs_n = n;
      cs_wall = wall_us;
      cs_params =
        {
          Protocol.n_replicas = n;
          quorum = Quorum.create ~n;
          rto = cfg.rto_us;
          grace = cfg.grace_us;
        };
      cs_rto_cap = 8.0 *. cfg.rto_us;
      cs_get_rto = cfg.get_rto_us;
      cs_reads = Hashtbl.create 64;
      cs_next_rid = 0;
      cs_atts = Hashtbl.create 64;
      cs_next_aid = 0;
      cs_stamps = Hashtbl.create 16;
      cs_fast = 0;
      cs_slow = 0;
      cs_pool = Batch.Pool.create ();
    }
  in
  let driver =
    Driver2pc.create ~router
      ~groups:
        (Array.init cfg.shards (fun sg_shard ->
             { Sock_group.sg_shard; sg_cs = cs }))
  in
  let rng = Mk_util.Rng.create ~seed:(cfg.seed + (7919 * (coord_id + 1))) in
  let wl =
    match cfg.workload with
    | Client_driver.Ycsb_t -> Workload.ycsb_t ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Client_driver.Rmw_pair ->
        Workload.rmw_pair ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Client_driver.Retwis -> Workload.retwis ~rng ~keys:cfg.keys ~theta:cfg.theta
  in
  (* The router places by key mod shards ({!Router.Mod}), which is the
     placement the locality knob assumes. *)
  if cfg.shards > 1 then
    Workload.set_locality wl
      (Some { Workload.shards = cfg.shards; cross = cfg.cross });
  let local =
    List.init cfg.clients Fun.id
    |> List.filter (fun cid -> cid mod cfg.coordinators = coord_id)
    |> List.map (fun cid -> { cid; active = false; done_txns = 0 })
    |> Array.of_list
  in
  let deadline_us =
    match cfg.duration with Some d -> Some (d *. 1e6) | None -> None
  in
  let quota_done c =
    match deadline_us with
    | Some dl -> wall_us () >= dl
    | None -> c.done_txns >= cfg.txns_per_client
  in
  let lat = Histogram.create () in
  let cross = ref 0 in
  let start_txn c =
    let req = Workload.next wl in
    let is_cross = Workload.spans ~shards:cfg.shards req in
    let started = wall_us () in
    c.active <- true;
    Driver2pc.submit driver ~client:c.cid ~reads:req.Intf.reads
      ~writes:(fun _ -> req.Intf.writes)
      ~on_done:(fun ~committed:_ ->
        Histogram.add lat (wall_us () -. started);
        if is_cross then incr cross;
        c.active <- false;
        c.done_txns <- c.done_txns + 1)
  in
  let replica_ok r = r >= 0 && r < n in
  let drop_bad_ids () = Obs.note_wire_decode_error obs in
  let deliver ~src:_ ((shard, msg) : int * Codec.t) =
    match msg with
    | Codec.Get_reply { seq = rid; key; wts; value; _ } -> (
        match Hashtbl.find_opt cs.cs_reads rid with
        | Some r ->
            if shard <> r.r_shard then Obs.note_wire_shard_drop obs
            else if key <> r.r_key then drop_bad_ids ()
            else begin
              Hashtbl.remove cs.cs_reads rid;
              r.r_cb (value, wts)
            end
        | None -> ())
    | Codec.Validated { slot = aid; seq = _; replica; status } -> (
        if not (replica_ok replica) then drop_bad_ids ()
        else
          match Hashtbl.find_opt cs.cs_atts aid with
          | Some a ->
              if shard <> a.a_shard then Obs.note_wire_shard_drop obs
              else feed cs a (Protocol.Validate_reply { replica; status })
          | None -> ())
    | Codec.Accepted { slot = aid; seq = _; replica; reply } -> (
        if not (replica_ok replica) then drop_bad_ids ()
        else
          match Hashtbl.find_opt cs.cs_atts aid with
          | Some a ->
              if shard <> a.a_shard then Obs.note_wire_shard_drop obs
              else feed cs a (Protocol.Accept_reply { replica; reply })
          | None -> ())
    | _ ->
        (* Server-side or control traffic; not for a client socket. *)
        ()
  in
  let fire_read_retries () =
    let now = wall_us () in
    let due = ref [] in
    Hashtbl.iter
      (fun rid r -> if now >= r.r_retry_at then due := (rid, r) :: !due)
      cs.cs_reads;
    List.iter
      (fun (rid, r) ->
        r.r_target <- (r.r_target + 1) mod n;
        r.r_rto <- Float.min (r.r_rto *. 2.0) cs.cs_rto_cap;
        r.r_retry_at <- now +. r.r_rto;
        Obs.note_retransmit obs;
        send_get cs r ~rid)
      !due
  in
  let fire_att_timers () =
    let now = wall_us () in
    (* Collect first: feeding can remove attempts from the table. *)
    let due = ref [] in
    Hashtbl.iter
      (fun _ a ->
        if List.exists (fun (_, dl) -> dl <= now) a.a_timers then
          due := a :: !due)
      cs.cs_atts;
    List.iter
      (fun a ->
        let fire, pending =
          List.partition (fun (_, dl) -> dl <= now) a.a_timers
        in
        a.a_timers <- pending;
        List.iter
          (fun (timer, _) ->
            if not (Protocol.decided a.a_proto) then begin
              (match timer with
              | Protocol.Retransmit _ -> Obs.note_retransmit obs
              | Protocol.Fast_grace -> ());
              feed cs a (Protocol.Timer timer)
            end)
          fire)
      !due
  in
  let idle = ref 0 in
  let rec loop () =
    let delivered = Net.poll net ~deliver in
    fire_read_retries ();
    fire_att_timers ();
    let all_done = ref true in
    Array.iter
      (fun c ->
        if (not c.active) && not (quota_done c) then start_txn c;
        if c.active || not (quota_done c) then all_done := false)
      local;
    if not !all_done then begin
      if delivered > 0 then idle := 0
      else begin
        incr idle;
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      loop ()
    end
  in
  loop ();
  Net.stop net;
  {
    c_sub = Driver2pc.sub_histories driver;
    c_committed = Driver2pc.committed driver;
    c_aborted = Driver2pc.aborted driver;
    c_cross = !cross;
    c_fast = cs.cs_fast;
    c_slow = cs.cs_slow;
    c_submitted = Array.fold_left (fun acc c -> acc + c.done_txns) 0 local;
    c_lat = lat;
    c_obs = obs;
  }

(* ------------------------------------------------------------------ *)
(* Whole-driver run                                                    *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) ~clusters =
  if cfg.shards < 1 then invalid_arg "Shard_driver.run: shards must be >= 1";
  if Array.length clusters <> cfg.shards then
    invalid_arg "Shard_driver.run: one cluster config per shard";
  if cfg.coordinators < 1 then
    invalid_arg "Shard_driver.run: coordinators must be >= 1";
  if cfg.clients < cfg.coordinators then
    invalid_arg "Shard_driver.run: clients must be >= coordinators";
  if cfg.cross < 0.0 || cfg.cross > 1.0 then
    invalid_arg "Shard_driver.run: cross must be in [0, 1]";
  let resolved =
    Array.map (fun cluster -> Cluster_config.sockaddrs cluster) clusters
  in
  match
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok xs, Ok a -> Ok (a :: xs))
      (Ok []) resolved
  with
  | Error _ as e -> e
  | Ok rev ->
      let addrs = Array.of_list (List.rev rev) in
      let n = Array.length addrs.(0) in
      if
        not (Array.for_all (fun a -> Array.length a = n) addrs)
      then invalid_arg "Shard_driver.run: every shard needs the same fleet size";
      let router = Router.create ~shards:cfg.shards ~keys:cfg.keys () in
      let t0 = Spawn.wall () in
      let results =
        Spawn.parallel ~domains:cfg.coordinators (fun coord_id ->
            coordinator cfg ~router ~addrs ~t0 ~coord_id)
      in
      let wall_seconds = Spawn.wall () -. t0 in
      let sub_histories =
        List.init cfg.shards (fun shard ->
            (shard, List.concat_map (fun r -> List.assoc shard r.c_sub) results))
      in
      let committed = History.merge ~router sub_histories in
      let committed_count =
        List.fold_left (fun acc r -> acc + r.c_committed) 0 results
      in
      let aborted = List.fold_left (fun acc r -> acc + r.c_aborted) 0 results in
      let decided = committed_count + aborted in
      let sum name =
        List.fold_left
          (fun acc r -> acc + Obs.counter_value r.c_obs name)
          0 results
      in
      let lat =
        List.fold_left
          (fun acc r -> Histogram.merge acc r.c_lat)
          (Histogram.create ()) results
      in
      Ok
        {
          committed;
          sub_histories;
          committed_count;
          aborted;
          cross_shard = List.fold_left (fun acc r -> acc + r.c_cross) 0 results;
          fast_path = List.fold_left (fun acc r -> acc + r.c_fast) 0 results;
          slow_path = List.fold_left (fun acc r -> acc + r.c_slow) 0 results;
          retransmits = sum "net.retransmits";
          submitted =
            List.fold_left (fun acc r -> acc + r.c_submitted) 0 results;
          acked = List.fold_left (fun acc r -> acc + r.c_submitted) 0 results;
          wall_seconds;
          throughput = float_of_int committed_count /. wall_seconds;
          abort_rate =
            (if decided = 0 then 0.0
             else float_of_int aborted /. float_of_int decided);
          p50_us = Histogram.percentile lat 50.0;
          p99_us = Histogram.percentile lat 99.0;
          wire_msgs_tx = sum "wire.msgs_tx";
          wire_msgs_rx = sum "wire.msgs_rx";
          wire_decode_errors = sum "wire.decode_errors";
          wire_shard_drops = sum "wire.shard_drops";
        }

let result_json (r : result) =
  Printf.sprintf
    "{\"committed\": %d, \"aborted\": %d, \"cross_shard\": %d, \"fast_path\": \
     %d, \"slow_path\": %d, \"retransmits\": %d, \"submitted\": %d, \
     \"acked\": %d, \"wall_seconds\": %.6f, \"throughput\": %.1f, \
     \"abort_rate\": %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, \
     \"wire_msgs_tx\": %d, \"wire_msgs_rx\": %d, \"wire_decode_errors\": %d, \
     \"wire_shard_drops\": %d}"
    r.committed_count r.aborted r.cross_shard r.fast_path r.slow_path
    r.retransmits r.submitted r.acked r.wall_seconds r.throughput r.abort_rate
    r.p50_us r.p99_us r.wire_msgs_tx r.wire_msgs_rx r.wire_decode_errors
    r.wire_shard_drops
