(** A Meerkat server node: one whole replica in one OS process,
    speaking the wire protocol over UDP (DESIGN.md §11), optionally
    persisting to a per-core WAL + snapshot data directory
    (DESIGN.md §12).

    The third execution backend, same protocol code as the other two:
    [cores] server domains each own one trecord core (steering by
    [Tid.hash mod cores], as everywhere else); the shim's loop thread
    owns the socket, answers execute-phase [Get]s inline (the
    vstore's shard locks make that safe), feeds this node's own
    {!Mk_meerkat.Detector} instance with peer heartbeats and local
    trecord snapshots, and drives §5.3.2 view changes for stuck
    records and §5.3.1 epoch changes for recoverable peers entirely
    over the wire.

    With [data_dir] set, every finalized record is appended to the
    owning core's log and each core checkpoints its own partition —
    per-core files, per-core fsync schedules, no shared commit point.
    A SIGKILLed process reboots by replaying snapshot + log suffix in
    {!create}, then advertises itself paused; a survivor's detector
    notices the paused heartbeats and initiates the epoch change that
    merges the rebooted replica back in.

    Lifecycle: {!bind} the socket (reserving the port — the
    [--port auto] handshake reports it before the cluster config
    exists), {!create} the replica once the config names this node's
    id and the deployment size (replaying [data_dir] if it holds a
    previous incarnation), {!launch} with the final membership, then
    {!wait} until a [Shutdown] frame (or {!shutdown}) arrives. *)

type config = {
  me : int;  (** This node's replica id (its line in the config). *)
  shard : int;
      (** This node's shard group (DESIGN.md §13). Every frame it
          sends is stamped with it; a well-formed frame stamped for
          another group is counted ([wire.shard_drops]) and dropped
          before the payload is acted on. [0] (the default) is a
          single-group deployment. *)
  cores : int;  (** Server domains (trecord cores). *)
  keys : int;  (** Pre-loaded key space, values 0. *)
  core_inbox : int;  (** Per-core mailbox capacity (power of two). *)
  detector : Mk_meerkat.Detector.cfg option;
      (** [None] disables heartbeats, suspicion, view changes and
          epoch-change initiation (answering a peer's epoch change
          still works). *)
  rto_us : float;  (** View/epoch-change retransmission base. *)
  data_dir : string option;
      (** Where the per-core [coreN.wal] / [coreN.snap] files live;
          [None] runs without durability (the pre-WAL behaviour). *)
  fsync : Mk_durable.Wal.policy;
      (** When appends reach the platter; see {!Mk_durable.Wal.policy}. *)
}

val default_config : config

val detector_cfg : heartbeat_ms:float -> Mk_meerkat.Detector.cfg
(** Wall-clock detector timings from one knob (suspect after 6 missed
    heartbeats, records stuck after 8 periods). *)

type t

type stats = {
  me : int;
  committed : int;
  aborted : int;
  validations_ok : int;
  validations_abort : int;
  view_changes : int;
  epoch_changes : int;
      (** §5.3.1 epoch changes this node initiated to completion. *)
  suspected : int list;
      (** Peers this node still suspected at shutdown. *)
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_bytes_tx : int;
  wire_bytes_rx : int;
  wire_decode_errors : int;
  wire_shard_drops : int;
      (** Well-formed frames stamped for another shard group. *)
  wal_appends : int;
  wal_bytes : int;
  wal_fsyncs : int;
  wal_replayed : int;
      (** Log records replayed at boot, past the snapshot cuts. *)
  wal_snapshots_used : int;
      (** Snapshot images restored at boot.
          [wal_replayed + wal_snapshots_used > 0] proves this process
          rebooted from a previous incarnation's data directory — a
          snapshot taken just before the crash can leave an empty log
          suffix, so neither field alone is the reboot witness. *)
  wal_decode_errors : int;
  snapshots : int;
}

type bound
(** A bound socket without a replica yet — what the [--port auto]
    handshake announces. *)

val bind : ?port:int -> unit -> (bound, string) result
(** Bind the UDP socket ([port] 0 = ephemeral). *)

val bound_port : bound -> int

val create : bound -> config -> n_replicas:int -> t
(** Create the replica behind the bound socket; if [data_dir] holds a
    previous incarnation's files, replay them (snapshot + log suffix),
    compact, and mark the replica paused-for-recovery. Raises
    [Invalid_argument] on a nonsensical config ([cores] < 1,
    [n_replicas] not odd >= 3, [me] or [shard] out of range). *)

val port : t -> int

val launch : t -> cluster:Cluster_config.t -> (unit, string) result
(** Spawn the core domains and start the shim loop. Errors if the
    cluster endpoints do not resolve. *)

val wait : t -> stats
(** Block until shutdown, then stop cores and socket, fold the
    per-core durability tallies, close the logs and report. *)

val shutdown : t -> unit
(** Local shutdown trigger (tests); remote peers send the [Shutdown]
    frame instead. *)

val obs : t -> Mk_obs.Obs.t
(** The node's observability handle ([--metrics] dumps it). *)

val stats_json : stats -> string
(** One JSON object, the node's exit report to the launcher. *)
