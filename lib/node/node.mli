(** A Meerkat server node: one whole replica in one OS process,
    speaking the wire protocol over UDP (DESIGN.md §11).

    The third execution backend, same protocol code as the other two:
    [cores] server domains each own one trecord core (steering by
    [Tid.hash mod cores], as everywhere else); the shim's loop thread
    owns the socket, answers execute-phase [Get]s inline (the
    vstore's shard locks make that safe), feeds this node's own
    {!Mk_meerkat.Detector} instance with peer heartbeats and local
    trecord snapshots, and drives §5.3.2 view changes for stuck
    records entirely over the wire. Epoch changes are not initiated
    yet — reintegrating a killed process needs the WAL/reboot path —
    but a dead peer is detected and reported in {!stats.suspected}.

    Lifecycle: {!bind} the socket (reserving the port — the
    [--port auto] handshake reports it before the cluster config
    exists), {!create} the replica once the config names this node's
    id and the deployment size, {!launch} with the final membership,
    then {!wait} until a [Shutdown] frame (or {!shutdown}) arrives. *)

type config = {
  me : int;  (** This node's replica id (its line in the config). *)
  cores : int;  (** Server domains (trecord cores). *)
  keys : int;  (** Pre-loaded key space, values 0. *)
  core_inbox : int;  (** Per-core mailbox capacity (power of two). *)
  detector : Mk_meerkat.Detector.cfg option;
      (** [None] disables heartbeats, suspicion and view changes. *)
  rto_us : float;  (** View-change retransmission base. *)
}

val default_config : config

val detector_cfg : heartbeat_ms:float -> Mk_meerkat.Detector.cfg
(** Wall-clock detector timings from one knob (suspect after 6 missed
    heartbeats, records stuck after 8 periods). *)

type t

type stats = {
  me : int;
  committed : int;
  aborted : int;
  validations_ok : int;
  validations_abort : int;
  view_changes : int;
  suspected : int list;
      (** Peers this node suspected at shutdown — a SIGKILLed peer
          shows up here (detection without a reboot path). *)
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_bytes_tx : int;
  wire_bytes_rx : int;
  wire_decode_errors : int;
}

type bound
(** A bound socket without a replica yet — what the [--port auto]
    handshake announces. *)

val bind : ?port:int -> unit -> (bound, string) result
(** Bind the UDP socket ([port] 0 = ephemeral). *)

val bound_port : bound -> int

val create : bound -> config -> n_replicas:int -> t
(** Create the replica behind the bound socket. Raises
    [Invalid_argument] on a nonsensical config ([cores] < 1,
    [n_replicas] not odd >= 3, [me] out of range). *)

val port : t -> int

val launch : t -> cluster:Cluster_config.t -> (unit, string) result
(** Spawn the core domains and start the shim loop. Errors if the
    cluster endpoints do not resolve. *)

val wait : t -> stats
(** Block until shutdown, then stop cores and socket and report. *)

val shutdown : t -> unit
(** Local shutdown trigger (tests); remote peers send the [Shutdown]
    frame instead. *)

val obs : t -> Mk_obs.Obs.t
(** The node's observability handle ([--metrics] dumps it). *)

val stats_json : stats -> string
(** One JSON object, the node's exit report to the launcher. *)
