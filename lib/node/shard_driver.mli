(** Cross-shard closed-loop clients driving S independent {!Node}
    fleets over UDP — the cluster backend's multi-group coordinator
    (DESIGN.md §13), the cross-process mirror of [Mk_live.Multi].

    Each coordinator domain owns one poll-mode shim socket serving
    every shard group: wire v2 frames carry the shard-group stamp, so
    requests are stamped with the destination group and replies verify
    against the attempt they name (a reply stamped with the wrong
    group is a counted [wire.shard_drops] drop). The cross-shard
    commit itself is the shared client-side 2PC of
    {!Mk_shard.Driver} — per-shard {!Mk_meerkat.Protocol} attempts
    run to their decision with the write-back withheld, the global
    outcome the conjunction, the write phase broadcast only then. *)

type config = {
  shards : int;  (** Shard groups (one node fleet each). *)
  coordinators : int;  (** Driver domains. *)
  clients : int;  (** Closed-loop clients, spread round-robin. *)
  keys : int;  (** Global keyspace, spread over the shards. *)
  theta : float;
  workload : Client_driver.workload_kind;
  cross : float;
      (** Probability a multi-key transaction spans more than one
          shard (the {!Mk_workload.Workload.locality} knob). *)
  txns_per_client : int;
  duration : float option;  (** Overrides [txns_per_client] (seconds). *)
  seed : int;
  rto_us : float;  (** Commit-phase retransmission base (doubles, capped). *)
  grace_us : float;  (** Fast-path grace (see {!Mk_meerkat.Protocol}). *)
  get_rto_us : float;  (** Execute-phase read timeout before rotating. *)
}

val default_config : config

type result = {
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Every acknowledged commit, merged into one global history
          over global keys (via {!Mk_shard.History.merge}) — what
          [Mk_harness.Checker.check] consumes. *)
  sub_histories : (int * (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list) list;
      (** The same commits as per-shard sub-histories over local keys
          (ascending by shard). *)
  committed_count : int;
  aborted : int;
  cross_shard : int;  (** Acknowledged transactions that spanned shards. *)
  fast_path : int;  (** Per-shard sub-attempts, not global transactions. *)
  slow_path : int;
  retransmits : int;
  submitted : int;
  acked : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_decode_errors : int;
  wire_shard_drops : int;
}

val run :
  config ->
  clusters:Cluster_config.t array ->
  (result, string) Stdlib.result
(** Drive the whole workload against [clusters] — one node fleet per
    shard, all of the same (odd) size; fleet [s] must have been
    launched with [--shard s] and the shard's local keyspace. Errors
    if any endpoint fails to resolve; raises [Invalid_argument] on a
    malformed config (shard/cluster count mismatch, fleets of unequal
    size, [cross] outside \[0, 1\]). *)

val result_json : result -> string
