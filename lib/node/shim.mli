(** The socket shim: a Verdi-style event loop binding an
    {!ARRANGEMENT}'s messages to one UDP socket (DESIGN.md §11).

    This is the cluster backend's only socket/thread boundary — the
    one file the ZCP lint allowlist sanctions, alongside
    [Mk_live.Mailbox]/[Spawn]. Everything above it (node, client
    driver) stays coordination-free: outbound messages go through a
    bounded mailbox whose overflow is a UDP drop (retransmission
    recovers), inbound datagrams are decoded totally (garbage is
    counted and dropped, never fatal) and handed to [deliver].

    The message plane is batched: outbound messages queue unencoded
    and are framed on the flush side into buffers the shim owns and
    reuses, with consecutive same-destination frames coalesced into
    one datagram (up to the UDP maximum) per [sendto]; inbound
    datagrams are burst-decoded frame by frame at offsets. The send
    fast path allocates no per-message strings.

    Two driving modes, never mixed on one shim:
    - {!Make.start} runs the loop on a background systhread
      multiplexing the socket and a self-pipe with [select] — for
      server nodes, whose main domain parks while waiting for
      shutdown (a parked domain releases the runtime lock, so the
      thread runs freely).
    - {!Make.poll} drains outbox and socket inline — for client
      drivers, whose busy-polling coordinator loop would starve a
      sibling systhread of the domain's runtime lock. *)

module type ARRANGEMENT = sig
  type msg

  val encode_into : scratch:Buffer.t -> out:Buffer.t -> msg -> unit
  (** Append one complete frame to [out], staging the payload through
      [scratch] (see {!Mk_wire.Wire.frame_into}). [out] is not
      cleared: the shim coalesces several frames into one datagram. *)

  val decode_at : string -> pos:int -> (msg * int, Mk_wire.Wire.error) result
  (** Decode the frame starting at [pos] and return it with the offset
      just past it (always [> pos]). Total: truncated or hostile
      datagrams yield [Error], never an exception. *)
end

module Make (A : ARRANGEMENT) : sig
  type t

  type handlers = {
    deliver : src:Unix.sockaddr -> A.msg -> unit;
        (** One decoded datagram. Runs on the loop thread; must not
            block (steer into mailboxes, answer, or drop). A raised
            exception is caught and counted under
            [wire.decode_errors] — it cannot kill the loop. *)
    tick : now_us:float -> unit;
        (** Called once per loop iteration (at least every
            [tick_every_s]) with the wall clock in µs — the hook for
            timers: heartbeats, detector scans, retransmissions. *)
    reboot : unit -> unit;
        (** Reserved for the WAL work: replay durable state before
            the first delivery after a restart. Never called yet. *)
  }

  val bind : ?port:int -> ?outbox:int -> unit -> (t, string) result
  (** Create and bind the UDP socket. [port] defaults to 0 — bind an
      ephemeral port, reported by {!port} (the launcher handshake).
      [outbox] is the bounded send-queue capacity (a power of two,
      default 4096). *)

  val port : t -> int
  (** The actually bound port. *)

  val start : t -> ?obs:Mk_obs.Obs.t -> ?tick_every_s:float -> handlers -> unit
  (** Launch the background loop. [obs] receives the wire counters
      ([wire.msgs_tx/rx], [wire.bytes_tx/rx], [wire.decode_errors],
      [wire.send_errors]). *)

  val poll : t -> deliver:(src:Unix.sockaddr -> A.msg -> unit) -> int
  (** Inline mode: flush the outbox, then decode and deliver every
      datagram currently readable (bounded burst); returns how many
      were delivered. The caller owns the loop and its timers. *)

  val set_obs : t -> Mk_obs.Obs.t -> unit
  (** Attach the counter sink in poll mode (start-mode shims pass it
      to {!start}). *)

  val send : t -> dst:Unix.sockaddr -> A.msg -> unit
  (** Enqueue one message; never blocks and never encodes — framing
      happens at flush time into the shim's reused buffers. A full
      outbox drops the message (UDP semantics); a frame too large for
      one UDP datagram is dropped at flush and counted under
      [wire.send_errors], since no retransmit could ever deliver it.
      Any thread may call this. *)

  val stop : t -> unit
  (** Stop the loop (joining the thread if one runs), flush the last
      queued sends, and close the socket. *)
end
