(** Closed-loop clients driving a {!Node} cluster over UDP — the
    cross-process mirror of the live runtime's coordinator domains
    (DESIGN.md §11).

    Each coordinator domain owns its own poll-mode shim socket, RNG,
    workload stream and committed list (coordinators share nothing;
    results merge after join). An attempt first resolves its read set
    with [Get]s against one replica — rotating to the next on timeout,
    the paper's closest-replica read with failover — then drives the
    extracted {!Mk_meerkat.Protocol} machine verbatim, its actions
    becoming [Validate]/[Accept]/[Write_back] frames and its replies
    arriving as [Validated]/[Accepted] frames routed by (slot, seq). *)

type workload_kind = Ycsb_t | Rmw_pair | Retwis

type config = {
  coordinators : int;  (** Driver domains. *)
  clients : int;  (** Closed-loop clients, spread round-robin. *)
  keys : int;
  theta : float;
  workload : workload_kind;
  txns_per_client : int;
  duration : float option;  (** Overrides [txns_per_client] (seconds). *)
  seed : int;
  shard : int;
      (** Shard group this driver belongs to: every frame is stamped
          with it, replies stamped otherwise are counted drops. [0]
          (the default) is a single-group deployment. *)
  rto_us : float;  (** Commit-phase retransmission base (doubles, capped). *)
  grace_us : float;  (** Fast-path grace (see {!Mk_meerkat.Protocol}). *)
  get_rto_us : float;  (** Execute-phase read timeout before rotating. *)
}

val default_config : config

type result = {
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Every acknowledged commit with its timestamp — the history
          the checker replays. *)
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  submitted : int;
  acked : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_decode_errors : int;
}

val run : config -> cluster:Cluster_config.t -> (result, string) Stdlib.result
(** Drive the whole workload against [cluster] and merge the
    per-coordinator results. Errors if the endpoints do not
    resolve. *)

val shutdown :
  ?shard:int -> cluster:Cluster_config.t -> unit -> (unit, string) Stdlib.result
(** Broadcast the [Shutdown] frame (stamped [shard], default 0) to
    every node (from an ephemeral socket). *)

val result_json : result -> string
