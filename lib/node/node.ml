(* A Meerkat server node: one whole replica hosted by one OS process,
   speaking the wire protocol over a {!Shim} socket.

   Topology inside the process: [cores] server domains, each owning
   one core of the replica's trecord (the same partitioning as the
   simulator and the live runtime — a transaction is steered to core
   [Tid.hash tid mod cores]); the shim's loop thread owns the socket,
   the failure detector, and the recovery machines. Inbound protocol
   requests are steered to the owning core's mailbox (a full mailbox
   drops the datagram — retransmission recovers); replies go back out
   through the shim to the datagram's source address, so a node never
   needs to know where clients live. Execute-phase [Get]s are
   answered inline on the loop thread: the vstore's shard locks make
   versioned reads safe from any domain, exactly as the live
   runtime's shared-memory reads.

   Durability (DESIGN.md §12): with [data_dir] set, every finalized
   record is appended to the owning core's write-ahead log (per-core
   files, per-core fsync schedules — no shared commit point, the ZCP
   argument carried to the disk), and each core periodically folds
   its partition into a snapshot file carrying the epoch and a
   [wal_cut] token. A SIGKILLed process reboots by replaying
   snapshot + log-suffix in {!create}, then rejoins the cluster
   through the §5.3.1 epoch change below.

   Failure handling (§5.3): each node runs its own {!Detector}
   instance fed only with [observer = me] facts — its peers'
   heartbeats over UDP and its own cores' trecord snapshots (pushed
   over a control mailbox, so the loop thread never touches a live
   partition). Stuck records trigger the §5.3.2 backup-coordinator
   view change, driven entirely over the wire: gather [Coord_change]
   from a majority, pick the safe outcome with {!Recovery.choose},
   [Vc_accept] at the new view, then broadcast the [Write_back].
   A peer that reboots and advertises itself paused is [recoverable]
   (it heartbeats again), so the detector initiates the §5.3.1 epoch
   change: freeze the local cores, gather [Epoch_records] from a
   majority, {!Epoch.merge}, install locally, then retransmit
   [Epoch_install] (with a store snapshot to the recovering peers)
   until every replica acks [Epoch_installed]. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Trecord = Mk_storage.Trecord
module Quorum = Mk_meerkat.Quorum
module Batch = Mk_meerkat.Batch
module Replica = Mk_meerkat.Replica
module Detector = Mk_meerkat.Detector
module Recovery = Mk_meerkat.Recovery
module Epoch = Mk_meerkat.Epoch
module Codec = Mk_wire.Codec
module Mailbox = Mk_live.Mailbox
module Spawn = Mk_live.Spawn
module Obs = Mk_obs.Obs
module Wal = Mk_durable.Wal
module Walcodec = Mk_durable.Walcodec
module Snapshot = Mk_durable.Snapshot
module Recover = Mk_durable.Recover

(* Messages travel stamped with their shard group id (wire v2): one
   socket fabric can carry several independent groups, and a node
   refuses frames addressed to another group before acting on the
   payload. *)
module Net = Shim.Make (struct
  type msg = int * Codec.t

  let encode_into ~scratch ~out (shard, m) =
    Codec.encode_shard_into ~scratch ~out ~shard m

  let decode_at = Codec.decode_shard_at
end)

type config = {
  me : int;
  shard : int;
  cores : int;
  keys : int;
  core_inbox : int;
  detector : Detector.cfg option;
  rto_us : float;
  data_dir : string option;
  fsync : Wal.policy;
}

let default_config =
  {
    me = 0;
    shard = 0;
    cores = 2;
    keys = 1024;
    core_inbox = 1024;
    detector = None;
    rto_us = 100_000.0;
    data_dir = None;
    fsync = Wal.Every 8;
  }

(* Wall-clock detector timings from one knob, mirroring the live
   runtime's horizon scaling: suspect after 6 missed heartbeats, call
   a record stuck after 8 periods, scan twice a period. *)
let detector_cfg ~heartbeat_ms =
  let hb = heartbeat_ms *. 1000.0 in
  {
    Detector.heartbeat_every = hb;
    heartbeat_timeout = 6.0 *. hb;
    pause_timeout = 12.0 *. hb;
    stuck_timeout = 8.0 *. hb;
    scan_every = 2.0 *. hb;
    epoch_cooldown = 20.0 *. hb;
    give_up_after = 40.0 *. hb;
  }

type core_msg =
  | Net_req of { src : Unix.sockaddr; msg : Codec.t }
  | Core_freeze of { gen : int }
      (** Epoch change: stop touching the stores and ack [Frozen];
          drop protocol datagrams until the matching [Core_thaw]. *)
  | Core_thaw of { gen : int }
  | Core_quit

type ctl_msg =
  | Records of { core : int; entries : Trecord.entry list }
  | Frozen of { core : int; gen : int }

type stats = {
  me : int;
  committed : int;
  aborted : int;
  validations_ok : int;
  validations_abort : int;
  view_changes : int;
  epoch_changes : int;
  suspected : int list;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_bytes_tx : int;
  wire_bytes_rx : int;
  wire_decode_errors : int;
  wire_shard_drops : int;
  wal_appends : int;
  wal_bytes : int;
  wal_fsyncs : int;
  wal_replayed : int;
  wal_snapshots_used : int;
  wal_decode_errors : int;
  snapshots : int;
}

(* Per-core durability tally: bumped only by the owning core's domain
   (or the loop thread while that core is frozen), folded into the
   single-threaded Obs registry at [wait]. *)
type tally = {
  mutable t_appends : int;
  mutable t_bytes : int;
  mutable t_fsyncs : int;
  mutable t_snaps : int;
  mutable t_snap_bytes : int;
}

type durable = { dir : string; wals : Wal.t array; tallies : tally array }

type t = {
  cfg : config;
  replica : Replica.t;
  net : Net.t;
  core_inboxes : core_msg Mailbox.t array;
  ctl_inbox : ctl_msg Mailbox.t;
  done_box : unit Mailbox.t;
  obs : Obs.t;
  durable : durable option;
  mutable core_handles : unit Spawn.handle list;
  mutable final_suspected : int list;
}

let wal_path dir core = Filename.concat dir (Printf.sprintf "core%d.wal" core)
let snap_path dir core = Filename.concat dir (Printf.sprintf "core%d.snap" core)

let view_of_entry (e : Trecord.entry) : Replica.record_view =
  {
    txn = e.Trecord.txn;
    ts = e.Trecord.ts;
    status = e.Trecord.status;
    view = e.Trecord.view;
    accept_view = e.Trecord.accept_view;
  }

let write_snapshot ~path (snap : Walcodec.snapshot) =
  let s = Walcodec.encode_snapshot snap in
  Snapshot.write ~path s;
  String.length s

(* The persistence callback. [Finalized] fires on the owning core's
   domain — each per-core WAL has a single writer, so plain appends
   and a private tally row suffice. [Installed] fires on the loop
   thread while every core is frozen: the merged epoch state
   supersedes whatever the logs say, so write full per-core snapshots
   cutting at the current log lengths. *)
let on_durable t (d : durable) (ev : Replica.durable_event) =
  match ev with
  | Replica.Finalized { core; view } ->
      if core >= 0 && core < Array.length d.wals then begin
        let s = Walcodec.encode_record { Walcodec.core; view } in
        let tally = d.tallies.(core) in
        (match Wal.append d.wals.(core) s with
        | `Synced -> tally.t_fsyncs <- tally.t_fsyncs + 1
        | `Buffered -> ());
        tally.t_appends <- tally.t_appends + 1;
        tally.t_bytes <- tally.t_bytes + String.length s
      end
  | Replica.Installed { epoch } ->
      let cores = Array.length d.wals in
      let all_views = Replica.record_views t.replica in
      let all_rows = Replica.store_snapshot t.replica in
      Array.iteri
        (fun core wal ->
          let views =
            List.filter_map
              (fun (c, v) -> if c = core then Some v else None)
              all_views
          in
          let rows =
            List.filter (fun (k, _, _, _) -> k mod cores = core) all_rows
          in
          let bytes =
            write_snapshot
              ~path:(snap_path d.dir core)
              { Walcodec.core; epoch; wal_cut = Wal.length wal; views; rows }
          in
          let tally = d.tallies.(core) in
          tally.t_snaps <- tally.t_snaps + 1;
          tally.t_snap_bytes <- tally.t_snap_bytes + bytes)
        d.wals

(* The socket is bound before the replica exists: with [--port auto]
   the launcher needs the port announcement to finish assembling the
   very cluster config that tells this node its replica id and the
   deployment size. *)
type bound = Net.t

let bind ?(port = 0) () : (bound, string) result = Net.bind ~port ()
let bound_port (b : bound) = Net.port b

let create (net : bound) (cfg : config) ~n_replicas =
  if cfg.cores < 1 then invalid_arg "Node.create: cores must be >= 1";
  if cfg.shard < 0 || cfg.shard > Mk_wire.Wire.max_shard then
    invalid_arg "Node.create: shard out of range";
  if n_replicas < 3 || n_replicas mod 2 = 0 then
    invalid_arg "Node.create: n_replicas must be odd and >= 3";
  if cfg.me < 0 || cfg.me >= n_replicas then
    invalid_arg "Node.create: me out of range";
  let quorum = Quorum.create ~n:n_replicas in
  let replica = Replica.create ~id:cfg.me ~quorum ~cores:cfg.cores in
  for key = 0 to cfg.keys - 1 do
    Replica.load replica ~key ~value:0
  done;
  let obs = Obs.create ~clock:(fun () -> Spawn.wall () *. 1e6) () in
  let durable =
    match cfg.data_dir with
    | None -> None
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        (* Reboot: read whatever the previous incarnation left behind
           and fold it back into the fresh stores before any domain
           spawns. A torn tail or corrupt snapshot degrades (counted
           in [wal.decode_errors]), never faults the boot. *)
        let sources =
          List.init cfg.cores (fun c ->
              {
                Recover.snap = Snapshot.read ~path:(snap_path dir c);
                log = Wal.read_file (wal_path dir c);
              })
        in
        let prior =
          List.exists
            (fun (s : Recover.source) -> s.snap <> None || s.log <> "")
            sources
        in
        let parsed = Recover.parse ~cores:cfg.cores sources in
        Recover.apply replica parsed;
        Obs.note_wal_replayed obs ~snapshots:parsed.snapshots_used
          ~records:parsed.replayed ~errors:parsed.decode_errors;
        let wals =
          Array.init cfg.cores (fun c ->
              Wal.open_log ~path:(wal_path dir c) ~policy:cfg.fsync)
        in
        if prior then begin
          (* Compact: fold the replay into fresh snapshots (cut 0),
             then drop the logs. Snapshot-before-truncate is
             crash-safe — dying between the two just replays the same
             prefix again, and replay is idempotent. Then advertise
             ourselves paused: the survivors' detectors drive the
             §5.3.1 epoch change that merges us back. *)
          let all_views = Replica.record_views replica in
          let all_rows = Replica.store_snapshot replica in
          Array.iteri
            (fun core wal ->
              let views =
                List.filter_map
                  (fun (c, v) -> if c = core then Some v else None)
                  all_views
              in
              let rows =
                List.filter (fun (k, _, _, _) -> k mod cfg.cores = core) all_rows
              in
              let bytes =
                write_snapshot
                  ~path:(snap_path dir core)
                  { Walcodec.core; epoch = parsed.epoch; wal_cut = 0; views; rows }
              in
              Obs.note_snapshot obs ~bytes;
              Wal.truncate wal ~len:0)
            wals;
          Replica.begin_recovery replica
        end;
        Some
          {
            dir;
            wals;
            tallies =
              Array.init cfg.cores (fun _ ->
                  {
                    t_appends = 0;
                    t_bytes = 0;
                    t_fsyncs = 0;
                    t_snaps = 0;
                    t_snap_bytes = 0;
                  });
          }
  in
  let t =
    {
      cfg;
      replica;
      net;
      core_inboxes =
        Array.init cfg.cores (fun _ -> Mailbox.create ~capacity:cfg.core_inbox);
      ctl_inbox = Mailbox.create ~capacity:64;
      done_box = Mailbox.create ~capacity:2;
      obs;
      durable;
      core_handles = [];
      final_suspected = [];
    }
  in
  (match durable with
  | Some d -> Replica.set_durable_hook replica (on_durable t d)
  | None -> ());
  t

let port t = Net.port t.net

(* ------------------------------------------------------------------ *)
(* Core domains                                                        *)
(* ------------------------------------------------------------------ *)

let core_loop t ~core ~snap_every_us =
  let me = t.cfg.me in
  let replica = t.replica in
  let inbox = t.core_inboxes.(core) in
  let reply src msg = Net.send t.net ~dst:src (t.cfg.shard, msg) in
  let handle src (msg : Codec.t) =
    match msg with
    | Codec.Validate { slot; seq; txn; ts; _ } -> (
        match Replica.handle_validate replica ~core ~txn ~ts with
        | None -> ()
        | Some status -> reply src (Codec.Validated { slot; seq; replica = me; status }))
    | Codec.Accept { slot; seq; txn; ts; decision; view; _ } -> (
        match Replica.handle_accept replica ~core ~txn ~ts ~decision ~view with
        | None -> ()
        | Some r -> reply src (Codec.Accepted { slot; seq; replica = me; reply = r }))
    | Codec.Write_back { txn; ts; commit } ->
        ignore (Replica.handle_commit replica ~core ~txn ~ts ~commit : unit option)
    | Codec.Coord_change { observer; tid; view } -> (
        match Replica.handle_coord_change replica ~core ~tid ~view with
        | None -> ()
        | Some r ->
            reply src
              (Codec.Coord_reply { observer; replica = me; tid; reply = r }))
    | Codec.Vc_accept { observer; txn; ts; decision; view } -> (
        match Replica.handle_accept replica ~core ~txn ~ts ~decision ~view with
        | None -> ()
        | Some r ->
            reply src
              (Codec.Vc_accept_reply
                 { observer; replica = me; tid = txn.Txn.tid; reply = r }))
    | _ ->
        (* The steering layer only routes the five kinds above. *)
        ()
  in
  let push_records () =
    let entries =
      List.filter
        (fun (e : Trecord.entry) -> not (Txn.is_final e.Trecord.status))
        (Trecord.core_entries (Replica.trecord replica) ~core)
      (* Fresh copies: the live partition stays owned by this core. *)
      |> List.map (fun (e : Trecord.entry) -> { e with Trecord.ts = e.Trecord.ts })
    in
    ignore (Mailbox.try_push t.ctl_inbox (Records { core; entries }) : bool)
  in
  (* Periodic durable checkpoint, written by the core that owns the
     data: its own trecord partition, its own vstore keys (the shard
     locks make the filtered scan safe), its own log length — no
     cross-core coordination (ZCP). *)
  let checkpoint () =
    match t.durable with
    | None -> ()
    | Some d ->
        let cores = t.cfg.cores in
        let views =
          List.map view_of_entry
            (Trecord.core_entries (Replica.trecord replica) ~core)
        in
        let rows =
          List.filter
            (fun (k, _, _, _) -> k mod cores = core)
            (Replica.store_snapshot replica)
        in
        let bytes =
          write_snapshot
            ~path:(snap_path d.dir core)
            {
              Walcodec.core;
              epoch = Replica.epoch replica;
              wal_cut = Wal.length d.wals.(core);
              views;
              rows;
            }
        in
        let tally = d.tallies.(core) in
        tally.t_snaps <- tally.t_snaps + 1;
        tally.t_snap_bytes <- tally.t_snap_bytes + bytes
  in
  let next_snap = ref (Spawn.wall () *. 1e6) in
  let idle = ref 0 in
  let quit = ref false in
  let frozen = ref None in
  while not !quit do
    match Mailbox.try_pop inbox with
    | Some (Net_req { src; msg }) ->
        (* A frozen core drops protocol datagrams: the epoch change
           owns the stores; retransmission recovers, as for any other
           loss. *)
        if !frozen = None then begin
          idle := 0;
          handle src msg
        end
    | Some (Core_freeze { gen }) ->
        frozen := Some gen;
        (* Re-acks on duplicate freezes cover a dropped [Frozen]. *)
        ignore (Mailbox.try_push t.ctl_inbox (Frozen { core; gen }) : bool)
    | Some (Core_thaw { gen }) -> (
        match !frozen with
        | Some g when g = gen -> frozen := None
        | _ -> ())
    | Some Core_quit -> quit := true
    | None ->
        (match snap_every_us with
        | Some every when !frozen = None ->
            let now = Spawn.wall () *. 1e6 in
            if now >= !next_snap then begin
              push_records ();
              checkpoint ();
              next_snap := now +. every
            end
        | Some _ | None -> ());
        incr idle;
        (* Z8: a 100µs doze after ~200 empty polls is the idle backoff,
           not hot-path blocking — an inbox message ends it on the next
           iteration. *)
        if !idle > 200 then (Unix.sleepf 0.0001 [@mk_lint.allow "Z8"])
        else Spawn.relax ()
  done

(* ------------------------------------------------------------------ *)
(* Loop thread: steering, detector, view changes, epoch changes        *)
(* ------------------------------------------------------------------ *)

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

(* A §5.3.2 view change driven over the wire — the cross-process port
   of the live runtime monitor's machine. *)
type vc_machine = {
  vc_txn : Txn.t;
  vc_ts : Timestamp.t;
  vc_view : int;
  vc_deadline : float;
  vc_gathered : (int, Recovery.reply) Hashtbl.t;
  mutable vc_chosen : [ `Commit | `Abort ] option;
  vc_accept_from : bool array;
  mutable vc_rto : float;
  mutable vc_next_retry : float;
}

(* A §5.3.1 epoch change driven over the wire. The node is either the
   initiator (its detector fired [Start_epoch_change]) or a peer
   answering one; concurrent initiators at the same epoch tie-break
   to the lowest replica id. Both roles first freeze the local cores
   — the loop thread may only read or rebuild the stores once every
   core has acked [Frozen]. *)
type ec_role =
  | Ec_initiator of {
      ec_recovering : int list;
      ec_gathered : (int, (int * Replica.record_view) list) Hashtbl.t;
      mutable ec_merged : (int * Replica.record_view) list option;
      mutable ec_store : Codec.store_row list;
          (** Post-install state-transfer rows for the recovering. *)
      ec_installed_from : bool array;
    }
  | Ec_peer of {
      mutable ec_from : Unix.sockaddr;  (** Where records and acks go. *)
      mutable ec_rank : int;
          (** Initiator id for the tie-break; [max_int] when the
              machine was created by an [Epoch_install] alone. *)
      mutable ec_sent_records : bool;
      mutable ec_pending :
        ((int * Replica.record_view) list * Codec.store_row list option) option;
          (** An install that arrived before every core was frozen. *)
    }

type ec_machine = {
  ec_epoch : int;
  ec_gen : int;  (** Freeze generation: thaws only match their gen. *)
  ec_frozen : bool array;
  ec_deadline : float;
  mutable ec_rto : float;
  mutable ec_next_retry : float;
  mutable ec_role : ec_role;
}

let launch t ~cluster =
  match Cluster_config.sockaddrs cluster with
  | Error _ as e -> e
  | Ok addrs ->
      let cfg = t.cfg in
      let me = cfg.me in
      let n = Array.length cluster in
      if n <= me then invalid_arg "Node.launch: cluster smaller than me";
      let quorum = Replica.quorum t.replica in
      let send ~dst msg = Net.send t.net ~dst (cfg.shard, msg) in
      let broadcast msg =
        Array.iter (fun addr -> send ~dst:addr msg) addrs
      in
      let dcfg = cfg.detector in
      let det =
        Option.map
          (fun d -> Detector.create ~cfg:d ~n ~now:(Spawn.wall () *. 1e6))
          dcfg
      in
      let latest = Array.make cfg.cores [] in
      let vcs : vc_machine Tid_table.t = Tid_table.create 16 in
      let next_hb = ref 0.0 in
      let next_scan = ref 0.0 in
      (* Last heartbeat wall-clock per peer: the [recoverable]
         predicate — a suspect that still (or again) heartbeats can be
         reintegrated right now; a silent one has to reboot first. *)
      let hb_seen = Array.make n neg_infinity in
      (* Scratch batch for the detector's scan-tick emissions — the
         loop thread owns it, and [perform] never reenters [scan]. *)
      let det_acts : Detector.action Batch.t = Batch.create () in
      let ec : ec_machine option ref = ref None in
      let ec_gen = ref 0 in
      (* Mirror of the replica's installed epoch, for dedup-acking
         retransmitted installs without touching the stores. *)
      let installed_epoch = ref (Replica.epoch t.replica) in
      let vc_abandon det tid =
        Tid_table.remove vcs tid;
        Detector.view_change_finished det ~now:(Spawn.wall () *. 1e6)
          ~observer:me ~tid ~outcome:`Abandoned
      in
      (* Z7: [r] ranges over 0..n-1 by construction in both senders, so
         [addrs.(r)] cannot be out of bounds. *)
      let[@mk_lint.allow "Z7"] vc_send_gather tid vc =
        for r = 0 to n - 1 do
          if not (Hashtbl.mem vc.vc_gathered r) then
            send ~dst:addrs.(r)
              (Codec.Coord_change { observer = me; tid; view = vc.vc_view })
        done
      in
      let[@mk_lint.allow "Z7"] vc_send_accepts vc decision =
        for r = 0 to n - 1 do
          if not vc.vc_accept_from.(r) then
            send ~dst:addrs.(r)
              (Codec.Vc_accept
                 {
                   observer = me;
                   txn = vc.vc_txn;
                   ts = vc.vc_ts;
                   decision;
                   view = vc.vc_view;
                 })
        done
      in
      let vc_finish det tid vc ~commit =
        Tid_table.remove vcs tid;
        broadcast (Codec.Write_back { txn = vc.vc_txn; ts = vc.vc_ts; commit });
        Detector.view_change_finished det ~now:(Spawn.wall () *. 1e6)
          ~observer:me ~tid ~outcome:`Finished;
        Obs.note_view_change t.obs
      in
      (* --- §5.3.1 epoch-change machinery --------------------------- *)
      let store_rows_to_wire rows =
        List.map
          (fun (key, value, wts, rts) -> { Codec.key; value; wts; rts })
          rows
      in
      let store_rows_of_wire rows =
        List.map
          (fun (r : Codec.store_row) -> (r.Codec.key, r.value, r.wts, r.rts))
          rows
      in
      let ec_all_frozen m = Array.for_all (fun b -> b) m.ec_frozen in
      let freeze_core core gen =
        (* [push], not [try_push]: control messages must not be lost,
           and a core draining its inbox unblocks the push promptly.
           Z7: every caller iterates [core] over [0, cores) — the
           bounds of this very array. *)
        (Mailbox.push t.core_inboxes.(core) (Core_freeze { gen }))
        [@mk_lint.allow "Z7"]
      in
      let ec_thaw m =
        Array.iteri
          (fun core inbox ->
            ignore (core : int);
            Mailbox.push inbox (Core_thaw { gen = m.ec_gen }))
          t.core_inboxes
      in
      let ec_new ~epoch ~role =
        incr ec_gen;
        let now = Spawn.wall () *. 1e6 in
        let deadline =
          match dcfg with
          | Some d -> now +. d.Detector.give_up_after
          | None -> now +. (40.0 *. cfg.rto_us)
        in
        let m =
          {
            ec_epoch = epoch;
            ec_gen = !ec_gen;
            ec_frozen = Array.make cfg.cores false;
            ec_deadline = deadline;
            ec_rto = cfg.rto_us;
            ec_next_retry = now +. cfg.rto_us;
            ec_role = role;
          }
        in
        ec := Some m;
        for core = 0 to cfg.cores - 1 do
          freeze_core core m.ec_gen
        done;
        m
      in
      let ec_finish ~success ~recovering =
        ec := None;
        (match det with
        | Some d ->
            Detector.epoch_change_finished d ~now:(Spawn.wall () *. 1e6)
              ~success ~recovering
        | None -> ());
        if success then Obs.note_epoch_change t.obs
      in
      (* Rebuild the local replica from the merged trecord (and an
         optional store snapshot). Cores must be frozen: this mutates
         every partition. Completing the install fires the durable
         [Installed] hook, which checkpoints all cores. *)
      let ec_install_local ~epoch ~records ~store =
        match Replica.handle_epoch_complete t.replica ~epoch ~records ~store with
        | Some () ->
            if epoch > !installed_epoch then installed_epoch := epoch;
            true
        | None -> false
      in
      let ec_broadcast_change m =
        Array.iteri
          (fun p addr ->
            if p <> me then
              send ~dst:addr
                (Codec.Epoch_change { initiator = me; epoch = m.ec_epoch }))
          addrs
      in
      let ec_send_installs m r =
        match r with
        | Ec_initiator
            { ec_merged = Some records; ec_store; ec_installed_from; ec_recovering; _ }
          ->
            Array.iteri
              (fun p addr ->
                (* Z7: [p] ranges over 0..n-1 by construction. *)
                if p <> me && not (ec_installed_from.(p) [@mk_lint.allow "Z7"])
                then
                  let store =
                    if List.mem p ec_recovering then Some ec_store else None
                  in
                  send ~dst:addr
                    (Codec.Epoch_install { epoch = m.ec_epoch; records; store }))
              addrs
        | Ec_initiator _ | Ec_peer _ -> ()
      in
      let ec_try_merge m =
        match m.ec_role with
        | Ec_initiator r
          when r.ec_merged = None
               && Hashtbl.length r.ec_gathered >= Quorum.majority quorum ->
            let reports =
              Hashtbl.fold
                (fun replica records acc -> { Epoch.replica; records } :: acc)
                r.ec_gathered []
            in
            (* Z7 (lib/meerkat/epoch.ml): [merge] is guarded — the
               table holds >= majority distinct replica ids. *)
            let merged = Epoch.merge ~quorum ~reports in
            if ec_install_local ~epoch:m.ec_epoch ~records:merged ~store:None
            then begin
              r.ec_merged <- Some merged;
              r.ec_store <-
                store_rows_to_wire (Replica.store_snapshot t.replica);
              (* Z7: [me] < n, checked in [launch]'s prologue. *)
              (r.ec_installed_from.(me) <- true) [@mk_lint.allow "Z7"];
              ec_thaw m;
              ec_send_installs m m.ec_role
            end
            else begin
              (* Our own replica refused the install — a newer epoch
                 beat this machine. Abandon; the winner completes. *)
              ec_thaw m;
              ec_finish ~success:false ~recovering:r.ec_recovering
            end
        | Ec_initiator _ | Ec_peer _ -> ()
      in
      let ec_peer_report m =
        match m.ec_role with
        | Ec_peer p ->
            (* [None] just means the replica already entered this epoch
               (a duplicate [Epoch_change]); the records are valid
               either way — the cores are frozen. *)
            ignore
              (Replica.handle_epoch_change t.replica ~epoch:m.ec_epoch
                : Replica.record_view list option);
            p.ec_sent_records <- true;
            send ~dst:p.ec_from
              (Codec.Epoch_records
                 {
                   replica = me;
                   epoch = m.ec_epoch;
                   records = Replica.record_views t.replica;
                 })
        | Ec_initiator _ -> ()
      in
      let ec_peer_install m ~records ~store =
        let store = Option.map store_rows_of_wire store in
        let ack_to =
          match m.ec_role with
          | Ec_peer p -> Some p.ec_from
          | Ec_initiator _ -> None
        in
        let installed =
          ec_install_local ~epoch:m.ec_epoch ~records ~store
        in
        (match ack_to with
        | Some dst when installed ->
            send ~dst (Codec.Epoch_installed { replica = me; epoch = m.ec_epoch })
        | _ -> ());
        (* Installed or refused (a newer epoch won): either way this
           machine is done. *)
        ec_thaw m;
        ec := None
      in
      let ec_on_frozen m =
        match m.ec_role with
        | Ec_initiator r ->
            (* Pause the replica at the new epoch, contribute our own
               report, and poll the peers. *)
            ignore
              (Replica.handle_epoch_change t.replica ~epoch:m.ec_epoch
                : Replica.record_view list option);
            Hashtbl.replace r.ec_gathered me (Replica.record_views t.replica);
            ec_broadcast_change m;
            ec_try_merge m
        | Ec_peer p -> (
            match p.ec_pending with
            | Some (records, store) -> ec_peer_install m ~records ~store
            | None -> ec_peer_report m)
      in
      let ec_start_peer ~initiator ~epoch =
        (* Z7: [initiator] was range-checked by [wire_ids_ok]. *)
        let from = addrs.(initiator) [@mk_lint.allow "Z7"] in
        ignore
          (ec_new ~epoch
             ~role:
               (Ec_peer
                  {
                    ec_from = from;
                    ec_rank = initiator;
                    ec_sent_records = false;
                    ec_pending = None;
                  })
            : ec_machine)
      in
      let ec_on_change ~initiator ~epoch =
        if epoch > !installed_epoch && initiator <> me then
          match !ec with
          | None -> ec_start_peer ~initiator ~epoch
          | Some m when m.ec_epoch > epoch -> ()
          | Some m when m.ec_epoch = epoch -> (
              match m.ec_role with
              | Ec_initiator r ->
                  if initiator < me then begin
                    (* Tie-break: the lower id drives this epoch; turn
                       into its peer. The cores stay frozen under the
                       same generation. *)
                    m.ec_role <-
                      Ec_peer
                        {
                          (* Z7: range-checked by [wire_ids_ok]. *)
                          ec_from = (addrs.(initiator) [@mk_lint.allow "Z7"]);
                          ec_rank = initiator;
                          ec_sent_records = false;
                          ec_pending = None;
                        };
                    (match det with
                    | Some d ->
                        Detector.epoch_change_finished d
                          ~now:(Spawn.wall () *. 1e6)
                          ~success:false ~recovering:r.ec_recovering
                    | None -> ());
                    if ec_all_frozen m then ec_peer_report m
                  end
              | Ec_peer p ->
                  if initiator < p.ec_rank then begin
                    p.ec_rank <- initiator;
                    (* Z7: range-checked by [wire_ids_ok]. *)
                    p.ec_from <- (addrs.(initiator) [@mk_lint.allow "Z7"]);
                    if ec_all_frozen m then ec_peer_report m
                  end
                  else if initiator = p.ec_rank && p.ec_sent_records then
                    (* Duplicate change: our report was lost. *)
                    ec_peer_report m)
          | Some m ->
              (* A newer epoch supersedes the machine in flight. *)
              (match m.ec_role with
              | Ec_initiator r ->
                  (match det with
                  | Some d ->
                      Detector.epoch_change_finished d
                        ~now:(Spawn.wall () *. 1e6)
                        ~success:false ~recovering:r.ec_recovering
                  | None -> ())
              | Ec_peer _ -> ());
              ec_start_peer ~initiator ~epoch
      in
      let ec_on_records ~replica ~epoch ~records =
        match !ec with
        | Some m when m.ec_epoch = epoch -> (
            match m.ec_role with
            | Ec_initiator r when r.ec_merged = None ->
                if not (Hashtbl.mem r.ec_gathered replica) then begin
                  Hashtbl.replace r.ec_gathered replica records;
                  ec_try_merge m
                end
            | Ec_initiator _ | Ec_peer _ -> ())
        | Some _ | None -> ()
      in
      let ec_on_install ~src ~epoch ~records ~store =
        if epoch <= !installed_epoch then
          (* Already installed (a retransmit): just re-ack. *)
          send ~dst:src (Codec.Epoch_installed { replica = me; epoch })
        else
          match !ec with
          | Some m when m.ec_epoch = epoch -> (
              match m.ec_role with
              | Ec_peer p ->
                  if ec_all_frozen m then ec_peer_install m ~records ~store
                  else p.ec_pending <- Some (records, store)
              | Ec_initiator r ->
                  (* A rival initiator won the race to a majority;
                     adopt its merge once our cores are frozen. *)
                  if ec_all_frozen m then begin
                    let store = Option.map store_rows_of_wire store in
                    if ec_install_local ~epoch ~records ~store then
                      send ~dst:src
                        (Codec.Epoch_installed { replica = me; epoch });
                    ec_thaw m;
                    ec_finish ~success:false ~recovering:r.ec_recovering
                  end)
          | Some _ -> ()
          | None ->
              (* We never saw the [Epoch_change] (loss or reorder):
                 freeze and install once the cores ack. *)
              incr ec_gen;
              let now = Spawn.wall () *. 1e6 in
              let deadline =
                match dcfg with
                | Some d -> now +. d.Detector.give_up_after
                | None -> now +. (40.0 *. cfg.rto_us)
              in
              let m =
                {
                  ec_epoch = epoch;
                  ec_gen = !ec_gen;
                  ec_frozen = Array.make cfg.cores false;
                  ec_deadline = deadline;
                  ec_rto = cfg.rto_us;
                  ec_next_retry = now +. cfg.rto_us;
                  ec_role =
                    Ec_peer
                      {
                        ec_from = src;
                        ec_rank = max_int;
                        ec_sent_records = false;
                        ec_pending = Some (records, store);
                      };
                }
              in
              ec := Some m;
              for core = 0 to cfg.cores - 1 do
                freeze_core core m.ec_gen
              done
      in
      let ec_on_installed ~replica ~epoch =
        match !ec with
        | Some m when m.ec_epoch = epoch -> (
            match m.ec_role with
            | Ec_initiator ({ ec_merged = Some _; _ } as r) ->
                (* Z7: [replica] was range-checked by [wire_ids_ok]. *)
                (r.ec_installed_from.(replica) <- true) [@mk_lint.allow "Z7"];
                if Array.for_all (fun b -> b) r.ec_installed_from then
                  ec_finish ~success:true ~recovering:r.ec_recovering
            | Ec_initiator _ | Ec_peer _ -> ())
        | Some _ | None -> ()
      in
      let ec_core_frozen ~core ~gen =
        match !ec with
        | Some m
          when m.ec_gen = gen && core >= 0 && core < cfg.cores
               (* Z7: in-range by the guard on the same line. *)
               && not (m.ec_frozen.(core) [@mk_lint.allow "Z7"]) ->
            (m.ec_frozen.(core) <- true) [@mk_lint.allow "Z7"];
            if ec_all_frozen m then ec_on_frozen m
        | _ -> ()
      in
      let ec_tick now_us =
        match !ec with
        | None -> ()
        | Some m ->
            if now_us > m.ec_deadline then begin
              match m.ec_role with
              | Ec_initiator r ->
                  let ok =
                    r.ec_merged <> None
                    && List.for_all
                         (fun p ->
                           p >= 0 && p < n
                           (* Z7: in-range by the guard. *)
                           && (r.ec_installed_from.(p) [@mk_lint.allow "Z7"]))
                         r.ec_recovering
                  in
                  if r.ec_merged = None then begin
                    (* Never reached a majority. Reinstall our own
                       records so the replica does not stay paused
                       behind an abandoned change. *)
                    if ec_all_frozen m then
                      ignore
                        (ec_install_local ~epoch:m.ec_epoch
                           ~records:(Replica.record_views t.replica)
                           ~store:None
                          : bool);
                    ec_thaw m
                  end;
                  ec_finish ~success:ok ~recovering:r.ec_recovering
              | Ec_peer p ->
                  (* The install never arrived. Resume from our own
                     records — any record the missed merge finalized
                     is repaired later by the §5.3.2 view-change
                     path. *)
                  if p.ec_sent_records && ec_all_frozen m then
                    ignore
                      (ec_install_local ~epoch:m.ec_epoch
                         ~records:(Replica.record_views t.replica)
                         ~store:None
                        : bool);
                  ec_thaw m;
                  ec := None
            end
            else if now_us >= m.ec_next_retry then begin
              m.ec_rto <- m.ec_rto *. 2.0;
              m.ec_next_retry <- now_us +. m.ec_rto;
              if not (ec_all_frozen m) then
                Array.iteri
                  (fun core frozen ->
                    if not frozen then freeze_core core m.ec_gen)
                  m.ec_frozen
              else
                match m.ec_role with
                | Ec_initiator r ->
                    if r.ec_merged = None then ec_broadcast_change m
                    else ec_send_installs m m.ec_role
                | Ec_peer p -> if p.ec_sent_records then ec_peer_report m
            end
      in
      (* ------------------------------------------------------------- *)
      (* Z7: [Tid.hash] is masked non-negative, so [hash mod cores]
         lands in 0..cores-1 — the index is safe for any wire tid. *)
      let[@mk_lint.allow "Z7"] steer (src : Unix.sockaddr) (msg : Codec.t) tid =
        let core = Tid.hash tid mod cfg.cores in
        (* A full core inbox drops the datagram — retransmission
           recovers, like any other network loss. *)
        ignore (Mailbox.try_push t.core_inboxes.(core) (Net_req { src; msg }) : bool)
      in
      (* Replica ids and core tags taken straight off the wire index
         detector, view-change and epoch-change arrays ([hb_last],
         [vc_accept_from], [ec_installed_from], trecord partitions)
         and count toward quorum majorities: one well-framed datagram
         carrying an out-of-range id (hostile peer, misconfigured
         deployment, bit-flipped genuine frame) must be a counted drop
         like any other undecodable input — never an
         [Invalid_argument] on the loop thread, and never a phantom
         quorum vote. *)
      let wire_ids_ok (msg : Codec.t) =
        let replica_ok r = r >= 0 && r < n in
        let core_ok (c, _) = c >= 0 && c < cfg.cores in
        match msg with
        | Codec.Heartbeat { from_; _ } -> replica_ok from_
        | Codec.Coord_reply { replica; _ }
        | Codec.Vc_accept_reply { replica; _ } ->
            replica_ok replica
        | Codec.Epoch_change { initiator; _ } -> replica_ok initiator
        | Codec.Epoch_records { replica; records; _ } ->
            replica_ok replica && List.for_all core_ok records
        | Codec.Epoch_install { records; _ } -> List.for_all core_ok records
        | Codec.Epoch_installed { replica; _ } -> replica_ok replica
        | _ -> true
      in
      let deliver ~src ((shard, msg) : int * Codec.t) =
        (* A frame stamped for another shard group is a counted drop
           before the payload is acted on: the groups are independent
           deployments that merely share a socket fabric, and a
           crossed port must never inject traffic (or a phantom
           quorum vote) into the wrong group. *)
        if shard <> cfg.shard then Obs.note_wire_shard_drop t.obs
        else if not (wire_ids_ok msg) then Obs.note_wire_decode_error t.obs
        else
        match msg with
        | Codec.Get { slot; seq; key; _ } -> (
            match Replica.handle_get t.replica ~key with
            | None -> ()
            | Some (value, wts) ->
                send ~dst:src
                  (Codec.Get_reply { slot; seq; replica = me; key; value; wts }))
        | Codec.Validate { txn; _ } | Codec.Vc_accept { txn; _ } ->
            steer src msg txn.Txn.tid
        | Codec.Accept { txn; _ } | Codec.Write_back { txn; _ } ->
            steer src msg txn.Txn.tid
        | Codec.Coord_change { tid; _ } -> steer src msg tid
        | Codec.Heartbeat { from_; paused } ->
            if from_ <> me then begin
              (* Z7: [from_] was range-checked by [wire_ids_ok]. *)
              (hb_seen.(from_) <- Spawn.wall () *. 1e6) [@mk_lint.allow "Z7"];
              match det with
              | Some det ->
                  Detector.heartbeat_received det ~now:(Spawn.wall () *. 1e6)
                    ~observer:me ~from_ ~paused
              | None -> ()
            end
        | Codec.Coord_reply { observer; replica; tid; reply } -> (
            match det with
            | Some det when observer = me -> (
                match Tid_table.find_opt vcs tid with
                | Some vc when vc.vc_chosen = None -> (
                    match reply with
                    | `Stale _ ->
                        (* A higher view took over; leave the record
                           to it. *)
                        vc_abandon det tid
                    | `View_ok record ->
                        if not (Hashtbl.mem vc.vc_gathered replica) then
                          Hashtbl.replace vc.vc_gathered replica
                            (match record with
                            | None -> Recovery.No_record
                            | Some v -> Recovery.Record v);
                        if Hashtbl.length vc.vc_gathered >= Quorum.majority quorum
                        then begin
                          let replies =
                            Hashtbl.fold
                              (fun r v acc -> (r, v) :: acc)
                              vc.vc_gathered []
                          in
                          let decision = Recovery.choose ~quorum ~replies in
                          vc.vc_chosen <- Some decision;
                          vc_send_accepts vc decision
                        end)
                | Some _ | None -> ())
            | _ -> ())
        | Codec.Vc_accept_reply { observer; replica; tid; reply } -> (
            match det with
            | Some det when observer = me -> (
                match Tid_table.find_opt vcs tid with
                | Some vc -> (
                    match reply with
                    | `Accepted -> (
                        (* Z7: [replica] was range-checked against the
                           cluster size by [wire_ids_ok] before the
                           match. *)
                        if
                          not (vc.vc_accept_from.(replica) [@mk_lint.allow "Z7"])
                        then begin
                          ((vc.vc_accept_from.(replica) <- true)
                          [@mk_lint.allow "Z7"]);
                          let acks =
                            Array.fold_left
                              (fun acc ok -> if ok then acc + 1 else acc)
                              0 vc.vc_accept_from
                          in
                          if acks >= Quorum.majority quorum then
                            match vc.vc_chosen with
                            | Some decision ->
                                vc_finish det tid vc
                                  ~commit:(decision = `Commit)
                            | None -> ()
                        end)
                    | `Finalized st -> vc_finish det tid vc ~commit:(st = Txn.Committed)
                    | `Stale _ -> vc_abandon det tid)
                | None -> ())
            | _ -> ())
        | Codec.Epoch_change { initiator; epoch } ->
            ec_on_change ~initiator ~epoch
        | Codec.Epoch_records { replica; epoch; records } ->
            ec_on_records ~replica ~epoch ~records
        | Codec.Epoch_install { epoch; records; store } ->
            ec_on_install ~src ~epoch ~records ~store
        | Codec.Epoch_installed { replica; epoch } ->
            ec_on_installed ~replica ~epoch
        | Codec.Get_reply _ | Codec.Validated _ | Codec.Accepted _ ->
            (* Client-side traffic; a server node is never its
               destination. *)
            ()
        | Codec.Shutdown ->
            t.final_suspected <-
              (match det with
              | Some det ->
                  Detector.suspected det ~now:(Spawn.wall () *. 1e6) ~observer:me
              | None -> []);
            ignore (Mailbox.try_push t.done_box () : bool)
      in
      let perform = function
        | Detector.Start_view_change { observer = _; record; view } ->
            let tid = record.Trecord.txn.Txn.tid in
            let now = Spawn.wall () *. 1e6 in
            let vc =
              {
                vc_txn = record.Trecord.txn;
                vc_ts = record.Trecord.ts;
                vc_view = view;
                vc_deadline =
                  (* Z7: [perform] only runs from [tick] under
                     [Some det], and [det]/[dcfg] are both [Some] or
                     both [None]. *)
                  now +. (Option.get dcfg [@mk_lint.allow "Z7"]).Detector.give_up_after;
                vc_gathered = Hashtbl.create 8;
                vc_chosen = None;
                vc_accept_from = Array.make n false;
                vc_rto = cfg.rto_us;
                vc_next_retry = now +. cfg.rto_us;
              }
            in
            Tid_table.replace vcs tid vc;
            vc_send_gather tid vc
        | Detector.Start_epoch_change { initiator = _; recovering } -> (
            match !ec with
            | Some _ -> () (* one machine at a time; the cooldown re-arms *)
            | None ->
                let epoch = Replica.epoch t.replica + 1 in
                ignore
                  (ec_new ~epoch
                     ~role:
                       (Ec_initiator
                          {
                            ec_recovering = recovering;
                            ec_gathered = Hashtbl.create 8;
                            ec_merged = None;
                            ec_store = [];
                            ec_installed_from = Array.make n false;
                          })
                    : ec_machine))
      in
      let rec drain_ctl () =
        match Mailbox.try_pop t.ctl_inbox with
        | Some (Records { core; entries }) ->
            (* Z7: [Records] only comes from our own core loops,
               which stamp their own 0..cores-1 index — never
               from the wire. *)
            ((latest.(core) <- entries) [@mk_lint.allow "Z7"]);
            drain_ctl ()
        | Some (Frozen { core; gen }) ->
            ec_core_frozen ~core ~gen;
            drain_ctl ()
        | None -> ()
      in
      let tick ~now_us =
        drain_ctl ();
        (match det with
        | None -> ()
        | Some d ->
            (* Z7: [det]/[dcfg] are both [Some] or both [None]. *)
            let dc = (Option.get dcfg [@mk_lint.allow "Z7"]) in
            if now_us >= !next_hb then begin
              next_hb := now_us +. dc.Detector.heartbeat_every;
              Detector.heartbeat_tick d ~now:now_us ~replica:me;
              let paused = Replica.is_paused t.replica in
              Array.iteri
                (fun p addr ->
                  if p <> me then
                    send ~dst:addr (Codec.Heartbeat { from_ = me; paused }))
                addrs
            end;
            if now_us >= !next_scan then begin
              next_scan := now_us +. dc.Detector.scan_every;
              Batch.clear det_acts;
              Detector.scan d ~now:now_us ~observer:me
                ~paused:(Replica.is_paused t.replica)
                ~available:(Replica.is_available t.replica)
                ~records:(fun () -> List.concat (Array.to_list latest))
                ~recoverable:(fun p ->
                  (* A suspect that still heartbeats (a rebooted
                     paused process) can be merged back right now;
                     a silent one must reboot first. Z7: [p] is a
                     detector-internal 0..n-1 id. *)
                  p >= 0 && p < n
                  && now_us -. (hb_seen.(p) [@mk_lint.allow "Z7"])
                     <= dc.Detector.heartbeat_timeout)
                ~into:det_acts;
              Batch.iter perform det_acts
            end;
            let expired = ref [] in
            Tid_table.iter
              (fun tid vc ->
                if now_us > vc.vc_deadline then expired := tid :: !expired
                else if now_us >= vc.vc_next_retry then begin
                  vc.vc_rto <- vc.vc_rto *. 2.0;
                  vc.vc_next_retry <- now_us +. vc.vc_rto;
                  match vc.vc_chosen with
                  | Some decision -> vc_send_accepts vc decision
                  | None -> vc_send_gather tid vc
                end)
              vcs;
            List.iter (vc_abandon d) !expired);
        ec_tick now_us
      in
      let snap_every_us =
        match (dcfg, t.durable) with
        | Some d, _ -> Some (d.Detector.scan_every /. 2.0)
        | None, Some _ -> Some 250_000.0 (* checkpoint cadence alone *)
        | None, None -> None
      in
      t.core_handles <-
        List.init cfg.cores (fun core ->
            Spawn.spawn (fun () -> core_loop t ~core ~snap_every_us));
      Net.start t.net ~obs:t.obs
        { Net.deliver; tick; reboot = (fun () -> ()) };
      Ok ()

(* Route the local trigger through the wire path: the shim loop
   delivers the frame to itself, so the suspicion latch and the
   done-signal behave exactly as for a remote [Shutdown]. Before
   [launch] there is no loop thread; signal directly. *)
let shutdown t =
  match t.core_handles with
  | [] -> ignore (Mailbox.try_push t.done_box () : bool)
  | _ :: _ ->
      let self = Unix.ADDR_INET (Unix.inet_addr_loopback, Net.port t.net) in
      Net.send t.net ~dst:self (t.cfg.shard, Codec.Shutdown)

let wait t =
  Mailbox.pop t.done_box;
  Array.iter (fun inbox -> Mailbox.push inbox Core_quit) t.core_inboxes;
  List.iter Spawn.join t.core_handles;
  t.core_handles <- [];
  Net.stop t.net;
  (* Cores and loop thread are quiescent: fold the per-core durability
     tallies into the (single-threaded) registry, and let the close
     flush any group-commit tail. *)
  (match t.durable with
  | None -> ()
  | Some d ->
      Array.iter
        (fun ta ->
          Obs.note_wal_appends t.obs ~appends:ta.t_appends ~bytes:ta.t_bytes
            ~fsyncs:ta.t_fsyncs;
          Obs.note_snapshots t.obs ~count:ta.t_snaps ~bytes:ta.t_snap_bytes)
        d.tallies;
      Array.iter Wal.close d.wals);
  let c name = Obs.counter_value t.obs name in
  {
    me = t.cfg.me;
    committed = Replica.committed t.replica;
    aborted = Replica.aborted t.replica;
    validations_ok = Replica.validations_ok t.replica;
    validations_abort = Replica.validations_abort t.replica;
    view_changes = c "recovery.view_changes";
    epoch_changes = c "recovery.epoch_changes";
    suspected = t.final_suspected;
    wire_msgs_tx = c "wire.msgs_tx";
    wire_msgs_rx = c "wire.msgs_rx";
    wire_bytes_tx = c "wire.bytes_tx";
    wire_bytes_rx = c "wire.bytes_rx";
    wire_decode_errors = c "wire.decode_errors";
    wire_shard_drops = c "wire.shard_drops";
    wal_appends = c "wal.appends";
    wal_bytes = c "wal.bytes";
    wal_fsyncs = c "wal.fsyncs";
    wal_replayed = c "wal.replayed";
    wal_snapshots_used = c "wal.snapshots_used";
    wal_decode_errors = c "wal.decode_errors";
    snapshots = c "snapshot.count";
  }

let obs t = t.obs

let stats_json (s : stats) =
  Printf.sprintf
    "{\"me\": %d, \"committed\": %d, \"aborted\": %d, \"validations_ok\": %d, \
     \"validations_abort\": %d, \"view_changes\": %d, \"epoch_changes\": %d, \
     \"suspected\": [%s], \"wire_msgs_tx\": %d, \"wire_msgs_rx\": %d, \
     \"wire_bytes_tx\": %d, \"wire_bytes_rx\": %d, \"wire_decode_errors\": %d, \
     \"wire_shard_drops\": %d, \
     \"wal_appends\": %d, \"wal_bytes\": %d, \"wal_fsyncs\": %d, \
     \"wal_replayed\": %d, \"wal_snapshots_used\": %d, \
     \"wal_decode_errors\": %d, \"snapshots\": %d}"
    s.me s.committed s.aborted s.validations_ok s.validations_abort
    s.view_changes s.epoch_changes
    (String.concat ", " (List.map string_of_int s.suspected))
    s.wire_msgs_tx s.wire_msgs_rx s.wire_bytes_tx s.wire_bytes_rx
    s.wire_decode_errors s.wire_shard_drops s.wal_appends s.wal_bytes
    s.wal_fsyncs s.wal_replayed s.wal_snapshots_used s.wal_decode_errors
    s.snapshots
