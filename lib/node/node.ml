(* A Meerkat server node: one whole replica hosted by one OS process,
   speaking the wire protocol over a {!Shim} socket.

   Topology inside the process: [cores] server domains, each owning
   one core of the replica's trecord (the same partitioning as the
   simulator and the live runtime — a transaction is steered to core
   [Tid.hash tid mod cores]); the shim's loop thread owns the socket,
   the failure detector, and the view-change machines. Inbound
   protocol requests are steered to the owning core's mailbox (a full
   mailbox drops the datagram — retransmission recovers); replies go
   back out through the shim to the datagram's source address, so a
   node never needs to know where clients live. Execute-phase [Get]s
   are answered inline on the loop thread: the vstore's shard locks
   make versioned reads safe from any domain, exactly as the live
   runtime's shared-memory reads.

   Failure handling (§5.3): each node runs its own {!Detector}
   instance fed only with [observer = me] facts — its peers'
   heartbeats over UDP and its own cores' trecord snapshots (pushed
   over a control mailbox, so the loop thread never touches a live
   partition). Stuck records trigger the §5.3.2 backup-coordinator
   view change, driven entirely over the wire: gather [Coord_change]
   from a majority, pick the safe outcome with {!Recovery.choose},
   [Vc_accept] at the new view, then broadcast the [Write_back].
   Epoch changes are not initiated ([recoverable] is constantly
   false): reintegrating a killed process needs the WAL/reboot path,
   which is the shim's reserved [reboot] hook. A SIGKILLed peer is
   still *detected* — its id appears in the exit stats' [suspected]
   list via {!Detector.suspected}. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Trecord = Mk_storage.Trecord
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Detector = Mk_meerkat.Detector
module Recovery = Mk_meerkat.Recovery
module Codec = Mk_wire.Codec
module Mailbox = Mk_live.Mailbox
module Spawn = Mk_live.Spawn
module Obs = Mk_obs.Obs

module Net = Shim.Make (struct
  type msg = Codec.t

  let encode = Codec.encode
  let decode = Codec.decode
end)

type config = {
  me : int;
  cores : int;
  keys : int;
  core_inbox : int;
  detector : Detector.cfg option;
  rto_us : float;
}

let default_config =
  {
    me = 0;
    cores = 2;
    keys = 1024;
    core_inbox = 1024;
    detector = None;
    rto_us = 100_000.0;
  }

(* Wall-clock detector timings from one knob, mirroring the live
   runtime's horizon scaling: suspect after 6 missed heartbeats, call
   a record stuck after 8 periods, scan twice a period. *)
let detector_cfg ~heartbeat_ms =
  let hb = heartbeat_ms *. 1000.0 in
  {
    Detector.heartbeat_every = hb;
    heartbeat_timeout = 6.0 *. hb;
    pause_timeout = 12.0 *. hb;
    stuck_timeout = 8.0 *. hb;
    scan_every = 2.0 *. hb;
    epoch_cooldown = 20.0 *. hb;
    give_up_after = 40.0 *. hb;
  }

type core_msg = Net_req of { src : Unix.sockaddr; msg : Codec.t } | Core_quit

type ctl_msg = Records of { core : int; entries : Trecord.entry list }

type stats = {
  me : int;
  committed : int;
  aborted : int;
  validations_ok : int;
  validations_abort : int;
  view_changes : int;
  suspected : int list;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_bytes_tx : int;
  wire_bytes_rx : int;
  wire_decode_errors : int;
}

type t = {
  cfg : config;
  replica : Replica.t;
  net : Net.t;
  core_inboxes : core_msg Mailbox.t array;
  ctl_inbox : ctl_msg Mailbox.t;
  done_box : unit Mailbox.t;
  obs : Obs.t;
  mutable core_handles : unit Spawn.handle list;
  mutable final_suspected : int list;
}

(* The socket is bound before the replica exists: with [--port auto]
   the launcher needs the port announcement to finish assembling the
   very cluster config that tells this node its replica id and the
   deployment size. *)
type bound = Net.t

let bind ?(port = 0) () : (bound, string) result = Net.bind ~port ()
let bound_port (b : bound) = Net.port b

let create (net : bound) (cfg : config) ~n_replicas =
  if cfg.cores < 1 then invalid_arg "Node.create: cores must be >= 1";
  if n_replicas < 3 || n_replicas mod 2 = 0 then
    invalid_arg "Node.create: n_replicas must be odd and >= 3";
  if cfg.me < 0 || cfg.me >= n_replicas then
    invalid_arg "Node.create: me out of range";
  let quorum = Quorum.create ~n:n_replicas in
  let replica = Replica.create ~id:cfg.me ~quorum ~cores:cfg.cores in
  for key = 0 to cfg.keys - 1 do
    Replica.load replica ~key ~value:0
  done;
  {
    cfg;
    replica;
    net;
    core_inboxes =
      Array.init cfg.cores (fun _ -> Mailbox.create ~capacity:cfg.core_inbox);
    ctl_inbox = Mailbox.create ~capacity:64;
    done_box = Mailbox.create ~capacity:2;
    obs = Obs.create ~clock:(fun () -> Spawn.wall () *. 1e6) ();
    core_handles = [];
    final_suspected = [];
  }

let port t = Net.port t.net

(* ------------------------------------------------------------------ *)
(* Core domains                                                        *)
(* ------------------------------------------------------------------ *)

let core_loop t ~core ~snap_every_us =
  let me = t.cfg.me in
  let replica = t.replica in
  let inbox = t.core_inboxes.(core) in
  let reply src msg = Net.send t.net ~dst:src msg in
  let handle src (msg : Codec.t) =
    match msg with
    | Codec.Validate { slot; seq; txn; ts; _ } -> (
        match Replica.handle_validate replica ~core ~txn ~ts with
        | None -> ()
        | Some status -> reply src (Codec.Validated { slot; seq; replica = me; status }))
    | Codec.Accept { slot; seq; txn; ts; decision; view; _ } -> (
        match Replica.handle_accept replica ~core ~txn ~ts ~decision ~view with
        | None -> ()
        | Some r -> reply src (Codec.Accepted { slot; seq; replica = me; reply = r }))
    | Codec.Write_back { txn; ts; commit } ->
        ignore (Replica.handle_commit replica ~core ~txn ~ts ~commit : unit option)
    | Codec.Coord_change { observer; tid; view } -> (
        match Replica.handle_coord_change replica ~core ~tid ~view with
        | None -> ()
        | Some r ->
            reply src
              (Codec.Coord_reply { observer; replica = me; tid; reply = r }))
    | Codec.Vc_accept { observer; txn; ts; decision; view } -> (
        match Replica.handle_accept replica ~core ~txn ~ts ~decision ~view with
        | None -> ()
        | Some r ->
            reply src
              (Codec.Vc_accept_reply
                 { observer; replica = me; tid = txn.Txn.tid; reply = r }))
    | _ ->
        (* The steering layer only routes the five kinds above. *)
        ()
  in
  let snapshot () =
    let entries =
      List.filter
        (fun (e : Trecord.entry) -> not (Txn.is_final e.Trecord.status))
        (Trecord.core_entries (Replica.trecord replica) ~core)
      (* Fresh copies: the live partition stays owned by this core. *)
      |> List.map (fun (e : Trecord.entry) -> { e with Trecord.ts = e.Trecord.ts })
    in
    ignore (Mailbox.try_push t.ctl_inbox (Records { core; entries }) : bool)
  in
  let next_snap = ref (Spawn.wall () *. 1e6) in
  let idle = ref 0 in
  let quit = ref false in
  while not !quit do
    match Mailbox.try_pop inbox with
    | Some (Net_req { src; msg }) ->
        idle := 0;
        handle src msg
    | Some Core_quit -> quit := true
    | None ->
        (match snap_every_us with
        | Some every ->
            let now = Spawn.wall () *. 1e6 in
            if now >= !next_snap then begin
              snapshot ();
              next_snap := now +. every
            end
        | None -> ());
        incr idle;
        (* Z8: a 100µs doze after ~200 empty polls is the idle backoff,
           not hot-path blocking — an inbox message ends it on the next
           iteration. *)
        if !idle > 200 then (Unix.sleepf 0.0001 [@mk_lint.allow "Z8"])
        else Spawn.relax ()
  done

(* ------------------------------------------------------------------ *)
(* Loop thread: steering, detector, view changes                       *)
(* ------------------------------------------------------------------ *)

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

(* A §5.3.2 view change driven over the wire — the cross-process port
   of the live runtime monitor's machine. *)
type vc_machine = {
  vc_txn : Txn.t;
  vc_ts : Timestamp.t;
  vc_view : int;
  vc_deadline : float;
  vc_gathered : (int, Recovery.reply) Hashtbl.t;
  mutable vc_chosen : [ `Commit | `Abort ] option;
  vc_accept_from : bool array;
  mutable vc_rto : float;
  mutable vc_next_retry : float;
}

let launch t ~cluster =
  match Cluster_config.sockaddrs cluster with
  | Error _ as e -> e
  | Ok addrs ->
      let cfg = t.cfg in
      let me = cfg.me in
      let n = Array.length cluster in
      if n <= me then invalid_arg "Node.launch: cluster smaller than me";
      let quorum = Replica.quorum t.replica in
      let send ~dst msg = Net.send t.net ~dst msg in
      let broadcast msg =
        Array.iter (fun addr -> send ~dst:addr msg) addrs
      in
      let dcfg = cfg.detector in
      let det =
        Option.map
          (fun d -> Detector.create ~cfg:d ~n ~now:(Spawn.wall () *. 1e6))
          dcfg
      in
      let latest = Array.make cfg.cores [] in
      let vcs : vc_machine Tid_table.t = Tid_table.create 16 in
      let next_hb = ref 0.0 in
      let next_scan = ref 0.0 in
      let vc_abandon det tid =
        Tid_table.remove vcs tid;
        Detector.view_change_finished det ~now:(Spawn.wall () *. 1e6)
          ~observer:me ~tid ~outcome:`Abandoned
      in
      (* Z7: [r] ranges over 0..n-1 by construction in both senders, so
         [addrs.(r)] cannot be out of bounds. *)
      let[@mk_lint.allow "Z7"] vc_send_gather tid vc =
        for r = 0 to n - 1 do
          if not (Hashtbl.mem vc.vc_gathered r) then
            send ~dst:addrs.(r)
              (Codec.Coord_change { observer = me; tid; view = vc.vc_view })
        done
      in
      let[@mk_lint.allow "Z7"] vc_send_accepts vc decision =
        for r = 0 to n - 1 do
          if not vc.vc_accept_from.(r) then
            send ~dst:addrs.(r)
              (Codec.Vc_accept
                 {
                   observer = me;
                   txn = vc.vc_txn;
                   ts = vc.vc_ts;
                   decision;
                   view = vc.vc_view;
                 })
        done
      in
      let vc_finish det tid vc ~commit =
        Tid_table.remove vcs tid;
        broadcast (Codec.Write_back { txn = vc.vc_txn; ts = vc.vc_ts; commit });
        Detector.view_change_finished det ~now:(Spawn.wall () *. 1e6)
          ~observer:me ~tid ~outcome:`Finished;
        Obs.note_view_change t.obs
      in
      (* Z7: [Tid.hash] is masked non-negative, so [hash mod cores]
         lands in 0..cores-1 — the index is safe for any wire tid. *)
      let[@mk_lint.allow "Z7"] steer (src : Unix.sockaddr) (msg : Codec.t) tid =
        let core = Tid.hash tid mod cfg.cores in
        (* A full core inbox drops the datagram — retransmission
           recovers, like any other network loss. *)
        ignore (Mailbox.try_push t.core_inboxes.(core) (Net_req { src; msg }) : bool)
      in
      (* Replica ids taken straight off the wire index detector and
         view-change arrays ([hb_last], [vc_accept_from]) and count
         toward quorum majorities: one well-framed datagram carrying
         an out-of-range id (hostile peer, misconfigured deployment,
         bit-flipped genuine frame) must be a counted drop like any
         other undecodable input — never an [Invalid_argument] on the
         loop thread, and never a phantom quorum vote. *)
      let wire_ids_ok (msg : Codec.t) =
        let replica_ok r = r >= 0 && r < n in
        match msg with
        | Codec.Heartbeat { from_; _ } -> replica_ok from_
        | Codec.Coord_reply { replica; _ }
        | Codec.Vc_accept_reply { replica; _ } ->
            replica_ok replica
        | _ -> true
      in
      let deliver ~src (msg : Codec.t) =
        if not (wire_ids_ok msg) then Obs.note_wire_decode_error t.obs
        else
        match msg with
        | Codec.Get { slot; seq; key; _ } -> (
            match Replica.handle_get t.replica ~key with
            | None -> ()
            | Some (value, wts) ->
                send ~dst:src
                  (Codec.Get_reply { slot; seq; replica = me; key; value; wts }))
        | Codec.Validate { txn; _ } | Codec.Vc_accept { txn; _ } ->
            steer src msg txn.Txn.tid
        | Codec.Accept { txn; _ } | Codec.Write_back { txn; _ } ->
            steer src msg txn.Txn.tid
        | Codec.Coord_change { tid; _ } -> steer src msg tid
        | Codec.Heartbeat { from_; paused } -> (
            match det with
            | Some det when from_ <> me ->
                Detector.heartbeat_received det ~now:(Spawn.wall () *. 1e6)
                  ~observer:me ~from_ ~paused
            | _ -> ())
        | Codec.Coord_reply { observer; replica; tid; reply } -> (
            match det with
            | Some det when observer = me -> (
                match Tid_table.find_opt vcs tid with
                | Some vc when vc.vc_chosen = None -> (
                    match reply with
                    | `Stale _ ->
                        (* A higher view took over; leave the record
                           to it. *)
                        vc_abandon det tid
                    | `View_ok record ->
                        if not (Hashtbl.mem vc.vc_gathered replica) then
                          Hashtbl.replace vc.vc_gathered replica
                            (match record with
                            | None -> Recovery.No_record
                            | Some v -> Recovery.Record v);
                        if Hashtbl.length vc.vc_gathered >= Quorum.majority quorum
                        then begin
                          let replies =
                            Hashtbl.fold
                              (fun r v acc -> (r, v) :: acc)
                              vc.vc_gathered []
                          in
                          let decision = Recovery.choose ~quorum ~replies in
                          vc.vc_chosen <- Some decision;
                          vc_send_accepts vc decision
                        end)
                | Some _ | None -> ())
            | _ -> ())
        | Codec.Vc_accept_reply { observer; replica; tid; reply } -> (
            match det with
            | Some det when observer = me -> (
                match Tid_table.find_opt vcs tid with
                | Some vc -> (
                    match reply with
                    | `Accepted -> (
                        (* Z7: [replica] was range-checked against the
                           cluster size by [wire_ids_ok] before the
                           match. *)
                        if
                          not (vc.vc_accept_from.(replica) [@mk_lint.allow "Z7"])
                        then begin
                          ((vc.vc_accept_from.(replica) <- true)
                          [@mk_lint.allow "Z7"]);
                          let acks =
                            Array.fold_left
                              (fun acc ok -> if ok then acc + 1 else acc)
                              0 vc.vc_accept_from
                          in
                          if acks >= Quorum.majority quorum then
                            match vc.vc_chosen with
                            | Some decision ->
                                vc_finish det tid vc
                                  ~commit:(decision = `Commit)
                            | None -> ()
                        end)
                    | `Finalized st -> vc_finish det tid vc ~commit:(st = Txn.Committed)
                    | `Stale _ -> vc_abandon det tid)
                | None -> ())
            | _ -> ())
        | Codec.Epoch_change _ | Codec.Epoch_records _ | Codec.Epoch_install _
          ->
            (* Reserved: the §5.3.1 epoch change over the wire needs
               the WAL/reboot path before a killed process can
               rejoin; codecs ship now so the frame tags are fixed. *)
            ()
        | Codec.Get_reply _ | Codec.Validated _ | Codec.Accepted _ ->
            (* Client-side traffic; a server node is never its
               destination. *)
            ()
        | Codec.Shutdown ->
            t.final_suspected <-
              (match det with
              | Some det ->
                  Detector.suspected det ~now:(Spawn.wall () *. 1e6) ~observer:me
              | None -> []);
            ignore (Mailbox.try_push t.done_box () : bool)
      in
      let perform = function
        | Detector.Start_view_change { observer = _; record; view } ->
            let tid = record.Trecord.txn.Txn.tid in
            let now = Spawn.wall () *. 1e6 in
            let vc =
              {
                vc_txn = record.Trecord.txn;
                vc_ts = record.Trecord.ts;
                vc_view = view;
                vc_deadline =
                  (* Z7: [perform] only runs from [tick] under
                     [Some det], and [det]/[dcfg] are both [Some] or
                     both [None]. *)
                  now +. (Option.get dcfg [@mk_lint.allow "Z7"]).Detector.give_up_after;
                vc_gathered = Hashtbl.create 8;
                vc_chosen = None;
                vc_accept_from = Array.make n false;
                vc_rto = cfg.rto_us;
                vc_next_retry = now +. cfg.rto_us;
              }
            in
            Tid_table.replace vcs tid vc;
            vc_send_gather tid vc
        | Detector.Start_epoch_change _ ->
            (* Unreachable while [recoverable] is constantly false;
               kept total for when the WAL lands. *)
            ()
      in
      let tick ~now_us =
        match det with
        | None -> ()
        | Some d ->
            (* Z7: [det]/[dcfg] are both [Some] or both [None]. *)
            let dc = (Option.get dcfg [@mk_lint.allow "Z7"]) in
            if now_us >= !next_hb then begin
              next_hb := now_us +. dc.Detector.heartbeat_every;
              Detector.heartbeat_tick d ~now:now_us ~replica:me;
              let paused = Replica.is_paused t.replica in
              Array.iteri
                (fun p addr ->
                  if p <> me then
                    send ~dst:addr (Codec.Heartbeat { from_ = me; paused }))
                addrs
            end;
            let rec drain_ctl () =
              match Mailbox.try_pop t.ctl_inbox with
              | Some (Records { core; entries }) ->
                  (* Z7: [Records] only comes from our own core loops,
                     which stamp their own 0..cores-1 index — never
                     from the wire. *)
                  ((latest.(core) <- entries) [@mk_lint.allow "Z7"]);
                  drain_ctl ()
              | None -> ()
            in
            drain_ctl ();
            if now_us >= !next_scan then begin
              next_scan := now_us +. dc.Detector.scan_every;
              List.iter perform
                (Detector.scan d ~now:now_us ~observer:me
                   ~paused:(Replica.is_paused t.replica)
                   ~available:(Replica.is_available t.replica)
                   ~records:(fun () -> List.concat (Array.to_list latest))
                   ~recoverable:(fun _ -> false))
            end;
            let expired = ref [] in
            Tid_table.iter
              (fun tid vc ->
                if now_us > vc.vc_deadline then expired := tid :: !expired
                else if now_us >= vc.vc_next_retry then begin
                  vc.vc_rto <- vc.vc_rto *. 2.0;
                  vc.vc_next_retry <- now_us +. vc.vc_rto;
                  match vc.vc_chosen with
                  | Some decision -> vc_send_accepts vc decision
                  | None -> vc_send_gather tid vc
                end)
              vcs;
            List.iter (vc_abandon d) !expired
      in
      let snap_every_us =
        Option.map (fun d -> d.Detector.scan_every /. 2.0) dcfg
      in
      t.core_handles <-
        List.init cfg.cores (fun core ->
            Spawn.spawn (fun () -> core_loop t ~core ~snap_every_us));
      Net.start t.net ~obs:t.obs
        { Net.deliver; tick; reboot = (fun () -> ()) };
      Ok ()

(* Route the local trigger through the wire path: the shim loop
   delivers the frame to itself, so the suspicion latch and the
   done-signal behave exactly as for a remote [Shutdown]. Before
   [launch] there is no loop thread; signal directly. *)
let shutdown t =
  match t.core_handles with
  | [] -> ignore (Mailbox.try_push t.done_box () : bool)
  | _ :: _ ->
      let self = Unix.ADDR_INET (Unix.inet_addr_loopback, Net.port t.net) in
      Net.send t.net ~dst:self Codec.Shutdown

let wait t =
  Mailbox.pop t.done_box;
  Array.iter (fun inbox -> Mailbox.push inbox Core_quit) t.core_inboxes;
  List.iter Spawn.join t.core_handles;
  t.core_handles <- [];
  Net.stop t.net;
  let c name = Obs.counter_value t.obs name in
  {
    me = t.cfg.me;
    committed = Replica.committed t.replica;
    aborted = Replica.aborted t.replica;
    validations_ok = Replica.validations_ok t.replica;
    validations_abort = Replica.validations_abort t.replica;
    view_changes = c "recovery.view_changes";
    suspected = t.final_suspected;
    wire_msgs_tx = c "wire.msgs_tx";
    wire_msgs_rx = c "wire.msgs_rx";
    wire_bytes_tx = c "wire.bytes_tx";
    wire_bytes_rx = c "wire.bytes_rx";
    wire_decode_errors = c "wire.decode_errors";
  }

let obs t = t.obs

let stats_json (s : stats) =
  Printf.sprintf
    "{\"me\": %d, \"committed\": %d, \"aborted\": %d, \"validations_ok\": %d, \
     \"validations_abort\": %d, \"view_changes\": %d, \"suspected\": [%s], \
     \"wire_msgs_tx\": %d, \"wire_msgs_rx\": %d, \"wire_bytes_tx\": %d, \
     \"wire_bytes_rx\": %d, \"wire_decode_errors\": %d}"
    s.me s.committed s.aborted s.validations_ok s.validations_abort
    s.view_changes
    (String.concat ", " (List.map string_of_int s.suspected))
    s.wire_msgs_tx s.wire_msgs_rx s.wire_bytes_tx s.wire_bytes_rx
    s.wire_decode_errors
