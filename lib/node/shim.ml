(* The socket shim: the only file in the cluster backend that touches
   sockets or threads (it is the lint allowlist's shim boundary, like
   Mailbox/Spawn in the live runtime — everything above it is
   coordination-free by construction).

   One shim owns one UDP socket. Outbound messages are encoded by the
   caller's thread and enqueued on a bounded MPSC mailbox — a full
   mailbox drops the datagram, which is exactly UDP's contract, and
   retransmission recovers it. The event loop (either a background
   systhread, for server nodes whose main domain parks in [wait]; or
   inline [poll] calls, for client drivers that busy-poll anyway and
   would starve a sibling systhread of the domain's runtime lock)
   drains the outbox to [sendto], drains the socket, decodes each
   datagram, and hands good messages to [deliver] — a decode failure
   is counted and dropped, never fatal, so garbage on the port cannot
   take a node down.

   The threaded loop multiplexes with [select] over the socket and a
   self-pipe: [send] writes one wake byte after enqueueing, so
   outbound traffic leaves immediately instead of on the next tick
   boundary, and the loop sleeps (releasing the runtime lock) whenever
   there is genuinely nothing to do. *)

module Mailbox = Mk_live.Mailbox
module Obs = Mk_obs.Obs

module type ARRANGEMENT = sig
  type msg

  val encode : msg -> string
  val decode : string -> (msg, Mk_wire.Wire.error) result
end

module Make (A : ARRANGEMENT) = struct
  type handlers = {
    deliver : src:Unix.sockaddr -> A.msg -> unit;
    tick : now_us:float -> unit;
    reboot : unit -> unit;
  }

  type t = {
    sock : Unix.file_descr;
    port : int;
    wake_rd : Unix.file_descr;
    wake_wr : Unix.file_descr;
    outbox : (Unix.sockaddr * string) Mailbox.t;
    stop : bool ref;
    mutable thread : Thread.t option;
    mutable obs : Obs.t option;
  }

  let bind ?(port = 0) ?(outbox = 4096) () =
    match
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.set_nonblock sock;
      let bound =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let wake_rd, wake_wr = Unix.pipe () in
      Unix.set_nonblock wake_rd;
      Unix.set_nonblock wake_wr;
      {
        sock;
        port = bound;
        wake_rd;
        wake_wr;
        outbox = Mailbox.create ~capacity:outbox;
        stop = ref false;
        thread = None;
        obs = None;
      }
    with
    | t -> Ok t
    | exception Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

  let port t = t.port

  (* Largest UDP payload over IPv4: 65535 minus IP and UDP headers.
     Anything bigger dies in [sendto] with EMSGSIZE on every attempt,
     so retransmission can never recover it — reject it up front and
     count it, or the sender retries forever with no diagnostic. *)
  let max_datagram = 65507

  let send t ~dst msg =
    let frame = A.encode msg in
    if String.length frame > max_datagram then (
      match t.obs with
      | Some obs -> Obs.note_wire_send_error obs
      | None -> ())
    else if Mailbox.try_push t.outbox (dst, frame) then
      (* Wake a threaded loop blocked in select. EAGAIN means the pipe
         already holds a pending wakeup; either way the loop will see
         the message. Poll-mode shims have no loop thread to wake. *)
      if t.thread <> None then
        try ignore (Unix.write_substring t.wake_wr "w" 0 1 : int)
        with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

  (* A full outbox dropped the frame: UDP semantics, retransmission
     recovers. Nothing else to do. *)

  let flush_outbox t =
    let rec go () =
      match Mailbox.try_pop t.outbox with
      | None -> ()
      | Some (dst, frame) ->
          (try
             ignore
               (Unix.sendto_substring t.sock frame 0 (String.length frame) []
                  dst
                 : int);
             match t.obs with
             | Some obs -> Obs.note_wire_tx obs ~bytes:(String.length frame)
             | None -> ()
           with
          | Unix.Unix_error (Unix.EMSGSIZE, _, _) ->
             (* A frame too large for one datagram fails identically
                on every retransmit: count it so the hang is
                diagnosable (the [send]-side guard catches the common
                case; this covers paths with a smaller MTU). *)
             (match t.obs with
             | Some obs -> Obs.note_wire_send_error obs
             | None -> ())
          | Unix.Unix_error (_, _, _) ->
             (* Unreachable peer (ECONNREFUSED from a dead localhost
                node, ENETUNREACH, ...): drop, like the network
                would. *)
             ());
          go ()
    in
    go ()

  let recv_burst t ~deliver =
    let buf = Bytes.create 65535 in
    let delivered = ref 0 in
    let attempts = ref 0 in
    let continue = ref true in
    (* Bounded on *attempts*, not deliveries: a storm of garbage
       datagrams or repeated socket errors must still let the loop get
       back to its outbox and timers. *)
    while !continue && !attempts < 512 && !delivered < 256 do
      incr attempts;
      match Unix.recvfrom t.sock buf 0 (Bytes.length buf) [] with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EINTR), _, _) ->
          (* Linux surfaces async ICMP errors (a previous sendto to a
             dead peer) as ECONNREFUSED on recvfrom: swallow and keep
             receiving. *)
          ()
      | exception Unix.Unix_error (_, _, _) ->
          (* Anything else (EBADF after a close, ENOMEM, ...) would
             recur on the next recvfrom too: end the burst instead of
             spinning on it at 100% CPU. *)
          continue := false
      | len, src -> (
          let datagram = Bytes.sub_string buf 0 len in
          match A.decode datagram with
          | Ok msg -> (
              incr delivered;
              (match t.obs with
              | Some obs -> Obs.note_wire_rx obs ~bytes:len
              | None -> ());
              (* A [deliver] that raises must not kill the loop thread
                 (a wedged node looks alive from outside): the frame
                 decoded but could not be acted on — count it with the
                 other unusable-input drops. *)
              try deliver ~src msg
              with _ -> (
                match t.obs with
                | Some obs -> Obs.note_wire_decode_error obs
                | None -> ()))
          | Error _ -> (
              match t.obs with
              | Some obs -> Obs.note_wire_decode_error obs
              | None -> ()))
    done;
    !delivered

  let poll t ~deliver =
    flush_outbox t;
    recv_burst t ~deliver

  let drain_wake t =
    let scratch = Bytes.create 64 in
    let continue = ref true in
    while !continue do
      match Unix.read t.wake_rd scratch 0 (Bytes.length scratch) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | 0 -> continue := false
      | _ -> ()
    done

  let loop t handlers ~tick_every_s =
    while not !(t.stop) do
      flush_outbox t;
      (match Unix.select [ t.sock; t.wake_rd ] [] [] tick_every_s with
      | readable, _, _ ->
          if List.memq t.wake_rd readable then drain_wake t;
          if List.memq t.sock readable then
            ignore (recv_burst t ~deliver:handlers.deliver : int)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      handlers.tick ~now_us:(Mk_live.Spawn.wall () *. 1e6)
    done;
    (* Final drain so shutdown-time sends (stats, acks) leave the
       box. *)
    flush_outbox t

  let start t ?obs ?(tick_every_s = 0.001) handlers =
    t.obs <- obs;
    t.thread <- Some (Thread.create (fun () -> loop t handlers ~tick_every_s) ())

  let set_obs t obs = t.obs <- Some obs

  let stop t =
    t.stop := true;
    (try ignore (Unix.write_substring t.wake_wr "q" 0 1 : int)
     with Unix.Unix_error (_, _, _) -> ());
    (match t.thread with
    | Some th ->
        Thread.join th;
        t.thread <- None
    | None ->
        (* Never threaded (poll mode): flush what the caller queued
           last, e.g. a Shutdown broadcast. *)
        flush_outbox t);
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      [ t.sock; t.wake_rd; t.wake_wr ]
end
