(* The socket shim: the only file in the cluster backend that touches
   sockets or threads (it is the lint allowlist's shim boundary, like
   Mailbox/Spawn in the live runtime — everything above it is
   coordination-free by construction).

   One shim owns one UDP socket. Outbound messages are enqueued
   UNENCODED on a bounded MPSC mailbox — a full mailbox drops the
   message, which is exactly UDP's contract, and retransmission
   recovers it. Encoding happens on the single consumer side, in
   [flush_outbox]: each message is framed into buffers the shim owns
   and reuses (no per-message string on the send path), and
   consecutive frames to the same destination are coalesced into one
   datagram of up to [max_datagram] bytes — a coordinator broadcast
   burst to one node leaves as one [sendto], not one per message. The
   receive side mirrors this: one reused receive buffer, and each
   datagram is burst-decoded frame by frame at offsets ([decode_at]),
   so a coalesced datagram delivers every message it carries. A decode
   failure is counted and drops the rest of that datagram (framing is
   not self-resynchronizing), never fatal — garbage on the port cannot
   take a node down.

   The event loop is either a background systhread, for server nodes
   whose main domain parks in [wait]; or inline [poll] calls, for
   client drivers that busy-poll anyway and would starve a sibling
   systhread of the domain's runtime lock. The threaded loop
   multiplexes with [select] over the socket and a self-pipe: [send]
   writes one wake byte after enqueueing, so outbound traffic leaves
   immediately instead of on the next tick boundary, and the loop
   sleeps (releasing the runtime lock) whenever there is genuinely
   nothing to do. *)

module Mailbox = Mk_live.Mailbox
module Obs = Mk_obs.Obs

module type ARRANGEMENT = sig
  type msg

  val encode_into : scratch:Buffer.t -> out:Buffer.t -> msg -> unit
  val decode_at : string -> pos:int -> (msg * int, Mk_wire.Wire.error) result
end

module Make (A : ARRANGEMENT) = struct
  type handlers = {
    deliver : src:Unix.sockaddr -> A.msg -> unit;
    tick : now_us:float -> unit;
    reboot : unit -> unit;
  }

  type t = {
    sock : Unix.file_descr;
    port : int;
    wake_rd : Unix.file_descr;
    wake_wr : Unix.file_descr;
    outbox : (Unix.sockaddr * A.msg) Mailbox.t;
    stop : bool ref;
    mutable thread : Thread.t option;
    mutable obs : Obs.t option;
    (* Flush-side state, owned by the single outbox consumer (the loop
       thread, or the polling caller): the payload scratch, the
       one-frame staging buffer, the accumulating datagram with its
       destination and frame count, and the reused [sendto] bytes. *)
    scratch : Buffer.t;
    frame : Buffer.t;
    dgram : Buffer.t;
    mutable dgram_dst : Unix.sockaddr option;
    mutable dgram_frames : int;
    send_buf : Bytes.t;
    (* Receive-side state, owned by the same consumer. *)
    recv_buf : Bytes.t;
    wake_buf : Bytes.t;
  }

  let bind ?(port = 0) ?(outbox = 4096) () =
    match
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.set_nonblock sock;
      let bound =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let wake_rd, wake_wr = Unix.pipe () in
      Unix.set_nonblock wake_rd;
      Unix.set_nonblock wake_wr;
      {
        sock;
        port = bound;
        wake_rd;
        wake_wr;
        outbox = Mailbox.create ~capacity:outbox;
        stop = ref false;
        thread = None;
        obs = None;
        scratch = Buffer.create 512;
        frame = Buffer.create 512;
        dgram = Buffer.create 2048;
        dgram_dst = None;
        dgram_frames = 0;
        send_buf = Bytes.create 65535;
        recv_buf = Bytes.create 65535;
        wake_buf = Bytes.create 64;
      }
    with
    | t -> Ok t
    | exception Unix.Unix_error (e, fn, _) ->
        Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

  let port t = t.port

  (* Largest UDP payload over IPv4: 65535 minus IP and UDP headers.
     Anything bigger dies in [sendto] with EMSGSIZE on every attempt,
     so retransmission can never recover it — reject it at flush time
     and count it, or the sender retries forever with no diagnostic. *)
  let max_datagram = 65507

  let send t ~dst msg =
    if Mailbox.try_push t.outbox (dst, msg) then
      (* Wake a threaded loop blocked in select. EAGAIN means the pipe
         already holds a pending wakeup; either way the loop will see
         the message. Poll-mode shims have no loop thread to wake. *)
      if t.thread <> None then
        try ignore (Unix.write_substring t.wake_wr "w" 0 1 : int)
        with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

  (* A full outbox dropped the message: UDP semantics, retransmission
     recovers. Nothing else to do. *)

  (* Ship the accumulated datagram: blit into the reused send bytes
     (no string extraction) and one [sendto] for every coalesced
     frame in it. *)
  let flush_dgram t =
    (match t.dgram_dst with
    | None -> ()
    | Some dst -> (
        let len = Buffer.length t.dgram in
        Buffer.blit t.dgram 0 t.send_buf 0 len;
        try
          ignore (Unix.sendto t.sock t.send_buf 0 len [] dst : int);
          match t.obs with
          | Some obs -> Obs.note_wire_tx_burst obs ~msgs:t.dgram_frames ~bytes:len
          | None -> ()
        with
        | Unix.Unix_error (Unix.EMSGSIZE, _, _) -> (
            (* A datagram too large for the path MTU fails identically
               on every retransmit: count it so the hang is
               diagnosable (the flush-side guard caps at
               [max_datagram]; this covers smaller-MTU paths). *)
            match t.obs with
            | Some obs -> Obs.note_wire_send_error obs
            | None -> ())
        | Unix.Unix_error (_, _, _) ->
            (* Unreachable peer (ECONNREFUSED from a dead localhost
               node, ENETUNREACH, ...): drop, like the network
               would. *)
            ()));
    Buffer.clear t.dgram;
    t.dgram_dst <- None;
    t.dgram_frames <- 0

  (* Encode one outbox entry into the staging buffer and pack it onto
     the accumulating datagram, flushing first when the destination
     changes or the datagram would overflow. *)
  let pack t (dst, msg) =
    Buffer.clear t.frame;
    A.encode_into ~scratch:t.scratch ~out:t.frame msg;
    let flen = Buffer.length t.frame in
    if flen > max_datagram then (
      match t.obs with
      | Some obs -> Obs.note_wire_send_error obs
      | None -> ())
    else begin
      (match t.dgram_dst with
      | Some d when d = dst && Buffer.length t.dgram + flen <= max_datagram ->
          ()
      | Some _ -> flush_dgram t
      | None -> ());
      t.dgram_dst <- Some dst;
      t.dgram_frames <- t.dgram_frames + 1;
      Buffer.add_buffer t.dgram t.frame
    end

  let flush_outbox t =
    let rec go () =
      if Mailbox.drain t.outbox ~max:64 (pack t) > 0 then go ()
    in
    go ();
    flush_dgram t

  let recv_burst t ~deliver =
    let note_decode_error () =
      match t.obs with
      | Some obs -> Obs.note_wire_decode_error obs
      | None -> ()
    in
    let delivered = ref 0 in
    let attempts = ref 0 in
    let continue = ref true in
    (* Bounded on *attempts*, not deliveries: a storm of garbage
       datagrams or repeated socket errors must still let the loop get
       back to its outbox and timers. *)
    while !continue && !attempts < 512 && !delivered < 256 do
      incr attempts;
      match Unix.recvfrom t.sock t.recv_buf 0 (Bytes.length t.recv_buf) [] with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EINTR), _, _) ->
          (* Linux surfaces async ICMP errors (a previous sendto to a
             dead peer) as ECONNREFUSED on recvfrom: swallow and keep
             receiving. *)
          ()
      | exception Unix.Unix_error (_, _, _) ->
          (* Anything else (EBADF after a close, ENOMEM, ...) would
             recur on the next recvfrom too: end the burst instead of
             spinning on it at 100% CPU. *)
          continue := false
      | len, src ->
          (* One datagram, possibly several coalesced frames: decode
             each at its offset. [decode_at] always advances, so this
             terminates on any input; a bad frame drops the rest of
             the datagram (framing cannot resynchronize mid-stream). *)
          let datagram = Bytes.sub_string t.recv_buf 0 len in
          let pos = ref 0 in
          let good = ref true in
          while !good && !pos < len do
            match A.decode_at datagram ~pos:!pos with
            | Ok (msg, next) ->
                incr delivered;
                (match t.obs with
                | Some obs -> Obs.note_wire_rx obs ~bytes:(next - !pos)
                | None -> ());
                pos := next;
                (* A [deliver] that raises must not kill the loop
                   thread (a wedged node looks alive from outside):
                   the frame decoded but could not be acted on — count
                   it with the other unusable-input drops. *)
                (try deliver ~src msg with _ -> note_decode_error ())
            | Error _ ->
                note_decode_error ();
                good := false
          done
    done;
    !delivered

  let poll t ~deliver =
    flush_outbox t;
    recv_burst t ~deliver

  let drain_wake t =
    let continue = ref true in
    while !continue do
      match Unix.read t.wake_rd t.wake_buf 0 (Bytes.length t.wake_buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | 0 -> continue := false
      | _ -> ()
    done

  let loop t handlers ~tick_every_s =
    while not !(t.stop) do
      flush_outbox t;
      (match Unix.select [ t.sock; t.wake_rd ] [] [] tick_every_s with
      | readable, _, _ ->
          if List.memq t.wake_rd readable then drain_wake t;
          if List.memq t.sock readable then
            ignore (recv_burst t ~deliver:handlers.deliver : int)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      handlers.tick ~now_us:(Mk_live.Spawn.wall () *. 1e6)
    done;
    (* Final drain so shutdown-time sends (stats, acks) leave the
       box. *)
    flush_outbox t

  let start t ?obs ?(tick_every_s = 0.001) handlers =
    t.obs <- obs;
    t.thread <- Some (Thread.create (fun () -> loop t handlers ~tick_every_s) ())

  let set_obs t obs = t.obs <- Some obs

  let stop t =
    t.stop := true;
    (try ignore (Unix.write_substring t.wake_wr "q" 0 1 : int)
     with Unix.Unix_error (_, _, _) -> ());
    (match t.thread with
    | Some th ->
        Thread.join th;
        t.thread <- None
    | None ->
        (* Never threaded (poll mode): flush what the caller queued
           last, e.g. a Shutdown broadcast. *)
        flush_outbox t);
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      [ t.sock; t.wake_rd; t.wake_wr ]
end
