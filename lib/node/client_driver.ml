(* Closed-loop clients driving a cluster of {!Node} processes over
   UDP — the cross-process mirror of the live runtime's coordinator
   domains.

   Each coordinator domain owns its own shim socket in poll mode (a
   background socket thread would starve against the busy-polling
   loop for the domain's runtime lock; inline polling needs no
   coordination at all), its own RNG, workload, Obs handle and
   committed list — coordinators share nothing, merged only after
   join.

   An attempt has two wire phases. The execute phase sends [Get]s for
   the read set's distinct keys to one replica and collects versioned
   values; on silence past the get timeout it rotates to the next
   replica and resends what is missing (UDP loss, a busy node, or a
   dead one all look the same — the paper's closest-replica read with
   failover). Once every key is resolved the commit phase runs the
   extracted {!Protocol} machine verbatim: its actions become
   [Validate]/[Accept]/[Write_back] frames to every node, its timers
   ride the poll loop, and replica replies come back as
   [Validated]/[Accepted] frames routed by (slot, seq) exactly as in
   the live runtime — a stale reply for a finished attempt can never
   be taken for the current one. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Intf = Mk_model.System_intf
module Quorum = Mk_meerkat.Quorum
module Batch = Mk_meerkat.Batch
module Protocol = Mk_meerkat.Protocol
module Codec = Mk_wire.Codec
module Mailbox = Mk_live.Mailbox
module Spawn = Mk_live.Spawn
module Workload = Mk_workload.Workload
module Obs = Mk_obs.Obs
module Histogram = Mk_util.Histogram

module Net = Shim.Make (struct
  type msg = int * Codec.t

  let encode_into ~scratch ~out (shard, m) =
    Codec.encode_shard_into ~scratch ~out ~shard m

  let decode_at = Codec.decode_shard_at
end)

type workload_kind = Ycsb_t | Rmw_pair | Retwis

type config = {
  coordinators : int;
  clients : int;
  keys : int;
  theta : float;
  workload : workload_kind;
  txns_per_client : int;
  duration : float option;
  seed : int;
  shard : int;
  rto_us : float;
  grace_us : float;
  get_rto_us : float;
}

let default_config =
  {
    coordinators = 2;
    clients = 8;
    keys = 1024;
    theta = 0.6;
    workload = Ycsb_t;
    txns_per_client = 50;
    duration = None;
    seed = 42;
    shard = 0;
    (* Real datagrams do get lost (full mailboxes, full socket
       buffers), so unlike the live runtime's safety-net timer this
       one is load-bearing: it must fire well before a human notices,
       without retransmitting into a merely busy node. *)
    rto_us = 100_000.0;
    grace_us = 5_000.0;
    get_rto_us = 50_000.0;
  }

type result = {
  committed : (Txn.t * Timestamp.t) list;
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  submitted : int;
  acked : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  wire_msgs_tx : int;
  wire_msgs_rx : int;
  wire_decode_errors : int;
}

(* ------------------------------------------------------------------ *)
(* One coordinator domain                                              *)
(* ------------------------------------------------------------------ *)

(* The execute phase of one attempt: versioned reads outstanding
   against [target], rotating on timeout. *)
type exec_phase = {
  want : int list;  (** Distinct keys of the read set. *)
  got : (int, Timestamp.t) Hashtbl.t;
  mutable target : int;
  mutable get_rto : float;
  mutable retry_at : float;
  exec_start : float;
}

type commit_phase = {
  txn : Txn.t;
  ts : Timestamp.t;
  proto : Protocol.t;
  mutable timers : (Protocol.timer * float) list;  (* absolute µs *)
}

type attempt = {
  att_seq : int;
  reads : int array;
  writes : (int * int) array;
  mutable exec : exec_phase option;
  mutable commit : commit_phase option;
}

type client = {
  cid : int;
  slot : int;
  mutable next_seq : int;
  mutable last_time : float;
  mutable done_txns : int;
  mutable active : attempt option;
}

type coord_result = {
  c_committed : (Txn.t * Timestamp.t) list;
  c_latencies : Histogram.t;
  c_obs : Obs.t;
  c_submitted : int;
  c_acked : int;
}

let distinct keys =
  List.sort_uniq compare (Array.to_list keys)

let coordinator (cfg : config) ~addrs ~t0 ~coord_id =
  let n = Array.length addrs in
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let rto_cap = 8.0 *. cfg.rto_us in
  let obs = Obs.create ~clock:wall_us () in
  let lat = Histogram.create () in
  let committed = ref [] in
  let net =
    match Net.bind () with
    | Ok net -> net
    | Error msg -> failwith ("client socket: " ^ msg)
  in
  Net.set_obs net obs;
  let params =
    {
      Protocol.n_replicas = n;
      quorum = Quorum.create ~n;
      rto = cfg.rto_us;
      grace = cfg.grace_us;
    }
  in
  let rng = Mk_util.Rng.create ~seed:(cfg.seed + (7919 * (coord_id + 1))) in
  let wl =
    match cfg.workload with
    | Ycsb_t -> Workload.ycsb_t ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Rmw_pair -> Workload.rmw_pair ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Retwis -> Workload.retwis ~rng ~keys:cfg.keys ~theta:cfg.theta
  in
  let local =
    List.init cfg.clients Fun.id
    |> List.filter (fun cid -> cid mod cfg.coordinators = coord_id)
    |> List.mapi (fun slot cid ->
           { cid; slot; next_seq = 0; last_time = 0.0; done_txns = 0; active = None })
    |> Array.of_list
  in
  let deadline_us =
    match cfg.duration with Some d -> Some (d *. 1e6) | None -> None
  in
  let quota_done c =
    match deadline_us with
    | Some dl -> wall_us () >= dl
    | None -> c.done_txns >= cfg.txns_per_client
  in
  let send_gets c att ex =
    List.iter
      (fun key ->
        if not (Hashtbl.mem ex.got key) then
          Net.send net ~dst:addrs.(ex.target)
            ( cfg.shard,
              Codec.Get { coord = coord_id; slot = c.slot; seq = att.att_seq; key } ))
      ex.want
  in
  (* Z7: the [addrs.(r)] reads below sit inside [0 .. n-1] loops with
     [n = Array.length addrs]. *)
  let exec_action c att cm action =
    match action with
    | Protocol.Send_validates { only_missing } ->
        for r = 0 to n - 1 do
          if (not only_missing) || Protocol.needs_validate cm.proto r then
            Net.send net ~dst:(addrs.(r) [@mk_lint.allow "Z7"])
              ( cfg.shard,
                Codec.Validate
                  {
                    coord = coord_id;
                    slot = c.slot;
                    seq = att.att_seq;
                    txn = cm.txn;
                    ts = cm.ts;
                  } )
        done
    | Protocol.Send_accepts { decision } ->
        for r = 0 to n - 1 do
          Net.send net ~dst:(addrs.(r) [@mk_lint.allow "Z7"])
            ( cfg.shard,
              Codec.Accept
                {
                  coord = coord_id;
                  slot = c.slot;
                  seq = att.att_seq;
                  txn = cm.txn;
                  ts = cm.ts;
                  decision;
                  view = 0;
                } )
        done
    | Protocol.Arm_timer { timer; delay } ->
        let timer, delay =
          match timer with
          | Protocol.Retransmit rto when rto > rto_cap ->
              (Protocol.Retransmit rto_cap, Float.min delay rto_cap)
          | _ -> (timer, delay)
        in
        cm.timers <- (timer, wall_us () +. delay) :: cm.timers
    | Protocol.Note_validated ->
        Obs.span obs Mk_obs.Span.Validate ~tid:c.cid
          ~start:(Protocol.started cm.proto) ()
    | Protocol.Note_decided { commit; fast } ->
        let now = wall_us () in
        Histogram.add lat (now -. Protocol.started cm.proto);
        if fast then
          Obs.span obs Mk_obs.Span.Fast_quorum ~tid:c.cid
            ~start:(Protocol.started cm.proto) ()
        else if not (Float.is_nan (Protocol.accept_started cm.proto)) then
          Obs.span obs Mk_obs.Span.Slow_accept ~tid:c.cid
            ~start:(Protocol.accept_started cm.proto) ();
        Obs.note_decision obs ~committed:commit ~fast;
        (* Asynchronous write phase (§5.2.3): fire and forget. *)
        for r = 0 to n - 1 do
          Net.send net ~dst:(addrs.(r) [@mk_lint.allow "Z7"])
            (cfg.shard, Codec.Write_back { txn = cm.txn; ts = cm.ts; commit })
        done;
        if commit then committed := (cm.txn, cm.ts) :: !committed
  in
  (* One scratch batch per coordinator: [exec_action] never reenters
     [feed]/[begin_commit] (the next transaction starts from the poll
     loop), so a single reused buffer is safe. *)
  let acts : Protocol.action Batch.t = Batch.create () in
  let feed c att cm event =
    Batch.clear acts;
    Protocol.handle cm.proto ~now:(wall_us ()) event ~into:acts;
    Batch.iter (exec_action c att cm) acts;
    if Protocol.decided cm.proto then begin
      c.active <- None;
      c.done_txns <- c.done_txns + 1
    end
  in
  (* Every read resolved: build the transaction and start the commit
     protocol. *)
  let begin_commit c att (ex : exec_phase option) =
    let read_set =
      Array.to_list
        (Array.map
           (fun key ->
             let wts =
               match ex with
               | Some ex -> (
                   match Hashtbl.find_opt ex.got key with
                   | Some wts -> wts
                   | None -> Timestamp.zero)
               | None -> Timestamp.zero
             in
             ({ key; wts } : Txn.read_entry))
           att.reads)
    in
    let write_set =
      List.map
        (fun (key, value) -> ({ key; value } : Txn.write_entry))
        (Array.to_list att.writes)
    in
    (match ex with
    | Some ex ->
        Obs.span obs Mk_obs.Span.Execute ~tid:c.cid ~start:ex.exec_start ()
    | None -> ());
    let tid = Tid.make ~seq:att.att_seq ~client_id:c.cid in
    let txn = Txn.make ~tid ~read_set ~write_set in
    let now = wall_us () in
    (* Strictly increasing proposed timestamps per client, even when
       the wall clock stalls within one microsecond. *)
    let time = if now <= c.last_time then c.last_time +. 1e-3 else now in
    c.last_time <- time;
    let ts = Timestamp.make ~time ~client_id:c.cid in
    Batch.clear acts;
    let proto = Protocol.start params ~now ~into:acts in
    let cm = { txn; ts; proto; timers = [] } in
    att.exec <- None;
    att.commit <- Some cm;
    Batch.iter (exec_action c att cm) acts
  in
  let start_txn c =
    let req = Workload.next wl in
    c.next_seq <- c.next_seq + 1;
    let att =
      {
        att_seq = c.next_seq;
        reads = req.Intf.reads;
        writes = req.Intf.writes;
        exec = None;
        commit = None;
      }
    in
    c.active <- Some att;
    if Array.length req.Intf.reads = 0 then begin_commit c att None
    else begin
      let ex =
        {
          want = distinct req.Intf.reads;
          got = Hashtbl.create 8;
          target = c.cid mod n;
          get_rto = cfg.get_rto_us;
          retry_at = wall_us () +. cfg.get_rto_us;
          exec_start = wall_us ();
        }
      in
      att.exec <- Some ex;
      send_gets c att ex
    end
  in
  (* [slot] indexes [local] and [replica] indexes the protocol
     machine's per-replica reply arrays, both straight off the wire: a
     corrupted or hostile reply frame must be a counted drop, never an
     [Invalid_argument] that aborts the coordinator domain. *)
  let slot_ok s = s >= 0 && s < Array.length local in
  let replica_ok r = r >= 0 && r < n in
  let drop_bad_ids () = Obs.note_wire_decode_error obs in
  let deliver ~src:_ ((shard, msg) : int * Codec.t) =
    if shard <> cfg.shard then Obs.note_wire_shard_drop obs
    else
    match msg with
    | Codec.Get_reply { slot; seq; key; wts; _ } -> (
        if not (slot_ok slot) then drop_bad_ids ()
        else
          (* Z7: [slot] passed [slot_ok] just above. *)
          let c = (local.(slot) [@mk_lint.allow "Z7"]) in
          match c.active with
          | Some att when att.att_seq = seq -> (
              match att.exec with
              | Some ex ->
                  if List.mem key ex.want && not (Hashtbl.mem ex.got key) then begin
                    Hashtbl.replace ex.got key wts;
                    if Hashtbl.length ex.got = List.length ex.want then
                      begin_commit c att (Some ex)
                  end
              | None -> ())
          | Some _ | None -> ())
    | Codec.Validated { slot; seq; replica; status } -> (
        if not (slot_ok slot && replica_ok replica) then drop_bad_ids ()
        else
          (* Z7: [slot] passed [slot_ok] just above. *)
          let c = (local.(slot) [@mk_lint.allow "Z7"]) in
          match c.active with
          | Some att when att.att_seq = seq -> (
              match att.commit with
              | Some cm -> feed c att cm (Protocol.Validate_reply { replica; status })
              | None -> ())
          | Some _ | None -> ())
    | Codec.Accepted { slot; seq; replica; reply } -> (
        if not (slot_ok slot && replica_ok replica) then drop_bad_ids ()
        else
          (* Z7: [slot] passed [slot_ok] just above. *)
          let c = (local.(slot) [@mk_lint.allow "Z7"]) in
          match c.active with
          | Some att when att.att_seq = seq -> (
              match att.commit with
              | Some cm -> feed c att cm (Protocol.Accept_reply { replica; reply })
              | None -> ())
          | Some _ | None -> ())
    | _ ->
        (* Server-side or control traffic; not for a client socket. *)
        ()
  in
  let tick_client c =
    match c.active with
    | None -> if not (quota_done c) then start_txn c
    | Some att -> (
        match (att.exec, att.commit) with
        | Some ex, _ ->
            let now = wall_us () in
            if now >= ex.retry_at then begin
              (* Rotate replicas: loss, a busy node and a dead one all
                 look like silence. *)
              ex.target <- (ex.target + 1) mod n;
              ex.get_rto <- Float.min (ex.get_rto *. 2.0) rto_cap;
              ex.retry_at <- now +. ex.get_rto;
              Obs.note_retransmit obs;
              send_gets c att ex
            end
        | None, Some cm ->
            let now = wall_us () in
            let due, pending =
              List.partition (fun (_, dl) -> dl <= now) cm.timers
            in
            cm.timers <- pending;
            List.iter
              (fun (timer, _) ->
                if not (Protocol.decided cm.proto) then begin
                  (match timer with
                  | Protocol.Retransmit _ -> Obs.note_retransmit obs
                  | Protocol.Fast_grace -> ());
                  feed c att cm (Protocol.Timer timer)
                end)
              due
        | None, None -> ())
  in
  let idle = ref 0 in
  let rec loop () =
    let delivered = Net.poll net ~deliver in
    let all_done = ref true in
    Array.iter
      (fun c ->
        tick_client c;
        if Option.is_some c.active || not (quota_done c) then all_done := false)
      local;
    if not !all_done then begin
      if delivered > 0 then idle := 0
      else begin
        incr idle;
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      loop ()
    end
  in
  loop ();
  Net.stop net;
  let submitted = Array.fold_left (fun acc c -> acc + c.next_seq) 0 local in
  let acked = Array.fold_left (fun acc c -> acc + c.done_txns) 0 local in
  {
    c_committed = !committed;
    c_latencies = lat;
    c_obs = obs;
    c_submitted = submitted;
    c_acked = acked;
  }

(* ------------------------------------------------------------------ *)
(* Whole-driver run                                                    *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) ~cluster =
  if cfg.coordinators < 1 then
    invalid_arg "Client_driver.run: coordinators must be >= 1";
  if cfg.clients < cfg.coordinators then
    invalid_arg "Client_driver.run: clients must be >= coordinators";
  match Cluster_config.sockaddrs cluster with
  | Error _ as e -> e
  | Ok addrs ->
      let t0 = Spawn.wall () in
      let results =
        Spawn.parallel ~domains:cfg.coordinators (fun coord_id ->
            coordinator cfg ~addrs ~t0 ~coord_id)
      in
      let wall_seconds = Spawn.wall () -. t0 in
      let committed = List.concat_map (fun r -> r.c_committed) results in
      let sum name =
        List.fold_left
          (fun acc r -> acc + Obs.counter_value r.c_obs name)
          0 results
      in
      let lat =
        List.fold_left
          (fun acc r -> Histogram.merge acc r.c_latencies)
          (Histogram.create ()) results
      in
      let committed_count = sum "txn.committed" in
      let aborted = sum "txn.aborted" in
      let decided = committed_count + aborted in
      Ok
        {
          committed;
          committed_count;
          aborted;
          fast_path = sum "txn.fast_path";
          slow_path = sum "txn.slow_path";
          retransmits = sum "net.retransmits";
          submitted = List.fold_left (fun acc r -> acc + r.c_submitted) 0 results;
          acked = List.fold_left (fun acc r -> acc + r.c_acked) 0 results;
          wall_seconds;
          throughput = float_of_int committed_count /. wall_seconds;
          abort_rate =
            (if decided = 0 then 0.0
             else float_of_int aborted /. float_of_int decided);
          p50_us = Histogram.percentile lat 50.0;
          p99_us = Histogram.percentile lat 99.0;
          wire_msgs_tx = sum "wire.msgs_tx";
          wire_msgs_rx = sum "wire.msgs_rx";
          wire_decode_errors = sum "wire.decode_errors";
        }

let shutdown ?(shard = 0) ~cluster () =
  match Cluster_config.sockaddrs cluster with
  | Error _ as e -> e
  | Ok addrs -> (
      match Net.bind () with
      | Error _ as e -> e
      | Ok net ->
          Array.iter (fun dst -> Net.send net ~dst (shard, Codec.Shutdown)) addrs;
          (* stop flushes the queued frames before closing. *)
          Net.stop net;
          Ok ())

let result_json (r : result) =
  Printf.sprintf
    "{\"committed\": %d, \"aborted\": %d, \"fast_path\": %d, \"slow_path\": \
     %d, \"retransmits\": %d, \"submitted\": %d, \"acked\": %d, \
     \"wall_seconds\": %.6f, \"throughput\": %.1f, \"abort_rate\": %.4f, \
     \"p50_us\": %.1f, \"p99_us\": %.1f, \"wire_msgs_tx\": %d, \
     \"wire_msgs_rx\": %d, \"wire_decode_errors\": %d}"
    r.committed_count r.aborted r.fast_path r.slow_path r.retransmits
    r.submitted r.acked r.wall_seconds r.throughput r.abort_rate r.p50_us
    r.p99_us r.wire_msgs_tx r.wire_msgs_rx r.wire_decode_errors
