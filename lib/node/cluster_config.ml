(* Cluster membership for the cross-process backend: an ordered list
   of named endpoints, one per Meerkat server node. The textual form
   is the Verdi shims' `name host:port` lines; replica ids are
   positional (line order), so every process that parses the same
   file agrees on the id space without a separate mapping. *)

type node = { name : string; host : string; port : int }
type t = node array

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let split_host_port s =
  (* Split at the last ':' so a future IPv6-ish host with colons still
     leaves the port intact. *)
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected host:port" s)
  | Some i ->
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      if host = "" then Error (Printf.sprintf "%S: empty host" s)
      else begin
        match int_of_string_opt port_s with
        | Some port when port >= 1 && port <= 65535 -> Ok (host, port)
        | Some port -> Error (Printf.sprintf "port %d out of range" port)
        | None -> Error (Printf.sprintf "%S: bad port" port_s)
      end

let parse_line lineno line =
  let line = trim_comment line in
  let words =
    String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | [ name; endpoint ] -> begin
      match split_host_port endpoint with
      | Ok (host, port) -> Ok (Some { name; host; port })
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
    end
  | _ ->
      Error
        (Printf.sprintf "line %d: expected `name host:port', got %S" lineno line)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc seen = function
    | [] -> (
        match acc with
        | [] -> Error "empty cluster config"
        | acc -> Ok (Array.of_list (List.rev acc)))
    | line :: rest -> (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> go (lineno + 1) acc seen rest
        | Ok (Some node) ->
            if List.mem node.name seen then
              Error (Printf.sprintf "line %d: duplicate node %S" lineno node.name)
            else go (lineno + 1) (node :: acc) (node.name :: seen) rest)
  in
  go 1 [] [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let line n = Printf.sprintf "%s %s:%d" n.name n.host n.port

let to_string t =
  String.concat "" (Array.to_list (Array.map (fun n -> line n ^ "\n") t))

let find t name =
  let rec go i =
    if i >= Array.length t then None
    else if t.(i).name = name then Some i
    else go (i + 1)
  in
  go 0

let sockaddr n =
  match Unix.inet_addr_of_string n.host with
  | addr -> Ok (Unix.ADDR_INET (addr, n.port))
  | exception Failure _ -> (
      match Unix.gethostbyname n.host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "%s: no address for host %S" n.name n.host)
      | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), n.port))
      | exception Not_found ->
          Error (Printf.sprintf "%s: unknown host %S" n.name n.host))

let sockaddrs t =
  let rec go i acc =
    if i < 0 then Ok (Array.of_list acc)
    else
      match sockaddr t.(i) with
      | Ok a -> go (i - 1) (a :: acc)
      | Error _ as e -> e
  in
  go (Array.length t - 1) []
