(** Jepsen-style chaos runner: a seeded nemesis × the Meerkat system ×
    end-of-run invariants — over either deployment of the protocol.

    One {!run} builds a fresh system from the seed, installs the
    {!Mk_fault.Nemesis} schedule for the chosen profile, arms the
    failure detectors, and drives closed-loop read-modify-write
    clients to the horizon. All recovery is detector-driven — the
    runner itself never calls an epoch change or view change. After a
    grace period it checks:

    - {b serializable}: the union of committed records across replicas
      replays as one serializable history ({!Checker.check});
    - {b agreement}: every replica's committed store matches the
      checker's replay of that history, key by key;
    - {b bounded}: every submission was acknowledged and no trecord
      entry is left in a non-final state (nothing is stuck past the
      grace bound);
    - {b available}: every replica is back up (crashed ones were
      reintegrated by the heartbeat detector's epoch change);
    - {b acks}: the number of acknowledged commits equals the number
      of committed records (no lost or phantom acks);
    - {b durable}: replaying every replica's durable device (snapshot
      + WAL suffix, the exact {!Mk_durable.Recover} reboot path)
      reproduces every committed record in its final trecord, and
      nothing observed committed before a crash is missing from the
      union of replays. The {!Sim} backend logs to deterministic
      in-memory {!Mk_durable.Memlog} devices; the {!Live} backend
      writes real per-(replica, core) files in a scratch directory
      and replays them off disk.

    The six verdicts are computed by one shared evaluator, so a
    {!Sim} run and a {!Live} run pass or fail for the same reasons:

    - {!Sim} drives {!Mk_meerkat.Sim_system} on the discrete-event
      engine with virtual-µs times — deterministic, the golden suite's
      backend;
    - {!Live} drives {!Mk_live.Runtime} with [chaos] set: the same
      nemesis plan applied by {!Mk_live.Link} to real mailbox traffic
      between OCaml 5 domains, with wall-µs times and detector
      timeouts derived from the horizon
      ({!Mk_live.Runtime.chaos_detector_cfg}; the [detector] field
      only tunes the sim backend). *)

type backend = Sim | Live

type cfg = {
  seed : int;
  profile : Mk_fault.Nemesis.profile;
  threads : int;  (** Sim cores per replica / live server domains. *)
  n_clients : int;
  keys : int;
  horizon : float;
      (** Clients stop submitting at this time (virtual µs for {!Sim},
          wall µs for {!Live}). *)
  grace : float;
      (** Extra time for in-flight work and detector-driven recovery
          to drain before the invariants are checked. *)
  transport : Mk_net.Transport.t;  (** Sim only. *)
  detector : Mk_meerkat.Sim_system.detector_cfg;  (** Sim only. *)
  trace : bool;  (** Record a Chrome trace (sim only; see {!report.obs}). *)
  backend : backend;
}

val default_cfg : cfg
(** Sim backend: Combo profile, 8 clients × 2 cores × 256 hot keys,
    60 ms virtual horizon, 30 ms grace. *)

val default_live_cfg : cfg
(** {!default_cfg} on the {!Live} backend with a wall-clock envelope
    (0.8 s horizon, 0.4 s grace) sized so the horizon-scaled detector
    timeouts dwarf OS scheduling jitter. *)

type report = {
  r_cfg : cfg;
  committed_acks : int;
  aborted_acks : int;
  submitted : int;
  acked : int;
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Union of committed trecord entries across replicas. *)
  stuck : int;  (** Non-final trecord entries left at the end. *)
  serializable : (unit, Checker.violation) result;
  agreement : (unit, string) result;
  bounded : (unit, string) result;
  available : (unit, string) result;
  acks_consistent : (unit, string) result;
  durable : (unit, string) result;
      (** Nothing acked-committed before a crash is missing after a
          replay of the durable images (see the module preamble). *)
  epoch_changes : int;  (** Detector-initiated §5.3.1 completions. *)
  view_changes : int;  (** Detector-initiated §5.3.2 completions. *)
  duplicated : int;
  delayed : int;
  dropped : int;
  fault_events : int;  (** Nemesis window opens/closes and crashes. *)
  obs : Mk_obs.Obs.t;
      (** The run's observability handle — export a Chrome trace from
          it when [trace] was set (sim; the live backend returns an
          empty handle and reports through the counters above). *)
}

val run : cfg -> report
val passed : report -> bool
(** All six invariants hold. *)

val matrix :
  seeds:int list -> profiles:Mk_fault.Nemesis.profile list -> cfg:cfg -> report list
(** One {!run} per (profile, seed) pair, sharing everything else from
    [cfg]. *)

val pp_report : Format.formatter -> report -> unit

val report_json : report -> string
(** One flat JSON object (no committed list) — one line of the CI
    chaos job's report artifact. *)
