(** Jepsen-style chaos runner: a seeded nemesis × the Meerkat system ×
    end-of-run invariants — over either deployment of the protocol.

    One {!run} builds a fresh system from the seed, installs the
    {!Mk_fault.Nemesis} schedule for the chosen profile, arms the
    failure detectors, and drives closed-loop read-modify-write
    clients to the horizon. All recovery is detector-driven — the
    runner itself never calls an epoch change or view change. After a
    grace period it checks:

    - {b serializable}: the union of committed records across replicas
      replays as one serializable history ({!Checker.check});
    - {b agreement}: every replica's committed store matches the
      checker's replay of that history, key by key;
    - {b bounded}: every submission was acknowledged and no trecord
      entry is left in a non-final state (nothing is stuck past the
      grace bound);
    - {b available}: every replica is back up (crashed ones were
      reintegrated by the heartbeat detector's epoch change);
    - {b acks}: the number of acknowledged commits equals the number
      of committed records (no lost or phantom acks);
    - {b durable}: replaying every replica's durable device (snapshot
      + WAL suffix, the exact {!Mk_durable.Recover} reboot path)
      reproduces every committed record in its final trecord, and
      nothing observed committed before a crash is missing from the
      union of replays. The {!Sim} backend logs to deterministic
      in-memory {!Mk_durable.Memlog} devices; the {!Live} backend
      writes real per-(replica, core) files in a scratch directory
      and replays them off disk.

    The six verdicts are computed by one shared evaluator, so a
    {!Sim} run and a {!Live} run pass or fail for the same reasons:

    - {!Sim} drives {!Mk_meerkat.Sim_system} on the discrete-event
      engine with virtual-µs times — deterministic, the golden suite's
      backend;
    - {!Live} drives {!Mk_live.Runtime} with [chaos] set: the same
      nemesis plan applied by {!Mk_live.Link} to real mailbox traffic
      between OCaml 5 domains, with wall-µs times and detector
      timeouts derived from the horizon
      ({!Mk_live.Runtime.chaos_detector_cfg}; the [detector] field
      only tunes the sim backend). *)

type backend = Sim | Live

type cfg = {
  seed : int;
  profile : Mk_fault.Nemesis.profile;
  threads : int;  (** Sim cores per replica / live server domains. *)
  n_clients : int;
  keys : int;
  horizon : float;
      (** Clients stop submitting at this time (virtual µs for {!Sim},
          wall µs for {!Live}). *)
  grace : float;
      (** Extra time for in-flight work and detector-driven recovery
          to drain before the invariants are checked. *)
  transport : Mk_net.Transport.t;  (** Sim only. *)
  detector : Mk_meerkat.Sim_system.detector_cfg;  (** Sim only. *)
  trace : bool;  (** Record a Chrome trace (sim only; see {!report.obs}). *)
  backend : backend;
}

val default_cfg : cfg
(** Sim backend: Combo profile, 8 clients × 2 cores × 256 hot keys,
    60 ms virtual horizon, 30 ms grace. *)

val default_live_cfg : cfg
(** {!default_cfg} on the {!Live} backend with a wall-clock envelope
    (0.8 s horizon, 0.4 s grace) sized so the horizon-scaled detector
    timeouts dwarf OS scheduling jitter. *)

type report = {
  r_cfg : cfg;
  committed_acks : int;
  aborted_acks : int;
  submitted : int;
  acked : int;
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Union of committed trecord entries across replicas. *)
  stuck : int;  (** Non-final trecord entries left at the end. *)
  serializable : (unit, Checker.violation) result;
  agreement : (unit, string) result;
  bounded : (unit, string) result;
  available : (unit, string) result;
  acks_consistent : (unit, string) result;
  durable : (unit, string) result;
      (** Nothing acked-committed before a crash is missing after a
          replay of the durable images (see the module preamble). *)
  epoch_changes : int;  (** Detector-initiated §5.3.1 completions. *)
  view_changes : int;  (** Detector-initiated §5.3.2 completions. *)
  duplicated : int;
  delayed : int;
  dropped : int;
  fault_events : int;  (** Nemesis window opens/closes and crashes. *)
  obs : Mk_obs.Obs.t;
      (** The run's observability handle — export a Chrome trace from
          it when [trace] was set (sim; the live backend returns an
          empty handle and reports through the counters above). *)
}

val run : cfg -> report
val passed : report -> bool
(** All six invariants hold. *)

val matrix :
  seeds:int list -> profiles:Mk_fault.Nemesis.profile list -> cfg:cfg -> report list
(** One {!run} per (profile, seed) pair, sharing everything else from
    [cfg]. *)

val pp_report : Format.formatter -> report -> unit

val report_json : report -> string
(** One flat JSON object (no committed list) — one line of the CI
    chaos job's report artifact. *)

(** {2 Backend plumbing}

    The pieces a third deployment can assemble into the same six
    verdicts. [Mk_systems.Shard_chaos] — the multi-shard sim chaos
    runner, which cannot live here because [mk_systems] already
    depends on this library — is the intended client; the sim and
    live backends above are built from exactly these. *)

type raw = {
  raw_cfg : cfg;
  raw_replicas : Mk_meerkat.Replica.t array;
      (** Quiescent replicas; a sharded caller concatenates every
          group's array (ids repeat per group — only crash state,
          trecord entries and agreement reads are consulted). *)
  raw_read_committed : replica:int -> key:int -> int option;
      (** Committed value of [key] (global keyspace) at [replica]. *)
  raw_submitted : int;
  raw_acked : int;
  raw_committed_acks : int;
  raw_aborted_acks : int;
  raw_epoch_changes : int;
  raw_view_changes : int;
  raw_duplicated : int;
  raw_delayed : int;
  raw_dropped : int;
  raw_fault_events : int;
  raw_durable : (unit, string) result;
  raw_obs : Mk_obs.Obs.t;
}
(** Everything deployment-specific the evaluator consumes. *)

val evaluate :
  ?committed:(Mk_storage.Txn.t * Mk_clock.Timestamp.t) list -> raw -> report
(** Compute the six verdicts. Without [?committed] the history is the
    union of committed trecord entries across [raw_replicas]
    (deduplicated by tid); a sharded caller must pass the pre-merged
    global history ({!Mk_systems.Sharded_sim.trecord_history}) because
    per-shard sub-transactions share their global tid — the naive
    union would collapse a cross-shard transaction into one local
    fragment. *)

val check_durable :
  cores:int ->
  replicas:Mk_meerkat.Replica.t array ->
  sources:(int -> Mk_durable.Recover.source list) ->
  obligations:(Mk_clock.Timestamp.Tid.t * Mk_clock.Timestamp.t) list ->
  note:(Mk_durable.Recover.parsed -> unit) ->
  (unit, string) result
(** The durable verdict for one replica group: replay every replica's
    device images ([sources r], the exact {!Mk_durable.Recover} reboot
    path) and require each committed trecord record to survive its own
    replay and each obligation to survive the union of replays. *)

val install_memlog_hooks :
  obs:Mk_obs.Obs.t ->
  cores:int ->
  replicas:Mk_meerkat.Replica.t array ->
  memlogs:Mk_durable.Memlog.t array array ->
  unit
(** Arm one group's durable hooks over per-(replica, core) in-memory
    devices ([memlogs.(replica).(core)]): Finalized appends a WAL
    record, Installed cuts a full snapshot — the same Walcodec bytes
    the cluster backend puts on disk. The hooks touch no engine or RNG
    state, so a Calm run stays bit-identical to one without them. *)

type obligations
(** Commits observed durable before a crash wiped a replica — the
    union of end-of-run replays must still hold them. *)

val obligations_create : unit -> obligations

val obligations_capture : obligations -> Mk_meerkat.Replica.t array -> unit
(** Record every committed trecord entry on the still-up replicas
    (deduplicated across calls) — call at each crash instant. *)

val obligations_list :
  obligations -> (Mk_clock.Timestamp.Tid.t * Mk_clock.Timestamp.t) list

val workload_rng : int -> Mk_util.Rng.t
(** The clients' key-draw RNG for a seed — derived from it but
    independent of the engine's, so nemesis and network fault draws
    never shift which keys the clients touch. *)
