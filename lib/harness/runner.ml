module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Workload = Mk_workload.Workload

type result = {
  committed : int;
  aborted : int;
  goodput : float;
  abort_rate : float;
  mean_latency : float;
  p50_latency : float;
  p99_latency : float;
  fast_fraction : float;
  retransmits : int;
  busy : float;
  phases : (Mk_obs.Span.kind * Mk_obs.Registry.histogram_summary) list;
}

let run ~engine ~system:(Intf.Packed ((module S), sys)) ~workload ~n_clients ~warmup
    ~measure ~busy =
  let horizon = warmup +. measure in
  let committed = ref 0 and aborted = ref 0 in
  let latencies = Mk_util.Histogram.create () in
  let lat_stats = Mk_util.Stats.create () in
  let in_window () =
    let now = Engine.now engine in
    now >= warmup && now < horizon
  in
  let obs = S.obs sys in
  let base_counters = ref Intf.zero_counters in
  let window_started = ref false in
  (* Snapshot protocol counters (and reset the per-phase latency
     histograms) when the window opens so fast-path fractions,
     retransmit counts and the phase breakdown cover the window
     only. *)
  Engine.schedule_at engine warmup (fun () ->
      window_started := true;
      base_counters := Intf.counters_of_obs obs;
      Mk_obs.Obs.reset_phases obs);
  let rec client_loop c =
    if Engine.now engine < horizon then begin
      let req = Workload.next workload in
      let started = Engine.now engine in
      attempt c req ~started
    end
  and attempt c req ~started =
    S.submit sys ~client:c req ~on_done:(fun ~committed:ok ->
        if ok then begin
          if in_window () && started >= warmup then begin
            incr committed;
            let lat = Engine.now engine -. started in
            Mk_util.Histogram.add latencies lat;
            Mk_util.Stats.add lat_stats lat
          end
          else if in_window () then incr committed;
          client_loop c
        end
        else begin
          if in_window () then incr aborted;
          (* Retry the same transaction with fresh reads and a fresh
             timestamp, as the paper's closed-loop clients do. *)
          if Engine.now engine < horizon then attempt c req ~started
        end)
  in
  for c = 0 to n_clients - 1 do
    client_loop c
  done;
  Engine.run ~until:horizon engine;
  let counters = Intf.counters_of_obs obs in
  let base = !base_counters in
  let fast = counters.Intf.fast_path - base.Intf.fast_path in
  let slow = counters.Intf.slow_path - base.Intf.slow_path in
  let decided = fast + slow in
  let total = !committed + !aborted in
  {
    committed = !committed;
    aborted = !aborted;
    goodput = float_of_int !committed /. measure *. 1e6;
    abort_rate = (if total = 0 then 0.0 else float_of_int !aborted /. float_of_int total);
    mean_latency = (if Mk_util.Stats.count lat_stats = 0 then nan else Mk_util.Stats.mean lat_stats);
    p50_latency = Mk_util.Histogram.percentile latencies 50.0;
    p99_latency = Mk_util.Histogram.percentile latencies 99.0;
    fast_fraction =
      (if decided = 0 then 1.0 else float_of_int fast /. float_of_int decided);
    retransmits = counters.Intf.retransmits - base.Intf.retransmits;
    busy = busy ();
    phases = Mk_obs.Obs.phase_summary obs;
  }

let pp_phases ppf phases =
  let nonempty =
    List.filter
      (fun ((_ : Mk_obs.Span.kind), (s : Mk_obs.Registry.histogram_summary)) ->
        s.Mk_obs.Registry.count > 0)
      phases
  in
  Format.fprintf ppf "@[<v>phase %-14s %10s %10s %10s %10s" "" "n" "mean(us)"
    "p50(us)" "p99(us)";
  List.iter
    (fun (kind, (s : Mk_obs.Registry.histogram_summary)) ->
      Format.fprintf ppf "@,phase %-14s %10d %10.1f %10.1f %10.1f"
        (Mk_obs.Span.to_string kind)
        s.Mk_obs.Registry.count s.Mk_obs.Registry.mean s.Mk_obs.Registry.p50
        s.Mk_obs.Registry.p99)
    nonempty;
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "goodput=%.3fM/s aborts=%.1f%% lat(mean/p50/p99)=%.1f/%.1f/%.1fus fast=%.1f%% \
     busy=%.2f"
    (r.goodput /. 1e6) (100.0 *. r.abort_rate) r.mean_latency r.p50_latency
    r.p99_latency (100.0 *. r.fast_fraction) r.busy;
  if List.exists
       (fun (_, (s : Mk_obs.Registry.histogram_summary)) ->
         s.Mk_obs.Registry.count > 0)
       r.phases
  then Format.fprintf ppf "@,%a" pp_phases r.phases;
  Format.fprintf ppf "@]"

let peak ~make ~workload ~ladder ~warmup ~measure =
  let best = ref None in
  List.iter
    (fun n_clients ->
      let engine, system, busy = make ~n_clients in
      let r =
        run ~engine ~system ~workload:(workload ()) ~n_clients ~warmup ~measure ~busy
      in
      match !best with
      | Some (_, prev) when prev.goodput >= r.goodput -> ()
      | _ -> best := Some (n_clients, r))
    ladder;
  match !best with
  | Some result -> result
  | None -> invalid_arg "Runner.peak: empty ladder"
