module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Network = Mk_net.Network
module Intf = Mk_model.System_intf
module Txn = Mk_storage.Txn
module Timestamp = Mk_clock.Timestamp
module S = Mk_meerkat.Sim_system
module Replica = Mk_meerkat.Replica
module Nemesis = Mk_fault.Nemesis
module Runtime = Mk_live.Runtime
module Obs = Mk_obs.Obs
module Rng = Mk_util.Rng
module Memlog = Mk_durable.Memlog
module Walcodec = Mk_durable.Walcodec
module Recover = Mk_durable.Recover
module Tid = Mk_clock.Timestamp.Tid

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

type backend = Sim | Live

type cfg = {
  seed : int;
  profile : Nemesis.profile;
  threads : int;
  n_clients : int;
  keys : int;
  horizon : float;
  grace : float;
  transport : Transport.t;
  detector : S.detector_cfg;
  trace : bool;
  backend : backend;
}

let default_cfg =
  {
    seed = 1;
    profile = Nemesis.Combo;
    threads = 2;
    n_clients = 8;
    keys = 256;
    horizon = 60_000.0;
    grace = 30_000.0;
    transport = Transport.erpc;
    detector = S.default_detector_cfg;
    trace = false;
    backend = Sim;
  }

let default_live_cfg =
  {
    default_cfg with
    backend = Live;
    (* Wall microseconds: long enough that the horizon-scaled detector
       timeouts dwarf OS scheduling jitter on a loaded machine. *)
    horizon = 800_000.0;
    grace = 400_000.0;
  }

type report = {
  r_cfg : cfg;
  committed_acks : int;
  aborted_acks : int;
  submitted : int;
  acked : int;
  committed : (Txn.t * Timestamp.t) list;
      (** Union of committed trecord entries across replicas. *)
  stuck : int;  (** Non-final trecord entries left at the end. *)
  serializable : (unit, Checker.violation) result;
  agreement : (unit, string) result;
  bounded : (unit, string) result;
  available : (unit, string) result;
  acks_consistent : (unit, string) result;
  durable : (unit, string) result;
  epoch_changes : int;
  view_changes : int;
  duplicated : int;
  delayed : int;
  dropped : int;
  fault_events : int;
  obs : Obs.t;
}

let passed r =
  Result.is_ok r.serializable
  && Result.is_ok r.agreement
  && Result.is_ok r.bounded
  && Result.is_ok r.available
  && Result.is_ok r.acks_consistent
  && Result.is_ok r.durable

(* --- End-of-run invariants, shared by both backends. ---

   Everything deployment-specific is behind two values: the quiescent
   replica array and a committed-value reader. The six verdicts are
   computed from those exactly once, so a sim run and a live run pass
   or fail for the same reasons (the durable verdict is computed by
   [check_durable] below against the backend's own device images and
   handed in through [raw]). *)

(* I6 (durable): replay every replica's durable device — snapshot +
   WAL suffix, the exact reboot path of {!Mk_durable.Recover} — and
   require (a) every committed record in the replica's final trecord
   to be present, committed and at the same timestamp, in its own
   replay, and (b) every [obligation] (a commit observed durable
   before a crash wiped a replica) to survive in the union of replays.
   Together with the acks invariant, (a) alone already implies the
   headline guarantee — nothing acked-committed before a crash is
   missing after replay — because an acked commit is in the final
   committed union, which every replica's replay must cover for its
   own records; (b) additionally pins the crash instant itself on the
   deterministic backend. *)
let check_durable ~cores ~replicas ~sources ~obligations ~note =
  let err = ref None in
  let fail fmt =
    Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
  in
  let replays =
    Array.mapi
      (fun r rep ->
        let parsed = Recover.parse ~cores (sources r) in
        note parsed;
        let committed_in_replay = Tid_table.create 256 in
        List.iter
          (fun ((_ : int), (v : Replica.record_view)) ->
            if v.status = Txn.Committed then
              Tid_table.replace committed_in_replay v.txn.Txn.tid v.ts)
          parsed.Recover.records;
        (if not (Replica.is_crashed rep) then
           List.iter
             (fun (_, (e : Mk_storage.Trecord.entry)) ->
               if e.status = Txn.Committed then
                 match Tid_table.find_opt committed_in_replay e.txn.Txn.tid with
                 | Some ts when Timestamp.compare ts e.ts = 0 -> ()
                 | Some _ ->
                     fail
                       "replica %d: a committed record replays at a different \
                        timestamp"
                       r
                 | None ->
                     fail
                       "replica %d: a committed record is missing from its \
                        WAL+snapshot replay"
                       r)
             (Mk_storage.Trecord.entries (Replica.trecord rep)));
        committed_in_replay)
      replicas
  in
  List.iter
    (fun (tid, ts) ->
      let held =
        Array.exists
          (fun tbl ->
            match Tid_table.find_opt tbl tid with
            | Some ts' -> Timestamp.compare ts' ts = 0
            | None -> false)
          replays
      in
      if not held then
        fail "a commit durable before a crash is missing from every replay")
    obligations;
  match !err with None -> Ok () | Some e -> Error e

(* Durable obligations: everything committed anywhere at the instant
   of a crash. Finalization happens at (or after) the coordinator's
   ack, so this under-approximates "acked-committed before the crash",
   and each entry already fired the Finalized hook — the union of
   end-of-run replays must still hold it. *)
type obligations = {
  mutable ob_list : (Tid.t * Timestamp.t) list;
  ob_seen : unit Tid_table.t;
}

let obligations_create () = { ob_list = []; ob_seen = Tid_table.create 64 }

let obligations_capture ob replicas =
  Array.iter
    (fun rep ->
      if not (Replica.is_crashed rep) then
        List.iter
          (fun (_, (e : Mk_storage.Trecord.entry)) ->
            if
              e.status = Txn.Committed
              && not (Tid_table.mem ob.ob_seen e.txn.Txn.tid)
            then begin
              Tid_table.add ob.ob_seen e.txn.Txn.tid ();
              ob.ob_list <- (e.txn.Txn.tid, e.ts) :: ob.ob_list
            end)
          (Mk_storage.Trecord.entries (Replica.trecord rep)))
    replicas

let obligations_list ob = ob.ob_list

(* Durable device: one in-memory log + snapshot slot per (replica,
   core) — the same Walcodec bytes the cluster backend puts on disk,
   surviving the simulated fail-stop. The hooks touch no engine or
   RNG state, so a Calm run stays bit-identical to one without them. *)
let install_memlog_hooks ~obs ~cores ~replicas ~memlogs =
  Array.iteri
    (fun r rep ->
      Replica.set_durable_hook rep (function
        | Replica.Finalized { core; view } ->
            if core >= 0 && core < cores then begin
              let s = Walcodec.encode_record { Walcodec.core; view } in
              Memlog.append memlogs.(r).(core) s;
              Obs.note_wal_append obs ~bytes:(String.length s) ~synced:false
            end
        | Replica.Installed { epoch } ->
            (* The merged epoch state supersedes the log: full per-core
               snapshots cutting at the current log lengths, exactly
               what the cluster backend writes at this hook. *)
            let all_views = Replica.record_views rep in
            let all_rows = Replica.store_snapshot rep in
            Array.iteri
              (fun core m ->
                let views =
                  List.filter_map
                    (fun (c, v) -> if c = core then Some v else None)
                    all_views
                in
                let rows =
                  List.filter (fun (k, _, _, _) -> k mod cores = core) all_rows
                in
                let s =
                  Walcodec.encode_snapshot
                    {
                      Walcodec.core;
                      epoch;
                      wal_cut = Memlog.log_length m;
                      views;
                      rows;
                    }
                in
                Memlog.set_snapshot m s;
                Obs.note_snapshot obs ~bytes:(String.length s))
              memlogs.(r)))
    replicas

type raw = {
  raw_cfg : cfg;
  raw_replicas : Replica.t array;
  raw_read_committed : replica:int -> key:int -> int option;
  raw_submitted : int;
  raw_acked : int;
  raw_committed_acks : int;
  raw_aborted_acks : int;
  raw_epoch_changes : int;
  raw_view_changes : int;
  raw_duplicated : int;
  raw_delayed : int;
  raw_dropped : int;
  raw_fault_events : int;
  raw_durable : (unit, string) result;
  raw_obs : Obs.t;
}

let evaluate ?committed (raw : raw) =
  let cfg = raw.raw_cfg in
  let replicas = raw.raw_replicas in
  (* Union of committed records across replicas (every replica is
     expected up by now; tolerate a crashed one so the report can say
     *which* invariant failed rather than raising). A sharded caller
     passes the pre-merged global history instead — per-shard trecords
     hold local-key sub-transactions sharing a global tid, so a naive
     union would collapse a cross-shard transaction into one of its
     fragments — and this pass then only counts stuck records. *)
  let seen = Hashtbl.create 1024 in
  let union = ref [] in
  let stuck = ref 0 in
  Array.iter
    (fun r ->
      if not (Replica.is_crashed r) then
        List.iter
          (fun (_, (e : Mk_storage.Trecord.entry)) ->
            if Txn.is_final e.status then begin
              if
                committed = None
                && e.status = Txn.Committed
                && not (Hashtbl.mem seen e.txn.Txn.tid)
              then begin
                Hashtbl.add seen e.txn.Txn.tid ();
                union := (e.txn, e.ts) :: !union
              end
            end
            else incr stuck)
          (Mk_storage.Trecord.entries (Replica.trecord r)))
    replicas;
  let committed = match committed with Some c -> c | None -> !union in
  (* I1: every acknowledged commit forms one serializable history. *)
  let serializable = Checker.check committed in
  (* I2: all replicas are back up and agree on the final state. *)
  let available =
    match
      Array.to_list replicas
      |> List.filter_map (fun r ->
             if Replica.is_available r then None else Some (Replica.id r))
    with
    | [] -> Ok ()
    | down ->
        Error
          (Printf.sprintf "replicas not available at end: %s"
             (String.concat ", " (List.map string_of_int down)))
  in
  let agreement =
    let expected = Checker.final_state committed in
    let err = ref None in
    Array.iter
      (fun r ->
        if Replica.is_crashed r then ()
        else
          for key = 0 to cfg.keys - 1 do
            let want =
              match Hashtbl.find_opt expected key with
              | Some (v, _) -> v
              | None -> 0 (* preloaded value, never overwritten *)
            in
            match raw.raw_read_committed ~replica:(Replica.id r) ~key with
            | Some got when got = want -> ()
            | got ->
                if !err = None then
                  err :=
                    Some
                      (Printf.sprintf
                         "replica %d key %d: expected %d, found %s" (Replica.id r)
                         key want
                         (match got with
                         | Some v -> string_of_int v
                         | None -> "nothing"))
          done)
      replicas;
    match !err with None -> Ok () | Some e -> Error e
  in
  (* I3: no transaction is stuck past the end of the grace period —
     every submission was acknowledged and every trecord entry reached
     a final state (the stuck-record detector swept the stragglers). *)
  let bounded =
    if raw.raw_submitted = raw.raw_acked && !stuck = 0 then Ok ()
    else
      Error
        (Printf.sprintf "%d of %d submissions unacked, %d non-final records"
           (raw.raw_submitted - raw.raw_acked)
           raw.raw_submitted !stuck)
  in
  (* I4: commit acknowledgements and committed records tell the same
     story — an acked commit must be durable on the replicas, and a
     replica-committed transaction must have been acked to its client
     (the closed loop waits for every outcome). *)
  let acks_consistent =
    let ncommitted = List.length committed in
    if raw.raw_committed_acks = ncommitted then Ok ()
    else
      Error
        (Printf.sprintf "%d commits acked but %d committed records"
           raw.raw_committed_acks ncommitted)
  in
  {
    r_cfg = cfg;
    committed_acks = raw.raw_committed_acks;
    aborted_acks = raw.raw_aborted_acks;
    submitted = raw.raw_submitted;
    acked = raw.raw_acked;
    committed;
    stuck = !stuck;
    serializable;
    agreement;
    bounded;
    available;
    acks_consistent;
    durable = raw.raw_durable;
    epoch_changes = raw.raw_epoch_changes;
    view_changes = raw.raw_view_changes;
    duplicated = raw.raw_duplicated;
    delayed = raw.raw_delayed;
    dropped = raw.raw_dropped;
    fault_events = raw.raw_fault_events;
    obs = raw.raw_obs;
  }

(* The workload RNG is derived from the seed but independent of the
   engine's: neither nemesis draws nor network fault draws ever shift
   which keys the clients touch. *)
let workload_rng seed = Rng.create ~seed:(seed lxor 0x63616f73 (* "caos" *))

(* --- Sim backend: nemesis + Sim_system on the discrete engine. --- *)

let run_sim cfg =
  let sys_cfg =
    {
      S.default_config with
      threads = cfg.threads;
      n_clients = cfg.n_clients;
      keys = cfg.keys;
      transport = cfg.transport;
      seed = cfg.seed;
    }
  in
  let engine = Engine.create ~seed:cfg.seed () in
  let obs = Obs.create ~trace:cfg.trace ~clock:(fun () -> Engine.now engine) () in
  let sys = S.create ~obs engine sys_cfg in
  let memlogs =
    Array.init sys_cfg.S.n_replicas (fun _ ->
        Array.init cfg.threads (fun _ -> Memlog.create ()))
  in
  install_memlog_hooks ~obs ~cores:cfg.threads ~replicas:(S.replicas sys)
    ~memlogs;
  (* Nemesis: derived from the same seed, installed before anything
     runs so window bounds are absolute. *)
  let plan =
    Nemesis.plan ~seed:cfg.seed ~profile:cfg.profile ~horizon:cfg.horizon
      ~n_replicas:sys_cfg.S.n_replicas ~n_clients:cfg.n_clients
  in
  let obligations = obligations_create () in
  Nemesis.install ~engine ~net:(S.network sys) ~obs
    ~callbacks:
      {
        Nemesis.crash_replica =
          (fun ~victim ~down_for ->
            obligations_capture obligations (S.replicas sys);
            S.crash_replica ~down_for sys victim);
        crash_coordinator =
          (fun ~client ~down_for -> S.crash_coordinator sys ~client ~down_for);
      }
    plan;
  (* Recovery is detector-driven: the harness never calls
     run_epoch_change or any view-change entry point itself. *)
  S.start_detectors ~cfg:cfg.detector sys ~until:(cfg.horizon +. (cfg.grace /. 2.0)) ();
  (* Closed-loop read-modify-write clients on a hot keyspace. *)
  let rng = workload_rng cfg.seed in
  let committed_acks = ref 0 and aborted_acks = ref 0 in
  let submitted = ref 0 and acked = ref 0 in
  let rec client c =
    if Engine.now engine < cfg.horizon then begin
      incr submitted;
      let key1 = Rng.int rng cfg.keys in
      (* Distinct second key: a write-set with two writes to one key
         has no defined ordering between them (the replica's
         Thomas-rule apply keeps the first, a naive replay the last),
         so the workload never produces one. *)
      let key2 =
        let k = Rng.int rng cfg.keys in
        if k = key1 then (k + 1) mod cfg.keys else k
      in
      S.submit sys ~client:c
        {
          Intf.reads = [| key1 |];
          writes = [| (key1, Rng.int rng 1_000_000); (key2, c) |];
        }
        ~on_done:(fun ~committed ->
          incr acked;
          if committed then incr committed_acks else incr aborted_acks;
          client c)
    end
  in
  for c = 0 to cfg.n_clients - 1 do
    client c
  done;
  Engine.run ~until:(cfg.horizon +. cfg.grace) ~max_events:100_000_000 engine;
  let durable =
    check_durable ~cores:cfg.threads ~replicas:(S.replicas sys)
      ~sources:(fun r ->
        Array.to_list
          (Array.map
             (fun m ->
               { Recover.snap = Memlog.snapshot m; log = Memlog.log_contents m })
             memlogs.(r)))
      ~obligations:(obligations_list obligations)
      ~note:(fun (p : Recover.parsed) ->
        Obs.note_wal_replayed obs ~snapshots:p.Recover.snapshots_used
          ~records:p.Recover.replayed ~errors:p.Recover.decode_errors)
  in
  evaluate
    {
      raw_cfg = cfg;
      raw_replicas = S.replicas sys;
      raw_read_committed =
        (fun ~replica ~key -> S.read_committed sys ~replica ~key);
      raw_submitted = !submitted;
      raw_acked = !acked;
      raw_committed_acks = !committed_acks;
      raw_aborted_acks = !aborted_acks;
      raw_epoch_changes = Obs.counter_value obs "recovery.epoch_changes";
      raw_view_changes = Obs.counter_value obs "recovery.view_changes";
      raw_duplicated = Network.messages_duplicated (S.network sys);
      raw_delayed = Network.messages_delayed (S.network sys);
      raw_dropped = Network.messages_dropped (S.network sys);
      raw_fault_events = Obs.counter_value obs "fault.windows";
      raw_durable = durable;
      raw_obs = obs;
    }

(* --- Live backend: the same plan and invariants on real domains. --- *)

let run_live cfg =
  let horizon_us = cfg.horizon in
  let n_replicas = Runtime.default_config.Runtime.n_replicas in
  let plan =
    Nemesis.plan ~seed:cfg.seed ~profile:cfg.profile ~horizon:horizon_us
      ~n_replicas ~n_clients:cfg.n_clients
  in
  (* Real per-(replica, core) WAL + snapshot files in a scratch data
     dir: the durable invariant replays what actually hit the file
     system, then the dir is removed. *)
  let data_dir =
    Runtime.fresh_data_dir ~tag:(Printf.sprintf "chaos-seed%d" cfg.seed)
  in
  let rt_cfg =
    {
      Runtime.default_config with
      Runtime.server_domains = cfg.threads;
      clients = cfg.n_clients;
      keys = cfg.keys;
      duration = Some (horizon_us /. 1e6);
      seed = cfg.seed;
      (* Chaos-scale retransmission: drops must be retried well inside
         the horizon, not after the fault-free safety-net timeout. *)
      rto_us = horizon_us /. 50.0;
      chaos =
        Some
          {
            Runtime.plan;
            (* The detector field of [cfg] is sim-scaled; live runs
               always derive wall-scale timeouts from their horizon. *)
            detector = Runtime.chaos_detector_cfg ~horizon_us;
            horizon_us;
            settle_us = cfg.grace;
          };
      durable = Some { Runtime.dir = data_dir; policy = Mk_durable.Wal.Every 8 };
    }
  in
  let r = Runtime.run rt_cfg in
  let obs = Obs.create ~clock:(fun () -> 0.0) () in
  Obs.note_wal_appends obs ~appends:r.Runtime.wal_appends
    ~bytes:r.Runtime.wal_bytes ~fsyncs:r.Runtime.wal_fsyncs;
  Obs.note_snapshots obs ~count:r.Runtime.snapshots
    ~bytes:r.Runtime.snapshot_bytes;
  (* No crash-instant obligations here: capturing them would race the
     server domains mid-run. The per-replica completeness check plus
     the acks invariant still pin the headline guarantee (see
     [check_durable]); the deterministic sim backend covers the crash
     instant exactly. *)
  let durable =
    check_durable ~cores:cfg.threads ~replicas:r.Runtime.replicas
      ~sources:(fun replica ->
        Runtime.read_durable_sources ~dir:data_dir ~replica ~cores:cfg.threads)
      ~obligations:[]
      ~note:(fun (p : Recover.parsed) ->
        Obs.note_wal_replayed obs ~snapshots:p.Recover.snapshots_used
          ~records:p.Recover.replayed ~errors:p.Recover.decode_errors)
  in
  Runtime.remove_data_dir ~dir:data_dir
    ~n_replicas:(Array.length r.Runtime.replicas) ~cores:cfg.threads;
  evaluate
    {
      raw_cfg = cfg;
      raw_replicas = r.Runtime.replicas;
      raw_read_committed =
        (fun ~replica ~key ->
          match
            Mk_storage.Vstore.find
              (Replica.vstore r.Runtime.replicas.(replica))
              key
          with
          | None -> None
          | Some e -> Some (fst (Mk_storage.Vstore.read_versioned e)));
      raw_submitted = r.Runtime.submitted;
      raw_acked = r.Runtime.acked;
      raw_committed_acks = r.Runtime.committed_count;
      raw_aborted_acks = r.Runtime.aborted;
      raw_epoch_changes = r.Runtime.epoch_changes;
      raw_view_changes = r.Runtime.view_changes;
      raw_duplicated = r.Runtime.link_duplicated;
      raw_delayed = r.Runtime.link_delayed;
      raw_dropped = r.Runtime.link_dropped;
      raw_fault_events = r.Runtime.fault_events;
      raw_durable = durable;
      raw_obs = obs;
    }

let run cfg = match cfg.backend with Sim -> run_sim cfg | Live -> run_live cfg

let pp_invariant ppf (name, r) =
  match r with
  | Ok () -> Format.fprintf ppf "  %-14s ok@." name
  | Error e -> Format.fprintf ppf "  %-14s FAILED: %s@." name e

let pp_report ppf r =
  Format.fprintf ppf "seed %d, profile %s%s: %s@." r.r_cfg.seed
    (Nemesis.to_string r.r_cfg.profile)
    (match r.r_cfg.backend with Sim -> "" | Live -> " (live)")
    (if passed r then "PASS" else "FAIL");
  Format.fprintf ppf
    "  %d commits, %d aborts (%d/%d acked); %d dup, %d delayed, %d dropped; %d \
     epoch changes, %d view changes, %d fault events@."
    r.committed_acks r.aborted_acks r.acked r.submitted r.duplicated r.delayed
    r.dropped r.epoch_changes r.view_changes r.fault_events;
  pp_invariant ppf
    ( "serializable",
      Result.map_error
        (fun v -> Format.asprintf "%a" Checker.pp_violation v)
        r.serializable );
  pp_invariant ppf ("agreement", r.agreement);
  pp_invariant ppf ("bounded", r.bounded);
  pp_invariant ppf ("available", r.available);
  pp_invariant ppf ("acks", r.acks_consistent);
  pp_invariant ppf ("durable", r.durable)

let report_json r =
  Printf.sprintf
    "{\"seed\": %d, \"profile\": \"%s\", \"backend\": \"%s\", \"pass\": %b, \
     \"committed_acks\": %d, \"aborted_acks\": %d, \"submitted\": %d, \
     \"acked\": %d, \"stuck\": %d, \"epoch_changes\": %d, \"view_changes\": \
     %d, \"duplicated\": %d, \"delayed\": %d, \"dropped\": %d, \
     \"fault_events\": %d, \"durable\": %b}"
    r.r_cfg.seed
    (Nemesis.to_string r.r_cfg.profile)
    (match r.r_cfg.backend with Sim -> "sim" | Live -> "live")
    (passed r) r.committed_acks r.aborted_acks r.submitted r.acked r.stuck
    r.epoch_changes r.view_changes r.duplicated r.delayed r.dropped
    r.fault_events
    (Result.is_ok r.durable)

let matrix ~seeds ~profiles ~cfg =
  List.concat_map
    (fun profile ->
      List.map (fun seed -> run { cfg with seed; profile }) seeds)
    profiles
