(** Closed-loop benchmark driver (§6.2 methodology).

    [n_clients] closed-loop clients each run transactions
    back-to-back: draw a request from the workload, submit it, and on
    abort retry the same request (with fresh reads and a fresh
    timestamp) until it commits, then move on. After a warm-up period,
    commits and aborts completing within the measurement window are
    counted; goodput is committed transactions per second and the
    abort rate is aborts / (commits + aborts), exactly the paper's
    metrics. *)

type result = {
  committed : int;  (** Commits inside the measurement window. *)
  aborted : int;  (** Aborted attempts inside the window. *)
  goodput : float;  (** Committed transactions per simulated second. *)
  abort_rate : float;
  mean_latency : float;  (** Mean commit latency, µs (attempt chains). *)
  p50_latency : float;
  p99_latency : float;
  fast_fraction : float;  (** Fraction of decisions on the fast path. *)
  retransmits : int;
  busy : float;  (** Mean server-core utilization over the run. *)
  phases : (Mk_obs.Span.kind * Mk_obs.Registry.histogram_summary) list;
      (** Per-phase latency breakdown over the measurement window, one
          entry per {!Mk_obs.Span.kind} (empty phases have
          [count = 0]). *)
}

val run :
  engine:Mk_sim.Engine.t ->
  system:Mk_model.System_intf.packed ->
  workload:Mk_workload.Workload.t ->
  n_clients:int ->
  warmup:float ->
  measure:float ->
  busy:(unit -> float) ->
  result
(** Drives the simulation to [warmup +. measure] µs and reports. The
    engine must be freshly created together with the system. *)

val pp_result : Format.formatter -> result -> unit
(** One summary line, followed — when any phase was recorded — by the
    per-phase n/mean/p50/p99 table. *)

val pp_phases :
  Format.formatter ->
  (Mk_obs.Span.kind * Mk_obs.Registry.histogram_summary) list ->
  unit

val peak :
  make:
    (n_clients:int ->
    Mk_sim.Engine.t * Mk_model.System_intf.packed * (unit -> float)) ->
  workload:(unit -> Mk_workload.Workload.t) ->
  ladder:int list ->
  warmup:float ->
  measure:float ->
  int * result
(** Peak-throughput search, the paper's measurement discipline: run
    the experiment once per client count in [ladder] (each run gets a
    fresh engine/system/workload from the factories) and return the
    client count and result with the highest goodput. Closed-loop
    systems past saturation lose goodput to queueing, so a simple max
    over an exponential ladder recovers the peak. *)
