(* Multi-shard sim chaos (DESIGN.md §13): the Jepsen-style runner of
   Mk_harness.Chaos over a Sharded_sim deployment — S replicated
   groups on one engine, cross-shard 2PC from the shared driver, a
   nemesis crashing group 0's replicas while the other shards keep
   committing. Lives here rather than in Mk_harness because the
   harness cannot depend on Mk_systems (it is a dependency of it);
   the verdicts come from the same shared evaluator. *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster
module S = Mk_meerkat.Sim_system
module Nemesis = Mk_fault.Nemesis
module Network = Mk_net.Network
module Obs = Mk_obs.Obs
module Rng = Mk_util.Rng
module Memlog = Mk_durable.Memlog
module Recover = Mk_durable.Recover
module Chaos = Mk_harness.Chaos

let run ~shards (cfg : Chaos.cfg) =
  if shards < 1 then invalid_arg "Shard_chaos.run: shards must be >= 1";
  (match cfg.Chaos.backend with
  | Chaos.Sim -> ()
  | Chaos.Live ->
      invalid_arg
        "Shard_chaos.run: sim backend only (sharded crash recovery on real \
         processes is the cluster backend's --shards/--kill-node path)");
  let sys_cfg =
    {
      Cluster.default_config with
      threads = cfg.Chaos.threads;
      n_clients = cfg.Chaos.n_clients;
      keys = cfg.Chaos.keys;
      transport = cfg.Chaos.transport;
      seed = cfg.Chaos.seed;
    }
  in
  let engine = Engine.create ~seed:cfg.Chaos.seed () in
  let obs =
    Obs.create ~trace:cfg.Chaos.trace ~clock:(fun () -> Engine.now engine) ()
  in
  let sys = Sharded_sim.create ~obs engine ~shards sys_cfg in
  let n_replicas = sys_cfg.Cluster.n_replicas in
  let group s = Sharded_sim.group sys s in
  (* One in-memory durable device per (shard, replica, core), armed
     with the same hooks as the single-group sim backend. *)
  let memlogs =
    Array.init shards (fun _ ->
        Array.init n_replicas (fun _ ->
            Array.init cfg.Chaos.threads (fun _ -> Memlog.create ())))
  in
  for s = 0 to shards - 1 do
    Chaos.install_memlog_hooks ~obs ~cores:cfg.Chaos.threads
      ~replicas:(S.replicas (group s)) ~memlogs:memlogs.(s)
  done;
  (* The nemesis targets shard 0: its replicas crash (and its network
     degrades, for the partition profiles) while every other group
     runs fault-free — except through the 2PC conjunction, which makes
     cross-shard transactions feel shard 0's faults. Coordinator
     crashes freeze the client across all groups: the coordinator is
     one client-side process, so its per-shard attempts die together. *)
  let plan =
    Nemesis.plan ~seed:cfg.Chaos.seed ~profile:cfg.Chaos.profile
      ~horizon:cfg.Chaos.horizon ~n_replicas ~n_clients:cfg.Chaos.n_clients
  in
  let obligations = Array.init shards (fun _ -> Chaos.obligations_create ()) in
  let capture_all () =
    for s = 0 to shards - 1 do
      Chaos.obligations_capture obligations.(s) (S.replicas (group s))
    done
  in
  Nemesis.install ~engine ~net:(S.network (group 0)) ~obs
    ~callbacks:
      {
        Nemesis.crash_replica =
          (fun ~victim ~down_for ->
            capture_all ();
            S.crash_replica ~down_for (group 0) victim);
        crash_coordinator =
          (fun ~client ~down_for ->
            for s = 0 to shards - 1 do
              S.crash_coordinator (group s) ~client ~down_for
            done);
      }
    plan;
  (* Recovery stays detector-driven, one detector set per group. *)
  let until = cfg.Chaos.horizon +. (cfg.Chaos.grace /. 2.0) in
  for s = 0 to shards - 1 do
    S.start_detectors ~cfg:cfg.Chaos.detector (group s) ~until ()
  done;
  (* Closed-loop read-modify-write clients over the *global* keyspace:
     with Mod placement, two uniform keys land on different shards
     (shards-1)/shards of the time, so most transactions exercise the
     cross-shard 2PC. *)
  let rng = Chaos.workload_rng cfg.Chaos.seed in
  let committed_acks = ref 0 and aborted_acks = ref 0 in
  let submitted = ref 0 and acked = ref 0 in
  let rec client c =
    if Engine.now engine < cfg.Chaos.horizon then begin
      incr submitted;
      let key1 = Rng.int rng cfg.Chaos.keys in
      (* Distinct second key, as in the single-group runner: a
         write-set writing one key twice has no defined ordering. *)
      let key2 =
        let k = Rng.int rng cfg.Chaos.keys in
        if k = key1 then (k + 1) mod cfg.Chaos.keys else k
      in
      Sharded_sim.submit sys ~client:c
        {
          Intf.reads = [| key1 |];
          writes = [| (key1, Rng.int rng 1_000_000); (key2, c) |];
        }
        ~on_done:(fun ~committed ->
          incr acked;
          if committed then incr committed_acks else incr aborted_acks;
          client c)
    end
  in
  for c = 0 to cfg.Chaos.n_clients - 1 do
    client c
  done;
  Engine.run
    ~until:(cfg.Chaos.horizon +. cfg.Chaos.grace)
    ~max_events:100_000_000 engine;
  (* The durable verdict is per group — a cross-shard tid's obligation
     is held against the replays of the shard whose trecord witnessed
     it, which is the group that logged the sub-transaction. *)
  let durable =
    let rec per_shard s =
      if s >= shards then Ok ()
      else
        match
          Chaos.check_durable ~cores:cfg.Chaos.threads
            ~replicas:(S.replicas (group s))
            ~sources:(fun r ->
              Array.to_list
                (Array.map
                   (fun m ->
                     {
                       Recover.snap = Memlog.snapshot m;
                       log = Memlog.log_contents m;
                     })
                   memlogs.(s).(r)))
            ~obligations:(Chaos.obligations_list obligations.(s))
            ~note:(fun (p : Recover.parsed) ->
              Obs.note_wal_replayed obs ~snapshots:p.Recover.snapshots_used
                ~records:p.Recover.replayed ~errors:p.Recover.decode_errors)
        with
        | Ok () -> per_shard (s + 1)
        | Error e -> Error (Printf.sprintf "shard %d: %s" s e)
    in
    per_shard 0
  in
  let all_replicas =
    Array.concat (List.init shards (fun s -> Array.copy (S.replicas (group s))))
  in
  (* The committed history must be the *merged* server-side witness:
     per-shard trecords hold local-key sub-transactions sharing one
     global tid, which the shared evaluator's naive union would
     collapse into a single fragment. *)
  Chaos.evaluate
    ~committed:(Sharded_sim.trecord_history sys)
    {
      Chaos.raw_cfg = cfg;
      raw_replicas = all_replicas;
      raw_read_committed =
        (fun ~replica ~key -> Sharded_sim.read_committed sys ~replica ~key);
      raw_submitted = !submitted;
      raw_acked = !acked;
      raw_committed_acks = !committed_acks;
      raw_aborted_acks = !aborted_acks;
      raw_epoch_changes = Obs.counter_value obs "recovery.epoch_changes";
      raw_view_changes = Obs.counter_value obs "recovery.view_changes";
      raw_duplicated = Network.messages_duplicated (S.network (group 0));
      raw_delayed = Network.messages_delayed (S.network (group 0));
      raw_dropped = Network.messages_dropped (S.network (group 0));
      raw_fault_events = Obs.counter_value obs "fault.windows";
      raw_durable = durable;
      raw_obs = obs;
    }

let matrix ~shards ~seeds ~profiles ~cfg =
  List.concat_map
    (fun profile ->
      List.map (fun seed -> run ~shards { cfg with Chaos.seed; profile }) seeds)
    profiles
