(** Chaos over the multi-shard sim deployment (DESIGN.md §13): the
    same seeded nemesis, closed-loop clients and six end-of-run
    invariants as {!Mk_harness.Chaos}, driven over {!Sharded_sim} — S
    replicated groups on one discrete-event engine with client-side
    cross-shard 2PC.

    The nemesis targets {e shard 0}: its replicas crash fail-stop (and
    its network degrades, for the partition profiles) while every
    other group runs fault-free — but cross-shard transactions touch
    the crashed group through the 2PC conjunction, so the run
    exercises "one shard's replica dies while other shards keep
    committing". Each group has its own failure detectors and its own
    per-(replica, core) in-memory durable devices; the serializability
    and agreement verdicts are computed against the {e merged}
    cross-shard history ({!Sharded_sim.trecord_history}), so a
    cross-shard transaction half-committed between groups would fail
    the checker. Verdicts come from the shared
    {!Mk_harness.Chaos.evaluate}, so a sharded run passes or fails for
    the same reasons as a single-group one.

    This module lives in [Mk_systems] rather than [Mk_harness] only
    because of layering: the harness is a dependency of this library
    and cannot see {!Sharded_sim}. *)

val run : shards:int -> Mk_harness.Chaos.cfg -> Mk_harness.Chaos.report
(** [run ~shards cfg] — one chaos run over [shards] groups; [cfg.keys]
    is the global keyspace. Sim backend only: raises [Invalid_argument]
    on [Live] (real-process sharded crashes are the cluster backend's
    [--shards]/[--kill-node] path). [shards = 1] degenerates to the
    single-group run modulo the driver layer. *)

val matrix :
  shards:int ->
  seeds:int list ->
  profiles:Mk_fault.Nemesis.profile list ->
  cfg:Mk_harness.Chaos.cfg ->
  Mk_harness.Chaos.report list
(** One {!run} per (profile, seed) pair, sharing everything else from
    [cfg]. *)
