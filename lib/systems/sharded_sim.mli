(** The simulated multi-shard Meerkat deployment (DESIGN.md §13,
    paper §5.2.4): S independent {!Mk_meerkat.Sim_system} groups
    behind a {!Mk_shard.Router}, with cross-shard transactions driven
    by the shared {!Mk_shard.Driver} translation of {!Mk_shard.Xcoord}.

    Each group is a full replicated Meerkat deployment on the same
    discrete-event engine; the observability handle is shared, so
    phase histograms and counters aggregate across shards. The global
    outcome of a cross-shard transaction is the conjunction of the
    involved shards' validation decisions — their existing
    validate/accept votes, composable because timestamps are globally
    unique (the zero-coordination argument, §5.2.4). *)

type t

val create :
  ?obs:Mk_obs.Obs.t ->
  ?policy:Mk_shard.Router.policy ->
  Mk_sim.Engine.t ->
  shards:int ->
  Mk_cluster.Cluster.config ->
  t
(** [create engine ~shards cfg] builds [shards] independent groups.
    [cfg.keys] is the {e global} keyspace size; each group preloads
    the dense local keyspace the router assigns it (seeds are
    decorrelated per shard). Policy defaults to {!Mk_shard.Router.Mod}
    — what the pre-router sim sketch did. *)

val shards : t -> int
val router : t -> Mk_shard.Router.t
val group : t -> int -> Mk_meerkat.Sim_system.t
val name : t -> string
val threads : t -> int

val submit :
  t ->
  client:int ->
  Mk_model.System_intf.txn_request ->
  on_done:(committed:bool -> unit) ->
  unit
(** One transaction over global keys; single-shard key sets take the
    ordinary one-group path (one Prepare, one Finalize), multi-shard
    sets run the client-side 2PC. *)

val submit_interactive :
  t ->
  client:int ->
  reads:int array ->
  compute:(int array -> (int * int) array) ->
  on_done:(committed:bool -> unit) ->
  unit
(** Cross-shard interactive transaction: writes are computed from the
    values the execute phase read; the conjunction of per-shard
    validations guarantees atomicity. *)

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val server_busy_fraction : t -> float

val read_committed : t -> replica:int -> key:int -> int option
(** Read a global key's committed value at the given replica of its
    owning shard. *)

val history : t -> (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list
(** The driver-acknowledged committed transactions as one global
    history (global keys) — feed to {!Mk_harness.Checker.check}. *)

val trecord_history : t -> (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list
(** The union of committed trecord entries across every shard's
    replicas, globalized and merged — the server-side witness of the
    same history (what a chaos run checks, since acks can be lost). *)
