(** Uniform construction of the four evaluation prototypes (Table 1).

    | System     | Cross-core coord. | Cross-replica coord. |
    |------------|-------------------|----------------------|
    | KuaFu++    | yes               | yes                  |
    | TAPIR      | yes               | no                   |
    | Meerkat-PB | no                | yes                  |
    | Meerkat    | no                | no                   | *)

type kind = Meerkat | Meerkat_pb | Tapir | Kuafupp

val all : kind list
(** In the paper's Fig. 4 legend order: Meerkat, Meerkat-PB, TAPIR,
    KuaFu++. *)

val name : kind -> string

val coordination : kind -> bool * bool
(** [(cross_core, cross_replica)] — Table 1. *)

val build :
  ?obs:Mk_obs.Obs.t ->
  kind ->
  Mk_sim.Engine.t ->
  Mk_cluster.Cluster.config ->
  Mk_model.System_intf.packed * (unit -> float)
(** Construct a system and its busy-fraction probe on a fresh engine.
    [?obs] injects an observability handle (e.g. with tracing on). *)

val peak_ladder : threads:int -> int list
(** Client-count ladder used for peak-throughput search, scaled to the
    server thread count. *)

val sweep :
  kind ->
  config:Mk_cluster.Cluster.config ->
  workload:(rng:Mk_util.Rng.t -> keys:int -> Mk_workload.Workload.t) ->
  warmup:float ->
  measure:float ->
  int * Mk_harness.Runner.result
(** Peak-throughput measurement of one system under one workload:
    builds fresh engine+system per ladder point (seeded from
    [config.seed]) and returns the best (clients, result). *)
