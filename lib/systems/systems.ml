module Intf = Mk_model.System_intf
module Cluster = Mk_cluster.Cluster

type kind = Meerkat | Meerkat_pb | Tapir | Kuafupp

let all = [ Meerkat; Meerkat_pb; Tapir; Kuafupp ]

let name = function
  | Meerkat -> "MEERKAT"
  | Meerkat_pb -> "MEERKAT-PB"
  | Tapir -> "TAPIR"
  | Kuafupp -> "KuaFu++"

let coordination = function
  | Meerkat -> (false, false)
  | Meerkat_pb -> (false, true)
  | Tapir -> (true, false)
  | Kuafupp -> (true, true)

let build ?obs kind engine cfg =
  match kind with
  | Meerkat ->
      let module S = Mk_meerkat.Sim_system in
      let s = S.create ?obs engine cfg in
      ( Intf.Packed
          ( (module struct
              type t = S.t

              let name = S.name
              let threads = S.threads
              let submit = S.submit
              let obs = S.obs
            end),
            s ),
        fun () -> S.server_busy_fraction s )
  | Meerkat_pb ->
      let module S = Mk_baselines.Meerkat_pb in
      let s = S.create ?obs engine cfg in
      ( Intf.Packed
          ( (module struct
              type t = S.t

              let name = S.name
              let threads = S.threads
              let submit = S.submit
              let obs = S.obs
            end),
            s ),
        fun () -> S.server_busy_fraction s )
  | Tapir ->
      let module S = Mk_baselines.Tapir in
      let s = S.create ?obs engine cfg in
      ( Intf.Packed
          ( (module struct
              type t = S.t

              let name = S.name
              let threads = S.threads
              let submit = S.submit
              let obs = S.obs
            end),
            s ),
        fun () -> S.server_busy_fraction s )
  | Kuafupp ->
      let module S = Mk_baselines.Kuafupp in
      let s = S.create ?obs engine cfg in
      ( Intf.Packed
          ( (module struct
              type t = S.t

              let name = S.name
              let threads = S.threads
              let submit = S.submit
              let obs = S.obs
            end),
            s ),
        fun () -> S.server_busy_fraction s )

let peak_ladder ~threads = List.map (fun m -> m * threads) [ 2; 6; 16 ]

let sweep kind ~config ~workload ~warmup ~measure =
  let make ~n_clients =
    let engine = Mk_sim.Engine.create ~seed:config.Cluster.seed () in
    let cfg = { config with Cluster.n_clients } in
    let packed, busy = build kind engine cfg in
    (engine, packed, busy)
  in
  let mk_workload () =
    workload
      ~rng:(Mk_util.Rng.create ~seed:(config.Cluster.seed + 7919))
      ~keys:config.Cluster.keys
  in
  Mk_harness.Runner.peak ~make ~workload:mk_workload
    ~ladder:(peak_ladder ~threads:config.Cluster.threads)
    ~warmup ~measure
