(* Simulated multi-shard deployment (DESIGN.md §13): groups + router
   via Mk_cluster.Groups, cross-shard 2PC via the shared
   Mk_shard.Driver — the absorption of the old sim-only
   lib/meerkat/sharded.ml sketch. *)

module Engine = Mk_sim.Engine
module Intf = Mk_model.System_intf
module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Trecord = Mk_storage.Trecord
module Cluster = Mk_cluster.Cluster
module Groups = Mk_cluster.Groups
module Router = Mk_shard.Router
module History = Mk_shard.History
module Sim_system = Mk_meerkat.Sim_system
module Replica = Mk_meerkat.Replica
module Obs = Mk_obs.Obs
module Registry = Mk_obs.Registry

module Driver = Mk_shard.Driver.Make (struct
  type t = Sim_system.t

  let execute_read = Sim_system.execute_read
  let fresh_txn_stamp = Sim_system.fresh_txn_stamp
  let prepare_txn = Sim_system.prepare_txn
  let finalize_txn = Sim_system.finalize_txn
end)

type t = {
  engine : Engine.t;
  obs : Obs.t;
      (** Shared with every group, so the per-phase histograms and
          retransmit counts aggregate across shards. *)
  groups : Sim_system.t Groups.t;
  driver : Driver.t;
}

let create ?obs ?policy engine ~shards cfg =
  if shards < 1 then invalid_arg "Sharded_sim.create: shards must be >= 1";
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~clock:(fun () -> Engine.now engine) ()
  in
  let groups =
    Groups.make ?policy ~shards cfg (fun ~shard:_ cfg ->
        Sim_system.create ~obs engine cfg)
  in
  {
    engine;
    obs;
    groups;
    driver = Driver.create ~router:groups.Groups.router ~groups:groups.Groups.groups;
  }

let shards t = Groups.shards t.groups
let router t = t.groups.Groups.router
let group t s = Groups.group t.groups s
let name t = Printf.sprintf "MEERKAT-%dS" (shards t)
let threads t = Sim_system.threads (group t 0)
let obs t = t.obs
let counters t : Intf.counters = Intf.counters_of_obs t.obs

(* The global outcome is a conjunction of per-shard decisions, so it
   has no fast/slow classification of its own: only committed/aborted
   move here (the per-shard sub-attempts run with
   [count_stats:false]). *)
let note_outcome t ~committed =
  Registry.incr
    (Registry.counter (Obs.registry t.obs)
       (if committed then "txn.committed" else "txn.aborted"))

let submit_gen t ~client ~reads ~mk_writes ~on_done =
  let exec_started = Engine.now t.engine in
  let nreads = Array.length reads in
  Driver.submit t.driver ~client ~reads
    ~writes:(fun values ->
      if nreads > 0 then
        Obs.span t.obs Mk_obs.Span.Execute ~tid:client ~start:exec_started ();
      mk_writes values)
    ~on_done:(fun ~committed ->
      note_outcome t ~committed;
      on_done ~committed)

let submit t ~client (req : Intf.txn_request) ~on_done =
  submit_gen t ~client ~reads:req.reads ~mk_writes:(fun _ -> req.writes) ~on_done

let submit_interactive t ~client ~reads ~compute ~on_done =
  submit_gen t ~client ~reads ~mk_writes:compute ~on_done

let server_busy_fraction t =
  Groups.fold (fun acc g -> acc +. Sim_system.server_busy_fraction g) 0.0 t.groups
  /. float_of_int (shards t)

let read_committed t ~replica ~key =
  let r = router t in
  Sim_system.read_committed
    (group t (Router.shard_of_key r key))
    ~replica ~key:(Router.local_key r key)

let history t = Driver.history t.driver

(* Union of committed trecord entries across a shard's replicas,
   deduplicated by tid: every replica of a group stores the same
   (txn, ts) for a committed record, acked or not. *)
let shard_trecord_commits g =
  let table = Hashtbl.create 256 in
  Array.iter
    (fun r ->
      List.iter
        (fun (_, (e : Trecord.entry)) ->
          if e.Trecord.status = Txn.Committed then
            Hashtbl.replace table e.Trecord.txn.Txn.tid (e.Trecord.txn, e.Trecord.ts))
        (Trecord.entries (Replica.trecord r)))
    (Sim_system.replicas g);
  Hashtbl.fold (fun _ pair acc -> pair :: acc) table []

let trecord_history t =
  History.merge ~router:(router t)
    (List.init (shards t) (fun s -> (s, shard_trecord_commits (group t s))))
