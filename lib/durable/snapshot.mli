(** Atomic snapshot file I/O: tmp-write, fsync, rename — the rename
    is the commit point, so recovery sees either the old snapshot or
    the new one, never a torn mix. Content is an opaque
    {!Walcodec.encode_snapshot} frame. *)

val write : path:string -> string -> unit

val read : path:string -> string option
(** Total: missing, unreadable, or empty means [None] (recovery then
    replays the full log). *)
