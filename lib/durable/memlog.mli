(** In-memory durable device (one per replica core) for the
    deterministic sim backend: the same {!Walcodec} bytes as the
    on-disk files, surviving a simulated [Replica.crash] instead of a
    SIGKILL. No randomness, no clock, no I/O — golden suites stay
    bit-identical. *)

type t

val create : unit -> t
val append : t -> string -> unit

val log_contents : t -> string
(** Feed to {!Walcodec.read_records}. *)

val log_length : t -> int
(** The [wal_cut] a snapshot taken now should carry. *)

val set_snapshot : t -> string -> unit
val snapshot : t -> string option
val reset : t -> unit
