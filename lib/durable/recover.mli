(** Crash-reboot recovery: snapshot + log-suffix replay.

    {!parse} is the total decoding half (lint rule Z7: a corrupt data
    directory degrades — longest valid prefix, skipped snapshot —
    never throws); {!apply} is the thin store-mutation half delegating
    to {!Mk_meerkat.Replica.restore}. Replay is idempotent: parsing
    the same images twice yields the same {!parsed}, and applying it
    twice is a no-op thanks to the Thomas write rule. *)

type source = { snap : string option; log : string }
(** One core's raw images: the snapshot file contents (if any) and
    the whole log file ([""] when absent). *)

type parsed = {
  epoch : int;  (** Highest installed epoch across snapshots. *)
  records : (int * Mk_meerkat.Replica.record_view) list;
      (** Merged (core, view) pairs: newest status per (core, tid),
          final statuses never regressed. *)
  rows :
    (int * int * Mk_clock.Timestamp.t * Mk_clock.Timestamp.t) list;
      (** Merged vstore rows, one per key (newest write wins). *)
  replayed : int;  (** Log records replayed past the snapshot cuts. *)
  snapshots_used : int;
  decode_errors : int;
      (** Torn tails, CRC mismatches, misfiled or over-[cores]
          images — everything recovery had to skip. *)
}

val empty : parsed

val parse : cores:int -> source list -> parsed
(** Element [i] of the list is core [i]'s images; entries at or past
    [cores] are counted as decode errors and skipped (they cannot map
    to a trecord partition). Total. *)

val apply : Mk_meerkat.Replica.t -> parsed -> unit
(** Install the parsed state via {!Mk_meerkat.Replica.restore}; the
    caller decides pause/recovery flags around it. *)
