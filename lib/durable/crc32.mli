(** CRC-32 (IEEE 802.3, reflected — the zlib/PNG polynomial) over a
    whole string. Pure and total; the check value of ["123456789"] is
    [0xCBF43926]. Frames every WAL record and snapshot file
    ({!Walcodec}) so a torn or bit-flipped tail is detected, never
    replayed. *)

val digest : string -> int
(** In [\[0, 0xffffffff\]]. *)
