(* On-disk formats for the durable layer, built from the same
   primitives as the cluster's wire frames so a record view is the
   same bytes on disk as inside an [Epoch_records] datagram.

   A WAL entry is one CRC frame:

     [u32 crc-of-payload][u32 len][len payload bytes]

   with payload [i64 core][record_view]. A snapshot file is a single
   frame of the same shape whose payload is
   [i64 core][i64 epoch][i64 wal_cut][record_view list][store_row list].

   Everything here is pure (rule Z6) and the readers are total (rule
   Z7): a torn tail, a flipped bit, or outright garbage yields the
   longest valid prefix (log) or [None] (snapshot) — never an
   exception. Torn-tail tolerance is what makes the crash model work:
   a SIGKILL mid-append loses at most the unsynced suffix, and replay
   stops cleanly at the first frame whose CRC does not match. *)

module Wire = Mk_wire.Wire
module Codec = Mk_wire.Codec
module Timestamp = Mk_clock.Timestamp
module Replica = Mk_meerkat.Replica
open Wire

type record = { core : int; view : Replica.record_view }

(* Frame a payload: crc first so a torn write that only got the
   header out still fails the checksum (the length prefix alone would
   happily describe the missing bytes). *)
let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  w_u32 b (Crc32.digest payload);
  w_string b payload;
  Buffer.contents b

let encode_record { core; view } =
  let p = Buffer.create 96 in
  w_i64 p core;
  Codec.w_record_view p view;
  frame (Buffer.contents p)

(* One frame off the front of [s] at [pos]: the checksummed payload
   and the total framed size, or [Error] on a torn/corrupt tail. *)
let read_frame s ~pos =
  let c = cursor ~pos s in
  let* crc = r_u32 c in
  let* payload = r_string c in
  if Crc32.digest payload <> crc then Error (Malformed "crc mismatch")
  else Ok (payload, 8 + String.length payload)

let parse_record payload =
  let c = cursor payload in
  let* core = r_i64 c in
  let* view = Codec.r_record_view c in
  if core < 0 then Error (Malformed "negative core")
  else if remaining c > 0 then Error (Trailing (remaining c))
  else Ok { core; view }

type replay = { records : record list; valid_bytes : int; decode_errors : int }

let read_records ?(from = 0) s =
  let n = String.length s in
  if from < 0 || from > n then
    (* A snapshot token pointing outside the log it cuts: the log was
       lost or truncated after the snapshot was written. The snapshot
       itself is still good; there is just no suffix to replay. *)
    { records = []; valid_bytes = 0; decode_errors = 1 }
  else begin
    let rec go acc pos =
      if pos >= n then { records = List.rev acc; valid_bytes = pos; decode_errors = 0 }
      else
        match read_frame s ~pos with
        | Error _ ->
            (* Longest valid prefix: everything before [pos] replays,
               the torn or corrupt tail is dropped. *)
            { records = List.rev acc; valid_bytes = pos; decode_errors = 1 }
        | Ok (payload, sz) -> (
            match parse_record payload with
            | Error _ ->
                { records = List.rev acc; valid_bytes = pos; decode_errors = 1 }
            | Ok r -> go (r :: acc) (pos + sz))
    in
    go [] from
  end

type snapshot = {
  core : int;
  epoch : int;
  wal_cut : int;
  views : Replica.record_view list;
  rows : (int * int * Timestamp.t * Timestamp.t) list;
}

let encode_snapshot { core; epoch; wal_cut; views; rows } =
  let p = Buffer.create 256 in
  w_i64 p core;
  w_i64 p epoch;
  w_i64 p wal_cut;
  w_list Codec.w_record_view p views;
  w_list Codec.w_store_row p
    (List.map
       (fun (key, value, wts, rts) -> { Codec.key; value; wts; rts })
       rows);
  frame (Buffer.contents p)

let parse_snapshot payload =
  let c = cursor payload in
  let* core = r_i64 c in
  let* epoch = r_i64 c in
  let* wal_cut = r_i64 c in
  let* views = r_list ~elt_min:Codec.record_view_min Codec.r_record_view c in
  let* raw_rows = r_list ~elt_min:Codec.store_row_bytes Codec.r_store_row c in
  if core < 0 || epoch < 0 || wal_cut < 0 then
    Error (Malformed "negative snapshot token")
  else if remaining c > 0 then Error (Trailing (remaining c))
  else
    Ok
      {
        core;
        epoch;
        wal_cut;
        views;
        rows =
          List.map
            (fun (r : Codec.store_row) -> (r.key, r.value, r.wts, r.rts))
            raw_rows;
      }

let read_snapshot s =
  match read_frame s ~pos:0 with
  | Error _ -> None
  | Ok (payload, sz) ->
      if sz <> String.length s then None
      else begin
        match parse_snapshot payload with Error _ -> None | Ok snap -> Some snap
      end
