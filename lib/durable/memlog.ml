(* Deterministic in-memory durable device for the simulator: the same
   framed bytes as the on-disk WAL/snapshot, held in a buffer. The
   sim's golden suites must stay bit-identical, so this consumes no
   randomness, touches no clock, and does no I/O — "durability" in
   the sim means the bytes survive [Replica.crash] (which wipes the
   stores but not the nemesis harness holding these). *)

type t = { log : Buffer.t; mutable snap : string option }

let create () = { log = Buffer.create 256; snap = None }
let append t s = Buffer.add_string t.log s
let log_contents t = Buffer.contents t.log
let log_length t = Buffer.length t.log
let set_snapshot t s = t.snap <- Some s
let snapshot t = t.snap

let reset t =
  Buffer.clear t.log;
  t.snap <- None
