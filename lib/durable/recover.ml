(* Crash-reboot recovery: fold a replica's per-core snapshot + log
   images back into one consistent (records, rows, epoch) state.

   Split deliberately in two:

   - [parse] is pure decoding and merging — total (lint rule Z7: a
     corrupt data directory must degrade, never throw) and touches no
     replica state;
   - [apply] hands the parsed state to [Replica.restore], which does
     the store writes (and is governed by the storage layer's own
     rules, not Z7).

   Merging follows the snapshot-supersedes-prefix protocol: a core's
   snapshot carries a [wal_cut] token, only the log suffix past the
   cut replays on top, and within one (core, tid) the newest view
   wins except that a final status never regresses to a non-final one
   (a stale in-flight view snapshotted mid-traffic cannot undo a
   commit the log already holds). *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Replica = Mk_meerkat.Replica

type source = { snap : string option; log : string }

type parsed = {
  epoch : int;
  records : (int * Replica.record_view) list;
  rows : (int * int * Timestamp.t * Timestamp.t) list;
  replayed : int;
  snapshots_used : int;
  decode_errors : int;
}

let empty =
  {
    epoch = 0;
    records = [];
    rows = [];
    replayed = 0;
    snapshots_used = 0;
    decode_errors = 0;
  }

(* Newest view per (core, tid), final statuses never regressing.
   [tagged] is (core, replay-index, view) with the index increasing in
   replay order (snapshot first, then log suffix); a stable sort keeps
   that order within each (core, tid) group. *)
let merge_records tagged =
  let cmp (c1, i1, (v1 : Replica.record_view)) (c2, i2, (v2 : Replica.record_view))
      =
    match compare (c1 : int) c2 with
    | 0 -> (
        match Tid.compare v1.txn.Txn.tid v2.txn.Txn.tid with
        | 0 -> compare (i1 : int) i2
        | n -> n)
    | n -> n
  in
  let sorted = List.stable_sort cmp tagged in
  List.rev
    (List.fold_left
       (fun acc (core, _, (v : Replica.record_view)) ->
         match acc with
         | (pc, (pv : Replica.record_view)) :: rest
           when pc = core && Tid.equal pv.txn.Txn.tid v.txn.Txn.tid ->
             let keep =
               if Txn.is_final pv.status && not (Txn.is_final v.status) then pv
               else v
             in
             (pc, keep) :: rest
         | _ -> (core, v) :: acc)
       [] sorted)

(* One row per key: value and write timestamp from the newest-written
   row, read timestamp the maximum seen (conservative for OCC). *)
let merge_rows rows =
  let cmp (k1, _, _, _) (k2, _, _, _) = compare (k1 : int) k2 in
  let sorted = List.stable_sort cmp rows in
  List.rev
    (List.fold_left
       (fun acc ((k, _, w, r) as row) ->
         match acc with
         | ((pk, _, _, pr) as prev) :: rest when pk = k ->
             let kk, vv, ww, _ =
               let _, _, pw, _ = prev in
               if Timestamp.compare w pw > 0 then row else prev
             in
             let rmax = if Timestamp.compare r pr > 0 then r else pr in
             (kk, vv, ww, rmax) :: rest
         | _ -> row :: acc)
       [] sorted)

let parse ~cores sources =
  let tagged = ref [] in
  let rows = ref [] in
  let idx = ref 0 in
  let tag core v =
    tagged := (core, !idx, v) :: !tagged;
    incr idx
  in
  let acc = ref empty in
  List.iteri
    (fun core { snap; log } ->
      if core >= cores then
        (* A data directory claiming more cores than the node runs:
           the extra images cannot map to a trecord partition. *)
        acc := { !acc with decode_errors = !acc.decode_errors + 1 }
      else begin
        let cut =
          match snap with
          | None -> 0
          | Some raw -> (
              match Walcodec.read_snapshot raw with
              | Some s when s.core = core ->
                  acc :=
                    {
                      !acc with
                      epoch = max !acc.epoch s.epoch;
                      snapshots_used = !acc.snapshots_used + 1;
                    };
                  List.iter (tag core) s.views;
                  rows := List.rev_append s.rows !rows;
                  s.wal_cut
              | Some _ | None ->
                  (* Corrupt, or a file moved between core slots:
                     ignore it and replay the full log instead. *)
                  acc := { !acc with decode_errors = !acc.decode_errors + 1 };
                  0)
        in
        let replay = Walcodec.read_records ~from:cut log in
        acc :=
          { !acc with decode_errors = !acc.decode_errors + replay.decode_errors };
        List.iter
          (fun (r : Walcodec.record) ->
            if r.core = core then begin
              tag core r.view;
              acc := { !acc with replayed = !acc.replayed + 1 }
            end
            else acc := { !acc with decode_errors = !acc.decode_errors + 1 })
          replay.records
      end)
    sources;
  {
    !acc with
    records = merge_records (List.rev !tagged);
    rows = merge_rows (List.rev !rows);
  }

let apply replica parsed =
  Replica.restore replica ~epoch:parsed.epoch ~records:parsed.records
    ~rows:parsed.rows
