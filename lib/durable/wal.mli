(** Per-core append-only write-ahead log over a Unix file.

    One file per (replica, core), appended only by the owner of that
    core's trecord partition — per-core durability with no shared
    fsync point (the ZCP argument; DESIGN.md §12). Framing and replay
    live in {!Walcodec}; this module only moves bytes and schedules
    fsyncs. *)

(** When the log reaches the platter: [Always] fsyncs every append
    (durable on ack), [Every n] is group commit (fsync every [n]
    appends — at most [n-1] acked transactions in the unsynced
    window), [Never] leaves flushing to the OS (crash-consistent but
    not crash-durable; the CRC framing still bounds the damage to the
    torn tail). *)
type policy = Always | Every of int | Never

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["always"], ["never"], or ["every=N"] with [N > 0]. *)

type t

val open_log : path:string -> policy:policy -> t
(** Open (creating if absent) for appending; existing bytes are kept
    and counted in {!length}. *)

val append : t -> string -> [ `Synced | `Buffered ]
(** Append one framed record and apply the fsync policy; says whether
    this append carried an fsync (for the [wal.fsyncs] counter). *)

val sync : t -> unit
(** Flush the unsynced window now (end of run, or pre-snapshot). *)

val length : t -> int
(** Bytes appended so far — the [wal_cut] token a snapshot taken now
    should carry. *)

val truncate : t -> len:int -> unit
(** Reboot-time compaction only: drop the log beyond [len] (the
    replayed prefix) once a fresh snapshot covers it. Never called
    while cores are running. *)

val close : t -> unit
(** {!sync} then close the fd. *)

val read_file : string -> string
(** The raw log image for {!Walcodec.read_records}. Total: a missing
    or unreadable file is an empty log. *)
