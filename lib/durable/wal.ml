(* Per-core append-only log over a Unix fd.

   ZCP on disk: one file per (replica, core), appended only by the
   domain/thread that owns that core's trecord partition, so there is
   no shared fsync point and no cross-core convoy — exactly the
   per-core data layout the paper demands of memory, extended to
   stable storage. Group commit is the [Every n] policy: an fsync
   every [n] appends bounds the unsynced window without paying a disk
   barrier per transaction. The module is observability-free; callers
   translate the [`synced] results into [wal.*] counters. *)

type policy = Always | Every of int | Never

let policy_to_string = function
  | Always -> "always"
  | Every n -> Printf.sprintf "every=%d" n
  | Never -> "never"

let policy_of_string s =
  match s with
  | "always" -> Some Always
  | "never" -> Some Never
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "every" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some n when n > 0 -> Some (Every n)
          | _ -> None)
      | _ -> None)

type t = {
  fd : Unix.file_descr;
  policy : policy;
  mutable length : int;
  mutable unsynced : int;
}

let open_log ~path ~policy =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let length = (Unix.fstat fd).Unix.st_size in
  { fd; policy; length; unsynced = 0 }

let length t = t.length

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let fsync t =
  Unix.fsync t.fd;
  t.unsynced <- 0

let append t s =
  write_all t.fd s;
  t.length <- t.length + String.length s;
  t.unsynced <- t.unsynced + 1;
  match t.policy with
  | Always ->
      fsync t;
      `Synced
  | Every n ->
      if t.unsynced >= n then begin
        fsync t;
        `Synced
      end
      else `Buffered
  | Never -> `Buffered

let sync t = if t.unsynced > 0 then fsync t

let truncate t ~len =
  Unix.ftruncate t.fd len;
  t.length <- min t.length len;
  t.unsynced <- 0

let close t =
  sync t;
  Unix.close t.fd

(* Whole-file read for replay. Total by design: recovery must work on
   whatever is (or is not) on disk, so a missing or unreadable file is
   simply an empty log. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic -> (
      match really_input_string ic (in_channel_length ic) with
      | s ->
          close_in_noerr ic;
          s
      | exception (Sys_error _ | End_of_file) ->
          close_in_noerr ic;
          "")
