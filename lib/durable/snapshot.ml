(* Atomic snapshot files: write to a [.tmp] sibling, fsync, rename.
   The rename is the commit point — a crash mid-write leaves the old
   snapshot intact, a crash after the rename the new one; recovery
   never sees a half-written file (and the CRC frame inside would
   reject one even if the filesystem broke that promise). *)

let write ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let n = String.length data in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd data !off (n - !off)
  done;
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp path

let read ~path =
  match Wal.read_file path with "" -> None | s -> Some s
