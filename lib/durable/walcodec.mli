(** On-disk formats: CRC32-framed WAL records and snapshot files,
    byte-compatible with the cluster wire encoding (the component
    codecs of {!Mk_wire.Codec}).

    Pure and total (lint rules Z6/Z7): encoding is deterministic, and
    the readers turn a torn tail, a flipped bit, or garbage into the
    longest valid prefix ({!read_records}) or [None]
    ({!read_snapshot}) — never an exception. *)

type record = { core : int; view : Mk_meerkat.Replica.record_view }
(** One WAL entry: a finalized (or installed) trecord view, tagged
    with the core whose partition owns it. *)

val encode_record : record -> string
(** One framed log entry, ready to append. *)

type replay = {
  records : record list;  (** The longest valid prefix, append order. *)
  valid_bytes : int;
      (** Bytes of the input covered by that prefix — where a
          compacting writer may safely truncate to. *)
  decode_errors : int;
      (** 1 if a torn or corrupt tail stopped the replay, else 0. *)
}

val read_records : ?from:int -> string -> replay
(** Replay a raw log image from byte [from] (a snapshot's [wal_cut]
    token; default 0). Total: any [from], including one landing
    mid-frame or outside the image, yields a well-formed {!replay}. *)

type snapshot = {
  core : int;
  epoch : int;  (** Installed epoch at snapshot time. *)
  wal_cut : int;
      (** Log length at snapshot time: replay only the suffix from
          this byte — everything before it is folded into the rows
          and views below. *)
  views : Mk_meerkat.Replica.record_view list;
      (** This core's trecord partition. *)
  rows :
    (int * int * Mk_clock.Timestamp.t * Mk_clock.Timestamp.t) list;
      (** (key, value, wts, rts) vstore rows owned by this core. *)
}

val encode_snapshot : snapshot -> string
(** A whole snapshot file: one CRC frame (written atomically via
    {!Snapshot.write}'s tmp-and-rename). *)

val read_snapshot : string -> snapshot option
(** Total; [None] on any corruption — recovery then falls back to
    replaying the full log from byte 0. *)
