(* CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected), computed
   bitwise. A lookup table would be faster, but a table is top-level
   mutable state (lint rule Z1) and the WAL frames this checksums are
   tens of bytes — the 8-steps-per-byte loop is nowhere near the
   fsync on the same path. Every operation below is total: no
   allocation, no indexing, no raising primitive (rule Z7 covers the
   recovery readers built on this). *)

let poly = 0xedb88320
let mask = 0xffff_ffff

let digest s =
  let crc = ref mask in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _ = 0 to 7 do
        let lsb = !crc land 1 in
        crc := (!crc lsr 1) lxor (if lsb = 1 then poly else 0)
      done)
    s;
  lnot !crc land mask
