(* Named instruments behind stable handles: looking an instrument up
   costs a list scan, but call sites do that once at construction and
   then increment through the handle, so the hot path is a plain field
   write. Instrument lists keep creation order; snapshots sort by name
   so dumps are deterministic regardless of wiring order. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }
type histogram = { h_name : string; h : Mk_util.Histogram.t }

type t = {
  mutable counters : counter list;  (* newest first *)
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let create () = { counters = []; gauges = []; histograms = [] }

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.counters <- c :: t.counters;
      c

let gauge t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      t.gauges <- g :: t.gauges;
      g

let histogram t name =
  match List.find_opt (fun h -> h.h_name = name) t.histograms with
  | Some h -> h.h
  | None ->
      let h = Mk_util.Histogram.create () in
      t.histograms <- { h_name = name; h } :: t.histograms;
      h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value
let observe h v = Mk_util.Histogram.add h v

type histogram_summary = { count : int; mean : float; p50 : float; p99 : float }

let summarize h =
  let count = Mk_util.Histogram.count h in
  {
    count;
    mean = (if count = 0 then 0.0 else Mk_util.Histogram.mean h);
    p50 = Mk_util.Histogram.percentile h 50.0;
    p99 = Mk_util.Histogram.percentile h 99.0;
  }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let by_name name_of a b = compare (name_of a) (name_of b)

let snapshot (t : t) =
  {
    counters =
      List.sort (by_name fst)
        (List.map (fun c -> (c.c_name, c.c_value)) t.counters);
    gauges =
      List.sort (by_name fst) (List.map (fun g -> (g.g_name, g.g_value)) t.gauges);
    histograms =
      List.sort (by_name fst)
        (List.map (fun h -> (h.h_name, summarize h.h)) t.histograms);
  }

let pp_snapshot ppf s =
  List.iter (fun (name, v) -> Format.fprintf ppf "counter %-28s %d@." name v) s.counters;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "gauge   %-28s %.3f@." name v)
    s.gauges;
  List.iter
    (fun (name, (h : histogram_summary)) ->
      Format.fprintf ppf "histo   %-28s n=%d mean=%.2f p50=%.2f p99=%.2f@." name
        h.count h.mean h.p50 h.p99)
    s.histograms

let pp ppf t = pp_snapshot ppf (snapshot t)
