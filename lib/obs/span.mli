(** The span taxonomy of the transaction lifecycle.

    Each kind names one phase of the commit protocol as the paper
    describes it (Alg. 1 / §5.2); the tracer and the per-phase latency
    breakdown in the harness both key on these. *)

type kind =
  | Execute  (** Interactive read phase: client GETs, one key at a time. *)
  | Validate  (** Validation round: broadcast to decision or accept entry. *)
  | Fast_quorum  (** Whole commit decided on the fast path (§5.2.2 step 3). *)
  | Slow_accept  (** Accept round of the slow path (§5.2.2 step 4). *)
  | Write_back  (** Asynchronous commit/abort application at a replica. *)
  | Retransmit  (** A retransmission timer fired before the decision. *)

val all : kind list
(** In [index] order. *)

val count : int

val index : kind -> int
(** Dense index in \[0, {!count}), for flat per-kind arrays. *)

val to_string : kind -> string
val pp : Format.formatter -> kind -> unit
