(* The span taxonomy: one kind per phase of the transaction lifecycle
   (Alg. 1 / §5.2 of the paper). Fixed and closed so per-kind
   histograms can live in a flat array with no hashing on the hot
   path. *)

type kind =
  | Execute  (** Interactive read phase: client GETs, one key at a time. *)
  | Validate  (** Validation round: broadcast to decision or accept entry. *)
  | Fast_quorum  (** Whole commit decided on the fast path (§5.2.2 step 3). *)
  | Slow_accept  (** Accept round of the slow path (§5.2.2 step 4). *)
  | Write_back  (** Asynchronous commit/abort application at a replica. *)
  | Retransmit  (** A retransmission timer fired before the decision. *)

let all = [ Execute; Validate; Fast_quorum; Slow_accept; Write_back; Retransmit ]
let count = List.length all

let index = function
  | Execute -> 0
  | Validate -> 1
  | Fast_quorum -> 2
  | Slow_accept -> 3
  | Write_back -> 4
  | Retransmit -> 5

let to_string = function
  | Execute -> "execute"
  | Validate -> "validate"
  | Fast_quorum -> "fast-quorum"
  | Slow_accept -> "slow-accept"
  | Write_back -> "write-back"
  | Retransmit -> "retransmit"

let pp ppf k = Format.pp_print_string ppf (to_string k)
