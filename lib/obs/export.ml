(* Exporters: Chrome trace_event JSON (load in chrome://tracing or
   https://ui.perfetto.dev) and the plain-text metrics dump.

   JSON is written by hand — the repo carries no JSON dependency and
   the trace_event format needs only objects of scalars. All floats
   print with a fixed format so traces are byte-stable across runs. *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Sim time is in microseconds, exactly the unit trace_event wants for
   "ts"/"dur". Three decimals = nanosecond resolution. *)
let buf_time b v = Buffer.add_string b (Printf.sprintf "%.3f" v)

let buf_arg b = function
  | Tracer.Str s -> buf_json_string b s
  | Tracer.Int i -> Buffer.add_string b (string_of_int i)
  | Tracer.Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)

let buf_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_json_string b k;
      Buffer.add_char b ':';
      buf_arg b v)
    args;
  Buffer.add_char b '}'

let buf_event b (ev : Tracer.event) =
  let common ph =
    Buffer.add_string b "{\"name\":";
    buf_json_string b ev.Tracer.name;
    Buffer.add_string b ",\"cat\":";
    buf_json_string b ev.Tracer.cat;
    Buffer.add_string b (Printf.sprintf ",\"ph\":\"%s\",\"ts\":" ph);
    buf_time b ev.Tracer.ts;
    Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" ev.Tracer.pid ev.Tracer.tid)
  in
  (match ev.Tracer.phase with
  | Tracer.Complete dur ->
      common "X";
      Buffer.add_string b ",\"dur\":";
      buf_time b dur;
      if ev.Tracer.args <> [] then begin
        Buffer.add_char b ',';
        buf_args b ev.Tracer.args
      end
  | Tracer.Begin ->
      common "B";
      if ev.Tracer.args <> [] then begin
        Buffer.add_char b ',';
        buf_args b ev.Tracer.args
      end
  | Tracer.End -> common "E"
  | Tracer.Instant ->
      common "i";
      Buffer.add_string b ",\"s\":\"t\"";
      if ev.Tracer.args <> [] then begin
        Buffer.add_char b ',';
        buf_args b ev.Tracer.args
      end
  | Tracer.Counter v ->
      common "C";
      Buffer.add_char b ',';
      buf_args b [ ("value", Tracer.Float v) ]
  | Tracer.Metadata value ->
      common "M";
      Buffer.add_char b ',';
      buf_args b [ ("name", Tracer.Str value) ]);
  Buffer.add_char b '}'

let chrome_trace tracer =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      buf_event b ev)
    (Tracer.events tracer);
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome_trace tracer ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace tracer))

let metrics_dump registry = Format.asprintf "%a" Registry.pp registry
