(** Exporters for the observability subsystem.

    {!chrome_trace} renders a tracer's events in Chrome trace_event
    JSON — open the file in [chrome://tracing] or Perfetto
    ([https://ui.perfetto.dev]) to see the per-core and per-client
    timelines. All numbers print with fixed formats, so traces from
    identical seeds are byte-identical. *)

val chrome_trace : Tracer.t -> string
(** The full trace as a JSON document ({["traceEvents"]} form). *)

val write_chrome_trace : Tracer.t -> path:string -> unit

val metrics_dump : Registry.t -> string
(** Plain-text snapshot of every instrument, sorted by name. *)
