(** Per-system observability handle: metrics registry + span tracer +
    per-phase latency histograms.

    Every simulated system carries one of these. Protocol counters and
    lifecycle spans all flow through it; the harness reads the
    per-phase breakdown from it, and the exporters turn it into a
    Chrome trace and a metrics dump. Tracing is off by default and
    every span call is a cheap no-op then; the registry and phase
    histograms are always live (they are what the benchmark reports
    are built from). *)

type t

val create : ?trace:bool -> clock:(unit -> float) -> unit -> t
(** [clock] supplies timestamps — in this repo always
    [fun () -> Engine.now engine], so all times are simulated
    microseconds. *)

val registry : t -> Registry.t
val tracer : t -> Tracer.t
val now : t -> float
val tracing : t -> bool

(** {2 Trace track layout} *)

val client_pid : int
(** Track of client-side lifecycle spans; [tid] = client id. *)

val replica_pid : int -> int
(** Track of replica [r]; [tid] = core index. *)

val net_pid : int
(** Track of network events (drops). *)

(** {2 Protocol counters — the single increment path} *)

val note_decision : t -> committed:bool -> fast:bool -> unit
val note_retransmit : t -> unit
val note_send : t -> unit
val note_drop : t -> unit
val note_duplicate : t -> unit
val note_delay : t -> unit

val note_epoch_change : t -> unit
(** A message-driven §5.3.1 epoch change completed successfully. *)

val note_view_change : t -> unit
(** A detector-initiated §5.3.2 coordinator view change finished a
    stuck transaction. *)

val note_fault : t -> name:string -> unit
(** A nemesis fault window opened or closed, or a crash was injected;
    counted under [fault.windows] and mirrored as a trace instant on
    the network track. *)

val note_wire_tx : t -> bytes:int -> unit
(** One frame handed to the socket ([wire.msgs_tx]++,
    [wire.bytes_tx] += frame size). Cluster backend only. *)

val note_wire_tx_burst : t -> msgs:int -> bytes:int -> unit
(** [msgs] coalesced frames left in one datagram of [bytes] total —
    the bulk form the shim's flush uses so [wire.msgs_tx] still counts
    frames, not datagrams. *)

val note_wire_rx : t -> bytes:int -> unit
(** One datagram received and decoded ([wire.msgs_rx]++,
    [wire.bytes_rx] += datagram size). *)

val note_wire_decode_error : t -> unit
(** A datagram failed to decode, or carried ids a node cannot act on
    (out-of-range replica/slot) ([wire.decode_errors]++) — counted,
    dropped, never fatal. *)

val note_wire_send_error : t -> unit
(** [sendto] rejected a frame for a non-transient reason — above all
    [EMSGSIZE], an encoding larger than one UDP datagram, which no
    retransmit will ever fix ([wire.send_errors]++). Transient
    unreachable-peer errors are ordinary UDP loss and are not
    counted. *)

val note_wire_shard_drop : t -> unit
(** A well-formed frame stamped with another shard group's id reached
    this socket ([wire.shard_drops]++) — a misconfigured deployment or
    crossed ports; counted and dropped before the payload is acted
    on. *)

(** {2 Durability counters}

    [wal.appends]/[wal.bytes]/[wal.fsyncs] meter the write-ahead
    log's steady-state cost, [wal.replayed]/[wal.decode_errors] its
    recovery path, [snapshot.count]/[snapshot.bytes] the checkpoint
    traffic. Not thread-safe (like every counter here): backends that
    append from per-core domains tally privately and fold in at a
    quiescent point via {!note_wal_appends}. *)

val note_wal_append : t -> bytes:int -> synced:bool -> unit
(** One record appended; [synced] when this append carried an fsync. *)

val note_wal_appends : t -> appends:int -> bytes:int -> fsyncs:int -> unit
(** Bulk fold of a per-core tally. *)

val note_wal_replayed :
  t -> snapshots:int -> records:int -> errors:int -> unit
(** Recovery replayed [records] log entries on top of [snapshots]
    restored checkpoint images ([wal.snapshots_used]) and
    skipped [errors] torn/corrupt frames or unusable files. A fresh
    boot leaves all three at zero; [records + snapshots > 0] is the
    proof that a process came back from a previous incarnation's data
    directory (a snapshot taken right before the crash legitimately
    leaves no log suffix to replay). *)

val note_snapshot : t -> bytes:int -> unit
(** One snapshot file written. *)

val note_snapshots : t -> count:int -> bytes:int -> unit
(** Bulk fold of a per-core snapshot tally. *)

val note_gc : t -> minor_words:int -> majors:int -> per_txn:int -> unit
(** Fold one run's allocation footprint at a quiescent point:
    [gc.minor_words] (domain-summed minor allocation over the run),
    [gc.majors] (major collections), and [alloc.per_txn] (minor words
    per committed transaction — the figure the CI alloc-regression
    guard bounds). *)

val counter_value : t -> string -> int
(** Current value of the named counter (0 if never incremented). *)

(** {2 Lifecycle spans} *)

val span :
  t ->
  Span.kind ->
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Tracer.arg) list ->
  start:float ->
  ?finish:float ->
  unit ->
  unit
(** Record one completed phase: always feeds the per-kind histogram,
    and also emits a trace span when tracing is on. [finish] defaults
    to the clock now. *)

val core_busy : t -> pid:int -> tid:int -> start:float -> finish:float -> unit
(** Trace-only busy interval of a server core (idle time is the gap
    between busy spans). *)

val phase_histogram : t -> Span.kind -> Mk_util.Histogram.t

val phase_summary : t -> (Span.kind * Registry.histogram_summary) list
(** One entry per {!Span.kind}, in {!Span.all} order. *)

val reset_phases : t -> unit
(** Forget phase latencies recorded so far (the harness calls this
    when the measurement window opens). *)

(** {2 Reports} *)

val metrics_dump : t -> string
val chrome_trace : t -> string
val write_chrome_trace : t -> path:string -> unit
