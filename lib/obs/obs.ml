(* The per-system observability handle: one registry, one tracer, and
   a flat array of per-phase latency histograms indexed by Span.kind.

   Protocol counters (committed/aborted/fast/slow/retransmits) are
   pre-created here so every system increments the same five
   instruments through one code path — this is the single home of the
   bookkeeping that used to be duplicated across Cluster, the sharded driver and
   the baselines. *)

type t = {
  registry : Registry.t;
  tracer : Tracer.t;
  clock : unit -> float;
  phases : Mk_util.Histogram.t array;  (* indexed by Span.index *)
  committed : Registry.counter;
  aborted : Registry.counter;
  fast_path : Registry.counter;
  slow_path : Registry.counter;
  retransmits : Registry.counter;
  sent : Registry.counter;
  dropped : Registry.counter;
  duplicated : Registry.counter;
  delayed : Registry.counter;
  epoch_changes : Registry.counter;
  view_changes : Registry.counter;
  fault_windows : Registry.counter;
  wire_bytes_tx : Registry.counter;
  wire_bytes_rx : Registry.counter;
  wire_msgs_tx : Registry.counter;
  wire_msgs_rx : Registry.counter;
  wire_decode_errors : Registry.counter;
  wire_send_errors : Registry.counter;
  wire_shard_drops : Registry.counter;
  wal_appends : Registry.counter;
  wal_bytes : Registry.counter;
  wal_fsyncs : Registry.counter;
  wal_replayed : Registry.counter;
  wal_snapshots_used : Registry.counter;
  wal_decode_errors : Registry.counter;
  snapshot_count : Registry.counter;
  snapshot_bytes : Registry.counter;
  gc_minor_words : Registry.counter;
  gc_majors : Registry.counter;
  alloc_per_txn : Registry.counter;
}

(* Track layout of the exported trace. *)
let client_pid = 0
let replica_pid r = 1 + r
let net_pid = 99

let create ?(trace = false) ~clock () =
  let registry = Registry.create () in
  {
    registry;
    tracer = Tracer.create ~enabled:trace ~clock ();
    clock;
    phases = Array.init Span.count (fun _ -> Mk_util.Histogram.create ());
    committed = Registry.counter registry "txn.committed";
    aborted = Registry.counter registry "txn.aborted";
    fast_path = Registry.counter registry "txn.fast_path";
    slow_path = Registry.counter registry "txn.slow_path";
    retransmits = Registry.counter registry "net.retransmits";
    sent = Registry.counter registry "net.sent";
    dropped = Registry.counter registry "net.dropped";
    duplicated = Registry.counter registry "net.duplicated";
    delayed = Registry.counter registry "net.delayed";
    epoch_changes = Registry.counter registry "recovery.epoch_changes";
    view_changes = Registry.counter registry "recovery.view_changes";
    fault_windows = Registry.counter registry "fault.windows";
    wire_bytes_tx = Registry.counter registry "wire.bytes_tx";
    wire_bytes_rx = Registry.counter registry "wire.bytes_rx";
    wire_msgs_tx = Registry.counter registry "wire.msgs_tx";
    wire_msgs_rx = Registry.counter registry "wire.msgs_rx";
    wire_decode_errors = Registry.counter registry "wire.decode_errors";
    wire_send_errors = Registry.counter registry "wire.send_errors";
    wire_shard_drops = Registry.counter registry "wire.shard_drops";
    wal_appends = Registry.counter registry "wal.appends";
    wal_bytes = Registry.counter registry "wal.bytes";
    wal_fsyncs = Registry.counter registry "wal.fsyncs";
    wal_replayed = Registry.counter registry "wal.replayed";
    wal_snapshots_used = Registry.counter registry "wal.snapshots_used";
    wal_decode_errors = Registry.counter registry "wal.decode_errors";
    snapshot_count = Registry.counter registry "snapshot.count";
    snapshot_bytes = Registry.counter registry "snapshot.bytes";
    gc_minor_words = Registry.counter registry "gc.minor_words";
    gc_majors = Registry.counter registry "gc.majors";
    alloc_per_txn = Registry.counter registry "alloc.per_txn";
  }

let registry t = t.registry
let tracer t = t.tracer
let now t = t.clock ()
let tracing t = Tracer.enabled t.tracer

(* --- Protocol counters (the one increment path). --- *)

let note_decision t ~committed ~fast =
  Registry.incr (if committed then t.committed else t.aborted);
  Registry.incr (if fast then t.fast_path else t.slow_path)

let note_retransmit t = Registry.incr t.retransmits
let note_send t = Registry.incr t.sent

let note_drop t =
  Registry.incr t.dropped;
  Tracer.instant t.tracer ~cat:"net" ~name:"msg.drop" ~pid:net_pid ~tid:0 ()

let note_duplicate t =
  Registry.incr t.duplicated;
  Tracer.instant t.tracer ~cat:"net" ~name:"msg.dup" ~pid:net_pid ~tid:0 ()

let note_delay t =
  Registry.incr t.delayed;
  Tracer.instant t.tracer ~cat:"net" ~name:"msg.delay" ~pid:net_pid ~tid:0 ()

let note_epoch_change t = Registry.incr t.epoch_changes
let note_view_change t = Registry.incr t.view_changes

let note_fault t ~name =
  Registry.incr t.fault_windows;
  Tracer.instant t.tracer ~cat:"fault" ~name ~pid:net_pid ~tid:1 ()

(* --- Wire counters (cluster backend: socket shim tx/rx). --- *)

(* One datagram can now carry several coalesced frames: the burst
   variant counts them in one call at flush time. *)
let note_wire_tx_burst t ~msgs ~bytes =
  Registry.add t.wire_msgs_tx msgs;
  Registry.add t.wire_bytes_tx bytes

let note_wire_tx t ~bytes = note_wire_tx_burst t ~msgs:1 ~bytes

let note_wire_rx t ~bytes =
  Registry.incr t.wire_msgs_rx;
  Registry.add t.wire_bytes_rx bytes

let note_wire_decode_error t = Registry.incr t.wire_decode_errors
let note_wire_send_error t = Registry.incr t.wire_send_errors
let note_wire_shard_drop t = Registry.incr t.wire_shard_drops

(* --- Durability counters (WAL appends, snapshots, replay). Like the
   registry itself these are not thread-safe: backends whose cores
   append from their own domains tally per-core and fold in here at a
   quiescent point (join / wait). --- *)

let note_wal_appends t ~appends ~bytes ~fsyncs =
  Registry.add t.wal_appends appends;
  Registry.add t.wal_bytes bytes;
  Registry.add t.wal_fsyncs fsyncs

let note_wal_append t ~bytes ~synced =
  note_wal_appends t ~appends:1 ~bytes ~fsyncs:(if synced then 1 else 0)

let note_wal_replayed t ~snapshots ~records ~errors =
  Registry.add t.wal_replayed records;
  Registry.add t.wal_snapshots_used snapshots;
  Registry.add t.wal_decode_errors errors

let note_snapshots t ~count ~bytes =
  Registry.add t.snapshot_count count;
  Registry.add t.snapshot_bytes bytes

let note_snapshot t ~bytes = note_snapshots t ~count:1 ~bytes

(* --- Allocation counters (batched message plane). Folded in at a
   quiescent point like the WAL tallies: [minor_words] is the
   domain-summed Gc delta over the run, [majors] the major-collection
   count, and [per_txn] the words-per-committed-transaction quotient
   the CI alloc-regression guard asserts against. --- *)

let note_gc t ~minor_words ~majors ~per_txn =
  Registry.add t.gc_minor_words minor_words;
  Registry.add t.gc_majors majors;
  Registry.add t.alloc_per_txn per_txn

let counter_value t name = Registry.value (Registry.counter t.registry name)

(* --- Lifecycle spans. --- *)

let span t kind ?(pid = client_pid) ?(tid = 0) ?args ~start ?finish () =
  let finish = match finish with Some f -> f | None -> t.clock () in
  let dur = finish -. start in
  let dur = if dur < 0.0 then 0.0 else dur in
  Mk_util.Histogram.add t.phases.(Span.index kind) dur;
  Tracer.complete t.tracer ?args ~name:(Span.to_string kind) ~pid ~tid ~start ~finish
    ()

let core_busy t ~pid ~tid ~start ~finish =
  Tracer.complete t.tracer ~cat:"core" ~name:"busy" ~pid ~tid ~start ~finish ()

let phase_histogram t kind = t.phases.(Span.index kind)

let phase_summary t =
  List.map (fun kind -> (kind, Registry.summarize t.phases.(Span.index kind))) Span.all

let reset_phases t =
  Array.iteri (fun i _ -> t.phases.(i) <- Mk_util.Histogram.create ()) t.phases

(* --- Reports. --- *)

let metrics_dump t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Export.metrics_dump t.registry);
  List.iter
    (fun (kind, (s : Registry.histogram_summary)) ->
      Buffer.add_string b
        (Printf.sprintf "phase   %-28s n=%d mean=%.2f p50=%.2f p99=%.2f\n"
           (Span.to_string kind) s.Registry.count s.Registry.mean s.Registry.p50
           s.Registry.p99))
    (phase_summary t);
  Buffer.contents b

let chrome_trace t = Export.chrome_trace t.tracer
let write_chrome_trace t ~path = Export.write_chrome_trace t.tracer ~path
