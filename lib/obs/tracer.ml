(* Span recorder against an external clock (simulated time in this
   repo). Every recording entry point checks [enabled] first, so a
   disabled tracer costs one load and branch per call site — the
   zero-coordination principle applied to observability.

   Events accumulate newest-first in a list; exporters reverse once.
   Timestamps come from the injected clock only, never the wall clock,
   so identical seeds yield byte-identical traces. *)

type arg = Str of string | Int of int | Float of float

type phase =
  | Complete of float  (* duration *)
  | Begin
  | End
  | Instant
  | Counter of float
  | Metadata of string  (* the metadata value, e.g. a process name *)

type event = {
  name : string;
  cat : string;
  ts : float;
  pid : int;
  tid : int;
  phase : phase;
  args : (string * arg) list;
}

type t = {
  clock : unit -> float;
  mutable enabled : bool;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
}

let create ?(enabled = false) ~clock () = { clock; enabled; events = []; n_events = 0 }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let now t = t.clock ()

let record t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let complete t ?(cat = "txn") ?(args = []) ~name ~pid ~tid ~start ?finish () =
  if t.enabled then begin
    let finish = match finish with Some f -> f | None -> t.clock () in
    let start = if finish < start then finish else start in
    record t
      { name; cat; ts = start; pid; tid; phase = Complete (finish -. start); args }
  end

let begin_span t ?(cat = "txn") ?(args = []) ~name ~pid ~tid () =
  if t.enabled then
    record t { name; cat; ts = t.clock (); pid; tid; phase = Begin; args }

let end_span t ?(cat = "txn") ~name ~pid ~tid () =
  if t.enabled then
    record t { name; cat; ts = t.clock (); pid; tid; phase = End; args = [] }

let instant t ?(cat = "txn") ?(args = []) ~name ~pid ~tid () =
  if t.enabled then
    record t { name; cat; ts = t.clock (); pid; tid; phase = Instant; args }

let counter t ?(cat = "metric") ~name ~pid ~value () =
  if t.enabled then
    record t
      { name; cat; ts = t.clock (); pid; tid = 0; phase = Counter value; args = [] }

let set_process_name t ~pid name =
  if t.enabled then
    record t
      {
        name = "process_name";
        cat = "__metadata";
        ts = 0.0;
        pid;
        tid = 0;
        phase = Metadata name;
        args = [];
      }

let set_thread_name t ~pid ~tid name =
  if t.enabled then
    record t
      {
        name = "thread_name";
        cat = "__metadata";
        ts = 0.0;
        pid;
        tid;
        phase = Metadata name;
        args = [];
      }

let length t = t.n_events
let events t = List.rev t.events
let clear t =
  t.events <- [];
  t.n_events <- 0
