(** Span tracer: records timeline events against an injected clock.

    In this repo the clock is simulated time ({!Mk_sim.Engine.now}),
    so traces are deterministic — two runs with the same seed produce
    identical event streams. Every recording function is a no-op when
    the tracer is disabled (one load and branch), so always-on call
    sites cost nothing in ordinary benchmark runs.

    Tracks follow the Chrome trace model: a [pid] names a process
    (replica, client population, network) and a [tid] a thread within
    it (core, client). *)

type arg = Str of string | Int of int | Float of float

type phase =
  | Complete of float  (** A span with the given duration. *)
  | Begin
  | End
  | Instant
  | Counter of float
  | Metadata of string

type event = {
  name : string;
  cat : string;
  ts : float;
  pid : int;
  tid : int;
  phase : phase;
  args : (string * arg) list;
}

type t

val create : ?enabled:bool -> clock:(unit -> float) -> unit -> t
(** Disabled unless [~enabled:true]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val now : t -> float
(** The tracer's clock reading (handy for capturing span starts). *)

val complete :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  name:string ->
  pid:int ->
  tid:int ->
  start:float ->
  ?finish:float ->
  unit ->
  unit
(** Record a complete span \[start, finish\] ([finish] defaults to the
    clock now; a [finish] before [start] is clamped to zero width). *)

val begin_span :
  t -> ?cat:string -> ?args:(string * arg) list -> name:string -> pid:int ->
  tid:int -> unit -> unit
(** Open a nested span on a track; close with {!end_span}. Chrome
    B/E events nest by track containment. *)

val end_span : t -> ?cat:string -> name:string -> pid:int -> tid:int -> unit -> unit

val instant :
  t -> ?cat:string -> ?args:(string * arg) list -> name:string -> pid:int ->
  tid:int -> unit -> unit

val counter : t -> ?cat:string -> name:string -> pid:int -> value:float -> unit -> unit

val set_process_name : t -> pid:int -> string -> unit
val set_thread_name : t -> pid:int -> tid:int -> string -> unit

val length : t -> int
val events : t -> event list
(** In recording order. *)

val clear : t -> unit
