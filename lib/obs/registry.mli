(** Metrics registry: named counters, gauges, and histograms.

    Instruments are found-or-created by name and then driven through
    their handle, so the recording path is a single field write (or a
    {!Mk_util.Histogram.add}); snapshots are sorted by name and hence
    deterministic. One registry per simulated system replaces the
    ad-hoc mutable counter fields that each prototype used to carry. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter named [name]. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> Mk_util.Histogram.t

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : Mk_util.Histogram.t -> float -> unit

type histogram_summary = { count : int; mean : float; p50 : float; p99 : float }

val summarize : Mk_util.Histogram.t -> histogram_summary
(** Empty histograms summarize to all-zero (no NaNs in reports). *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

val snapshot : t -> snapshot
(** Sorted by instrument name: deterministic across runs. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
val pp : Format.formatter -> t -> unit
(** The plain-text metrics dump behind [--metrics]. *)
