(** The interface every simulated storage system exposes to the
    benchmark harness.

    A transaction request carries the keys to read and the key/value
    pairs to write; the system executes the interactive
    execute/validate/write lifecycle (reads first, buffered writes,
    then its own commit protocol) and reports whether the transaction
    committed. The harness owns closed-loop clients and retry
    policy. *)

type txn_request = { reads : int array; writes : (int * int) array }

(** Per-run protocol counters, aggregated across replicas. Derived
    from the system's metrics registry (see {!counters_of_obs}); kept
    as a plain record so harness code can snapshot and diff windows
    cheaply. *)
type counters = {
  committed : int;
  aborted : int;
  fast_path : int;  (** Transactions decided on the fast path. *)
  slow_path : int;  (** Transactions that needed the accept round. *)
  retransmits : int;
}

module type SYSTEM = sig
  type t

  val name : t -> string

  val threads : t -> int
  (** Server threads per replica (the x-axis of Figs. 4 and 5). *)

  val submit :
    t -> client:int -> txn_request -> on_done:(committed:bool -> unit) -> unit
  (** Run one transaction attempt on behalf of client [client]
      (0-based, must be < the system's configured client count).
      [on_done] fires exactly once, when the coordinator learns the
      outcome. *)

  val obs : t -> Mk_obs.Obs.t
  (** The system's observability handle: protocol counters, per-phase
      latency histograms, and (when enabled) the span trace all live
      here — one reporting API for every prototype. *)
end

type packed = Packed : (module SYSTEM with type t = 'a) * 'a -> packed

let zero_counters =
  { committed = 0; aborted = 0; fast_path = 0; slow_path = 0; retransmits = 0 }

(* The five standard instrument names every system's registry carries
   (pre-created by {!Mk_obs.Obs.create}). *)
let counters_of_obs obs =
  {
    committed = Mk_obs.Obs.counter_value obs "txn.committed";
    aborted = Mk_obs.Obs.counter_value obs "txn.aborted";
    fast_path = Mk_obs.Obs.counter_value obs "txn.fast_path";
    slow_path = Mk_obs.Obs.counter_value obs "txn.slow_path";
    retransmits = Mk_obs.Obs.counter_value obs "net.retransmits";
  }

let counters_of_packed (Packed ((module S), sys)) = counters_of_obs (S.obs sys)
