type 'a handle = 'a Domain.t

let spawn f = Domain.spawn f
let join h = Domain.join h

let parallel ~domains f =
  if domains < 1 then invalid_arg "Spawn.parallel: domains must be >= 1";
  let spawned = List.init domains (fun id -> Domain.spawn (fun () -> f id)) in
  List.map Domain.join spawned

let wall () = Unix.gettimeofday ()

let timed ~domains f =
  let t0 = wall () in
  let results = parallel ~domains f in
  (results, wall () -. t0)

let relax () = Domain.cpu_relax ()
