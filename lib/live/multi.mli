(** Multi-group live deployment (DESIGN.md §13): S independent Meerkat
    groups on real OCaml 5 domains, coordinator domains driving the
    client-side cross-shard 2PC of {!Mk_shard} over bounded mailboxes.

    Each shard is a full single-group topology of its own
    ([server_domains] domains hosting one core of every replica of
    that shard), so the deployment runs [shards x server_domains]
    server domains plus [coordinators] coordinator domains. Nothing is
    shared between shards; the only cross-shard party is the
    coordinator, which runs one {!Mk_meerkat.Protocol} validation per
    involved shard to a decision with the write-back withheld, then
    broadcasts the global conjunction (paper §5.2.4 — the
    client-chosen globally-unique timestamp makes this free of any
    shard-to-shard coordination).

    Fault-free by design: chaos stays single-group (DESIGN.md §10) and
    the cluster backend covers multi-shard fault injection with real
    process kills. *)

type config = {
  shards : int;
  policy : Mk_shard.Router.policy;
  server_domains : int;  (** Per shard; also cores per replica. *)
  n_replicas : int;  (** Per shard. Odd, >= 3. *)
  coordinators : int;
  clients : int;  (** Closed-loop clients, split round-robin. *)
  keys : int;  (** Global keyspace, spread over the shards. *)
  theta : float;
  workload : Runtime.workload_kind;
  cross : float;
      (** Probability a multi-key transaction spans more than one
          shard ({!Mk_workload.Workload.locality}; only applied under
          the Mod placement policy). *)
  txns_per_client : int;
  duration : float option;
  seed : int;
  rto_us : float;
  grace_us : float;
  server_inbox : int;
  coord_inbox : int;
      (** Auto-raised to the deadlock-freedom floor of
          4 x local clients x replicas x shards (next power of two) —
          a coordinator can hold one open attempt per involved shard
          per client. *)
}

val default_config : config

type report = {
  shards : int;
  server_domains : int;
  coordinators : int;
  clients : int;
  committed_count : int;
  aborted : int;
  cross_shard : int;  (** Decided transactions that involved >1 shard. *)
  fast_path : int;  (** Per-shard sub-attempts, not global txns. *)
  slow_path : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  submitted : int;
  acked : int;
  history : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** The merged global history (via {!Mk_shard.History.merge}) —
          feed to {!Mk_harness.Checker.check}. *)
  sub_histories : (int * (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list) list;
      (** The same commits per shard, over local keys. *)
  router : Mk_shard.Router.t;
  groups : Mk_meerkat.Replica.t array array;
      (** [.(shard).(replica)], quiescent after the join. *)
}

val run : config -> report
(** Spawn the whole topology, run every client to its quota (or the
    duration), join all domains. The replicas are quiescent when this
    returns: every involved shard's write-back is applied.
    @raise Invalid_argument on nonsensical sizes (see {!config}). *)

val pp_report : Format.formatter -> report -> unit

val report_json : report -> string
(** One flat JSON object (no histories), for [BENCH_shard.json]. *)
