(** The live runtime: the full Meerkat commit protocol on real OCaml 5
    domains, driven by the same {!Mk_meerkat.Protocol} state machine as
    the discrete-event simulator (DESIGN.md §9).

    Server domain [k] hosts core [k] of every replica (validate,
    accept, and write-back against the core-[k] trecord partitions);
    coordinator domains run closed-loop clients. All cross-domain
    communication is a message through a bounded {!Mailbox} — the
    transaction fast path shares no other mutable state between
    domains beyond the storage layer's sanctioned shard locks. *)

type workload_kind = Ycsb_t | Retwis

type config = {
  server_domains : int;  (** Server domains; also cores per replica. *)
  n_replicas : int;  (** Odd, >= 3. *)
  coordinators : int;  (** Coordinator domains. *)
  clients : int;  (** Closed-loop clients, split round-robin. *)
  keys : int;
  theta : float;  (** Zipf skew of the workload. *)
  workload : workload_kind;
  txns_per_client : int;  (** Quota per client (ignored with [duration]). *)
  duration : float option;
      (** Wall seconds to keep submitting; overrides [txns_per_client]. *)
  seed : int;
  rto_us : float;  (** Initial retransmission timeout (wall µs). *)
  grace_us : float;  (** Fast-path grace before settling slow (wall µs). *)
  server_inbox : int;  (** Server mailbox capacity (power of two). *)
  coord_inbox : int;
      (** Coordinator mailbox capacity (power of two). Must exceed the
          coordinator's worst-case outstanding replies — a few times
          its local clients × [n_replicas] — so servers never block
          pushing replies (the deadlock-freedom argument in the
          implementation). *)
}

val default_config : config

type report = {
  server_domains : int;
  coordinators : int;
  clients : int;
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Every acknowledged commit, across all coordinators — feed to
          {!Mk_harness.Checker.check} for the serializability verdict. *)
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  wall_seconds : float;
  throughput : float;  (** Committed transactions per wall second. *)
  abort_rate : float;  (** Aborted / decided, in \[0, 1\]. *)
  p50_us : float;  (** Client-perceived commit latency percentiles. *)
  p99_us : float;
}

val run : config -> report
(** Spawn the topology, run every client to its quota (or the
    duration), join all domains, and aggregate the per-coordinator
    observations. The replicas are quiescent when this returns: all
    write-backs are applied.
    @raise Invalid_argument on nonsensical sizes (see {!config}). *)

val pp_report : Format.formatter -> report -> unit

val report_json : report -> string
(** One flat JSON object (no committed list), for [BENCH_live.json]. *)
