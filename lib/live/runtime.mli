(** The live runtime: the full Meerkat commit protocol on real OCaml 5
    domains, driven by the same {!Mk_meerkat.Protocol} state machine as
    the discrete-event simulator (DESIGN.md §9).

    Server domain [k] hosts core [k] of every replica (validate,
    accept, and write-back against the core-[k] trecord partitions);
    coordinator domains run closed-loop clients. All cross-domain
    communication is a message through a bounded {!Mailbox} — the
    transaction fast path shares no other mutable state between
    domains beyond the storage layer's sanctioned shard locks.

    With [config.chaos] set, the run additionally spawns one monitor
    domain hosting the transport-agnostic {!Mk_meerkat.Detector},
    routes every cross-domain message through a {!Link} applying the
    nemesis plan, injects the plan's replica fail-stops and
    coordinator kills, and drives real detector-initiated §5.3.2 view
    changes and §5.3.1 epoch changes over the mailboxes (DESIGN.md
    §10). *)

type workload_kind = Ycsb_t | Rmw_pair | Retwis

(** Durability wiring (DESIGN.md §12): one WAL per (replica, core)
    under [dir] — server domain [k] owns core [k] of every replica, so
    each [r<r>-c<k>.wal] has a single writer — plus full per-core
    snapshots written by the monitor at every completed §5.3.1 epoch
    install, while the server domains are parked. *)
type durable = { dir : string; policy : Mk_durable.Wal.policy }

(** Chaos-mode wiring: the nemesis plan plus the detector tuning and
    the run's time envelope. *)
type chaos = {
  plan : Mk_fault.Nemesis.plan;
      (** Fault windows and crash events, with all times in wall µs
          from the start of the run (generate it with
          [Nemesis.plan ~horizon:horizon_us]). *)
  detector : Mk_meerkat.Detector.cfg;
      (** Failure-detector tuning in wall µs — see
          {!chaos_detector_cfg} for a horizon-scaled default. *)
  horizon_us : float;
      (** Fault-injection horizon; must equal [duration *. 1e6]. *)
  settle_us : float;
      (** Fault-free grace after the horizon: detectors keep running
          for the first half and only in-flight recovery finishes in
          the second, so the final state is quiescent. *)
}

type config = {
  server_domains : int;  (** Server domains; also cores per replica. *)
  n_replicas : int;  (** Odd, >= 3. *)
  coordinators : int;  (** Coordinator domains. *)
  clients : int;  (** Closed-loop clients, split round-robin. *)
  keys : int;
  theta : float;  (** Zipf skew of the workload. *)
  workload : workload_kind;
  txns_per_client : int;  (** Quota per client (ignored with [duration]). *)
  duration : float option;
      (** Wall seconds to keep submitting; overrides [txns_per_client].
          Required (= the horizon) when [chaos] is set. *)
  offered_rate : float option;
      (** [Some r]: open-loop load generation at an AGGREGATE [r]
          txn/s across all clients — each client launches on a fixed
          arithmetic schedule (phase-staggered by client id) and
          latency is measured from the INTENDED launch instant, so a
          saturated system reports its queueing delay instead of
          silently thinning the offered load (no coordinated
          omission). [None] (default): closed loop — every client
          resubmits as soon as its previous transaction decides. *)
  seed : int;
  rto_us : float;  (** Initial retransmission timeout (wall µs). *)
  grace_us : float;  (** Fast-path grace before settling slow (wall µs). *)
  server_inbox : int;  (** Server mailbox capacity (power of two). *)
  coord_inbox : int;
      (** Coordinator mailbox capacity (power of two). Must exceed the
          coordinator's worst-case outstanding replies — at least 4 ×
          its local clients × [n_replicas] — so servers never block
          pushing replies (the deadlock-freedom argument in the
          implementation). {!run} enforces this floor. *)
  chaos : chaos option;  (** [None] = the fault-free fast path. *)
  durable : durable option;  (** [None] = no persistence (the default). *)
}

val default_config : config

val chaos_detector_cfg : horizon_us:float -> Mk_meerkat.Detector.cfg
(** Detector tuning scaled to a wall-clock horizon: heartbeats every
    horizon/100, suspicion after horizon/16 of silence, trecord scans
    every horizon/64, stuck records recovered after horizon/16 (well
    inside a crashed coordinator's down time, so view changes really
    fire), give-up after horizon/2.5. *)

type report = {
  server_domains : int;
  coordinators : int;
  clients : int;
  committed : (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list;
      (** Every acknowledged commit, across all coordinators — feed to
          {!Mk_harness.Checker.check} for the serializability verdict. *)
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  wall_seconds : float;
  throughput : float;  (** Committed transactions per wall second. *)
  abort_rate : float;  (** Aborted / decided, in \[0, 1\]. *)
  p50_us : float;  (** Client-perceived commit latency percentiles. *)
  p99_us : float;
  submitted : int;  (** Transactions started across all clients. *)
  acked : int;  (** Transactions that reached a commit/abort ack. *)
  epoch_changes : int;  (** Detector-driven §5.3.1 completions (chaos). *)
  view_changes : int;  (** Detector-driven §5.3.2 completions (chaos). *)
  fault_events : int;  (** Window edges + crash injections applied. *)
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  wal_appends : int;  (** WAL records appended, summed over domains. *)
  wal_bytes : int;
  wal_fsyncs : int;
  snapshots : int;  (** Per-core snapshots written at epoch installs. *)
  snapshot_bytes : int;
  gc_minor_words : int;
      (** Minor words allocated over the whole run, summed across all
          domains (terminated domains fold their counters into the
          global totals at join). *)
  gc_majors : int;  (** Major collections over the run. *)
  alloc_per_txn : int;
      (** [gc_minor_words / committed_count] — the figure the CI
          alloc-regression guard bounds. *)
  replicas : Mk_meerkat.Replica.t array;
      (** The run's replicas, quiescent after the join — the chaos
          harness checks its agreement/bounded/available invariants
          directly against them. *)
}

val run : config -> report
(** Spawn the topology, run every client to its quota (or the
    duration), join all domains, and aggregate the per-coordinator
    observations. The replicas are quiescent when this returns: all
    write-backs are applied.
    @raise Invalid_argument on nonsensical sizes, an undersized
    [coord_inbox] (below 4 × local clients × replicas), or a chaos
    config without a duration (see {!config}). *)

(** {2 Durable file layout}

    Owned here so callers (the chaos harness's durable invariant)
    never hard-code the naming convention. *)

val durable_wal_path : dir:string -> replica:int -> core:int -> string
val durable_snap_path : dir:string -> replica:int -> core:int -> string

val fresh_data_dir : tag:string -> string
(** Create (and return) a unique empty directory under the system temp
    directory — a scratch data dir for one durable run. *)

val read_durable_sources :
  dir:string -> replica:int -> cores:int -> Mk_durable.Recover.source list
(** Read one replica's per-core WAL + snapshot images back, in core
    order, ready for {!Mk_durable.Recover.parse}. Missing files read
    as absent/empty — never raises. *)

val remove_data_dir : dir:string -> n_replicas:int -> cores:int -> unit
(** Best-effort cleanup of a data dir created by {!fresh_data_dir}:
    remove every [r*-c*.wal]/[.snap] and the directory itself. *)

val pp_report : Format.formatter -> report -> unit

val report_json : report -> string
(** One flat JSON object (no committed list), for [BENCH_live.json]. *)
