(* Vyukov bounded MPSC ring with a parking consumer.

   Each cell carries a sequence number that encodes whose turn it is:
   [seq = pos] means the cell is free for the producer claiming
   position [pos]; [seq = pos + 1] means it holds the message of that
   position, ready for the consumer; the consumer releases it for the
   next lap by setting [seq = pos + capacity]. Producers race on one
   CAS over [tail]; the value itself is a plain field, published by
   the [seq] store and acquired by the consumer's [seq] load (OCaml
   atomics are SC, so the pair orders the plain access on both sides).

   Cells store the message directly, not an ['a option]: the [seq]
   protocol alone says whether a slot is full, so the [Some] box the
   old representation allocated per message carried no information.
   An empty slot holds an unreachable sentinel ([Obj.magic ()]) that
   is never read — only a slot whose [seq] marks it full is — and the
   consumer re-stores the sentinel on release so a drained mailbox
   does not pin dead messages for a whole lap. This is the standard
   idiom of lock-free OCaml queues; the one obligation is local to
   this file: never touch [value] unless [seq] proves ownership.

   Parking protocol: the consumer raises [parked] and re-checks the
   ring before waiting; a producer stores the cell first and reads
   [parked] after. Sequential consistency forbids both sides missing
   each other — either the producer sees the flag and signals, or the
   consumer's re-check sees the message. The flag must be re-raised on
   EVERY wait iteration: a racing producer can claim a slot and stall
   before publishing it while a later producer publishes and clears
   [parked], so a consumer woken to a not-yet-ready head cell that
   re-waited without re-raising the flag would never be signalled
   again. *)

type 'a cell = { mutable value : 'a; seq : int Atomic.t }

(* The empty-slot sentinel. Immediate (the unit value), so it is never
   mistaken for a heap pointer by the GC; never returned, because the
   [seq] protocol gates every read. *)
let empty : 'a. unit -> 'a = fun () -> Obj.magic ()

type 'a t = {
  mask : int;
  cells : 'a cell array;
  tail : int Atomic.t;  (* next position to claim; producers CAS this *)
  mutable head : int;  (* next position to consume; consumer-private *)
  lock : Mutex.t;
  nonempty : Condition.t;
  parked : bool Atomic.t;
}

let create ~capacity =
  if capacity < 2 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Mailbox.create: capacity must be a power of two >= 2";
  {
    mask = capacity - 1;
    cells =
      Array.init capacity (fun i -> { value = empty (); seq = Atomic.make i });
    tail = Atomic.make 0;
    head = 0;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    parked = Atomic.make false;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.tail - t.head

let wake t =
  if Atomic.get t.parked then begin
    Mutex.lock t.lock;
    Atomic.set t.parked false;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock
  end

let try_push t v =
  let rec claim pos =
    let cell = t.cells.(pos land t.mask) in
    let dif = Atomic.get cell.seq - pos in
    if dif = 0 then
      if Atomic.compare_and_set t.tail pos (pos + 1) then begin
        cell.value <- v;
        Atomic.set cell.seq (pos + 1);
        wake t;
        true
      end
      else claim (Atomic.get t.tail)
    else if dif < 0 then
      (* The cell [capacity] positions back has not been consumed yet:
         full. A stale [pos] can only make [dif] positive, never
         negative, so a false "full" verdict is impossible. *)
      false
    else claim (Atomic.get t.tail)
  in
  claim (Atomic.get t.tail)

let push t v =
  while not (try_push t v) do
    Domain.cpu_relax ()
  done

(* Consume the head cell, known ready ([seq = head + 1]). *)
let take t cell =
  let v = cell.value in
  cell.value <- empty ();
  Atomic.set cell.seq (t.head + t.mask + 1);
  t.head <- t.head + 1;
  v

let try_pop t =
  let cell = t.cells.(t.head land t.mask) in
  if Atomic.get cell.seq = t.head + 1 then Some (take t cell) else None

let drain t ~max f =
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < max do
    let cell = t.cells.(t.head land t.mask) in
    if Atomic.get cell.seq = t.head + 1 then begin
      (* Release the slot before running [f]: producers regain it
         immediately, and [f] may push into this same mailbox without
         deadlocking on its own undrained head. *)
      let v = take t cell in
      incr n;
      f v
    end
    else continue := false
  done;
  !n

let pop ?(spins = 256) t =
  let rec park () =
    Mutex.lock t.lock;
    let rec wait () =
      Atomic.set t.parked true;
      match try_pop t with
      | Some v ->
          Atomic.set t.parked false;
          Mutex.unlock t.lock;
          v
      | None ->
          Condition.wait t.nonempty t.lock;
          wait ()
    in
    wait ()
  and poll n =
    match try_pop t with
    | Some v -> v
    | None ->
        if n > 0 then begin
          Domain.cpu_relax ();
          poll (n - 1)
        end
        else park ()
  in
  poll spins
