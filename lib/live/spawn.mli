(** Domain lifecycle helpers shared by every real-parallelism layer
    (the live runtime, {!Mk_multicore.Par_occ}, the counter
    microbenchmark): spawn/join, wall-clock timing, and the spin hint.

    Keeping the [Domain] calls in this one module (with
    {!Mailbox}) lets the ZCP lint allowlist stay two files wide —
    everything else in the live runtime is coordination-free by
    construction. *)

type 'a handle
(** A running domain producing an ['a]. *)

val spawn : (unit -> 'a) -> 'a handle
val join : 'a handle -> 'a

val parallel : domains:int -> (int -> 'a) -> 'a list
(** Run [f 0 .. f (domains - 1)] each on its own domain and join them
    all, returning results in index order.
    @raise Invalid_argument when [domains < 1]. *)

val timed : domains:int -> (int -> 'a) -> 'a list * float
(** {!parallel} bracketed by {!wall}: results plus elapsed seconds. *)

val wall : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the live runtime's only
    clock. *)

val relax : unit -> unit
(** Spin-wait hint ([Domain.cpu_relax]). *)
