(* Faulty links over mailboxes: the live counterpart of the simulated
   network's per-link fault rules.

   A [ctx] holds one nemesis plan compiled against the wall clock.
   Every cross-domain push in a chaos run is routed through {!send},
   which asks [Mk_fault.Verdict] what happens to the message on its
   (src → dst) link right now: deliver, drop, deliver twice (inline —
   the receiver's idempotent handlers absorb it, as in the sim), or
   delay. Delays go on a shared wheel of (deadline, push) thunks that
   any domain flushes in passing; a delayed message re-enters its
   destination mailbox after the spike, overtaken by everything sent
   in between — the live analogue of the sim's reorder spikes.

   Coordination here is sanctioned (and allowlisted for the Z1 lint,
   like the mailbox internals): one mutex guards the verdict RNG, the
   delay wheel, and the fault counters. It is chaos-mode-only
   machinery — fault-free runs pass a [None] context and pay nothing —
   and the mutex is taken only when a fault window is actually open,
   so even a chaos run under the Calm profile keeps the fast path
   coordination-free.

   Fail-stop is modelled at the link too: messages to or from a down
   endpoint are discarded ([set_down] / [set_up], driven by the
   monitor from the plan's crash events). The down list is read racily
   on the send path (a single immutable-list field; OCaml word reads
   do not tear) and written under the mutex — a send that races a
   crash edge lands on one side or the other, exactly like a message
   in flight during a real crash. *)

module Network = Mk_net.Network
module Nemesis = Mk_fault.Nemesis
module Verdict = Mk_fault.Verdict
module Rng = Mk_util.Rng

type ctx = {
  plan : Nemesis.plan;
  rng : Rng.t;  (** Guarded by [mutex]. *)
  now : unit -> float;  (** Wall-clock µs since the run started. *)
  mutex : Mutex.t;
  mutable wheel : (float * (unit -> unit)) list;
      (** Delayed deliveries, unordered; flush sorts the due ones. *)
  mutable down : (Network.endpoint * float) list;
      (** Down endpoints with their reboot deadlines. *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let create ~plan ~seed ~now =
  {
    plan;
    rng = Rng.create ~seed:(seed lxor 0x6c696e6b (* "link" *));
    now;
    mutex = Mutex.create ();
    wheel = [];
    down = [];
    dropped = 0;
    duplicated = 0;
    delayed = 0;
  }

let set_down t ep ~until =
  Mutex.lock t.mutex;
  t.down <- (ep, until) :: List.remove_assoc ep t.down;
  Mutex.unlock t.mutex

let set_up t ep =
  Mutex.lock t.mutex;
  t.down <- List.remove_assoc ep t.down;
  Mutex.unlock t.mutex

let is_down t ep =
  match List.assoc_opt ep t.down with
  | None -> false
  | Some until -> t.now () < until

let flush t =
  let now = t.now () in
  Mutex.lock t.mutex;
  let due, rest = List.partition (fun (at, _) -> at <= now) t.wheel in
  t.wheel <- rest;
  Mutex.unlock t.mutex;
  List.iter
    (fun (_, deliver) -> deliver ())
    (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) due)

let send t ~src ~dst ~push =
  if is_down t src || is_down t dst then begin
    Mutex.lock t.mutex;
    t.dropped <- t.dropped + 1;
    Mutex.unlock t.mutex
  end
  else begin
    let now = t.now () in
    match Verdict.rule_at t.plan ~now ~src ~dst with
    | None -> push ()
    | Some _ as rule -> begin
        Mutex.lock t.mutex;
        let outcome = Verdict.apply ~rng:t.rng rule in
        (match outcome with
        | Verdict.Drop -> t.dropped <- t.dropped + 1
        | Verdict.Duplicate -> t.duplicated <- t.duplicated + 1
        | Verdict.Delay _ -> t.delayed <- t.delayed + 1
        | Verdict.Deliver -> ());
        (match outcome with
        | Verdict.Delay d -> t.wheel <- (now +. d, push) :: t.wheel
        | _ -> ());
        Mutex.unlock t.mutex;
        match outcome with
        | Verdict.Deliver -> push ()
        | Verdict.Duplicate ->
            push ();
            push ()
        | Verdict.Drop | Verdict.Delay _ -> ()
      end
  end

let via t ~src ~dst ~push =
  match t with None -> push () | Some t -> send t ~src ~dst ~push

let pending t =
  Mutex.lock t.mutex;
  let n = List.length t.wheel in
  Mutex.unlock t.mutex;
  n

let stats t =
  Mutex.lock t.mutex;
  let r = (t.dropped, t.duplicated, t.delayed) in
  Mutex.unlock t.mutex;
  r
