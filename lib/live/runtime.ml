(* The live runtime: the full Meerkat commit protocol on real OCaml 5
   domains.

   Topology: [server_domains] server domains and [coordinators]
   coordinator domains, each owning one {!Mailbox}. Server domain [k]
   hosts core [k] of every replica — a transaction steered to core [k]
   (by [Tid.hash mod server_domains], the same steering the simulator
   uses) has its validate/accept/write-back handled for all replicas
   by that one domain, against each replica's own core-[k] trecord
   partition. Coordinator domains run closed-loop clients driving the
   extracted {!Mk_meerkat.Protocol} state machine — the exact code the
   simulator executes — and translate its actions into mailbox pushes
   instead of simulated sends.

   Zero-coordination: the only cross-domain mutable state on the
   transaction fast path is the mailboxes themselves (and the
   storage layer's own sanctioned shard locks). Coordinators share
   nothing with each other — per-coordinator RNG, workload, Obs
   handle, latency histogram, and committed list, merged only after
   join.

   Deadlock freedom: producers block (spin) on a full mailbox, so a
   cycle of full queues must not form. Server inboxes can fill — their
   producers (coordinators) keep draining their own inboxes only
   between pushes, but a server drains continuously unless *it* is
   blocked pushing a reply. Reply traffic is bounded: a coordinator
   with [m] local clients has at most [m] undecided attempts, each
   with at most one outstanding request per replica per retransmission
   round, so a coordinator inbox of [coord_inbox] >= a few times
   [m * n_replicas] can never be full when a server pushes — the
   server never blocks, so every cycle contains a non-blocking node.
   {!run} enforces that bound.

   Chaos mode ([config.chaos]): the same topology plus one monitor
   domain hosting the transport-agnostic {!Mk_meerkat.Detector}. Every
   cross-domain message routes through {!Link} (the wall-clock verdict
   of the run's nemesis plan); server domains gain heartbeat agents
   and trecord snapshots for the detector; the monitor injects the
   plan's crashes, drives §5.3.2 view changes over the same mailboxes,
   and runs §5.3.1 epoch changes under a freeze handshake. Chaos-mode
   deadlock freedom is simpler and stricter: every chaos-path push is
   a [try_push] whose failure counts as a link drop (retransmission
   recovers it), so no chaos-mode producer ever blocks. The only
   blocking chaos push is a server's [Mon_frozen] ack, sent exactly
   when the monitor is draining its inbox waiting for it.

   Chaos-mode shutdown is a rendezvous, not a deadline: a coordinator
   may still be retransmitting past the horizon (e.g. an attempt whose
   record a backup view change touched and then abandoned — its accept
   retries answer [`Stale] until a fresh view change finishes it), so
   each coordinator pushes [Mon_coord_done] when its clients are done
   and the monitor keeps scanning and driving recovery until the
   settle deadline has passed AND every coordinator has reported in.
   Server heartbeats and snapshots likewise run until [Stop], feeding
   those late scans. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Trecord = Mk_storage.Trecord
module Intf = Mk_model.System_intf
module Network = Mk_net.Network
module Nemesis = Mk_fault.Nemesis
module Verdict = Mk_fault.Verdict
module Quorum = Mk_meerkat.Quorum
module Batch = Mk_meerkat.Batch
module Protocol = Mk_meerkat.Protocol
module Replica = Mk_meerkat.Replica
module Detector = Mk_meerkat.Detector
module Recovery = Mk_meerkat.Recovery
module Epoch = Mk_meerkat.Epoch
module Workload = Mk_workload.Workload
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span
module Histogram = Mk_util.Histogram
module Wal = Mk_durable.Wal
module Walcodec = Mk_durable.Walcodec
module Dsnapshot = Mk_durable.Snapshot
module Recover = Mk_durable.Recover

type workload_kind = Ycsb_t | Rmw_pair | Retwis

type durable = { dir : string; policy : Wal.policy }

type chaos = {
  plan : Nemesis.plan;
  detector : Detector.cfg;
  horizon_us : float;
  settle_us : float;
}

type config = {
  server_domains : int;
  n_replicas : int;
  coordinators : int;
  clients : int;
  keys : int;
  theta : float;
  workload : workload_kind;
  txns_per_client : int;
  duration : float option;
  offered_rate : float option;
  seed : int;
  rto_us : float;
  grace_us : float;
  server_inbox : int;
  coord_inbox : int;
  chaos : chaos option;
  durable : durable option;
}

let default_config =
  {
    server_domains = 2;
    n_replicas = 3;
    coordinators = 2;
    clients = 8;
    keys = 1024;
    theta = 0.6;
    workload = Ycsb_t;
    txns_per_client = 50;
    duration = None;
    offered_rate = None;
    seed = 42;
    (* Mailboxes do not lose messages, so the retransmission timer is
       a pure safety net: generous enough never to fire on a loaded
       box. The fast-grace timer is the one that matters live — it
       bounds how long a coordinator waits for fast-quorum stragglers
       before settling for the slow path. *)
    rto_us = 200_000.0;
    grace_us = 5_000.0;
    server_inbox = 1024;
    coord_inbox = 4096;
    chaos = None;
    durable = None;
  }

(* --- Per-(replica, core) durable files (DESIGN.md §12). ---

   Server domain [k] owns core [k] of every replica, so file
   [r<r>-c<k>.wal] has a single writer: the hook's [Finalized {core}]
   fires inside that core's handler. [Installed] fires only from the
   monitor's epoch change while every server domain is parked on its
   control mailbox, so the full-state snapshots it writes race with
   nothing. *)

let durable_wal_path ~dir ~replica ~core =
  Filename.concat dir (Printf.sprintf "r%d-c%d.wal" replica core)

let durable_snap_path ~dir ~replica ~core =
  Filename.concat dir (Printf.sprintf "r%d-c%d.snap" replica core)

let fresh_data_dir ~tag =
  let base = Filename.get_temp_dir_name () in
  let rec go i =
    let dir =
      Filename.concat base
        (Printf.sprintf "mk-%s-%d-%d" tag (Unix.getpid ()) i)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let read_durable_sources ~dir ~replica ~cores =
  List.init cores (fun core ->
      let log =
        match
          In_channel.with_open_bin
            (durable_wal_path ~dir ~replica ~core)
            In_channel.input_all
        with
        | s -> s
        | exception Sys_error _ -> ""
      in
      {
        Recover.snap = Dsnapshot.read ~path:(durable_snap_path ~dir ~replica ~core);
        log;
      })

let remove_data_dir ~dir ~n_replicas ~cores =
  for r = 0 to n_replicas - 1 do
    for c = 0 to cores - 1 do
      (try Sys.remove (durable_wal_path ~dir ~replica:r ~core:c)
       with Sys_error _ -> ());
      try Sys.remove (durable_snap_path ~dir ~replica:r ~core:c)
      with Sys_error _ -> ()
    done
  done;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let chaos_detector_cfg ~horizon_us =
  {
    Detector.heartbeat_every = horizon_us /. 100.0;
    heartbeat_timeout = horizon_us /. 16.0;
    pause_timeout = horizon_us /. 8.0;
    stuck_timeout = horizon_us /. 16.0;
    scan_every = horizon_us /. 64.0;
    epoch_cooldown = horizon_us /. 6.0;
    give_up_after = horizon_us /. 2.5;
  }

type report = {
  server_domains : int;
  coordinators : int;
  clients : int;
  committed : (Txn.t * Timestamp.t) list;
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  submitted : int;
  acked : int;
  epoch_changes : int;
  view_changes : int;
  fault_events : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  wal_appends : int;
  wal_bytes : int;
  wal_fsyncs : int;
  snapshots : int;
  snapshot_bytes : int;
  gc_minor_words : int;
  gc_majors : int;
  alloc_per_txn : int;
  replicas : Replica.t array;
}

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

(* Requests carry (coord, slot, seq) so the reply can be routed back to
   the issuing attempt; [seq] is the client-local transaction sequence
   number, so a late reply for a finished attempt can never be taken
   for the current one.

   Fault-free runs use the mask-batched constructors: server domain [k]
   hosts core [k] of EVERY replica, so a protocol broadcast lands in
   one inbox regardless of fan-out — [Validates] carries a replica
   bitmask instead of being pushed once per replica, and the server
   answers with one [Validated_batch] whose statuses are packed four
   bits per replica. One mailbox message per protocol round instead of
   [n_replicas], with no per-replica envelope allocations. The packing
   caps [n_replicas] at 15 (4-bit lanes in a 63-bit int); {!run}
   enforces that. Chaos mode keeps the per-replica singleton messages:
   the link faults each (coordinator, replica) pair independently, so
   batching there would change which partial deliveries are possible. *)
type server_msg =
  | Validates of {
      mask : int;  (* bit r: validate at replica r *)
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
    }
  | Accepts of {
      mask : int;
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : [ `Commit | `Abort ];
      view : int;
    }
  | Write_backs of { mask : int; txn : Txn.t; ts : Timestamp.t; commit : bool }
  (* Per-replica singletons: chaos-mode traffic routed through the
     per-pair {!Link}, plus the `Stale` accept reply fallback. *)
  | Validate of {
      replica : int;
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
    }
  | Accept of {
      replica : int;
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : [ `Commit | `Abort ];
      view : int;
    }
  | Write_back of { replica : int; txn : Txn.t; ts : Timestamp.t; commit : bool }
  (* Chaos-mode recovery traffic (monitor-initiated, §5.3.2). *)
  | Coord_change of { replica : int; observer : int; tid : Tid.t; view : int }
  | Vc_accept of {
      replica : int;
      observer : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : [ `Commit | `Abort ];
      view : int;
    }
  | Freeze
  | Stop

(* 4-bit status lanes for the batched replies. [Txn.status] has six
   constant constructors, so a code always fits a lane; accept replies
   use code 0 for [`Accepted] and [1 + status] for [`Finalized] —
   [`Stale] carries an unbounded view number and falls back to a
   singleton [Accepted] message (it only arises under view changes,
   which chaos mode drives over the singleton path anyway). *)
let status_code : Txn.status -> int = function
  | Txn.Validated_ok -> 0
  | Txn.Validated_abort -> 1
  | Txn.Accepted_commit -> 2
  | Txn.Accepted_abort -> 3
  | Txn.Committed -> 4
  | Txn.Aborted -> 5

let status_of_code : int -> Txn.status = function
  | 0 -> Txn.Validated_ok
  | 1 -> Txn.Validated_abort
  | 2 -> Txn.Accepted_commit
  | 3 -> Txn.Accepted_abort
  | 4 -> Txn.Committed
  | 5 -> Txn.Aborted
  | c -> invalid_arg (Printf.sprintf "Runtime.status_of_code: %d" c)

let max_replicas_batched = 15

type coord_msg =
  | Validated_batch of {
      slot : int;
      seq : int;
      mask : int;  (* bit r: replica r's status is in lane r *)
      statuses : int;  (* 4 bits per replica: [status_code] *)
    }
  | Accepted_batch of {
      slot : int;
      seq : int;
      mask : int;
      replies : int;  (* 4 bits per replica: 0 accepted, 1+s finalized *)
    }
  | Validated of { slot : int; seq : int; replica : int; status : Txn.status }
  | Accepted of {
      slot : int;
      seq : int;
      replica : int;
      reply : Protocol.accept_reply;
    }
  | Coord_kill of { until_us : float }
      (* Fail the coordinator process until the given wall time: it
         discards its inbox while down and resumes its attempts with
         {!Protocol.Resume} on reboot. *)

(* Everything the monitor domain learns arrives as one of these. *)
type mon_msg =
  | Mon_heartbeat of { from_ : int; observer : int; paused : bool }
      (* [from_ = observer] is the sender's own tick (it always hears
         itself, never over the faulty link). *)
  | Mon_records of { core : int; records : (int * Trecord.entry) list }
      (* Snapshot of one core's non-final records, per replica. The
         entries are fresh copies: the live partitions stay owned by
         their server domain. *)
  | Mon_frozen of { core : int }
  | Mon_coord_reply of {
      tid : Tid.t;
      observer : int;
      replica : int;
      reply : [ `View_ok of Replica.record_view option | `Stale of int ];
    }
  | Mon_accept_reply of {
      tid : Tid.t;
      observer : int;
      replica : int;
      reply : [ `Accepted | `Stale of int | `Finalized of Txn.status ];
    }
  | Mon_coord_done
      (* A coordinator's clients are all done: the monitor keeps
         recovery running until every coordinator has reported in, so
         an attempt stranded by an abandoned view change (its accept
         retries answer [`Stale] forever) is always re-recovered
         rather than spinning unbounded. *)

(* ------------------------------------------------------------------ *)
(* Server domains                                                      *)
(* ------------------------------------------------------------------ *)

(* How many messages a server consumes per [Mailbox.drain] before
   letting its producers reclaim the released slots. One batched
   message already covers a whole broadcast, so this bounds latency,
   not fan-out. *)
let server_drain_budget = 128

(* One message, handled against every replica named in its mask. The
   replies pack one 4-bit lane per replica and go back as a single
   mailbox push (blocking, as before: {!run} sizes coordinator inboxes
   so a server never blocks while a coordinator is blocked on it). *)
let server_handle ~core ~replicas ~coord_inboxes ~stop msg =
  match msg with
  | Stop -> stop := true
  | Validates { mask; coord; slot; seq; txn; ts } ->
      let rmask = ref 0 and statuses = ref 0 in
      let m = ref mask and r = ref 0 in
      while !m <> 0 do
        (if !m land 1 = 1 then
           match Replica.handle_validate replicas.(!r) ~core ~txn ~ts with
           | None -> ()
           | Some status ->
               rmask := !rmask lor (1 lsl !r);
               statuses := !statuses lor (status_code status lsl (4 * !r)));
        incr r;
        m := !m lsr 1
      done;
      if !rmask <> 0 then
        Mailbox.push coord_inboxes.(coord)
          (Validated_batch { slot; seq; mask = !rmask; statuses = !statuses })
  | Accepts { mask; coord; slot; seq; txn; ts; decision; view } ->
      let rmask = ref 0 and packed = ref 0 in
      let m = ref mask and r = ref 0 in
      while !m <> 0 do
        (if !m land 1 = 1 then
           match
             Replica.handle_accept replicas.(!r) ~core ~txn ~ts ~decision ~view
           with
           | None -> ()
           | Some `Accepted -> rmask := !rmask lor (1 lsl !r)
           | Some (`Finalized st) ->
               rmask := !rmask lor (1 lsl !r);
               packed := !packed lor ((1 + status_code st) lsl (4 * !r))
           | Some (`Stale _ as reply) ->
               (* View numbers do not fit a lane; ship the straggler
                  as a legacy singleton. *)
               Mailbox.push coord_inboxes.(coord)
                 (Accepted { slot; seq; replica = !r; reply }));
        incr r;
        m := !m lsr 1
      done;
      if !rmask <> 0 then
        Mailbox.push coord_inboxes.(coord)
          (Accepted_batch { slot; seq; mask = !rmask; replies = !packed })
  | Write_backs { mask; txn; ts; commit } ->
      let m = ref mask and r = ref 0 in
      while !m <> 0 do
        if !m land 1 = 1 then
          ignore
            (Replica.handle_commit replicas.(!r) ~core ~txn ~ts ~commit
              : unit option);
        incr r;
        m := !m lsr 1
      done
  | Validate { replica; coord; slot; seq; txn; ts } -> (
      match Replica.handle_validate replicas.(replica) ~core ~txn ~ts with
      | None -> ()
      | Some status ->
          Mailbox.push coord_inboxes.(coord)
            (Validated { slot; seq; replica; status }))
  | Accept { replica; coord; slot; seq; txn; ts; decision; view } -> (
      match
        Replica.handle_accept replicas.(replica) ~core ~txn ~ts ~decision ~view
      with
      | None -> ()
      | Some reply ->
          Mailbox.push coord_inboxes.(coord)
            (Accepted { slot; seq; replica; reply }))
  | Write_back { replica; txn; ts; commit } ->
      ignore
        (Replica.handle_commit replicas.(replica) ~core ~txn ~ts ~commit
          : unit option)
  | Coord_change _ | Vc_accept _ | Freeze ->
      (* Monitor traffic never flows without a monitor. *)
      ()

let server_loop ~core ~replicas ~inbox ~coord_inboxes =
  let stop = ref false in
  let handle = server_handle ~core ~replicas ~coord_inboxes ~stop in
  while not !stop do
    if Mailbox.drain inbox ~max:server_drain_budget handle = 0 then
      (* Z8: this parking pop IS the drain loop's idle wait — the
         server domain has nothing to do until a message arrives, so
         blocking here is the design, not a hazard. *)
      handle (Mailbox.pop inbox [@mk_lint.allow "Z8"])
  done

(* Chaos-mode server domain: the same handlers, polling instead of
   parking, with every outbound reply routed through the link, plus a
   heartbeat agent and a periodic trecord snapshot for the detector.
   On [Freeze] the domain acks and parks on its control mailbox until
   the monitor finishes the epoch change — the live analogue of the
   sim pausing every core at one instant. *)
let server_chaos_loop (cfg : config) ~chaos ~t0 ~core ~replicas ~inbox
    ~coord_inboxes ~mon_inbox ~control ~link =
  let n = cfg.n_replicas in
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let dcfg = chaos.detector in
  let next_hb =
    ref (float_of_int core *. dcfg.heartbeat_every
        /. float_of_int cfg.server_domains)
  in
  let next_snap = ref (dcfg.scan_every /. 2.0) in
  let reply_coord ~replica ~coord msg =
    Link.send link ~src:(Network.Replica replica) ~dst:(Network.Client coord)
      ~push:(fun () -> ignore (Mailbox.try_push coord_inboxes.(coord) msg))
  in
  let reply_mon ~replica ~observer msg =
    Link.send link ~src:(Network.Replica replica)
      ~dst:(Network.Replica observer)
      ~push:(fun () -> ignore (Mailbox.try_push mon_inbox msg))
  in
  let heartbeat () =
    for r = 0 to n - 1 do
      if r mod cfg.server_domains = core && not (Replica.is_crashed replicas.(r))
      then begin
        let paused = Replica.is_paused replicas.(r) in
        ignore
          (Mailbox.try_push mon_inbox
             (Mon_heartbeat { from_ = r; observer = r; paused }));
        for p = 0 to n - 1 do
          if p <> r then
            Link.send link ~src:(Network.Replica r) ~dst:(Network.Replica p)
              ~push:(fun () ->
                ignore
                  (Mailbox.try_push mon_inbox
                     (Mon_heartbeat { from_ = r; observer = p; paused })))
        done
      end
    done
  in
  let snapshot () =
    let records = ref [] in
    for r = 0 to n - 1 do
      if not (Replica.is_crashed replicas.(r)) then
        List.iter
          (fun (e : Trecord.entry) ->
            if not (Txn.is_final e.Trecord.status) then
              records := (r, { e with Trecord.ts = e.Trecord.ts }) :: !records)
          (Trecord.core_entries (Replica.trecord replicas.(r)) ~core)
    done;
    ignore (Mailbox.try_push mon_inbox (Mon_records { core; records = !records }))
  in
  let stop = ref false in
  let idle = ref 0 in
  while not !stop do
    match Mailbox.try_pop inbox with
    | Some msg -> (
        idle := 0;
        match msg with
        | Stop -> stop := true
        | Validates { mask; coord; slot; seq; txn; ts } ->
            (* Chaos coordinators send per-replica singletons (the link
               faults each pair independently), but handle a batch
               correctly anyway: per-replica link-routed replies. *)
            for r = 0 to n - 1 do
              if mask land (1 lsl r) <> 0 then
                match Replica.handle_validate replicas.(r) ~core ~txn ~ts with
                | None -> ()
                | Some status ->
                    reply_coord ~replica:r ~coord
                      (Validated { slot; seq; replica = r; status })
            done
        | Accepts { mask; coord; slot; seq; txn; ts; decision; view } ->
            for r = 0 to n - 1 do
              if mask land (1 lsl r) <> 0 then
                match
                  Replica.handle_accept replicas.(r) ~core ~txn ~ts ~decision
                    ~view
                with
                | None -> ()
                | Some reply ->
                    reply_coord ~replica:r ~coord
                      (Accepted { slot; seq; replica = r; reply })
            done
        | Write_backs { mask; txn; ts; commit } ->
            for r = 0 to n - 1 do
              if mask land (1 lsl r) <> 0 then
                ignore
                  (Replica.handle_commit replicas.(r) ~core ~txn ~ts ~commit
                    : unit option)
            done
        | Validate { replica; coord; slot; seq; txn; ts } -> (
            match Replica.handle_validate replicas.(replica) ~core ~txn ~ts with
            | None -> ()
            | Some status ->
                reply_coord ~replica ~coord (Validated { slot; seq; replica; status }))
        | Accept { replica; coord; slot; seq; txn; ts; decision; view } -> (
            match
              Replica.handle_accept replicas.(replica) ~core ~txn ~ts ~decision
                ~view
            with
            | None -> ()
            | Some reply ->
                reply_coord ~replica ~coord (Accepted { slot; seq; replica; reply }))
        | Write_back { replica; txn; ts; commit } ->
            ignore
              (Replica.handle_commit replicas.(replica) ~core ~txn ~ts ~commit
                : unit option)
        | Coord_change { replica; observer; tid; view } -> (
            match
              Replica.handle_coord_change replicas.(replica) ~core ~tid ~view
            with
            | None -> ()
            | Some reply ->
                reply_mon ~replica ~observer
                  (Mon_coord_reply { tid; observer; replica; reply }))
        | Vc_accept { replica; observer; txn; ts; decision; view } -> (
            match
              Replica.handle_accept replicas.(replica) ~core ~txn ~ts ~decision
                ~view
            with
            | None -> ()
            | Some reply ->
                reply_mon ~replica ~observer
                  (Mon_accept_reply
                     { tid = txn.Txn.tid; observer; replica; reply }))
        | Freeze ->
            (* The monitor is draining its inbox waiting for this ack,
               so the blocking push always completes; then park until
               it hands the cores back. *)
            Mailbox.push mon_inbox (Mon_frozen { core });
            ignore (Mailbox.pop control : unit))
    | None ->
        (* Chatter runs until [Stop]: the monitor may still be driving
           recovery for a straggling coordinator past the settle
           deadline and needs fresh heartbeats and snapshots. After
           the monitor exits these try_pushes fill its inbox and fail,
           which is harmless. *)
        let now = wall_us () in
        if now >= !next_hb then begin
          heartbeat ();
          next_hb := now +. dcfg.heartbeat_every
        end;
        if now >= !next_snap then begin
          snapshot ();
          next_snap := now +. (dcfg.scan_every /. 2.0)
        end;
        Link.flush link;
        incr idle;
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
  done

(* ------------------------------------------------------------------ *)
(* Monitor domain (chaos mode)                                         *)
(* ------------------------------------------------------------------ *)

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

(* A §5.3.2 backup-coordinator view change in flight, driven by the
   monitor over the server mailboxes — the wall-clock mirror of
   [Sim_system.start_view_change]. *)
type vc_machine = {
  vc_observer : int;
  vc_txn : Txn.t;
  vc_ts : Timestamp.t;
  vc_view : int;
  vc_core : int;
  vc_deadline : float;
  vc_gathered : (int, Recovery.reply) Hashtbl.t;
  mutable vc_chosen : [ `Commit | `Abort ] option;
  vc_accept_from : bool array;
  mutable vc_rto : float;
  mutable vc_next_retry : float;
}

type mon_result = {
  m_epoch_changes : int;
  m_view_changes : int;
  m_fault_events : int;
}

let monitor (cfg : config) ~chaos ~t0 ~replicas ~server_inboxes ~coord_inboxes
    ~mon_inbox ~controls ~link =
  let n = cfg.n_replicas in
  let quorum = Quorum.create ~n in
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let dcfg = chaos.detector in
  let det = Detector.create ~cfg:dcfg ~n ~now:(wall_us ()) in
  (* Latest per-core trecord snapshots, per replica. *)
  let latest = Array.make_matrix cfg.server_domains n [] in
  let down_until = Array.make n neg_infinity in
  let ec_count = ref 0 in
  let vc_count = ref 0 in
  let fault_events = ref 0 in
  let vcs : vc_machine Tid_table.t = Tid_table.create 16 in
  let crashes = ref (Verdict.crashes chaos.plan) in
  let edges = ref (Verdict.window_edges chaos.plan) in
  let frozen_pending = ref 0 in
  let coords_pending = ref cfg.coordinators in
  let to_server ~observer ~core msg ~dst =
    Link.send link ~src:(Network.Replica observer) ~dst
      ~push:(fun () -> ignore (Mailbox.try_push server_inboxes.(core) msg))
  in
  let vc_abandon tid vc =
    Tid_table.remove vcs tid;
    Detector.view_change_finished det ~now:(wall_us ()) ~observer:vc.vc_observer
      ~tid ~outcome:`Abandoned
  in
  let vc_send_gather tid vc =
    for r = 0 to n - 1 do
      if
        (not (Hashtbl.mem vc.vc_gathered r))
        && not (Replica.is_crashed replicas.(r))
      then
        to_server ~observer:vc.vc_observer ~core:vc.vc_core
          ~dst:(Network.Replica r)
          (Coord_change
             { replica = r; observer = vc.vc_observer; tid; view = vc.vc_view })
    done
  in
  let vc_send_accepts tid vc decision =
    ignore tid;
    for r = 0 to n - 1 do
      if (not vc.vc_accept_from.(r)) && not (Replica.is_crashed replicas.(r))
      then
        to_server ~observer:vc.vc_observer ~core:vc.vc_core
          ~dst:(Network.Replica r)
          (Vc_accept
             {
               replica = r;
               observer = vc.vc_observer;
               txn = vc.vc_txn;
               ts = vc.vc_ts;
               decision;
               view = vc.vc_view;
             })
    done
  in
  (* Phase 3: write-back the chosen outcome everywhere. *)
  let vc_finish tid vc ~commit =
    Tid_table.remove vcs tid;
    for r = 0 to n - 1 do
      if not (Replica.is_crashed replicas.(r)) then
        to_server ~observer:vc.vc_observer ~core:vc.vc_core
          ~dst:(Network.Replica r)
          (Write_back { replica = r; txn = vc.vc_txn; ts = vc.vc_ts; commit })
    done;
    Detector.view_change_finished det ~now:(wall_us ()) ~observer:vc.vc_observer
      ~tid ~outcome:`Finished;
    incr vc_count
  in
  let handle_mon msg =
    match msg with
    | Mon_heartbeat { from_; observer; paused } ->
        let now = wall_us () in
        if from_ = observer then Detector.heartbeat_tick det ~now ~replica:from_
        else if not (Replica.is_crashed replicas.(observer)) then
          Detector.heartbeat_received det ~now ~observer ~from_ ~paused
    | Mon_records { core; records } ->
        let by_replica = Array.make n [] in
        List.iter (fun (r, e) -> by_replica.(r) <- e :: by_replica.(r)) records;
        latest.(core) <- by_replica
    | Mon_frozen _ -> decr frozen_pending
    | Mon_coord_done -> decr coords_pending
    | Mon_coord_reply { tid; observer; replica; reply } -> (
        match Tid_table.find_opt vcs tid with
        | Some vc when vc.vc_observer = observer && vc.vc_chosen = None -> (
            match reply with
            | `Stale _ ->
                (* Another backup moved to a higher view; leave the
                   transaction to it. *)
                vc_abandon tid vc
            | `View_ok record ->
                if not (Hashtbl.mem vc.vc_gathered replica) then
                  Hashtbl.replace vc.vc_gathered replica
                    (match record with
                    | None -> Recovery.No_record
                    | Some v -> Recovery.Record v);
                if Hashtbl.length vc.vc_gathered >= Quorum.majority quorum
                then begin
                  let replies =
                    Hashtbl.fold (fun r v acc -> (r, v) :: acc) vc.vc_gathered []
                  in
                  let decision = Recovery.choose ~quorum ~replies in
                  vc.vc_chosen <- Some decision;
                  vc_send_accepts tid vc decision
                end)
        | Some _ | None -> ())
    | Mon_accept_reply { tid; observer; replica; reply } -> (
        match Tid_table.find_opt vcs tid with
        | Some vc when vc.vc_observer = observer -> (
            match reply with
            | `Accepted -> (
                if not vc.vc_accept_from.(replica) then begin
                  vc.vc_accept_from.(replica) <- true;
                  let acks =
                    Array.fold_left
                      (fun acc ok -> if ok then acc + 1 else acc)
                      0 vc.vc_accept_from
                  in
                  if acks >= Quorum.majority quorum then
                    match vc.vc_chosen with
                    | Some decision -> vc_finish tid vc ~commit:(decision = `Commit)
                    | None -> ()
                end)
            | `Finalized st -> vc_finish tid vc ~commit:(st = Txn.Committed)
            | `Stale _ -> vc_abandon tid vc)
        | Some _ | None -> ())
  in
  let drain_some () =
    match Mailbox.try_pop mon_inbox with
    | Some m ->
        handle_mon m;
        true
    | None -> false
  in
  (* §5.3.1 under a freeze handshake: stop every server domain at one
     instant, run the synchronous epoch change (the exact body of
     [Sim_system.run_epoch_change]), hand the cores back. While the
     freeze tokens go out the monitor keeps draining its own inbox, so
     a server blocked pushing an ack can never deadlock it. *)
  let run_epoch_change ~recovering =
    frozen_pending := cfg.server_domains;
    for k = 0 to cfg.server_domains - 1 do
      while not (Mailbox.try_push server_inboxes.(k) Freeze) do
        ignore (drain_some () : bool);
        Spawn.relax ()
      done
    done;
    while !frozen_pending > 0 do
      if not (drain_some ()) then Spawn.relax ()
    done;
    (* Every server domain is parked on its control mailbox: the
       replicas belong to the monitor alone (coordinator execute-phase
       reads go through the vstore's own shard locks and stay safe). *)
    let healthy =
      List.filter
        (fun r ->
          (not (Replica.is_crashed replicas.(r))) && not (List.mem r recovering))
        (List.init n Fun.id)
    in
    let success =
      if List.length healthy < Quorum.majority quorum then false
      else begin
        List.iter (fun id -> Replica.begin_recovery replicas.(id)) recovering;
        let epoch =
          1 + Array.fold_left (fun acc r -> max acc (Replica.epoch r)) 0 replicas
        in
        let reports =
          List.filter_map
            (fun r ->
              match Replica.handle_epoch_change replicas.(r) ~epoch with
              | None -> None
              | Some _ ->
                  Some
                    {
                      Epoch.replica = r;
                      records = Replica.record_views replicas.(r);
                    })
            healthy
        in
        if List.length reports < Quorum.majority quorum then false
        else begin
          let merged = Epoch.merge ~quorum ~reports in
          (* Healthy replicas install first so the snapshot sent to
             the recovering replicas reflects every merged commit. *)
          List.iter
            (fun r ->
              ignore
                (Replica.handle_epoch_complete replicas.(r) ~epoch
                   ~records:merged ~store:None))
            healthy;
          let snapshot =
            match healthy with
            | r :: _ -> Replica.store_snapshot replicas.(r)
            | [] -> []
          in
          List.iter
            (fun id ->
              ignore
                (Replica.handle_epoch_complete replicas.(id) ~epoch
                   ~records:merged ~store:(Some snapshot)))
            recovering;
          true
        end
      end
    in
    Array.iter (fun ctl -> Mailbox.push ctl ()) controls;
    Detector.epoch_change_finished det ~now:(wall_us ()) ~success ~recovering;
    if success then incr ec_count
  in
  let perform = function
    | Detector.Start_view_change { observer; record; view } ->
        let tid = record.Trecord.txn.Txn.tid in
        let now = wall_us () in
        let vc =
          {
            vc_observer = observer;
            vc_txn = record.Trecord.txn;
            vc_ts = record.Trecord.ts;
            vc_view = view;
            vc_core = Tid.hash tid mod cfg.server_domains;
            vc_deadline = now +. dcfg.give_up_after;
            vc_gathered = Hashtbl.create 8;
            vc_chosen = None;
            vc_accept_from = Array.make n false;
            vc_rto = cfg.rto_us;
            vc_next_retry = now +. cfg.rto_us;
          }
        in
        Tid_table.replace vcs tid vc;
        vc_send_gather tid vc
    | Detector.Start_epoch_change { initiator = _; recovering } ->
        run_epoch_change ~recovering
  in
  let process_due now =
    (match !edges with
    | (at, _name) :: rest when at <= now ->
        incr fault_events;
        edges := rest
    | _ -> ());
    match !crashes with
    | Nemesis.Replica_crash { at; victim; down_for } :: rest when at <= now ->
        crashes := rest;
        incr fault_events;
        Replica.crash replicas.(victim);
        Link.set_down link (Network.Replica victim) ~until:(at +. down_for);
        down_until.(victim) <- at +. down_for
    | Nemesis.Coordinator_crash { at; client; down_for } :: rest when at <= now
      ->
        crashes := rest;
        incr fault_events;
        ignore
          (Mailbox.try_push
             coord_inboxes.(client mod cfg.coordinators)
             (Coord_kill { until_us = at +. down_for }))
    | _ -> ()
  in
  let observer_records o =
    let acc = ref [] in
    for k = 0 to cfg.server_domains - 1 do
      acc := List.rev_append latest.(k).(o) !acc
    done;
    !acc
  in
  let next_scan =
    Array.init n (fun o ->
        ref
          ((dcfg.scan_every /. 2.0)
          +. (float_of_int o *. dcfg.scan_every /. float_of_int n)))
  in
  let det_acts : Detector.action Batch.t = Batch.create () in
  let scan_tick now =
    for o = 0 to n - 1 do
      if now >= !(next_scan.(o)) then begin
        next_scan.(o) := now +. dcfg.scan_every;
        if not (Replica.is_crashed replicas.(o)) then begin
          let rep = replicas.(o) in
          Batch.clear det_acts;
          Detector.scan det ~now ~observer:o
            ~paused:(Replica.is_paused rep)
            ~available:(Replica.is_available rep)
            ~records:(fun () -> observer_records o)
            ~recoverable:(fun p ->
              (not (Replica.is_crashed replicas.(p))) || now >= down_until.(p))
            ~into:det_acts;
          Batch.iter perform det_acts
        end
      end
    done
  in
  let vc_ticks now =
    let expired = ref [] in
    Tid_table.iter
      (fun tid vc ->
        if now > vc.vc_deadline then expired := (tid, vc) :: !expired
        else if now >= vc.vc_next_retry then begin
          vc.vc_rto <- vc.vc_rto *. 2.0;
          vc.vc_next_retry <- now +. vc.vc_rto;
          match vc.vc_chosen with
          | Some decision -> vc_send_accepts tid vc decision
          | None -> vc_send_gather tid vc
        end)
      vcs;
    List.iter (fun (tid, vc) -> vc_abandon tid vc) !expired
  in
  let stop_initiate_at = chaos.horizon_us +. (chaos.settle_us /. 2.0) in
  let end_at = chaos.horizon_us +. chaos.settle_us in
  let idle = ref 0 in
  (* The monitor outlives the settle deadline for as long as any
     coordinator is still working: a stranded attempt (see the header
     comment) only finishes when a fresh view change finalizes its
     record, so scans keep initiating until every coordinator has
     pushed [Mon_coord_done]. *)
  let rec main () =
    let now = wall_us () in
    if now < end_at || !coords_pending > 0 then begin
      let progressed = ref false in
      let rec drain budget =
        if budget > 0 && drain_some () then begin
          progressed := true;
          drain (budget - 1)
        end
      in
      drain 256;
      process_due now;
      if now < stop_initiate_at || !coords_pending > 0 then scan_tick now;
      vc_ticks now;
      Link.flush link;
      if !progressed then idle := 0
      else begin
        incr idle;
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      main ()
    end
  in
  main ();
  (* Abandon anything still in flight so the detector state stays
     consistent, and deliver the last stragglers off the wheel. *)
  let leftover = Tid_table.fold (fun tid vc acc -> (tid, vc) :: acc) vcs [] in
  List.iter (fun (tid, vc) -> vc_abandon tid vc) leftover;
  Link.flush link;
  {
    m_epoch_changes = !ec_count;
    m_view_changes = !vc_count;
    m_fault_events = !fault_events;
  }

(* ------------------------------------------------------------------ *)
(* Coordinator domains                                                 *)
(* ------------------------------------------------------------------ *)

type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  core : int;
  att_seq : int;
  proto : Protocol.t;
  att_t0 : float;
      (* Latency origin: the protocol start in closed-loop mode, the
         INTENDED launch instant in open-loop mode — so a client that
         fell behind its schedule reports the queueing delay it
         actually imposed (no coordinated omission). *)
  mutable timers : (Protocol.timer * float) list;  (* absolute µs deadlines *)
}

type client = {
  cid : int;
  slot : int;
  mutable next_seq : int;
  mutable last_time : float;
  mutable done_txns : int;
  mutable next_launch : float;  (* open-loop: next scheduled launch (µs) *)
  mutable active : attempt option;
}

type coord_result = {
  c_committed : (Txn.t * Timestamp.t) list;
  c_latencies : Histogram.t;
  c_obs : Obs.t;
  c_submitted : int;
  c_acked : int;
}

let coordinator (cfg : config) ~t0 ~replicas ~server_inboxes ~coord_inboxes
    ~link ~mon_inbox ~coord_id =
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  (* The protocol doubles its retransmission interval on every retry —
     free in virtual sim time, but on the wall clock an unlucky chaos
     run would soon be retrying minutes apart. Cap the armed interval;
     the doubled re-arm of a capped timer lands back on the cap. *)
  let rto_cap = 8.0 *. cfg.rto_us in
  let obs = Obs.create ~clock:wall_us () in
  let lat = Histogram.create () in
  let committed = ref [] in
  let inbox = coord_inboxes.(coord_id) in
  let params =
    {
      Protocol.n_replicas = cfg.n_replicas;
      quorum = Quorum.create ~n:cfg.n_replicas;
      rto = cfg.rto_us;
      grace = cfg.grace_us;
    }
  in
  let rng = Mk_util.Rng.create ~seed:(cfg.seed + (7919 * (coord_id + 1))) in
  let wl =
    match cfg.workload with
    | Ycsb_t -> Workload.ycsb_t ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Rmw_pair -> Workload.rmw_pair ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Retwis -> Workload.retwis ~rng ~keys:cfg.keys ~theta:cfg.theta
  in
  (* Open-loop load: [offered_rate] is the AGGREGATE offered load in
     txn/s across all clients, so each client launches every
     [clients / rate] seconds, phase-staggered by client id — the
     global launch train is evenly spaced at 1/rate. The schedule is
     arithmetic ([next_launch +. interval], never [now +. interval]),
     so a slow txn does not silently thin the offered load. *)
  let launch_interval_us =
    Option.map
      (fun rate -> 1e6 *. float_of_int cfg.clients /. rate)
      cfg.offered_rate
  in
  let first_launch cid =
    match cfg.offered_rate with
    | Some rate -> float_of_int cid *. (1e6 /. rate)
    | None -> 0.0
  in
  let local =
    List.init cfg.clients Fun.id
    |> List.filter (fun cid -> cid mod cfg.coordinators = coord_id)
    |> List.mapi (fun slot cid ->
           {
             cid;
             slot;
             next_seq = 0;
             last_time = 0.0;
             done_txns = 0;
             next_launch = first_launch cid;
             active = None;
           })
    |> Array.of_list
  in
  let deadline_us =
    match cfg.duration with Some d -> Some (d *. 1e6) | None -> None
  in
  let quota_done ~now c =
    match deadline_us with
    | Some dl -> now >= dl
    | None -> c.done_txns >= cfg.txns_per_client
  in
  (* Fault injection: a killed coordinator process discards its inbox
     while down and replays nothing of it. *)
  let down_until_us = ref neg_infinity in
  let was_down = ref false in
  (* Chaos mode routes every push through the link and degrades a full
     mailbox to a link drop; fault-free mode keeps the lossless
     blocking push. *)
  let push_server core msg =
    match link with
    | None -> Mailbox.push server_inboxes.(core) msg
    | Some _ -> ignore (Mailbox.try_push server_inboxes.(core) msg)
  in
  let send_server ~core ~replica msg =
    Link.via link
      ~src:(Network.Client coord_id)
      ~dst:(Network.Replica replica)
      ~push:(fun () -> push_server core msg)
  in
  (* Execute-phase reads go straight to one replica's versioned store —
     shared-memory gets stand in for the paper's closest-replica reads;
     the vstore's shard locks make them safe from any domain. A crashed
     replica answers nothing, so chaos runs fall back to its peers. *)
  let read_key key =
    let rec attempt i =
      if i >= cfg.n_replicas then (0, Timestamp.zero)
      else
        match
          Replica.handle_get replicas.((coord_id + i) mod cfg.n_replicas) ~key
        with
        | Some v -> v
        | None -> attempt (i + 1)
    in
    attempt 0
  in
  let full_mask = (1 lsl cfg.n_replicas) - 1 in
  let exec c att action =
    match action with
    | Protocol.Send_validates { only_missing } -> (
        match link with
        | None ->
            (* Fault-free: the whole broadcast is one mailbox message —
               server domain [att.core] hosts that core of every
               replica, so a replica bitmask replaces the per-replica
               envelope fan-out. *)
            let mask =
              if not only_missing then full_mask
              else begin
                let m = ref 0 in
                for r = 0 to cfg.n_replicas - 1 do
                  if Protocol.needs_validate att.proto r then
                    m := !m lor (1 lsl r)
                done;
                !m
              end
            in
            if mask <> 0 then
              Mailbox.push server_inboxes.(att.core)
                (Validates
                   {
                     mask;
                     coord = coord_id;
                     slot = c.slot;
                     seq = att.att_seq;
                     txn = att.txn;
                     ts = att.ts;
                   })
        | Some _ ->
            for r = 0 to cfg.n_replicas - 1 do
              if (not only_missing) || Protocol.needs_validate att.proto r then
                send_server ~core:att.core ~replica:r
                  (Validate
                     {
                       replica = r;
                       coord = coord_id;
                       slot = c.slot;
                       seq = att.att_seq;
                       txn = att.txn;
                       ts = att.ts;
                     })
            done)
    | Protocol.Send_accepts { decision } -> (
        match link with
        | None ->
            Mailbox.push server_inboxes.(att.core)
              (Accepts
                 {
                   mask = full_mask;
                   coord = coord_id;
                   slot = c.slot;
                   seq = att.att_seq;
                   txn = att.txn;
                   ts = att.ts;
                   decision;
                   view = 0;
                 })
        | Some _ ->
            for r = 0 to cfg.n_replicas - 1 do
              send_server ~core:att.core ~replica:r
                (Accept
                   {
                     replica = r;
                     coord = coord_id;
                     slot = c.slot;
                     seq = att.att_seq;
                     txn = att.txn;
                     ts = att.ts;
                     decision;
                     view = 0;
                   })
            done)
    | Protocol.Arm_timer { timer; delay } ->
        let timer, delay =
          match timer with
          | Protocol.Retransmit rto when rto > rto_cap ->
              (Protocol.Retransmit rto_cap, Float.min delay rto_cap)
          | _ -> (timer, delay)
        in
        att.timers <- (timer, wall_us () +. delay) :: att.timers
    | Protocol.Note_validated ->
        Obs.span obs Span.Validate ~tid:c.cid ~start:(Protocol.started att.proto)
          ()
    | Protocol.Note_decided { commit; fast } ->
        let now = wall_us () in
        Histogram.add lat (now -. att.att_t0);
        if fast then
          Obs.span obs Span.Fast_quorum ~tid:c.cid
            ~start:(Protocol.started att.proto) ()
        else if not (Float.is_nan (Protocol.accept_started att.proto)) then
          Obs.span obs Span.Slow_accept ~tid:c.cid
            ~start:(Protocol.accept_started att.proto) ();
        Obs.note_decision obs ~committed:commit ~fast;
        (* Asynchronous write phase (§5.2.3): fire and forget. *)
        (match link with
        | None ->
            Mailbox.push server_inboxes.(att.core)
              (Write_backs
                 { mask = full_mask; txn = att.txn; ts = att.ts; commit })
        | Some _ ->
            for r = 0 to cfg.n_replicas - 1 do
              send_server ~core:att.core ~replica:r
                (Write_back { replica = r; txn = att.txn; ts = att.ts; commit })
            done);
        if commit then committed := (att.txn, att.ts) :: !committed
  in
  (* One scratch batch per coordinator domain: [exec] never reenters
     [feed]/[start_txn] (decisions only unpark the client; the next
     transaction starts from the main loop), so a single reused buffer
     is safe and the protocol boundary allocates nothing per event. *)
  let acts : Protocol.action Batch.t = Batch.create () in
  let feed c att ~now event =
    Batch.clear acts;
    Protocol.handle att.proto ~now event ~into:acts;
    Batch.iter (exec c att) acts;
    if Protocol.decided att.proto then begin
      c.active <- None;
      c.done_txns <- c.done_txns + 1
    end
  in
  let start_txn ?launch c =
    let req = Workload.next wl in
    let exec_start = wall_us () in
    let read_set =
      Array.to_list
        (Array.map
           (fun key ->
             let _, wts = read_key key in
             ({ key; wts } : Txn.read_entry))
           req.Intf.reads)
    in
    let write_set =
      List.map
        (fun (key, value) -> ({ key; value } : Txn.write_entry))
        (Array.to_list req.Intf.writes)
    in
    if Array.length req.Intf.reads > 0 then
      Obs.span obs Span.Execute ~tid:c.cid ~start:exec_start ();
    c.next_seq <- c.next_seq + 1;
    let tid = Tid.make ~seq:c.next_seq ~client_id:c.cid in
    let txn = Txn.make ~tid ~read_set ~write_set in
    let now = wall_us () in
    (* The proposed commit timestamp must strictly increase per client
       even when the wall clock stalls within one microsecond. *)
    let time = if now <= c.last_time then c.last_time +. 1e-3 else now in
    c.last_time <- time;
    let ts = Timestamp.make ~time ~client_id:c.cid in
    let core = Tid.hash tid mod cfg.server_domains in
    Batch.clear acts;
    let proto = Protocol.start params ~now ~into:acts in
    let att_t0 = match launch with Some l -> l | None -> now in
    let att =
      { txn; ts; core; att_seq = c.next_seq; proto; att_t0; timers = [] }
    in
    c.active <- Some att;
    Batch.iter (exec c att) acts
  in
  let dispatch ~now msg =
    match msg with
    | Coord_kill { until_us } ->
        down_until_us := Float.max !down_until_us until_us
    | Validated_batch { slot; seq; mask; statuses } ->
        (* One lane per replica; [c.active] is re-checked per lane
           because an earlier lane's reply may decide the attempt —
           the rest of the batch then drops, exactly as the remaining
           singleton messages would have on arrival. *)
        let c = local.(slot) in
        let m = ref mask and r = ref 0 in
        while !m <> 0 do
          (if !m land 1 = 1 then
             match c.active with
             | Some att when att.att_seq = seq ->
                 feed c att ~now
                   (Protocol.Validate_reply
                      {
                        replica = !r;
                        status = status_of_code ((statuses lsr (4 * !r)) land 0xf);
                      })
             | Some _ | None -> ());
          incr r;
          m := !m lsr 1
        done
    | Accepted_batch { slot; seq; mask; replies } ->
        let c = local.(slot) in
        let m = ref mask and r = ref 0 in
        while !m <> 0 do
          (if !m land 1 = 1 then
             match c.active with
             | Some att when att.att_seq = seq ->
                 let code = (replies lsr (4 * !r)) land 0xf in
                 let reply =
                   if code = 0 then `Accepted
                   else `Finalized (status_of_code (code - 1))
                 in
                 feed c att ~now (Protocol.Accept_reply { replica = !r; reply })
             | Some _ | None -> ());
          incr r;
          m := !m lsr 1
        done
    | Validated { slot; seq; replica; status } -> (
        let c = local.(slot) in
        match c.active with
        | Some att when att.att_seq = seq ->
            feed c att ~now (Protocol.Validate_reply { replica; status })
        | Some _ | None -> ())
    | Accepted { slot; seq; replica; reply } -> (
        let c = local.(slot) in
        match c.active with
        | Some att when att.att_seq = seq ->
            feed c att ~now (Protocol.Accept_reply { replica; reply })
        | Some _ | None -> ())
  in
  (* Cheap no-allocation probe so the common no-timer-due iteration
     skips [List.partition] (two fresh lists plus a closure per call,
     every spin, for every active client — pure garbage when nothing
     is due, which is almost always). *)
  let rec any_due now = function
    | [] -> false
    | (_, dl) :: rest -> dl <= now || any_due now rest
  in
  let fire_due_timers ~now c att =
    if any_due now att.timers then begin
      let due, pending =
        List.partition (fun (_, dl) -> dl <= now) att.timers
      in
      att.timers <- pending;
      List.iter
        (fun (timer, _) ->
          if not (Protocol.decided att.proto) then begin
            (match timer with
            | Protocol.Retransmit _ -> Obs.note_retransmit obs
            | Protocol.Fast_grace -> ());
            feed c att ~now (Protocol.Timer timer)
          end)
        due
    end
  in
  let idle = ref 0 in
  (* One cached clock read per loop iteration — and, while idling, one
     per eight spins. The spin loop used to read the wall clock many
     times per iteration (the per-message down check, [quota_done] and
     [fire_due_timers] for every client), and each [Unix.gettimeofday]
     boxes a float, which made the clock itself the dominant source of
     minor allocation on the fast path. Staleness is bounded by a few
     spin iterations (under the 100 µs idle sleep, well under the 5 ms
     fast-grace timer); the latency-bearing reads ([start_txn] and the
     [Note_decided] handler) still hit the clock directly. *)
  let last_now = ref (wall_us ()) in
  let handle_msg msg =
    match msg with
    | Coord_kill _ -> dispatch ~now:!last_now msg
    | _ when !last_now < !down_until_us ->
        (* Dead: the message is popped and lost, exactly what a
           crashed process does to its socket buffers. *)
        ()
    | _ -> dispatch ~now:!last_now msg
  in
  let rec loop () =
    if !idle = 0 || !idle land 7 = 0 then last_now := wall_us ();
    let got = Mailbox.drain inbox ~max:256 handle_msg in
    let progressed = ref (got > 0) in
    let now = !last_now in
    let all_done = ref true in
    if now < !down_until_us then begin
      (* Down: no timers fire, no transactions start; the clients are
         not done, so the loop keeps draining (and discarding). *)
      was_down := true;
      Array.iter
        (fun c ->
          if Option.is_some c.active || not (quota_done ~now c) then
            all_done := false)
        local
    end
    else begin
      if !was_down then begin
        was_down := false;
        (* Reboot: whatever is still queued arrived while dead — drain
           and discard it, then resume every interrupted attempt
           (Protocol.Resume re-fetches whatever is missing). The kept
           retransmission timers back this up if the resume sends are
           themselves lost. *)
        let rec purge () =
          match Mailbox.try_pop inbox with
          | Some (Coord_kill { until_us }) ->
              down_until_us := Float.max !down_until_us until_us;
              purge ()
          | Some _ -> purge ()
          | None -> ()
        in
        purge ();
        last_now := wall_us ();
        if !last_now >= !down_until_us then
          Array.iter
            (fun c ->
              match c.active with
              | Some att -> feed c att ~now:!last_now Protocol.Resume
              | None -> ())
            local
      end;
      let now = !last_now in
      Array.iter
        (fun c ->
          (match c.active with
          | Some att -> fire_due_timers ~now c att
          | None ->
              if not (quota_done ~now c) then
                match launch_interval_us with
                | None ->
                    start_txn c;
                    progressed := true
                | Some interval ->
                    (* Open loop: launch only at the scheduled instant;
                       the intended instant (not [now]) is the latency
                       origin and the schedule advances arithmetically
                       from it. *)
                    if now >= c.next_launch then begin
                      start_txn c ~launch:c.next_launch;
                      c.next_launch <- c.next_launch +. interval;
                      progressed := true
                    end);
          if Option.is_some c.active || not (quota_done ~now c) then
            all_done := false)
        local
    end;
    if not !all_done then begin
      (match link with Some l -> Link.flush l | None -> ());
      if !progressed then idle := 0
      else begin
        incr idle;
        (* Mostly spin; on an oversubscribed machine yield the OS
           thread now and then so servers can run. *)
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      loop ()
    end
  in
  loop ();
  (* Chaos-mode shutdown rendezvous (see the header comment): the
     monitor is guaranteed to keep draining until this arrives, so the
     retry loop terminates. *)
  (match mon_inbox with
  | None -> ()
  | Some mi ->
      while not (Mailbox.try_push mi Mon_coord_done) do
        Spawn.relax ()
      done);
  let submitted = Array.fold_left (fun acc c -> acc + c.next_seq) 0 local in
  let acked = Array.fold_left (fun acc c -> acc + c.done_txns) 0 local in
  {
    c_committed = !committed;
    c_latencies = lat;
    c_obs = obs;
    c_submitted = submitted;
    c_acked = acked;
  }

(* ------------------------------------------------------------------ *)
(* Durability wiring                                                   *)
(* ------------------------------------------------------------------ *)

(* One tally row per server domain, folded after the join — the
   registry counters in an Obs handle are plain ints, so the hot path
   never shares a counter across domains. *)
type wal_tally = {
  mutable t_appends : int;
  mutable t_bytes : int;
  mutable t_fsyncs : int;
}

type durable_state = {
  d_wals : Wal.t array array;  (* .(replica).(core) *)
  d_tallies : wal_tally array;  (* per server domain *)
  mutable d_snaps : int;  (* monitor-domain only (Installed) *)
  mutable d_snap_bytes : int;
}

let durable_hook ds ~dir ~cores ~replica rep (ev : Replica.durable_event) =
  match ev with
  | Replica.Finalized { core; view } ->
      if core >= 0 && core < Array.length ds.d_tallies then begin
        let s = Walcodec.encode_record { Walcodec.core; view } in
        let tally = ds.d_tallies.(core) in
        (match Wal.append ds.d_wals.(replica).(core) s with
        | `Synced -> tally.t_fsyncs <- tally.t_fsyncs + 1
        | `Buffered -> ());
        tally.t_appends <- tally.t_appends + 1;
        tally.t_bytes <- tally.t_bytes + String.length s
      end
  | Replica.Installed { epoch } ->
      (* Monitor domain, every server domain parked: the merged state
         supersedes whatever the logs say, so write full per-core
         snapshots cutting at the current log lengths. *)
      let all_views = Replica.record_views rep in
      let all_rows = Replica.store_snapshot rep in
      for core = 0 to cores - 1 do
        let views =
          List.filter_map
            (fun (c, v) -> if c = core then Some v else None)
            all_views
        in
        let rows =
          List.filter (fun (k, _, _, _) -> k mod cores = core) all_rows
        in
        let s =
          Walcodec.encode_snapshot
            {
              Walcodec.core;
              epoch;
              wal_cut = Wal.length ds.d_wals.(replica).(core);
              views;
              rows;
            }
        in
        Dsnapshot.write ~path:(durable_snap_path ~dir ~replica ~core) s;
        ds.d_snaps <- ds.d_snaps + 1;
        ds.d_snap_bytes <- ds.d_snap_bytes + String.length s
      done

(* ------------------------------------------------------------------ *)
(* Whole-system run                                                    *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) : report =
  if cfg.server_domains < 1 then
    invalid_arg "Runtime.run: server_domains must be >= 1";
  if cfg.coordinators < 1 then
    invalid_arg "Runtime.run: coordinators must be >= 1";
  if cfg.clients < 1 then invalid_arg "Runtime.run: clients must be >= 1";
  if cfg.n_replicas < 3 || cfg.n_replicas mod 2 = 0 then
    invalid_arg "Runtime.run: n_replicas must be odd and >= 3";
  if cfg.n_replicas > max_replicas_batched then
    invalid_arg
      (Printf.sprintf
         "Runtime.run: n_replicas must be <= %d (replica masks and 4-bit \
          status lanes pack into one immediate int)"
         max_replicas_batched);
  (* The deadlock-freedom argument (see the header comment): a
     coordinator inbox must hold the worst-case burst of outstanding
     replies, a few times local clients × replicas. Enforced, not just
     documented — an undersized box can deadlock the whole topology. *)
  let local_clients =
    (cfg.clients + cfg.coordinators - 1) / cfg.coordinators
  in
  let coord_inbox_floor = 4 * local_clients * cfg.n_replicas in
  if cfg.coord_inbox < coord_inbox_floor then
    invalid_arg
      (Printf.sprintf
         "Runtime.run: coord_inbox %d below the deadlock-freedom floor %d (4 \
          x %d local clients x %d replicas)"
         cfg.coord_inbox coord_inbox_floor local_clients cfg.n_replicas);
  (match cfg.chaos with
  | Some _ when cfg.duration = None ->
      invalid_arg "Runtime.run: chaos runs need a duration (the horizon)"
  | _ -> ());
  (match cfg.offered_rate with
  | Some r when not (r > 0.0) ->
      invalid_arg "Runtime.run: offered_rate must be > 0"
  | _ -> ());
  let quorum = Quorum.create ~n:cfg.n_replicas in
  let replicas =
    Array.init cfg.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:cfg.server_domains)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  let durable_state =
    match cfg.durable with
    | None -> None
    | Some { dir; policy } ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let ds =
          {
            d_wals =
              Array.init cfg.n_replicas (fun replica ->
                  Array.init cfg.server_domains (fun core ->
                      Wal.open_log
                        ~path:(durable_wal_path ~dir ~replica ~core)
                        ~policy));
            d_tallies =
              Array.init cfg.server_domains (fun _ ->
                  { t_appends = 0; t_bytes = 0; t_fsyncs = 0 });
            d_snaps = 0;
            d_snap_bytes = 0;
          }
        in
        Array.iteri
          (fun replica rep ->
            Replica.set_durable_hook rep
              (durable_hook ds ~dir ~cores:cfg.server_domains ~replica rep))
          replicas;
        Some ds
  in
  let server_inboxes =
    Array.init cfg.server_domains (fun _ ->
        Mailbox.create ~capacity:cfg.server_inbox)
  in
  let coord_inboxes =
    Array.init cfg.coordinators (fun _ ->
        Mailbox.create ~capacity:cfg.coord_inbox)
  in
  (* Allocation footprint of the whole run: in OCaml 5 a terminated
     domain folds its allocation counters into the global totals at
     join, so the post-join [quick_stat] delta covers every domain
     spawned in between. *)
  let gc0 = Gc.quick_stat () in
  let t0 = Spawn.wall () in
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let link =
    match cfg.chaos with
    | None -> None
    | Some ch -> Some (Link.create ~plan:ch.plan ~seed:cfg.seed ~now:wall_us)
  in
  let mon_inbox =
    match cfg.chaos with
    | None -> None
    | Some _ -> Some (Mailbox.create ~capacity:8192)
  in
  let controls =
    match cfg.chaos with
    | None -> [||]
    | Some _ ->
        Array.init cfg.server_domains (fun _ -> Mailbox.create ~capacity:2)
  in
  let servers =
    List.init cfg.server_domains (fun core ->
        Spawn.spawn (fun () ->
            match (cfg.chaos, link, mon_inbox) with
            | Some ch, Some l, Some mi ->
                server_chaos_loop cfg ~chaos:ch ~t0 ~core ~replicas
                  ~inbox:server_inboxes.(core) ~coord_inboxes ~mon_inbox:mi
                  ~control:controls.(core) ~link:l
            | _ ->
                server_loop ~core ~replicas ~inbox:server_inboxes.(core)
                  ~coord_inboxes))
  in
  let mon =
    match (cfg.chaos, link, mon_inbox) with
    | Some ch, Some l, Some mi ->
        Some
          (Spawn.spawn (fun () ->
               monitor cfg ~chaos:ch ~t0 ~replicas ~server_inboxes
                 ~coord_inboxes ~mon_inbox:mi ~controls ~link:l))
    | _ -> None
  in
  let coords =
    List.init cfg.coordinators (fun coord_id ->
        Spawn.spawn (fun () ->
            coordinator cfg ~t0 ~replicas ~server_inboxes ~coord_inboxes ~link
              ~mon_inbox ~coord_id))
  in
  let results = List.map Spawn.join coords in
  let mon_result = Option.map Spawn.join mon in
  (* Deliver any last wheel stragglers while the servers still drain,
     then stop them. All coordinators have pushed their last message
     (write-backs included) before these Stops are enqueued, so each
     server drains everything and then exits: the final replica state
     is quiescent. *)
  (match link with Some l -> Link.flush l | None -> ());
  Array.iter (fun inbox -> Mailbox.push inbox Stop) server_inboxes;
  List.iter Spawn.join servers;
  (* Every domain has joined: fold the per-domain durability tallies
     and close the logs (flushing any group-commit buffer) so the data
     directory is complete before the caller replays it. *)
  let wal_appends, wal_bytes, wal_fsyncs, snapshots, snapshot_bytes =
    match durable_state with
    | None -> (0, 0, 0, 0, 0)
    | Some ds ->
        Array.iter (fun row -> Array.iter Wal.close row) ds.d_wals;
        let a, b, f =
          Array.fold_left
            (fun (a, b, f) t -> (a + t.t_appends, b + t.t_bytes, f + t.t_fsyncs))
            (0, 0, 0) ds.d_tallies
        in
        (a, b, f, ds.d_snaps, ds.d_snap_bytes)
  in
  let wall_seconds = Spawn.wall () -. t0 in
  let gc1 = Gc.quick_stat () in
  let gc_minor_words =
    int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words)
  in
  let gc_majors = gc1.Gc.major_collections - gc0.Gc.major_collections in
  let committed = List.concat_map (fun r -> r.c_committed) results in
  let sum name =
    List.fold_left (fun acc r -> acc + Obs.counter_value r.c_obs name) 0 results
  in
  let lat =
    List.fold_left
      (fun acc r -> Histogram.merge acc r.c_latencies)
      (Histogram.create ()) results
  in
  let committed_count = sum "txn.committed" in
  let aborted = sum "txn.aborted" in
  let decided = committed_count + aborted in
  let alloc_per_txn =
    if committed_count = 0 then 0 else gc_minor_words / committed_count
  in
  (* Fold the run's allocation footprint into an Obs handle so
     [metrics_dump] and counter readers see it alongside the wire and
     WAL counters (one handle is enough — the figures are whole-run,
     not per-coordinator). *)
  (match results with
  | r :: _ ->
      Obs.note_gc r.c_obs ~minor_words:gc_minor_words ~majors:gc_majors
        ~per_txn:alloc_per_txn
  | [] -> ());
  let link_dropped, link_duplicated, link_delayed =
    match link with Some l -> Link.stats l | None -> (0, 0, 0)
  in
  {
    server_domains = cfg.server_domains;
    coordinators = cfg.coordinators;
    clients = cfg.clients;
    committed;
    committed_count;
    aborted;
    fast_path = sum "txn.fast_path";
    slow_path = sum "txn.slow_path";
    retransmits = sum "net.retransmits";
    wall_seconds;
    throughput = float_of_int committed_count /. wall_seconds;
    abort_rate =
      (if decided = 0 then 0.0
       else float_of_int aborted /. float_of_int decided);
    p50_us = Histogram.percentile lat 50.0;
    p99_us = Histogram.percentile lat 99.0;
    submitted = List.fold_left (fun acc r -> acc + r.c_submitted) 0 results;
    acked = List.fold_left (fun acc r -> acc + r.c_acked) 0 results;
    epoch_changes =
      (match mon_result with Some m -> m.m_epoch_changes | None -> 0);
    view_changes =
      (match mon_result with Some m -> m.m_view_changes | None -> 0);
    fault_events =
      (match mon_result with Some m -> m.m_fault_events | None -> 0);
    link_dropped;
    link_duplicated;
    link_delayed;
    wal_appends;
    wal_bytes;
    wal_fsyncs;
    snapshots;
    snapshot_bytes;
    gc_minor_words;
    gc_majors;
    alloc_per_txn;
    replicas;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>servers=%d coordinators=%d clients=%d@,\
     committed=%d aborted=%d (abort rate %.1f%%)@,\
     fast=%d slow=%d retransmits=%d@,\
     %.2f s wall, %.0f committed txn/s, latency p50=%.0f us p99=%.0f us@]"
    r.server_domains r.coordinators r.clients r.committed_count r.aborted
    (100.0 *. r.abort_rate) r.fast_path r.slow_path r.retransmits
    r.wall_seconds r.throughput r.p50_us r.p99_us;
  if r.fault_events > 0 || r.epoch_changes > 0 || r.view_changes > 0 then
    Format.fprintf ppf
      "@,chaos: %d fault events, %d epoch changes, %d view changes, link \
       drop=%d dup=%d delay=%d"
      r.fault_events r.epoch_changes r.view_changes r.link_dropped
      r.link_duplicated r.link_delayed;
  if r.wal_appends > 0 || r.snapshots > 0 then
    Format.fprintf ppf "@,durable: %d wal appends (%d bytes, %d fsyncs), %d snapshots"
      r.wal_appends r.wal_bytes r.wal_fsyncs r.snapshots;
  Format.fprintf ppf "@,alloc: %d minor words/txn (%d total, %d major gcs)"
    r.alloc_per_txn r.gc_minor_words r.gc_majors

let report_json r =
  Printf.sprintf
    "{\"server_domains\": %d, \"coordinators\": %d, \"clients\": %d, \
     \"committed\": %d, \"aborted\": %d, \"abort_rate\": %.4f, \"fast_path\": \
     %d, \"slow_path\": %d, \"retransmits\": %d, \"wall_seconds\": %.4f, \
     \"throughput\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"submitted\": \
     %d, \"acked\": %d, \"epoch_changes\": %d, \"view_changes\": %d, \
     \"fault_events\": %d, \"link_dropped\": %d, \"link_duplicated\": %d, \
     \"link_delayed\": %d, \"wal_appends\": %d, \"wal_bytes\": %d, \
     \"wal_fsyncs\": %d, \"snapshots\": %d, \"gc_minor_words\": %d, \
     \"gc_majors\": %d, \"alloc_per_txn\": %d}"
    r.server_domains r.coordinators r.clients r.committed_count r.aborted
    r.abort_rate r.fast_path r.slow_path r.retransmits r.wall_seconds
    r.throughput r.p50_us r.p99_us r.submitted r.acked r.epoch_changes
    r.view_changes r.fault_events r.link_dropped r.link_duplicated
    r.link_delayed r.wal_appends r.wal_bytes r.wal_fsyncs r.snapshots
    r.gc_minor_words r.gc_majors r.alloc_per_txn
