(* The live runtime: the full Meerkat commit protocol on real OCaml 5
   domains.

   Topology: [server_domains] server domains and [coordinators]
   coordinator domains, each owning one {!Mailbox}. Server domain [k]
   hosts core [k] of every replica — a transaction steered to core [k]
   (by [Tid.hash mod server_domains], the same steering the simulator
   uses) has its validate/accept/write-back handled for all replicas
   by that one domain, against each replica's own core-[k] trecord
   partition. Coordinator domains run closed-loop clients driving the
   extracted {!Mk_meerkat.Protocol} state machine — the exact code the
   simulator executes — and translate its actions into mailbox pushes
   instead of simulated sends.

   Zero-coordination: the only cross-domain mutable state on the
   transaction fast path is the mailboxes themselves (and the
   storage layer's own sanctioned shard locks). Coordinators share
   nothing with each other — per-coordinator RNG, workload, Obs
   handle, latency histogram, and committed list, merged only after
   join.

   Deadlock freedom: producers block (spin) on a full mailbox, so a
   cycle of full queues must not form. Server inboxes can fill — their
   producers (coordinators) keep draining their own inboxes only
   between pushes, but a server drains continuously unless *it* is
   blocked pushing a reply. Reply traffic is bounded: a coordinator
   with [m] local clients has at most [m] undecided attempts, each
   with at most one outstanding request per replica per retransmission
   round, so a coordinator inbox of [coord_inbox] >= a few times
   [m * n_replicas] can never be full when a server pushes — the
   server never blocks, so every cycle contains a non-blocking node. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Intf = Mk_model.System_intf
module Quorum = Mk_meerkat.Quorum
module Protocol = Mk_meerkat.Protocol
module Replica = Mk_meerkat.Replica
module Workload = Mk_workload.Workload
module Obs = Mk_obs.Obs
module Span = Mk_obs.Span
module Histogram = Mk_util.Histogram

type workload_kind = Ycsb_t | Retwis

type config = {
  server_domains : int;
  n_replicas : int;
  coordinators : int;
  clients : int;
  keys : int;
  theta : float;
  workload : workload_kind;
  txns_per_client : int;
  duration : float option;
  seed : int;
  rto_us : float;
  grace_us : float;
  server_inbox : int;
  coord_inbox : int;
}

let default_config =
  {
    server_domains = 2;
    n_replicas = 3;
    coordinators = 2;
    clients = 8;
    keys = 1024;
    theta = 0.6;
    workload = Ycsb_t;
    txns_per_client = 50;
    duration = None;
    seed = 42;
    (* Mailboxes do not lose messages, so the retransmission timer is
       a pure safety net: generous enough never to fire on a loaded
       box. The fast-grace timer is the one that matters live — it
       bounds how long a coordinator waits for fast-quorum stragglers
       before settling for the slow path. *)
    rto_us = 200_000.0;
    grace_us = 5_000.0;
    server_inbox = 1024;
    coord_inbox = 4096;
  }

type report = {
  server_domains : int;
  coordinators : int;
  clients : int;
  committed : (Txn.t * Timestamp.t) list;
  committed_count : int;
  aborted : int;
  fast_path : int;
  slow_path : int;
  retransmits : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
}

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

(* Requests carry (coord, slot, seq) so the reply can be routed back to
   the issuing attempt; [seq] is the client-local transaction sequence
   number, so a late reply for a finished attempt can never be taken
   for the current one. *)
type server_msg =
  | Validate of {
      replica : int;
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
    }
  | Accept of {
      replica : int;
      coord : int;
      slot : int;
      seq : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : [ `Commit | `Abort ];
      view : int;
    }
  | Write_back of { replica : int; txn : Txn.t; ts : Timestamp.t; commit : bool }
  | Stop

type coord_msg =
  | Validated of { slot : int; seq : int; replica : int; status : Txn.status }
  | Accepted of {
      slot : int;
      seq : int;
      replica : int;
      reply : Protocol.accept_reply;
    }

(* ------------------------------------------------------------------ *)
(* Server domains                                                      *)
(* ------------------------------------------------------------------ *)

let server_loop ~core ~replicas ~inbox ~coord_inboxes =
  let rec loop () =
    match Mailbox.pop inbox with
    | Stop -> ()
    | Validate { replica; coord; slot; seq; txn; ts } ->
        (match Replica.handle_validate replicas.(replica) ~core ~txn ~ts with
        | None -> ()
        | Some status ->
            Mailbox.push coord_inboxes.(coord)
              (Validated { slot; seq; replica; status }));
        loop ()
    | Accept { replica; coord; slot; seq; txn; ts; decision; view } ->
        (match
           Replica.handle_accept replicas.(replica) ~core ~txn ~ts ~decision
             ~view
         with
        | None -> ()
        | Some reply ->
            Mailbox.push coord_inboxes.(coord)
              (Accepted { slot; seq; replica; reply }));
        loop ()
    | Write_back { replica; txn; ts; commit } ->
        ignore
          (Replica.handle_commit replicas.(replica) ~core ~txn ~ts ~commit
            : unit option);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Coordinator domains                                                 *)
(* ------------------------------------------------------------------ *)

type attempt = {
  txn : Txn.t;
  ts : Timestamp.t;
  core : int;
  att_seq : int;
  proto : Protocol.t;
  mutable timers : (Protocol.timer * float) list;  (* absolute µs deadlines *)
}

type client = {
  cid : int;
  slot : int;
  mutable next_seq : int;
  mutable last_time : float;
  mutable done_txns : int;
  mutable active : attempt option;
}

type coord_result = {
  c_committed : (Txn.t * Timestamp.t) list;
  c_latencies : Histogram.t;
  c_obs : Obs.t;
}

let coordinator (cfg : config) ~t0 ~replicas ~server_inboxes ~coord_inboxes
    ~coord_id =
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let obs = Obs.create ~clock:wall_us () in
  let lat = Histogram.create () in
  let committed = ref [] in
  let inbox = coord_inboxes.(coord_id) in
  let params =
    {
      Protocol.n_replicas = cfg.n_replicas;
      quorum = Quorum.create ~n:cfg.n_replicas;
      rto = cfg.rto_us;
      grace = cfg.grace_us;
    }
  in
  let rng = Mk_util.Rng.create ~seed:(cfg.seed + (7919 * (coord_id + 1))) in
  let wl =
    match cfg.workload with
    | Ycsb_t -> Workload.ycsb_t ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Retwis -> Workload.retwis ~rng ~keys:cfg.keys ~theta:cfg.theta
  in
  let local =
    List.init cfg.clients Fun.id
    |> List.filter (fun cid -> cid mod cfg.coordinators = coord_id)
    |> List.mapi (fun slot cid ->
           { cid; slot; next_seq = 0; last_time = 0.0; done_txns = 0; active = None })
    |> Array.of_list
  in
  let deadline_us =
    match cfg.duration with Some d -> Some (d *. 1e6) | None -> None
  in
  let quota_done c =
    match deadline_us with
    | Some dl -> wall_us () >= dl
    | None -> c.done_txns >= cfg.txns_per_client
  in
  (* Execute-phase reads go straight to one replica's versioned store —
     shared-memory gets stand in for the paper's closest-replica reads;
     the vstore's shard locks make them safe from any domain. *)
  let read_replica = replicas.(coord_id mod cfg.n_replicas) in
  let exec c att action =
    match action with
    | Protocol.Send_validates { only_missing } ->
        for r = 0 to cfg.n_replicas - 1 do
          if (not only_missing) || Protocol.needs_validate att.proto r then
            Mailbox.push server_inboxes.(att.core)
              (Validate
                 {
                   replica = r;
                   coord = coord_id;
                   slot = c.slot;
                   seq = att.att_seq;
                   txn = att.txn;
                   ts = att.ts;
                 })
        done
    | Protocol.Send_accepts { decision } ->
        for r = 0 to cfg.n_replicas - 1 do
          Mailbox.push server_inboxes.(att.core)
            (Accept
               {
                 replica = r;
                 coord = coord_id;
                 slot = c.slot;
                 seq = att.att_seq;
                 txn = att.txn;
                 ts = att.ts;
                 decision;
                 view = 0;
               })
        done
    | Protocol.Arm_timer { timer; delay } ->
        att.timers <- (timer, wall_us () +. delay) :: att.timers
    | Protocol.Note_validated ->
        Obs.span obs Span.Validate ~tid:c.cid ~start:(Protocol.started att.proto)
          ()
    | Protocol.Note_decided { commit; fast } ->
        let now = wall_us () in
        Histogram.add lat (now -. Protocol.started att.proto);
        if fast then
          Obs.span obs Span.Fast_quorum ~tid:c.cid
            ~start:(Protocol.started att.proto) ()
        else if not (Float.is_nan (Protocol.accept_started att.proto)) then
          Obs.span obs Span.Slow_accept ~tid:c.cid
            ~start:(Protocol.accept_started att.proto) ();
        Obs.note_decision obs ~committed:commit ~fast;
        (* Asynchronous write phase (§5.2.3): fire and forget. *)
        for r = 0 to cfg.n_replicas - 1 do
          Mailbox.push server_inboxes.(att.core)
            (Write_back { replica = r; txn = att.txn; ts = att.ts; commit })
        done;
        if commit then committed := (att.txn, att.ts) :: !committed
  in
  let feed c att event =
    List.iter (exec c att) (Protocol.handle att.proto ~now:(wall_us ()) event);
    if Protocol.decided att.proto then begin
      c.active <- None;
      c.done_txns <- c.done_txns + 1
    end
  in
  let start_txn c =
    let req = Workload.next wl in
    let exec_start = wall_us () in
    let read_set =
      Array.to_list
        (Array.map
           (fun key ->
             let _, wts =
               match Replica.handle_get read_replica ~key with
               | Some v -> v
               | None -> (0, Timestamp.zero)
             in
             ({ key; wts } : Txn.read_entry))
           req.Intf.reads)
    in
    let write_set =
      List.map
        (fun (key, value) -> ({ key; value } : Txn.write_entry))
        (Array.to_list req.Intf.writes)
    in
    if Array.length req.Intf.reads > 0 then
      Obs.span obs Span.Execute ~tid:c.cid ~start:exec_start ();
    c.next_seq <- c.next_seq + 1;
    let tid = Tid.make ~seq:c.next_seq ~client_id:c.cid in
    let txn = Txn.make ~tid ~read_set ~write_set in
    let now = wall_us () in
    (* The proposed commit timestamp must strictly increase per client
       even when the wall clock stalls within one microsecond. *)
    let time = if now <= c.last_time then c.last_time +. 1e-3 else now in
    c.last_time <- time;
    let ts = Timestamp.make ~time ~client_id:c.cid in
    let core = Tid.hash tid mod cfg.server_domains in
    let proto, actions = Protocol.start params ~now in
    let att = { txn; ts; core; att_seq = c.next_seq; proto; timers = [] } in
    c.active <- Some att;
    List.iter (exec c att) actions
  in
  let dispatch msg =
    match msg with
    | Validated { slot; seq; replica; status } -> (
        let c = local.(slot) in
        match c.active with
        | Some att when att.att_seq = seq ->
            feed c att (Protocol.Validate_reply { replica; status })
        | Some _ | None -> ())
    | Accepted { slot; seq; replica; reply } -> (
        let c = local.(slot) in
        match c.active with
        | Some att when att.att_seq = seq ->
            feed c att (Protocol.Accept_reply { replica; reply })
        | Some _ | None -> ())
  in
  let fire_due_timers c att =
    let now = wall_us () in
    let due, pending = List.partition (fun (_, dl) -> dl <= now) att.timers in
    att.timers <- pending;
    List.iter
      (fun (timer, _) ->
        if not (Protocol.decided att.proto) then begin
          (match timer with
          | Protocol.Retransmit _ -> Obs.note_retransmit obs
          | Protocol.Fast_grace -> ());
          feed c att (Protocol.Timer timer)
        end)
      due
  in
  let idle = ref 0 in
  let rec loop () =
    let progressed = ref false in
    let budget = ref 256 in
    let rec drain () =
      if !budget > 0 then begin
        match Mailbox.try_pop inbox with
        | Some msg ->
            decr budget;
            progressed := true;
            dispatch msg;
            drain ()
        | None -> ()
      end
    in
    drain ();
    let all_done = ref true in
    Array.iter
      (fun c ->
        (match c.active with
        | Some att -> fire_due_timers c att
        | None ->
            if not (quota_done c) then begin
              start_txn c;
              progressed := true
            end);
        if Option.is_some c.active || not (quota_done c) then all_done := false)
      local;
    if not !all_done then begin
      if !progressed then idle := 0
      else begin
        incr idle;
        (* Mostly spin; on an oversubscribed machine yield the OS
           thread now and then so servers can run. *)
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      loop ()
    end
  in
  loop ();
  { c_committed = !committed; c_latencies = lat; c_obs = obs }

(* ------------------------------------------------------------------ *)
(* Whole-system run                                                    *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) : report =
  if cfg.server_domains < 1 then
    invalid_arg "Runtime.run: server_domains must be >= 1";
  if cfg.coordinators < 1 then
    invalid_arg "Runtime.run: coordinators must be >= 1";
  if cfg.clients < 1 then invalid_arg "Runtime.run: clients must be >= 1";
  if cfg.n_replicas < 3 || cfg.n_replicas mod 2 = 0 then
    invalid_arg "Runtime.run: n_replicas must be odd and >= 3";
  let quorum = Quorum.create ~n:cfg.n_replicas in
  let replicas =
    Array.init cfg.n_replicas (fun id ->
        Replica.create ~id ~quorum ~cores:cfg.server_domains)
  in
  Array.iter
    (fun r ->
      for key = 0 to cfg.keys - 1 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  let server_inboxes =
    Array.init cfg.server_domains (fun _ ->
        Mailbox.create ~capacity:cfg.server_inbox)
  in
  let coord_inboxes =
    Array.init cfg.coordinators (fun _ ->
        Mailbox.create ~capacity:cfg.coord_inbox)
  in
  let t0 = Spawn.wall () in
  let servers =
    List.init cfg.server_domains (fun core ->
        Spawn.spawn (fun () ->
            server_loop ~core ~replicas ~inbox:server_inboxes.(core)
              ~coord_inboxes))
  in
  let coords =
    List.init cfg.coordinators (fun coord_id ->
        Spawn.spawn (fun () ->
            coordinator cfg ~t0 ~replicas ~server_inboxes ~coord_inboxes
              ~coord_id))
  in
  let results = List.map Spawn.join coords in
  (* All coordinators have pushed their last message (write-backs
     included) before these Stops are enqueued, so each server drains
     everything and then exits: the final replica state is quiescent. *)
  Array.iter (fun inbox -> Mailbox.push inbox Stop) server_inboxes;
  List.iter Spawn.join servers;
  let wall_seconds = Spawn.wall () -. t0 in
  let committed = List.concat_map (fun r -> r.c_committed) results in
  let sum name =
    List.fold_left (fun acc r -> acc + Obs.counter_value r.c_obs name) 0 results
  in
  let lat =
    List.fold_left
      (fun acc r -> Histogram.merge acc r.c_latencies)
      (Histogram.create ()) results
  in
  let committed_count = sum "txn.committed" in
  let aborted = sum "txn.aborted" in
  let decided = committed_count + aborted in
  {
    server_domains = cfg.server_domains;
    coordinators = cfg.coordinators;
    clients = cfg.clients;
    committed;
    committed_count;
    aborted;
    fast_path = sum "txn.fast_path";
    slow_path = sum "txn.slow_path";
    retransmits = sum "net.retransmits";
    wall_seconds;
    throughput = float_of_int committed_count /. wall_seconds;
    abort_rate =
      (if decided = 0 then 0.0
       else float_of_int aborted /. float_of_int decided);
    p50_us = Histogram.percentile lat 50.0;
    p99_us = Histogram.percentile lat 99.0;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>servers=%d coordinators=%d clients=%d@,\
     committed=%d aborted=%d (abort rate %.1f%%)@,\
     fast=%d slow=%d retransmits=%d@,\
     %.2f s wall, %.0f committed txn/s, latency p50=%.0f us p99=%.0f us@]"
    r.server_domains r.coordinators r.clients r.committed_count r.aborted
    (100.0 *. r.abort_rate) r.fast_path r.slow_path r.retransmits
    r.wall_seconds r.throughput r.p50_us r.p99_us

let report_json r =
  Printf.sprintf
    "{\"server_domains\": %d, \"coordinators\": %d, \"clients\": %d, \
     \"committed\": %d, \"aborted\": %d, \"abort_rate\": %.4f, \"fast_path\": \
     %d, \"slow_path\": %d, \"retransmits\": %d, \"wall_seconds\": %.4f, \
     \"throughput\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}"
    r.server_domains r.coordinators r.clients r.committed_count r.aborted
    r.abort_rate r.fast_path r.slow_path r.retransmits r.wall_seconds
    r.throughput r.p50_us r.p99_us
