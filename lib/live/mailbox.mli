(** Bounded multi-producer single-consumer mailbox — the only channel
    between domains in the live runtime.

    One mailbox per replica-core host and per coordinator: all
    cross-domain communication in {!Runtime} is a message through one
    of these, so the transaction fast path shares no other mutable
    state between domains (the zero-coordination principle; the lint
    allowlist sanctions coordination primitives in this module and in
    {!Spawn} only).

    The implementation is a Vyukov-style bounded ring: producers claim
    slots with one CAS on the tail, hand-off is a per-slot sequence
    number, and the single consumer advances its head without any
    atomic read-modify-write. The consumer busy-polls briefly and then
    parks on a condition variable; producers wake it only when the
    parked flag is up, so a busy mailbox never touches the lock. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be a power of two, at least 2. The mailbox holds at
    most [capacity] undelivered messages; pushes beyond that are
    refused ({!try_push}) or wait for space ({!push}). *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Enqueue from any domain; [false] when the mailbox is full
    (backpressure — the caller decides whether to spin, drop, or
    retransmit later). *)

val push : 'a t -> 'a -> unit
(** [try_push] in a spin loop: waits (without blocking the consumer)
    until space frees up. Callers must size mailboxes so a cycle of
    full queues cannot form; see the capacity notes in {!Runtime}. *)

val try_pop : 'a t -> 'a option
(** Consumer side; must only ever be called from one domain at a time. *)

val drain : 'a t -> max:int -> ('a -> unit) -> int
(** Batched consume: pop up to [max] ready messages, calling [f] on
    each in FIFO order, and return how many were consumed. Each slot
    is released {e before} its callback runs, so [f] may push into
    this same mailbox. Allocation-free (no [option] per message) —
    the preferred hot-path drain. Same single-consumer contract as
    {!try_pop}. *)

val pop : ?spins:int -> 'a t -> 'a
(** Blocking consume: busy-polls for [spins] iterations (default 256),
    then parks until a producer wakes it. Same single-consumer
    contract as {!try_pop}. *)

val length : 'a t -> int
(** Messages currently queued. Exact only from the consumer; other
    domains see a racy approximation (useful for stats, not logic). *)
