(** Faulty links over mailboxes: one nemesis plan applied to live
    cross-domain messages, the wall-clock counterpart of the simulated
    network's fault rules.

    A chaos run routes every cross-domain push through {!send} (or
    {!via} with an optional context, so fault-free runs pay nothing),
    which draws a single {!Mk_fault.Verdict.outcome} for the message's
    (src → dst) link: deliver, drop, deliver twice back-to-back (the
    receiver's idempotent handlers absorb the duplicate, as in the
    sim), or delay — the message parks on a shared wheel and re-enters
    its destination mailbox after the spike, overtaken by everything
    sent in between.

    Fail-stop is modelled here too: {!set_down} makes the link discard
    traffic to and from an endpoint until its reboot deadline, the
    live analogue of the sim's crashed-replica send gates.

    The context's mutex (guarding the verdict RNG, the delay wheel,
    and the fault counters) is chaos-only coordination, taken only
    when a fault window is open; it is allowlisted for the Z1 lint
    like the mailbox internals, and stays off the fault-free fast
    path. *)

type ctx

val create : plan:Mk_fault.Nemesis.plan -> seed:int -> now:(unit -> float) -> ctx
(** [now] is the run's wall clock in µs (same origin as the plan's
    window bounds). The verdict RNG is derived from [seed], private to
    the link layer. *)

val send :
  ctx -> src:Mk_net.Network.endpoint -> dst:Mk_net.Network.endpoint -> push:(unit -> unit) -> unit
(** Apply the plan to one message whose delivery is [push] (typically
    a closure over [Mailbox.push]). [push] is called zero (drop, down
    endpoint, delay), one (deliver), or two (duplicate) times; a
    delayed [push] runs from whichever domain next calls {!flush}
    after the deadline. *)

val via :
  ctx option ->
  src:Mk_net.Network.endpoint ->
  dst:Mk_net.Network.endpoint ->
  push:(unit -> unit) ->
  unit
(** [via None ~push] is [push ()] — the no-chaos fast path. *)

val flush : ctx -> unit
(** Deliver every delayed message whose deadline has passed, oldest
    deadline first. Server loops and the monitor call this in
    passing; any domain may. *)

val set_down : ctx -> Mk_net.Network.endpoint -> until:float -> unit
(** Discard traffic to and from the endpoint until the given wall
    time (a crash with its reboot deadline). *)

val set_up : ctx -> Mk_net.Network.endpoint -> unit
(** Clear a down entry early (explicit reboot). *)

val is_down : ctx -> Mk_net.Network.endpoint -> bool

val pending : ctx -> int
(** Messages currently parked on the delay wheel. *)

val stats : ctx -> int * int * int
(** (dropped, duplicated, delayed) counts so far — down-endpoint
    discards count as drops. *)
