(* Multi-group live deployment (DESIGN.md §13): S independent Meerkat
   groups on real OCaml 5 domains, with coordinator domains driving
   the client-side cross-shard 2PC of {!Mk_shard} over bounded
   mailboxes.

   Topology: each shard is a full single-group topology of its own —
   [server_domains] domains, where domain k hosts core k of every
   replica of that shard — so the whole deployment runs
   [shards x server_domains] server domains plus [coordinators]
   coordinator domains. Nothing is shared between shards: distinct
   replicas, distinct mailboxes, distinct trecord partitions. The only
   cross-shard object is the coordinator, exactly as the paper's §5.2.4
   prescribes: the client-chosen globally-unique timestamp lets the
   coordinator run one OCC validation per involved shard and take the
   conjunction, with no shard-to-shard coordination of any kind.

   Per shard, the commit path is the single-group one: the coordinator
   instantiates {!Mk_shard.Driver} over a GROUP whose [prepare_txn]
   drives a fresh {!Mk_meerkat.Protocol} attempt over the shard's
   mailboxes to a decision — withholding the write-back — and whose
   [finalize_txn] broadcasts the write-phase outcome once the global
   conjunction is known. Execute-phase reads go straight to one
   replica's versioned store (the same sanctioned shared-memory get as
   {!Runtime}).

   Deadlock freedom inherits {!Runtime}'s argument, with the floor
   scaled by the fan-out: a coordinator can now have one open attempt
   per involved shard per client, so its inbox is sized to at least
   4 x local clients x replicas x shards (auto-raised, power of two).

   This runner is fault-free by design: chaos stays single-group
   (DESIGN.md §10), and the cluster backend covers multi-shard fault
   injection with real process kills. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Quorum = Mk_meerkat.Quorum
module Batch = Mk_meerkat.Batch
module Protocol = Mk_meerkat.Protocol
module Replica = Mk_meerkat.Replica
module Workload = Mk_workload.Workload
module Histogram = Mk_util.Histogram
module Router = Mk_shard.Router
module History = Mk_shard.History

type config = {
  shards : int;
  policy : Router.policy;
  server_domains : int;  (** Per shard; also cores per replica. *)
  n_replicas : int;  (** Per shard. Odd, >= 3. *)
  coordinators : int;
  clients : int;
  keys : int;  (** Global keyspace, spread over the shards. *)
  theta : float;
  workload : Runtime.workload_kind;
  cross : float;  (** Probability a multi-key txn spans >1 shard. *)
  txns_per_client : int;
  duration : float option;
  seed : int;
  rto_us : float;
  grace_us : float;
  server_inbox : int;
  coord_inbox : int;
}

let default_config =
  {
    shards = 2;
    policy = Router.Mod;
    server_domains = 2;
    n_replicas = 3;
    coordinators = 2;
    clients = 8;
    keys = 1024;
    theta = 0.6;
    workload = Runtime.Ycsb_t;
    cross = 0.1;
    txns_per_client = 50;
    duration = None;
    seed = 1;
    rto_us = 200_000.0;
    grace_us = 5_000.0;
    server_inbox = 1024;
    coord_inbox = 4096;
  }

type report = {
  shards : int;
  server_domains : int;
  coordinators : int;
  clients : int;
  committed_count : int;
  aborted : int;
  cross_shard : int;  (** Decided transactions that involved >1 shard. *)
  fast_path : int;  (** Per-shard sub-attempts, not global txns. *)
  slow_path : int;
  wall_seconds : float;
  throughput : float;
  abort_rate : float;
  p50_us : float;
  p99_us : float;
  submitted : int;
  acked : int;
  history : (Txn.t * Timestamp.t) list;
  sub_histories : (int * (Txn.t * Timestamp.t) list) list;
  router : Router.t;
  groups : Replica.t array array;  (** [.(shard).(replica)], quiescent. *)
}

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

(* Requests carry (coord, aid): [aid] is the coordinator-local attempt
   id, unique across clients AND shards, so a late reply for a
   finished attempt can never be taken for a live one. The shard needs
   no field — each shard has its own server mailboxes. *)
type server_msg =
  | Validate of {
      replica : int;
      coord : int;
      aid : int;
      txn : Txn.t;
      ts : Timestamp.t;
    }
  | Accept of {
      replica : int;
      coord : int;
      aid : int;
      txn : Txn.t;
      ts : Timestamp.t;
      decision : [ `Commit | `Abort ];
      view : int;
    }
  | Write_back of { replica : int; txn : Txn.t; ts : Timestamp.t; commit : bool }
  | Stop

type coord_msg =
  | Validated of { aid : int; replica : int; status : Txn.status }
  | Accepted of { aid : int; replica : int; reply : Protocol.accept_reply }

(* One shard's shared runtime: its replicas and per-core inboxes. *)
type shard_rt = {
  sr_replicas : Replica.t array;
  sr_inboxes : server_msg Mailbox.t array;
}

(* ------------------------------------------------------------------ *)
(* Server domains (fault-free single-group loop, per shard)            *)
(* ------------------------------------------------------------------ *)

let server_loop ~core ~replicas ~inbox ~coord_inboxes =
  let rec loop () =
    (* Z8: this parking pop IS the drain loop's idle wait, exactly as
       in {!Runtime.server_loop}. *)
    match (Mailbox.pop inbox [@mk_lint.allow "Z8"]) with
    | Stop -> ()
    | Validate { replica; coord; aid; txn; ts } ->
        (match Replica.handle_validate replicas.(replica) ~core ~txn ~ts with
        | None -> ()
        | Some status ->
            Mailbox.push coord_inboxes.(coord) (Validated { aid; replica; status }));
        loop ()
    | Accept { replica; coord; aid; txn; ts; decision; view } ->
        (match
           Replica.handle_accept replicas.(replica) ~core ~txn ~ts ~decision
             ~view
         with
        | None -> ()
        | Some reply ->
            Mailbox.push coord_inboxes.(coord) (Accepted { aid; replica; reply }));
        loop ()
    | Write_back { replica; txn; ts; commit } ->
        ignore
          (Replica.handle_commit replicas.(replica) ~core ~txn ~ts ~commit
            : unit option);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Coordinator domains                                                 *)
(* ------------------------------------------------------------------ *)

(* One per-shard validation attempt: a {!Protocol} run to its decision
   with the write-back withheld (the 2PC prepare). *)
type att = {
  a_aid : int;
  a_shard : int;
  a_txn : Txn.t;
  a_ts : Timestamp.t;
  a_core : int;
  a_proto : Protocol.t;
  mutable a_timers : (Protocol.timer * float) list;
  a_on_prepared : bool -> unit;
}

type stamp = { mutable s_seq : int; mutable s_last : float }

(* Coordinator-domain state shared by its per-shard GROUP handles. *)
type coord_state = {
  cs_id : int;
  cs_cfg : config;
  cs_wall : unit -> float;  (* wall µs since t0 *)
  cs_params : Protocol.params;
  cs_rto_cap : float;
  cs_attempts : (int, att) Hashtbl.t;
  mutable cs_next_aid : int;
  cs_stamps : (int, stamp) Hashtbl.t;  (* client -> stamp state *)
  cs_shards : shard_rt array;
  mutable cs_fast : int;
  mutable cs_slow : int;
  cs_pool : Protocol.action Batch.Pool.t;
      (** Pooled, not a single scratch batch: [a_on_prepared] runs
          synchronously from a [Note_decided] and may start the next
          per-shard attempt while the outer batch is still being
          iterated. *)
}

type group_handle = { g_shard : int; g_cs : coord_state }

let exec cs (a : att) (action : Protocol.action) =
  let sr = cs.cs_shards.(a.a_shard) in
  match action with
  | Protocol.Send_validates { only_missing } ->
      for r = 0 to cs.cs_cfg.n_replicas - 1 do
        if (not only_missing) || Protocol.needs_validate a.a_proto r then
          Mailbox.push sr.sr_inboxes.(a.a_core)
            (Validate
               { replica = r; coord = cs.cs_id; aid = a.a_aid; txn = a.a_txn; ts = a.a_ts })
      done
  | Protocol.Send_accepts { decision } ->
      for r = 0 to cs.cs_cfg.n_replicas - 1 do
        Mailbox.push sr.sr_inboxes.(a.a_core)
          (Accept
             {
               replica = r;
               coord = cs.cs_id;
               aid = a.a_aid;
               txn = a.a_txn;
               ts = a.a_ts;
               decision;
               view = 0;
             })
      done
  | Protocol.Arm_timer { timer; delay } ->
      let timer, delay =
        match timer with
        | Protocol.Retransmit rto when rto > cs.cs_rto_cap ->
            (Protocol.Retransmit cs.cs_rto_cap, Float.min delay cs.cs_rto_cap)
        | _ -> (timer, delay)
      in
      a.a_timers <- (timer, cs.cs_wall () +. delay) :: a.a_timers
  | Protocol.Note_validated -> ()
  | Protocol.Note_decided { commit; fast } ->
      if fast then cs.cs_fast <- cs.cs_fast + 1 else cs.cs_slow <- cs.cs_slow + 1;
      (* NO write-back here — that is the whole point of the prepare:
         the outcome broadcast waits for the global conjunction
         ([finalize_txn]). *)
      Hashtbl.remove cs.cs_attempts a.a_aid;
      a.a_on_prepared commit

let feed cs a event =
  Batch.Pool.with_batch cs.cs_pool (fun into ->
      Protocol.handle a.a_proto ~now:(cs.cs_wall ()) event ~into;
      Batch.iter (exec cs a) into)

(* The four GROUP operations of one shard, as seen from one
   coordinator domain. *)
module Live_group = struct
  type t = group_handle

  let execute_read g ~client ~key k =
    let cs = g.g_cs in
    let sr = cs.cs_shards.(g.g_shard) in
    let n = Array.length sr.sr_replicas in
    let rec attempt i =
      if i >= n then (0, Timestamp.zero)
      else
        match
          Replica.handle_get sr.sr_replicas.((cs.cs_id + client + i) mod n) ~key
        with
        | Some v -> v
        | None -> attempt (i + 1)
    in
    k (attempt 0)

  let fresh_txn_stamp g ~client =
    let cs = g.g_cs in
    let s =
      match Hashtbl.find_opt cs.cs_stamps client with
      | Some s -> s
      | None ->
          let s = { s_seq = 0; s_last = 0.0 } in
          Hashtbl.add cs.cs_stamps client s;
          s
    in
    s.s_seq <- s.s_seq + 1;
    let now = cs.cs_wall () in
    (* Strictly increasing per client even when the wall clock stalls
       within one microsecond. *)
    let time = if now <= s.s_last then s.s_last +. 1e-3 else now in
    s.s_last <- time;
    (Tid.make ~seq:s.s_seq ~client_id:client, Timestamp.make ~time ~client_id:client)

  let prepare_txn g ~txn ~ts ~on_prepared =
    let cs = g.g_cs in
    let aid = cs.cs_next_aid in
    cs.cs_next_aid <- aid + 1;
    let now = cs.cs_wall () in
    Batch.Pool.with_batch cs.cs_pool (fun into ->
        let proto = Protocol.start cs.cs_params ~now ~into in
        let a =
          {
            a_aid = aid;
            a_shard = g.g_shard;
            a_txn = txn;
            a_ts = ts;
            a_core = Tid.hash txn.Txn.tid mod cs.cs_cfg.server_domains;
            a_proto = proto;
            a_timers = [];
            a_on_prepared = on_prepared;
          }
        in
        Hashtbl.replace cs.cs_attempts aid a;
        Batch.iter (exec cs a) into)

  let finalize_txn g ~txn ~ts ~commit =
    let cs = g.g_cs in
    let sr = cs.cs_shards.(g.g_shard) in
    let core = Tid.hash txn.Txn.tid mod cs.cs_cfg.server_domains in
    for r = 0 to cs.cs_cfg.n_replicas - 1 do
      Mailbox.push sr.sr_inboxes.(core)
        (Write_back { replica = r; txn; ts; commit })
    done
end

module Driver = Mk_shard.Driver.Make (Live_group)

type coord_result = {
  mc_sub : (int * (Txn.t * Timestamp.t) list) list;
  mc_committed : int;
  mc_aborted : int;
  mc_cross : int;
  mc_fast : int;
  mc_slow : int;
  mc_submitted : int;
  mc_acked : int;
  mc_lat : Histogram.t;
}

type client = {
  cid : int;
  mutable active : bool;
  mutable done_txns : int;
}

let coordinator (cfg : config) ~t0 ~router ~shard_rts ~coord_inboxes ~coord_id =
  let wall_us () = (Spawn.wall () -. t0) *. 1e6 in
  let cs =
    {
      cs_id = coord_id;
      cs_cfg = cfg;
      cs_wall = wall_us;
      cs_params =
        {
          Protocol.n_replicas = cfg.n_replicas;
          quorum = Quorum.create ~n:cfg.n_replicas;
          rto = cfg.rto_us;
          grace = cfg.grace_us;
        };
      cs_rto_cap = 8.0 *. cfg.rto_us;
      cs_attempts = Hashtbl.create 64;
      cs_next_aid = 0;
      cs_stamps = Hashtbl.create 16;
      cs_shards = shard_rts;
      cs_fast = 0;
      cs_slow = 0;
      cs_pool = Batch.Pool.create ();
    }
  in
  let driver =
    Driver.create ~router
      ~groups:(Array.init cfg.shards (fun g_shard -> { g_shard; g_cs = cs }))
  in
  let inbox = coord_inboxes.(coord_id) in
  let rng = Mk_util.Rng.create ~seed:(cfg.seed + (7919 * (coord_id + 1))) in
  let wl =
    match cfg.workload with
    | Runtime.Ycsb_t -> Workload.ycsb_t ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Runtime.Rmw_pair -> Workload.rmw_pair ~rng ~keys:cfg.keys ~theta:cfg.theta
    | Runtime.Retwis -> Workload.retwis ~rng ~keys:cfg.keys ~theta:cfg.theta
  in
  if cfg.shards > 1 && cfg.policy = Router.Mod then
    Workload.set_locality wl
      (Some { Workload.shards = cfg.shards; cross = cfg.cross });
  let local =
    List.init cfg.clients Fun.id
    |> List.filter (fun cid -> cid mod cfg.coordinators = coord_id)
    |> List.map (fun cid -> { cid; active = false; done_txns = 0 })
    |> Array.of_list
  in
  let deadline_us =
    match cfg.duration with Some d -> Some (d *. 1e6) | None -> None
  in
  let quota_done c =
    match deadline_us with
    | Some dl -> wall_us () >= dl
    | None -> c.done_txns >= cfg.txns_per_client
  in
  let lat = Histogram.create () in
  let cross = ref 0 in
  let start_txn c =
    let req = Workload.next wl in
    let involved = Hashtbl.create 4 in
    Array.iter
      (fun k -> Hashtbl.replace involved (Router.shard_of_key router k) ())
      req.Mk_model.System_intf.reads;
    Array.iter
      (fun (k, _) -> Hashtbl.replace involved (Router.shard_of_key router k) ())
      req.Mk_model.System_intf.writes;
    let is_cross = Hashtbl.length involved > 1 in
    let started = wall_us () in
    c.active <- true;
    Driver.submit driver ~client:c.cid ~reads:req.Mk_model.System_intf.reads
      ~writes:(fun _ -> req.Mk_model.System_intf.writes)
      ~on_done:(fun ~committed:_ ->
        Histogram.add lat (wall_us () -. started);
        if is_cross then incr cross;
        c.active <- false;
        c.done_txns <- c.done_txns + 1)
  in
  let dispatch msg =
    match msg with
    | Validated { aid; replica; status } -> (
        match Hashtbl.find_opt cs.cs_attempts aid with
        | Some a -> feed cs a (Protocol.Validate_reply { replica; status })
        | None -> ())
    | Accepted { aid; replica; reply } -> (
        match Hashtbl.find_opt cs.cs_attempts aid with
        | Some a -> feed cs a (Protocol.Accept_reply { replica; reply })
        | None -> ())
  in
  let fire_due_timers () =
    let now = wall_us () in
    (* Collect first: feeding can remove attempts from the table. *)
    let due = ref [] in
    Hashtbl.iter
      (fun _ a ->
        if List.exists (fun (_, dl) -> dl <= now) a.a_timers then
          due := a :: !due)
      cs.cs_attempts;
    List.iter
      (fun a ->
        let fire, pending = List.partition (fun (_, dl) -> dl <= now) a.a_timers in
        a.a_timers <- pending;
        List.iter
          (fun (timer, _) ->
            if not (Protocol.decided a.a_proto) then
              feed cs a (Protocol.Timer timer))
          fire)
      !due
  in
  let idle = ref 0 in
  let rec loop () =
    let progressed = ref false in
    let budget = ref 256 in
    let rec drain () =
      if !budget > 0 then begin
        match Mailbox.try_pop inbox with
        | Some msg ->
            decr budget;
            progressed := true;
            dispatch msg;
            drain ()
        | None -> ()
      end
    in
    drain ();
    fire_due_timers ();
    let all_done = ref true in
    Array.iter
      (fun c ->
        if (not c.active) && not (quota_done c) then begin
          start_txn c;
          progressed := true
        end;
        if c.active || not (quota_done c) then all_done := false)
      local;
    if not !all_done then begin
      if !progressed then idle := 0
      else begin
        incr idle;
        if !idle > 200 then Unix.sleepf 0.0001 else Spawn.relax ()
      end;
      loop ()
    end
  in
  loop ();
  let submitted = Array.fold_left (fun acc c -> acc + c.done_txns) 0 local in
  {
    mc_sub = Driver.sub_histories driver;
    mc_committed = Driver.committed driver;
    mc_aborted = Driver.aborted driver;
    mc_cross = !cross;
    mc_fast = cs.cs_fast;
    mc_slow = cs.cs_slow;
    mc_submitted = submitted;
    mc_acked = submitted;
    mc_lat = lat;
  }

(* ------------------------------------------------------------------ *)
(* Whole-deployment run                                                *)
(* ------------------------------------------------------------------ *)

let rec pow2_ceil n acc = if acc >= n then acc else pow2_ceil n (acc * 2)

let run (cfg : config) : report =
  if cfg.shards < 1 then invalid_arg "Multi.run: shards must be >= 1";
  if cfg.server_domains < 1 then
    invalid_arg "Multi.run: server_domains must be >= 1";
  if cfg.coordinators < 1 then invalid_arg "Multi.run: coordinators must be >= 1";
  if cfg.clients < 1 then invalid_arg "Multi.run: clients must be >= 1";
  if cfg.n_replicas < 3 || cfg.n_replicas mod 2 = 0 then
    invalid_arg "Multi.run: n_replicas must be odd and >= 3";
  if cfg.cross < 0.0 || cfg.cross > 1.0 then
    invalid_arg "Multi.run: cross must be in [0, 1]";
  let router = Router.create ~policy:cfg.policy ~shards:cfg.shards ~keys:cfg.keys () in
  let quorum = Quorum.create ~n:cfg.n_replicas in
  let shard_rts =
    Array.init cfg.shards (fun shard ->
        let sr_replicas =
          Array.init cfg.n_replicas (fun id ->
              Replica.create ~id ~quorum ~cores:cfg.server_domains)
        in
        let local_keys = max 1 (Router.local_keys router ~shard) in
        Array.iter
          (fun r ->
            for key = 0 to local_keys - 1 do
              Replica.load r ~key ~value:0
            done)
          sr_replicas;
        {
          sr_replicas;
          sr_inboxes =
            Array.init cfg.server_domains (fun _ ->
                Mailbox.create ~capacity:cfg.server_inbox);
        })
  in
  (* The deadlock-freedom floor, scaled by the cross-shard fan-out
     (see the header comment); auto-raised to the next power of two. *)
  let local_clients = (cfg.clients + cfg.coordinators - 1) / cfg.coordinators in
  let floor = 4 * local_clients * cfg.n_replicas * cfg.shards in
  let coord_capacity = pow2_ceil (max cfg.coord_inbox floor) 2 in
  let coord_inboxes =
    Array.init cfg.coordinators (fun _ -> Mailbox.create ~capacity:coord_capacity)
  in
  let t0 = Spawn.wall () in
  let servers =
    List.concat_map
      (fun shard ->
        let sr = shard_rts.(shard) in
        List.init cfg.server_domains (fun core ->
            Spawn.spawn (fun () ->
                server_loop ~core ~replicas:sr.sr_replicas
                  ~inbox:sr.sr_inboxes.(core) ~coord_inboxes)))
      (List.init cfg.shards Fun.id)
  in
  let coords =
    List.init cfg.coordinators (fun coord_id ->
        Spawn.spawn (fun () ->
            coordinator cfg ~t0 ~router ~shard_rts ~coord_inboxes ~coord_id))
  in
  let results = List.map Spawn.join coords in
  (* All coordinators have pushed their last write-back before these
     Stops are enqueued, so each server drains everything and exits:
     the final replica state is quiescent. *)
  Array.iter
    (fun sr -> Array.iter (fun inbox -> Mailbox.push inbox Stop) sr.sr_inboxes)
    shard_rts;
  List.iter Spawn.join servers;
  let wall_seconds = Spawn.wall () -. t0 in
  let sub_histories =
    List.init cfg.shards (fun shard ->
        ( shard,
          List.concat_map
            (fun r -> List.assoc shard r.mc_sub)
            results ))
  in
  let history = History.merge ~router sub_histories in
  let committed_count =
    List.fold_left (fun acc r -> acc + r.mc_committed) 0 results
  in
  let aborted = List.fold_left (fun acc r -> acc + r.mc_aborted) 0 results in
  let decided = committed_count + aborted in
  let lat =
    List.fold_left
      (fun acc r -> Histogram.merge acc r.mc_lat)
      (Histogram.create ()) results
  in
  {
    shards = cfg.shards;
    server_domains = cfg.server_domains;
    coordinators = cfg.coordinators;
    clients = cfg.clients;
    committed_count;
    aborted;
    cross_shard = List.fold_left (fun acc r -> acc + r.mc_cross) 0 results;
    fast_path = List.fold_left (fun acc r -> acc + r.mc_fast) 0 results;
    slow_path = List.fold_left (fun acc r -> acc + r.mc_slow) 0 results;
    wall_seconds;
    throughput = float_of_int committed_count /. wall_seconds;
    abort_rate =
      (if decided = 0 then 0.0
       else float_of_int aborted /. float_of_int decided);
    p50_us = Histogram.percentile lat 50.0;
    p99_us = Histogram.percentile lat 99.0;
    submitted = List.fold_left (fun acc r -> acc + r.mc_submitted) 0 results;
    acked = List.fold_left (fun acc r -> acc + r.mc_acked) 0 results;
    history;
    sub_histories;
    router;
    groups = Array.map (fun sr -> sr.sr_replicas) shard_rts;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>shards=%d servers=%dx%d coordinators=%d clients=%d@,\
     committed=%d aborted=%d (abort rate %.1f%%) cross-shard=%d@,\
     fast=%d slow=%d (per-shard sub-attempts)@,\
     %.2f s wall, %.0f committed txn/s, latency p50=%.0f us p99=%.0f us@]"
    r.shards r.shards r.server_domains r.coordinators r.clients
    r.committed_count r.aborted (100.0 *. r.abort_rate) r.cross_shard
    r.fast_path r.slow_path r.wall_seconds r.throughput r.p50_us r.p99_us

let report_json r =
  Printf.sprintf
    "{\"shards\": %d, \"server_domains\": %d, \"coordinators\": %d, \
     \"clients\": %d, \"committed\": %d, \"aborted\": %d, \"cross_shard\": \
     %d, \"abort_rate\": %.4f, \"fast_path\": %d, \"slow_path\": %d, \
     \"wall_seconds\": %.4f, \"throughput\": %.1f, \"p50_us\": %.1f, \
     \"p99_us\": %.1f, \"submitted\": %d, \"acked\": %d}"
    r.shards r.server_domains r.coordinators r.clients r.committed_count
    r.aborted r.cross_shard r.abort_rate r.fast_path r.slow_path
    r.wall_seconds r.throughput r.p50_us r.p99_us r.submitted r.acked
