type result = {
  domains : int;
  increments : int;
  wall_seconds : float;
  ops_per_second : float;
}

let time_domains ~domains f = snd (Mk_live.Spawn.timed ~domains f)

let shared_atomic ~domains ~increments_per_domain =
  let counter = Atomic.make 0 in
  let wall_seconds =
    time_domains ~domains (fun _ ->
        for _ = 1 to increments_per_domain do
          Atomic.incr counter
        done)
  in
  let increments = Atomic.get counter in
  {
    domains;
    increments;
    wall_seconds;
    ops_per_second = float_of_int increments /. wall_seconds;
  }

let sharded ~domains ~increments_per_domain =
  (* Pad slots to distinct cache lines (8 ints ≈ 64 bytes apart). *)
  let slots = Array.make (domains * 8) 0 in
  let wall_seconds =
    time_domains ~domains (fun id ->
        let slot = id * 8 in
        for _ = 1 to increments_per_domain do
          slots.(slot) <- slots.(slot) + 1
        done)
  in
  let increments = ref 0 in
  for id = 0 to domains - 1 do
    increments := !increments + slots.(id * 8)
  done;
  {
    domains;
    increments = !increments;
    wall_seconds;
    ops_per_second = float_of_int !increments /. wall_seconds;
  }
