module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Vstore = Mk_storage.Vstore
module Occ = Mk_storage.Occ
module Rng = Mk_util.Rng

type report = {
  committed : (Txn.t * Timestamp.t) list;
  aborted : int;
  wall_seconds : float;
  throughput : float;
}

(* One domain's closed loop: generate, read versions, validate, finish. *)
let worker ~store ~domain_id ~txns ~keys ~theta ~reads ~writes ~seed =
  let rng = Rng.create ~seed:(seed + (1009 * (domain_id + 1))) in
  let zipf = Mk_workload.Zipf.create ~rng ~n:keys ~theta () in
  let committed = ref [] in
  let aborted = ref 0 in
  let distinct count =
    let chosen = Array.make count (-1) in
    let rec draw i =
      if i < count then begin
        let key = Mk_workload.Zipf.sample zipf in
        if Array.exists (fun k -> k = key) chosen then draw i
        else begin
          chosen.(i) <- key;
          draw (i + 1)
        end
      end
    in
    draw 0;
    chosen
  in
  for seq = 1 to txns do
    (* Execute phase: snapshot versions of the keys we will touch. The
       first [writes] keys are read-modify-written; [reads] extra keys
       are read-only. *)
    let keys_touched = distinct (writes + reads) in
    let read_set =
      Array.to_list
        (Array.map
           (fun key ->
             let e = Vstore.find_or_create store key in
             let _, wts = Vstore.read_versioned e in
             ({ key; wts } : Txn.read_entry))
           keys_touched)
    in
    let write_set =
      List.init writes (fun i ->
          ({ key = keys_touched.(i); value = (seq * 1000) + domain_id }
            : Txn.write_entry))
    in
    let tid = Timestamp.Tid.make ~seq ~client_id:domain_id in
    let txn = Txn.make ~tid ~read_set ~write_set in
    let ts = Timestamp.make ~time:(float_of_int seq) ~client_id:domain_id in
    match Occ.validate store txn ~ts with
    | `Ok ->
        Occ.finish store txn ~ts ~commit:true;
        committed := (txn, ts) :: !committed
    | `Abort -> incr aborted
  done;
  (!committed, !aborted)

let run_with_store ~store ~domains ~txns_per_domain ~keys ~theta
    ?(reads_per_txn = 0) ?(writes_per_txn = 1) ~seed () =
  if domains < 1 then invalid_arg "Par_occ.run: domains must be >= 1";
  for key = 0 to keys - 1 do
    Vstore.load store ~key ~value:0
  done;
  let results, wall_seconds =
    Mk_live.Spawn.timed ~domains (fun domain_id ->
        worker ~store ~domain_id ~txns:txns_per_domain ~keys ~theta
          ~reads:reads_per_txn ~writes:writes_per_txn ~seed)
  in
  let committed = List.concat_map fst results in
  let aborted = List.fold_left (fun acc (_, a) -> acc + a) 0 results in
  {
    committed;
    aborted;
    wall_seconds;
    throughput = float_of_int (List.length committed) /. wall_seconds;
  }

let run ~domains ~txns_per_domain ~keys ~theta ?reads_per_txn ?writes_per_txn ~seed ()
    =
  let store = Vstore.create () in
  run_with_store ~store ~domains ~txns_per_domain ~keys ~theta ?reads_per_txn
    ?writes_per_txn ~seed ()

let final_store_matches report store =
  let model = Hashtbl.create 4096 in
  let sorted =
    List.sort
      (fun (a, tsa) (b, tsb) ->
        let c = Timestamp.compare tsa tsb in
        if c <> 0 then c else Timestamp.Tid.compare a.Txn.tid b.Txn.tid)
      report.committed
  in
  List.iter
    (fun ((txn : Txn.t), _) ->
      Array.iter
        (fun (w : Txn.write_entry) -> Hashtbl.replace model w.key w.value)
        txn.write_set)
    sorted;
  let bad = ref None in
  Hashtbl.iter
    (fun key expected ->
      if !bad = None then begin
        match Vstore.find store key with
        | None -> bad := Some (key, expected, min_int)
        | Some e ->
            let got, _ = Vstore.read_versioned e in
            if got <> expected then bad := Some (key, expected, got)
      end)
    model;
  !bad
