(** Transport cost models.

    The paper's prototype runs every system over eRPC, a kernel-bypass
    RPC library; Figure 1 contrasts it with the Linux UDP stack. We
    model a transport as per-message CPU costs at the receiving and
    sending server core plus a one-way propagation latency with
    jitter. The jitter term matters beyond realism: it makes replicas
    receive validation requests in different orders, which is the
    mechanism behind Meerkat's extra aborts under contention
    (Fig. 6/7). Calibration sources: eRPC reports sub-µs per-RPC CPU
    and ~2 µs one-way latency on 40 GbE (Kalia et al., NSDI'19); a
    Linux UDP round trip costs several µs of kernel time per packet. *)

type t = {
  name : string;
  rx_cpu : float;  (** CPU µs a core spends receiving one message. *)
  tx_cpu : float;  (** CPU µs a core spends sending one message. *)
  latency : float;  (** One-way propagation delay, µs. *)
  jitter : float;  (** Uniform extra delay in [0, jitter), µs. *)
  drop_prob : float;  (** Probability a message is silently dropped. *)
}

val erpc : t
(** Kernel-bypass transport: cheap messages, low latency. *)

val udp : t
(** Kernel UDP stack: ~8x more expensive per message (Fig. 1). *)

val with_drop : t -> float -> t
(** Same transport with a message-drop probability, for fault tests.
    The probability is clamped to [0, 1]; NaN clamps to 0. *)

val clamp_prob : float -> float
(** Clamp a probability to [0, 1], mapping NaN to 0. *)

val pp : Format.formatter -> t -> unit
