type endpoint = Client of int | Replica of int

type link_rule = {
  drop : float;
  dup : float;
  delay_prob : float;
  delay : float;
}

let pass = { drop = 0.0; dup = 0.0; delay_prob = 0.0; delay = 0.0 }
let block = { pass with drop = 1.0 }

let combine a b =
  {
    drop = Float.max a.drop b.drop;
    dup = Float.max a.dup b.dup;
    delay_prob = Float.max a.delay_prob b.delay_prob;
    delay = a.delay +. b.delay;
  }

type fault_fn = src:endpoint -> dst:endpoint -> link_rule option
type event = [ `Sent | `Dropped | `Duplicated | `Delayed ]

type t = {
  engine : Mk_sim.Engine.t;
  rng : Mk_util.Rng.t;
  transport : Transport.t;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable link_faults : fault_fn option;
  mutable observer : (event -> unit) option;
}

let create engine ~rng ~transport =
  {
    engine;
    rng;
    transport;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    link_faults = None;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let set_link_faults t f = t.link_faults <- f
let link_faults t = t.link_faults

let notify t ev = match t.observer with Some f -> f ev | None -> ()
let engine t = t.engine
let transport t = t.transport
let tx_cpu t = t.transport.Transport.tx_cpu

let delay t =
  let tr = t.transport in
  let jitter =
    if tr.Transport.jitter > 0.0 then Mk_util.Rng.float t.rng tr.Transport.jitter
    else 0.0
  in
  tr.Transport.latency +. jitter

let dropped t =
  let p = t.transport.Transport.drop_prob in
  p > 0.0 && Mk_util.Rng.uniform t.rng < p

(* The rule in effect for this message, if any. Every random draw below
   is conditional on a positive probability so that a fault-free
   configuration consumes exactly the same RNG stream as before the
   fault layer existed — seeded runs stay bit-identical. *)
let rule_for t link =
  match (t.link_faults, link) with
  | Some f, Some (src, dst) -> f ~src ~dst
  | _ -> None

let rule_dropped t rule =
  match rule with
  | Some r -> r.drop > 0.0 && Mk_util.Rng.uniform t.rng < r.drop
  | None -> false

(* Extra delay-spike for one delivery (models reordering: a spiked
   message overtakes or is overtaken by its neighbours). Drawn per
   delivery, so a duplicate can reorder independently of the original. *)
let spike t rule =
  match rule with
  | Some r when r.delay_prob > 0.0 && Mk_util.Rng.uniform t.rng < r.delay_prob ->
      t.delayed <- t.delayed + 1;
      notify t `Delayed;
      r.delay
  | _ -> 0.0

let duplicate t rule =
  match rule with
  | Some r -> r.dup > 0.0 && Mk_util.Rng.uniform t.rng < r.dup
  | None -> false

let send t ?link deliver =
  t.sent <- t.sent + 1;
  notify t `Sent;
  let rule = rule_for t link in
  if dropped t || rule_dropped t rule then begin
    t.dropped <- t.dropped + 1;
    notify t `Dropped
  end
  else begin
    deliver ~dup:false ~extra:(spike t rule);
    if duplicate t rule then begin
      t.duplicated <- t.duplicated + 1;
      notify t `Duplicated;
      deliver ~dup:true ~extra:(spike t rule)
    end
  end

let send_to_core t ?link ~dst ~cost body =
  send t ?link (fun ~dup ~extra ->
      (* A duplicate is absorbed by the receiver's at-most-once check —
         a hash probe, below this model's cost floor — so it is charged
         zero CPU. This also keeps a duplication-only fault run
         time-identical to a fault-free run of the same seed, which the
         chaos determinism test relies on. *)
      let cost = if dup then 0.0 else t.transport.Transport.rx_cpu +. cost in
      Mk_sim.Engine.schedule t.engine ~delay:(delay t +. extra) (fun () ->
          Mk_sim.Core.submit dst ~cost body))

let send_work_to_core t ?link ~dst ~cost k =
  send_to_core t ?link ~dst ~cost (fun ~finish ->
      k ();
      finish ())

let send_to_client t ?link k =
  send t ?link (fun ~dup:_ ~extra ->
      Mk_sim.Engine.schedule t.engine ~delay:(delay t +. extra) k)

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_delayed t = t.delayed
