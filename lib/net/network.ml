type t = {
  engine : Mk_sim.Engine.t;
  rng : Mk_util.Rng.t;
  transport : Transport.t;
  mutable sent : int;
  mutable dropped : int;
  mutable observer : ([ `Sent | `Dropped ] -> unit) option;
}

let create engine ~rng ~transport =
  { engine; rng; transport; sent = 0; dropped = 0; observer = None }

let set_observer t f = t.observer <- Some f

let notify t ev = match t.observer with Some f -> f ev | None -> ()
let engine t = t.engine
let transport t = t.transport
let tx_cpu t = t.transport.Transport.tx_cpu

let delay t =
  let tr = t.transport in
  let jitter =
    if tr.Transport.jitter > 0.0 then Mk_util.Rng.float t.rng tr.Transport.jitter
    else 0.0
  in
  tr.Transport.latency +. jitter

let dropped t =
  let p = t.transport.Transport.drop_prob in
  p > 0.0 && Mk_util.Rng.uniform t.rng < p

let send_to_core t ~dst ~cost body =
  t.sent <- t.sent + 1;
  notify t `Sent;
  if dropped t then begin
    t.dropped <- t.dropped + 1;
    notify t `Dropped
  end
  else begin
    let cost = t.transport.Transport.rx_cpu +. cost in
    Mk_sim.Engine.schedule t.engine ~delay:(delay t) (fun () ->
        Mk_sim.Core.submit dst ~cost body)
  end

let send_work_to_core t ~dst ~cost k =
  send_to_core t ~dst ~cost (fun ~finish ->
      k ();
      finish ())

let send_to_client t k =
  t.sent <- t.sent + 1;
  notify t `Sent;
  if dropped t then begin
    t.dropped <- t.dropped + 1;
    notify t `Dropped
  end
  else Mk_sim.Engine.schedule t.engine ~delay:(delay t) k

let messages_sent t = t.sent
let messages_dropped t = t.dropped
