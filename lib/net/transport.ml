type t = {
  name : string;
  rx_cpu : float;
  tx_cpu : float;
  latency : float;
  jitter : float;
  drop_prob : float;
}

let erpc =
  {
    name = "eRPC";
    rx_cpu = 0.25;
    tx_cpu = 0.20;
    latency = 2.0;
    jitter = 0.8;
    drop_prob = 0.0;
  }

let udp =
  {
    name = "UDP";
    rx_cpu = 6.0;
    tx_cpu = 4.6;
    latency = 15.0;
    jitter = 4.0;
    drop_prob = 0.0;
  }

let clamp_prob p = if Float.is_nan p then 0.0 else Float.max 0.0 (Float.min 1.0 p)
let with_drop t p = { t with drop_prob = clamp_prob p }

let pp ppf t =
  Format.fprintf ppf "%s(rx=%.2f tx=%.2f lat=%.1f±%.1f drop=%.3f)" t.name t.rx_cpu
    t.tx_cpu t.latency t.jitter t.drop_prob
