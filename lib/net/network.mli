(** Message delivery between clients and server cores.

    Server threads poll their own NIC receive queue; the coordinator
    steers every message of a transaction to the same core id on each
    replica by choosing the UDP port, so Receive-Side Scaling delivers
    it to that core's queue (§5.2.2). We model this by addressing
    messages directly to a {!Mk_sim.Core.t}.

    Clients (application servers) are not CPU-modelled: the paper
    provisions enough client machines that servers are always the
    bottleneck, and so do we. A message to a client is therefore just
    a delayed callback.

    {2 Per-link faults}

    Beyond the transport's uniform drop probability, a network can
    carry an installed {!fault_fn} mapping a (source, destination)
    link to a {!link_rule}: extra drop probability (set to 1.0 for a
    partition), duplication probability, and a delay-spike probability
    with its magnitude (models reordering — a spiked message is
    overtaken by later traffic). Senders label their messages with
    [?link]; unlabelled messages bypass link rules entirely. All fault
    draws are conditional on a positive probability, so a fault-free
    run consumes the same RNG stream whether or not a fault function
    is installed. *)

type endpoint = Client of int | Replica of int
(** One side of a link. [Client c] is client/coordinator machine [c];
    [Replica r] covers every core of replica [r] (faults model the
    machine-to-machine path, not individual cores). *)

type link_rule = {
  drop : float;  (** Extra drop probability on this link; 1.0 = partition. *)
  dup : float;  (** Probability a message is delivered twice. *)
  delay_prob : float;  (** Probability of a delay spike (reordering). *)
  delay : float;  (** Spike magnitude in µs, added to latency+jitter. *)
}

val pass : link_rule
(** The no-fault rule (all zeros). *)

val block : link_rule
(** Drop everything: [{ pass with drop = 1.0 }]. *)

val combine : link_rule -> link_rule -> link_rule
(** Overlay two rules: max of each probability, sum of spike delays. *)

type fault_fn = src:endpoint -> dst:endpoint -> link_rule option
(** [None] means no fault on that link (same as {!pass}). *)

type event = [ `Sent | `Dropped | `Duplicated | `Delayed ]

type t

val create : Mk_sim.Engine.t -> rng:Mk_util.Rng.t -> transport:Transport.t -> t
val engine : t -> Mk_sim.Engine.t
val transport : t -> Transport.t

val tx_cpu : t -> float
(** Per-message send cost; server handlers add this to their job cost
    for each message they emit. *)

val send_to_core :
  t ->
  ?link:endpoint * endpoint ->
  dst:Mk_sim.Core.t ->
  cost:float ->
  (finish:(unit -> unit) -> unit) ->
  unit
(** [send_to_core t ~dst ~cost body] delivers a message: after
    latency+jitter, a job of cost [transport.rx_cpu +. cost] runs on
    [dst], then [body ~finish] (see {!Mk_sim.Core.submit}). The
    message may be dropped (with the transport's probability), in
    which case nothing runs. [?link] is the (src, dst) pair used to
    look up the installed fault rule; a duplicated message runs the
    receive handler twice, but the duplicate is charged zero CPU — the
    receiver's at-most-once dedup (a record-table probe) is below the
    model's cost floor, and a free duplicate keeps duplication-only
    fault runs time-identical to fault-free runs of the same seed. *)

val send_work_to_core :
  t ->
  ?link:endpoint * endpoint ->
  dst:Mk_sim.Core.t ->
  cost:float ->
  (unit -> unit) ->
  unit
(** Like {!send_to_core} with a simple handler that releases the core
    when it returns. *)

val send_to_client : t -> ?link:endpoint * endpoint -> (unit -> unit) -> unit
(** Deliver a message to a (un-modelled) client machine: runs the
    callback after latency+jitter, unless dropped. *)

val set_link_faults : t -> fault_fn option -> unit
(** Install (or clear, with [None]) the per-link fault function.
    Consulted once per labelled message at send time. *)

val link_faults : t -> fault_fn option

val messages_sent : t -> int
val messages_dropped : t -> int

val messages_duplicated : t -> int
(** Messages delivered twice by a link rule (each counted once). *)

val messages_delayed : t -> int
(** Deliveries that took a delay spike (a duplicate may spike
    independently of its original). *)

val set_observer : t -> (event -> unit) -> unit
(** Register a callback fired on every message send and on every fault
    applied to it (a dropped message fires [`Sent] then [`Dropped]).
    Used by the observability layer to mirror traffic into its
    registry and trace; at most one observer, the last registration
    wins. *)
