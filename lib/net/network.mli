(** Message delivery between clients and server cores.

    Server threads poll their own NIC receive queue; the coordinator
    steers every message of a transaction to the same core id on each
    replica by choosing the UDP port, so Receive-Side Scaling delivers
    it to that core's queue (§5.2.2). We model this by addressing
    messages directly to a {!Mk_sim.Core.t}.

    Clients (application servers) are not CPU-modelled: the paper
    provisions enough client machines that servers are always the
    bottleneck, and so do we. A message to a client is therefore just
    a delayed callback. *)

type t

val create : Mk_sim.Engine.t -> rng:Mk_util.Rng.t -> transport:Transport.t -> t
val engine : t -> Mk_sim.Engine.t
val transport : t -> Transport.t

val tx_cpu : t -> float
(** Per-message send cost; server handlers add this to their job cost
    for each message they emit. *)

val send_to_core :
  t -> dst:Mk_sim.Core.t -> cost:float -> (finish:(unit -> unit) -> unit) -> unit
(** [send_to_core t ~dst ~cost body] delivers a message: after
    latency+jitter, a job of cost [transport.rx_cpu +. cost] runs on
    [dst], then [body ~finish] (see {!Mk_sim.Core.submit}). The
    message may be dropped (with the transport's probability), in
    which case nothing runs. *)

val send_work_to_core : t -> dst:Mk_sim.Core.t -> cost:float -> (unit -> unit) -> unit
(** Like {!send_to_core} with a simple handler that releases the core
    when it returns. *)

val send_to_client : t -> (unit -> unit) -> unit
(** Deliver a message to a (un-modelled) client machine: runs the
    callback after latency+jitter, unless dropped. *)

val messages_sent : t -> int
val messages_dropped : t -> int

val set_observer : t -> ([ `Sent | `Dropped ] -> unit) -> unit
(** Register a callback fired on every message send and on every drop
    (a dropped message fires both, [`Sent] then [`Dropped]). Used by
    the observability layer to mirror traffic into its registry and
    trace; at most one observer, the last registration wins. *)
