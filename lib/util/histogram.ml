(* Log-scaled buckets: bucket i covers [lo * r^i, lo * r^(i+1)).
   With r = 1.04 and lo = 0.01, 640 buckets reach past 10^9 ns. *)

let lo = 0.01
let ratio = 1.04
let log_ratio = log ratio
let nbuckets = 640

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : float;
}

let create () = { buckets = Array.make nbuckets 0; n = 0; sum = 0.0 }

let bucket_of v =
  if v <= lo then 0
  else begin
    let i = int_of_float (log (v /. lo) /. log_ratio) in
    if i >= nbuckets then nbuckets - 1 else i
  end

let midpoint i = lo *. (ratio ** (float_of_int i +. 0.5))

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v

let count t = t.n
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let target = p /. 100.0 *. float_of_int t.n in
    let rec loop i acc =
      if i >= nbuckets then midpoint (nbuckets - 1)
      else begin
        let acc = acc + t.buckets.(i) in
        if float_of_int acc >= target then midpoint i else loop (i + 1) acc
      end
    in
    loop 0 0
  end

let merge_into ~dst ~src =
  for i = 0 to nbuckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum

let merge a b =
  let t = create () in
  merge_into ~dst:t ~src:a;
  merge_into ~dst:t ~src:b;
  t
