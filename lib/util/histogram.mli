(** Fixed-resolution latency histogram (log-scaled buckets).

    Records microsecond-scale latencies with bounded memory and gives
    approximate percentiles good enough for the harness reports. *)

type t

val create : unit -> t
(** Buckets cover \[0.01 µs, ~1 s) with ~4% relative resolution. *)

val add : t -> float -> unit
(** [add t v] records a non-negative value (values are clamped into
    the covered range). *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Approximate percentile (bucket midpoint), [p] in \[0, 100\].
    Returns [0.0] on an empty histogram (reports print zeros, never
    NaN). *)

val merge_into : dst:t -> src:t -> unit

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both inputs' samples —
    for combining per-core histograms into a per-replica or global
    view. The inputs are unchanged. *)
