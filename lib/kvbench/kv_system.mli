(** The Figure 1 microbenchmark system: a single unreplicated
    key-value server handling PUTs.

    Two transports (Linux UDP vs eRPC kernel-bypass) and an optional
    artificial scalability bottleneck — a shared atomic counter
    incremented on every PUT. The paper's punchline: with the UDP
    stack the counter is invisible (the network stack is the
    bottleneck), with eRPC it caps the whole server near 11 M op/s —
    application-level cross-core coordination suddenly matters. *)

type config = {
  threads : int;
  transport : Mk_net.Transport.t;
  atomic_counter : bool;
      (** Increment a shared counter on every PUT (the artificial
          bottleneck of Fig. 1). *)
  keys : int;
  costs : Mk_model.Costs.t;
  seed : int;
}

val default_config : config

type t

val create : ?obs:Mk_obs.Obs.t -> Mk_sim.Engine.t -> config -> t
val name : t -> string
val threads : t -> int

val submit :
  t -> client:int -> Mk_model.System_intf.txn_request -> on_done:(committed:bool -> unit) -> unit
(** Each write pair in the request is executed as one PUT; the reply
    arrives after the last PUT completes. Reads are ignored (the
    Fig. 1 workload is PUT-only). Always commits. *)

val obs : t -> Mk_obs.Obs.t
val counters : t -> Mk_model.System_intf.counters
val puts : t -> int
val counter_value : t -> int
(** Value of the shared counter (equals {!puts} when enabled). *)

val get : t -> key:int -> int option
val server_busy_fraction : t -> float
