module Engine = Mk_sim.Engine
module Core = Mk_sim.Core
module Resource = Mk_sim.Resource
module Network = Mk_net.Network
module Transport = Mk_net.Transport
module Costs = Mk_model.Costs
module Intf = Mk_model.System_intf
module Rng = Mk_util.Rng
module Obs = Mk_obs.Obs

type config = {
  threads : int;
  transport : Transport.t;
  atomic_counter : bool;
  keys : int;
  costs : Costs.t;
  seed : int;
}

let default_config =
  {
    threads = 8;
    transport = Transport.erpc;
    atomic_counter = false;
    keys = 65536;
    costs = Costs.default;
    seed = 42;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  net : Network.t;
  cores : Core.t array;
  table : (int, int) Hashtbl.t;
  counter : Resource.t option;
  rng : Rng.t;
  obs : Obs.t;  (** Applied PUTs count as committed transactions. *)
  mutable counter_value : int;
}

let create ?obs engine cfg =
  let rng = Rng.split (Engine.rng engine) in
  let net = Network.create engine ~rng:(Rng.split rng) ~transport:cfg.transport in
  let obs =
    match obs with
    | Some obs -> obs
    | None -> Obs.create ~clock:(fun () -> Engine.now engine) ()
  in
  Network.set_observer net (function
    | `Sent -> Obs.note_send obs
    | `Dropped -> Obs.note_drop obs
    | `Duplicated -> Obs.note_duplicate obs
    | `Delayed -> Obs.note_delay obs);
  {
    engine;
    cfg;
    net;
    cores = Array.init cfg.threads (fun id -> Core.create engine ~id);
    table = Hashtbl.create (max 16 cfg.keys);
    counter =
      (if cfg.atomic_counter then Some (Resource.create engine ~name:"put-counter")
       else None);
    rng;
    obs;
    counter_value = 0;
  }

let name t =
  Printf.sprintf "%s%s" t.cfg.transport.Transport.name
    (if t.cfg.atomic_counter then "+counter" else "")

let threads t = t.cfg.threads

let submit t ~client:_ (req : Intf.txn_request) ~on_done =
  let nputs = Array.length req.writes in
  let remaining = ref nputs in
  let finish_one () =
    decr remaining;
    if !remaining = 0 then
      Network.send_to_client t.net (fun () -> on_done ~committed:true)
  in
  if nputs = 0 then Network.send_to_client t.net (fun () -> on_done ~committed:true)
  else
    Array.iter
      (fun (key, value) ->
        let core = t.cores.(Rng.int t.rng t.cfg.threads) in
        let cost = t.cfg.costs.Costs.put +. Network.tx_cpu t.net in
        Network.send_to_core t.net ~dst:core ~cost (fun ~finish ->
            let apply () =
              Hashtbl.replace t.table key value;
              (* No commit protocol here: a PUT is just a committed
                 write, with no fast/slow classification. *)
              Mk_obs.Registry.incr
                (Mk_obs.Registry.counter (Obs.registry t.obs) "txn.committed");
              finish_one ();
              finish ()
            in
            match t.counter with
            | None -> apply ()
            | Some counter ->
                (* The artificial bottleneck: a fetch-and-add on a
                   shared cache line serializes every PUT. *)
                Resource.use counter ~hold:t.cfg.costs.Costs.atomic_counter
                  (fun () ->
                    t.counter_value <- t.counter_value + 1;
                    apply ())))
      req.writes

let obs t = t.obs

let counters t : Intf.counters =
  { Intf.zero_counters with committed = Obs.counter_value t.obs "txn.committed" }

let puts t = Obs.counter_value t.obs "txn.committed"
let counter_value t = t.counter_value
let get t ~key = Hashtbl.find_opt t.table key

let server_busy_fraction t =
  let now = Engine.now t.engine in
  if now <= 0.0 then 0.0
  else begin
    let busy = Array.fold_left (fun acc c -> acc +. Core.busy_time c) 0.0 t.cores in
    busy /. (now *. float_of_int t.cfg.threads)
  end
