(** A simulated CPU core (one server thread pinned to a hyperthread,
    as in the paper's setup).

    A core executes jobs one at a time, FCFS — the polling loop of an
    eRPC server thread. A job has a fixed compute cost and an optional
    continuation body that may extend the job (e.g. by spinning on a
    {!Resource} that models a shared lock); the core stays busy until
    the body signals completion, which is exactly how a spinning
    thread behaves. *)

type t

val create : Engine.t -> id:int -> t
val id : t -> int

val set_observer : t -> (start:Engine.time -> finish:Engine.time -> unit) -> unit
(** Register a callback fired once per completed job with the busy
    interval it occupied (queue wait excluded). Used by the tracing
    layer to reconstruct per-core busy/idle timelines; at most one
    observer, the last registration wins. *)

val submit : t -> cost:Engine.time -> (finish:(unit -> unit) -> unit) -> unit
(** [submit t ~cost body] enqueues a job. When the core reaches it,
    [cost] microseconds elapse, then [body ~finish] runs; the core is
    released only when [finish ()] is called (call it exactly once). *)

val submit_work : t -> cost:Engine.time -> (unit -> unit) -> unit
(** [submit_work t ~cost k] enqueues a simple job: burn [cost], run
    [k], release the core. *)

val queue_length : t -> int
val completed : t -> int
val busy_time : t -> Engine.time
(** Total time this core spent occupied (including spin-waiting). *)
