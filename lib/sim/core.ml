type job = { cost : Engine.time; body : finish:(unit -> unit) -> unit }

type t = {
  engine : Engine.t;
  id : int;
  jobs : job Queue.t;
  mutable running : bool;
  mutable completed : int;
  mutable busy_time : Engine.time;
  mutable job_started : Engine.time;
  mutable observer : (start:Engine.time -> finish:Engine.time -> unit) option;
      (** Called once per completed job with its busy interval. Wired
          by the observability layer (which mk_sim cannot depend on). *)
}

let create engine ~id =
  {
    engine;
    id;
    jobs = Queue.create ();
    running = false;
    completed = 0;
    busy_time = 0.0;
    job_started = 0.0;
    observer = None;
  }

let id t = t.id
let set_observer t f = t.observer <- Some f

let rec start_next t =
  match Queue.take_opt t.jobs with
  | None -> t.running <- false
  | Some job ->
      t.running <- true;
      t.job_started <- Engine.now t.engine;
      let run () =
        let finished = ref false in
        let finish () =
          if !finished then invalid_arg "Core: finish called twice";
          finished := true;
          t.completed <- t.completed + 1;
          let finish_time = Engine.now t.engine in
          t.busy_time <- t.busy_time +. (finish_time -. t.job_started);
          (match t.observer with
          | Some f -> f ~start:t.job_started ~finish:finish_time
          | None -> ());
          start_next t
        in
        job.body ~finish
      in
      (* Zero-cost jobs (duplicate deliveries absorbed by receiver
         dedup) run inline: an extra engine event would not change any
         event's time, but it would change when later jobs' events are
         *inserted* into their (identical) time bucket, perturbing
         same-time FIFO order relative to the rest of the system.
         Running inline keeps the event stream of a duplication-only
         faulty run identical to its fault-free twin. *)
      if job.cost = 0.0 then run ()
      else Engine.schedule t.engine ~delay:job.cost run

let submit t ~cost body =
  Queue.add { cost; body } t.jobs;
  if not t.running then start_next t

let submit_work t ~cost k =
  submit t ~cost (fun ~finish ->
      k ();
      finish ())

let queue_length t = Queue.length t.jobs
let completed t = t.completed
let busy_time t = t.busy_time
