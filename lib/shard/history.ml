(* Merge per-shard committed histories (local keys) into the global
   history the serializability checker consumes (DESIGN.md §13). *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn

module Tid_table = Hashtbl.Make (struct
  type t = Tid.t

  let equal = Tid.equal
  let hash = Tid.hash
end)

type acc = {
  mutable ts : Timestamp.t;
  mutable subs : (int * Txn.t) list;
  order : int;  (** First-seen rank, to keep the output deterministic. *)
}

let merge ~router per_shard =
  let table : acc Tid_table.t = Tid_table.create 256 in
  let next_order = ref 0 in
  List.iter
    (fun (shard, history) ->
      List.iter
        (fun ((txn : Txn.t), ts) ->
          match Tid_table.find_opt table txn.Txn.tid with
          | None ->
              Tid_table.replace table txn.Txn.tid
                { ts; subs = [ (shard, txn) ]; order = !next_order };
              incr next_order
          | Some acc ->
              if Timestamp.compare acc.ts ts <> 0 then
                invalid_arg
                  (Format.asprintf
                     "History.merge: tid %a committed at two timestamps \
                      (%a vs %a)"
                     Tid.pp txn.Txn.tid Timestamp.pp acc.ts Timestamp.pp ts);
              acc.subs <- (shard, txn) :: acc.subs)
        history)
    per_shard;
  Tid_table.fold (fun tid acc l -> (tid, acc) :: l) table []
  |> List.sort (fun (_, a) (_, b) -> compare a.order b.order)
  |> List.map (fun (tid, acc) ->
         let reads, writes = Router.merge_sub router acc.subs in
         (Txn.make ~tid ~read_set:reads ~write_set:writes, acc.ts))
