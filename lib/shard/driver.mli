(** Generic multi-group transaction driver: {!Xcoord} actions
    translated onto any backend's per-shard group operations.

    Each backend exposes its groups through the four {!GROUP}
    operations the cross-shard protocol needs — an execute-phase
    versioned read, the global stamp mint, a validation phase run to a
    decision without write-back, and the outcome write-back. The
    functor owns the translation loop and the bookkeeping every
    backend repeats (outcome counting, per-shard committed
    sub-histories, the merged global history for the checker), so the
    sim, the live runtime and the cluster launcher drive the exact
    same coordinator code. Everything here is callback-based and
    time-free: asynchrony, retransmission and timers live inside the
    backend's [GROUP] implementation. *)

module type GROUP = sig
  type t

  val execute_read :
    t -> client:int -> key:int -> (int * Mk_clock.Timestamp.t -> unit) -> unit
  (** One execute-phase versioned GET of a {e local} key. *)

  val fresh_txn_stamp :
    t -> client:int -> Mk_clock.Timestamp.Tid.t * Mk_clock.Timestamp.t
  (** Mint a globally unique tid + proposed timestamp. Only ever
      called on shard 0 — one mint per global transaction. *)

  val prepare_txn :
    t ->
    txn:Mk_storage.Txn.t ->
    ts:Mk_clock.Timestamp.t ->
    on_prepared:(bool -> unit) ->
    unit
  (** Validation phase to a decision, {e without} write-back. *)

  val finalize_txn :
    t -> txn:Mk_storage.Txn.t -> ts:Mk_clock.Timestamp.t -> commit:bool -> unit
  (** Broadcast the write-phase outcome. *)
end

module Make (G : GROUP) : sig
  type t

  val create : router:Router.t -> groups:G.t array -> t
  (** Raises [Invalid_argument] unless there is exactly one group per
      router shard. *)

  val router : t -> Router.t
  val shards : t -> int
  val group : t -> int -> G.t

  val submit :
    t ->
    client:int ->
    reads:int array ->
    writes:(int array -> (int * int) array) ->
    on_done:(committed:bool -> unit) ->
    unit
  (** Run one cross-shard transaction: [reads] are global keys;
      [writes] computes the (global key, value) write set from the
      values read (ignore its argument for a one-shot write set).
      [on_done] fires once the global outcome is decided and every
      involved shard's write-back has been issued. *)

  val committed : t -> int
  val aborted : t -> int

  val history : t -> (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list
  (** The committed transactions this driver acknowledged, as one
      global history over global keys (via {!History.merge}) — what
      [Mk_harness.Checker.check] consumes. *)

  val sub_histories :
    t -> (int * (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list) list
  (** The same commits as per-shard sub-histories over local keys
      (ascending by shard) — what a per-shard checker or a test
      fixture wants. *)
end
