(* The shared multi-group driver: one {!Xcoord} translation loop for
   every backend (DESIGN.md §13). *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn

module type GROUP = sig
  type t

  val execute_read :
    t -> client:int -> key:int -> (int * Timestamp.t -> unit) -> unit

  val fresh_txn_stamp : t -> client:int -> Timestamp.Tid.t * Timestamp.t

  val prepare_txn :
    t ->
    txn:Txn.t ->
    ts:Timestamp.t ->
    on_prepared:(bool -> unit) ->
    unit

  val finalize_txn :
    t -> txn:Txn.t -> ts:Timestamp.t -> commit:bool -> unit
end

module Make (G : GROUP) = struct
  type t = {
    router : Router.t;
    groups : G.t array;
    mutable committed : int;
    mutable aborted : int;
    sub_history : (Txn.t * Timestamp.t) list ref array;
        (** Per-shard committed sub-transactions (local keys), newest
            first. *)
  }

  let create ~router ~groups =
    if Array.length groups <> Router.shards router then
      invalid_arg "Driver.create: one group per router shard";
    {
      router;
      groups;
      committed = 0;
      aborted = 0;
      sub_history = Array.init (Array.length groups) (fun _ -> ref []);
    }

  let router t = t.router
  let shards t = Array.length t.groups
  let group t s = t.groups.(s)

  let submit t ~client ~reads ~writes ~on_done =
    let m, actions = Xcoord.start ~router:t.router ~reads in
    let rec perform (a : Xcoord.action) =
      match a with
      | Xcoord.Read { shard; key; index } ->
          G.execute_read t.groups.(shard) ~client ~key (fun (value, wts) ->
              dispatch (Xcoord.Read_done { index; value; wts }))
      | Xcoord.Need_stamp ->
          let ws = writes (Xcoord.values m) in
          let tid, ts = G.fresh_txn_stamp t.groups.(0) ~client in
          dispatch (Xcoord.Stamped { tid; ts; writes = ws })
      | Xcoord.Prepare { shard; txn; ts } ->
          G.prepare_txn t.groups.(shard) ~txn ~ts ~on_prepared:(fun commit ->
              dispatch (Xcoord.Prepared { shard; commit }))
      | Xcoord.Finalize { shard; txn; ts; commit } ->
          G.finalize_txn t.groups.(shard) ~txn ~ts ~commit;
          if commit then
            t.sub_history.(shard) := (txn, ts) :: !(t.sub_history.(shard))
      | Xcoord.Done { committed; involved = _ } ->
          if committed then t.committed <- t.committed + 1
          else t.aborted <- t.aborted + 1;
          on_done ~committed
    and dispatch ev = List.iter perform (Xcoord.handle m ev) in
    List.iter perform actions

  let committed t = t.committed
  let aborted t = t.aborted

  let sub_histories t =
    Array.to_list (Array.mapi (fun shard h -> (shard, List.rev !h)) t.sub_history)

  let history t = History.merge ~router:t.router (sub_histories t)
end
