(** Transport-agnostic cross-shard transaction coordinator
    (DESIGN.md §13, paper §5.2.4).

    One value of type {!t} is the state machine of a single
    cross-shard commit attempt, in the action-list style of
    {!Mk_meerkat.Protocol}: it consumes shard replies and emits the
    {!action}s a driver must perform — read a key from its owning
    shard, mint the global stamp, run the validation phase in every
    involved shard in parallel, then write back everywhere with the
    global outcome. It knows nothing about transports or time: the
    sim drives it over simulated groups, the live runtime over
    mailboxes, the cluster launcher over UDP, and the machine cannot
    drift between them.

    The commit argument is the zero-coordination one: timestamps are
    already globally unique (client-chosen (time, client_id) pairs),
    so each shard's existing validate/accept decision doubles as its
    2PC vote — the global outcome is simply the conjunction of the
    per-shard decisions, and no new coordination state is introduced.
    A shard that aborts its sub-transaction forces every involved
    shard to abort (write-back with [commit = false]), which is
    exactly the atomic-commitment contract.

    Per-shard retransmission, crash recovery of a stuck shard-level
    attempt, and timer management all live {e below} this machine, in
    the per-shard commit protocol — a shard's vote arrives exactly
    once, whenever its group decides. The machine is therefore
    timer-free, which is also what keeps it trivially pure (lint Z6). *)

type action =
  | Read of { shard : int; key : int; index : int }
      (** Execute-phase read of local [key] against [shard]; answer
          with [Read_done] carrying the same [index]. Reads are issued
          in request order, all at once — owning shards serve them in
          parallel. *)
  | Need_stamp
      (** Every read value is in hand: the driver must mint the global
          tid + timestamp (one per transaction, shared by every
          sub-transaction) and compute the write set, then answer with
          [Stamped]. Emitted exactly once. *)
  | Prepare of { shard : int; txn : Mk_storage.Txn.t; ts : Mk_clock.Timestamp.t }
      (** Run the validation phase for this sub-transaction (local
          keys) in [shard], {e without} writing back; answer with
          [Prepared] carrying the shard's decision. *)
  | Finalize of {
      shard : int;
      txn : Mk_storage.Txn.t;
      ts : Mk_clock.Timestamp.t;
      commit : bool;
    }
      (** Write the global outcome back in [shard] (commit = the
          conjunction of every involved shard's vote). *)
  | Done of { committed : bool; involved : int list }
      (** The global outcome is known and every [Finalize] has been
          emitted — report to the application. Emitted exactly once. *)

type event =
  | Read_done of { index : int; value : int; wts : Mk_clock.Timestamp.t }
  | Stamped of {
      tid : Mk_clock.Timestamp.Tid.t;
      ts : Mk_clock.Timestamp.t;
      writes : (int * int) array;  (** (global key, value) pairs. *)
    }
  | Prepared of { shard : int; commit : bool }
      (** A shard's validation decision. Duplicates (same shard) are
          ignored, so a retransmitting transport cannot double-count
          the vote conjunction. *)

type t

val start : router:Router.t -> reads:int array -> t * action list
(** Begin a cross-shard attempt reading the given global keys:
    returns the machine and the initial actions (one [Read] per key,
    or [Need_stamp] immediately when there are none). *)

val handle : t -> event -> action list
(** Feed one event; returns the actions to perform, in order. Events
    that no longer apply (late reads after the stamp, votes after the
    decision) are ignored. *)

(** {2 Introspection (used by drivers and tests)} *)

val values : t -> int array
(** The values the execute phase read, in request order — what an
    interactive transaction's write computation consumes. Only
    meaningful once [Need_stamp] has been emitted. *)

val read_set : t -> Mk_storage.Txn.read_entry list
(** The accumulated global-key read set. *)

val decided : t -> bool
val committed : t -> bool
(** Global outcome; only meaningful once {!decided}. *)

val involved : t -> int list
(** Involved shards, ascending; empty before [Stamped]. *)
