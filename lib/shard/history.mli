(** Merged cross-shard histories for the serializability checker
    (DESIGN.md §13).

    Each shard's harness records its committed sub-transactions over
    {e local} keys; global serializability is a property of their
    union. [merge] globalizes every key through the router and fuses
    sub-transactions that share a tid (the same global transaction cut
    by {!Router.split}) back into one transaction, keeping the commit
    timestamp they must all agree on. The result feeds
    [Mk_harness.Checker.check] unchanged — one-copy serializability
    across the union of shards has the same timestamp-order witness as
    in a single group, precisely because timestamps are globally
    unique. *)

val merge :
  router:Router.t ->
  (int * (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list) list ->
  (Mk_storage.Txn.t * Mk_clock.Timestamp.t) list
(** [merge ~router per_shard] takes [(shard, committed history over
    local keys)] pairs and returns the global committed history:
    every key globalized via [Router.global_key], sub-transactions
    with the same tid unioned into one transaction stamped with their
    (necessarily shared) commit timestamp. Raises [Invalid_argument]
    if two sub-transactions with the same tid carry different commit
    timestamps — that is a protocol violation upstream, not a mergeable
    history. *)
