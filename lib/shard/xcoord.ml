(* Cross-shard 2PC coordinator state machine (DESIGN.md §13).

   Pure action-list machine, the style of lib/meerkat/protocol.ml: the
   driver owns transport and time, this machine owns only the phase
   logic. The per-shard votes are the shards' own validate/accept
   decisions (globally unique client timestamps make them composable),
   so the machine never arms a timer — retransmission and stuck-record
   recovery live in the per-shard commit protocol below it. *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn

type action =
  | Read of { shard : int; key : int; index : int }
  | Need_stamp
  | Prepare of { shard : int; txn : Txn.t; ts : Timestamp.t }
  | Finalize of { shard : int; txn : Txn.t; ts : Timestamp.t; commit : bool }
  | Done of { committed : bool; involved : int list }

type event =
  | Read_done of { index : int; value : int; wts : Timestamp.t }
  | Stamped of { tid : Timestamp.Tid.t; ts : Timestamp.t; writes : (int * int) array }
  | Prepared of { shard : int; commit : bool }

type phase =
  | Executing of { mutable missing : int }
  | Stamping
  | Preparing of {
      ts : Timestamp.t;
      subs : (int * Txn.t) list;  (** Involved shards, ascending. *)
      votes : (int, bool) Hashtbl.t;
    }
  | Decided of { committed : bool; involved : int list }

type t = {
  router : Router.t;
  reads : int array;  (** Global keys, in request order. *)
  read_entries : Txn.read_entry array;
  values : int array;
  got : bool array;  (** Which read indices have answered. *)
  mutable phase : phase;
}

let start ~router ~reads =
  let n = Array.length reads in
  let t =
    {
      router;
      reads;
      read_entries =
        Array.map (fun key -> { Txn.key; wts = Timestamp.zero }) reads;
      values = Array.make n 0;
      got = Array.make n false;
      phase = Executing { missing = n };
    }
  in
  if n = 0 then begin
    t.phase <- Stamping;
    (t, [ Need_stamp ])
  end
  else
    ( t,
      List.init n (fun index ->
          let key = reads.(index) in
          Read
            {
              shard = Router.shard_of_key router key;
              key = Router.local_key router key;
              index;
            }) )

let handle t (ev : event) =
  match (t.phase, ev) with
  | Executing e, Read_done { index; value; wts } ->
      if index < 0 || index >= Array.length t.reads || t.got.(index) then []
      else begin
        t.got.(index) <- true;
        t.read_entries.(index) <- { (t.read_entries.(index)) with Txn.wts };
        t.values.(index) <- value;
        e.missing <- e.missing - 1;
        if e.missing = 0 then begin
          t.phase <- Stamping;
          [ Need_stamp ]
        end
        else []
      end
  | Stamping, Stamped { tid; ts; writes } ->
      let read_set = Array.to_list t.read_entries in
      let write_set =
        Array.to_list writes
        |> List.map (fun (key, value) -> { Txn.key; value })
      in
      let txn = Txn.make ~tid ~read_set ~write_set in
      let subs = Router.split t.router txn in
      if subs = [] then begin
        (* Nothing to validate anywhere: trivially committed. *)
        t.phase <- Decided { committed = true; involved = [] };
        [ Done { committed = true; involved = [] } ]
      end
      else begin
        t.phase <-
          Preparing { ts; subs; votes = Hashtbl.create (List.length subs) };
        List.map (fun (shard, txn) -> Prepare { shard; txn; ts }) subs
      end
  | Preparing p, Prepared { shard; commit } ->
      if
        Hashtbl.mem p.votes shard
        || not (List.mem_assoc shard p.subs)
      then []
      else begin
        Hashtbl.replace p.votes shard commit;
        if Hashtbl.length p.votes < List.length p.subs then []
        else begin
          let committed = Hashtbl.fold (fun _ v acc -> v && acc) p.votes true in
          let involved = List.map fst p.subs in
          t.phase <- Decided { committed; involved };
          List.map
            (fun (shard, txn) ->
              Finalize { shard; txn; ts = p.ts; commit = committed })
            p.subs
          @ [ Done { committed; involved } ]
        end
      end
  (* Late, duplicate or out-of-phase events: a lossy / duplicating
     transport below must not be able to corrupt the vote. *)
  | (Executing _ | Stamping | Preparing _ | Decided _), _ -> []

let values t = Array.copy t.values
let read_set t = Array.to_list t.read_entries

let decided t = match t.phase with Decided _ -> true | _ -> false

let committed t =
  match t.phase with Decided d -> d.committed | _ -> false

let involved t =
  match t.phase with
  | Decided d -> d.involved
  | Preparing p -> List.map fst p.subs
  | Executing _ | Stamping -> []
