(* Key → shard placement (DESIGN.md §13): the pure bijection between
   global keys and (shard, local key) pairs, shared by the sim, live
   and cluster backends and by the merged-history checker. *)

module Txn = Mk_storage.Txn

type policy = Mod | Range

let policy_to_string = function Mod -> "mod" | Range -> "range"

let policy_of_string = function
  | "mod" -> Ok Mod
  | "range" -> Ok Range
  | s -> Error (Printf.sprintf "unknown shard policy %S (mod|range)" s)

type t = {
  policy : policy;
  shards : int;
  keys : int;
  block : int;  (** [Range] block size, ceil(keys/shards); 1 for [Mod]. *)
}

let create ?(policy = Mod) ~shards ~keys () =
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  if keys < 1 then invalid_arg "Router.create: keys must be >= 1";
  let block = ((keys - 1) / shards) + 1 in
  { policy; shards; keys; block }

let policy t = t.policy
let shards t = t.shards
let keys t = t.keys

(* Total on all of int: a hostile global key still lands in
   [0, shards) — callers at trust boundaries count nonsense keys as
   drops, but the router itself never raises. *)
let shard_of_key t key =
  match t.policy with
  | Mod ->
      let s = key mod t.shards in
      if s < 0 then s + t.shards else s
  | Range ->
      if key < 0 then 0
      else if key >= t.keys then t.shards - 1
      else key / t.block

let local_key t key =
  match t.policy with
  | Mod -> key / t.shards
  | Range -> key - (shard_of_key t key * t.block)

let global_key t ~shard local =
  match t.policy with
  | Mod -> (local * t.shards) + shard
  | Range -> (shard * t.block) + local

let local_keys t ~shard =
  match t.policy with
  | Mod -> if shard >= t.keys then 0 else ((t.keys - 1 - shard) / t.shards) + 1
  | Range -> max 0 (min t.block (t.keys - (shard * t.block)))

let involved t (txn : Txn.t) =
  let seen = Hashtbl.create 4 in
  let add key =
    let s = shard_of_key t key in
    if not (Hashtbl.mem seen s) then Hashtbl.add seen s ()
  in
  Array.iter (fun (r : Txn.read_entry) -> add r.key) txn.Txn.read_set;
  Array.iter (fun (w : Txn.write_entry) -> add w.key) txn.Txn.write_set;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

let split t (txn : Txn.t) =
  List.map
    (fun shard ->
      let read_set =
        Array.to_list txn.Txn.read_set
        |> List.filter_map (fun (r : Txn.read_entry) ->
               if shard_of_key t r.key = shard then
                 Some { r with Txn.key = local_key t r.key }
               else None)
      in
      let write_set =
        Array.to_list txn.Txn.write_set
        |> List.filter_map (fun (w : Txn.write_entry) ->
               if shard_of_key t w.key = shard then
                 Some { w with Txn.key = local_key t w.key }
               else None)
      in
      (shard, Txn.make ~tid:txn.Txn.tid ~read_set ~write_set))
    (involved t txn)

let merge_sub t subs =
  let reads =
    List.concat_map
      (fun (shard, (txn : Txn.t)) ->
        Array.to_list txn.Txn.read_set
        |> List.map (fun (r : Txn.read_entry) ->
               { r with Txn.key = global_key t ~shard r.key }))
      subs
  in
  let writes =
    List.concat_map
      (fun (shard, (txn : Txn.t)) ->
        Array.to_list txn.Txn.write_set
        |> List.map (fun (w : Txn.write_entry) ->
               { w with Txn.key = global_key t ~shard w.key }))
      subs
  in
  (reads, writes)

let pp ppf t =
  Format.fprintf ppf "router(%s, %d shards, %d keys)"
    (policy_to_string t.policy) t.shards t.keys
