(** Key → shard placement for a multi-group deployment (DESIGN.md §13).

    Each shard is an independent full Meerkat group (its own 2f+1
    replicas, trecord cores, detector, WAL directory); the router is
    the pure, shared map that tells every backend which group owns a
    global key and what that key is called inside the group. Shards
    preload a dense local keyspace [0, local_keys), so the router also
    carries the bijection between global keys and (shard, local key)
    pairs — both directions, because the merged-history checker has to
    translate per-shard committed histories back to global keys.

    Two placement policies:
    - {!Mod}: shard = key mod shards (the striping the old sim-only
      sketch used; spreads any contiguous scan over every group);
    - {!Range}: contiguous blocks of ceil(keys/shards) keys per shard
      (what a range-partitioned store would do; keeps scans local). *)

type policy = Mod | Range

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result

type t

val create : ?policy:policy -> shards:int -> keys:int -> unit -> t
(** [create ~shards ~keys ()] routes the global keyspace [0, keys)
    over [shards] groups. Raises [Invalid_argument] unless
    [shards >= 1] and [keys >= 1]. Policy defaults to {!Mod}. *)

val policy : t -> policy
val shards : t -> int
val keys : t -> int

val shard_of_key : t -> int -> int
(** Owning shard of a global key. Total on all of [int] (hostile or
    out-of-range keys still map into [0, shards)); only keys in
    [0, keys) are meaningful. *)

val local_key : t -> int -> int
(** The dense in-group name of a global key. *)

val global_key : t -> shard:int -> int -> int
(** Inverse of {!shard_of_key}/{!local_key}:
    [global_key t ~shard:(shard_of_key t k) (local_key t k) = k]. *)

val local_keys : t -> shard:int -> int
(** Size of a shard's dense local keyspace (how many global keys it
    owns); 0 for shards left empty by a {!Range} split of a small
    keyspace. *)

val involved : t -> Mk_storage.Txn.t -> int list
(** Owning shards of a transaction's read + write sets (global keys),
    deduplicated, ascending. *)

val split :
  t -> Mk_storage.Txn.t -> (int * Mk_storage.Txn.t) list
(** [split t txn] cuts a transaction over global keys into its
    per-shard sub-transactions over local keys, one per involved
    shard, ascending by shard. Every sub-transaction carries the
    parent's tid — the per-shard groups must agree on the identity
    (and, at validation, the timestamp) of the global transaction. *)

val merge_sub :
  t ->
  (int * Mk_storage.Txn.t) list ->
  (Mk_storage.Txn.read_entry list * Mk_storage.Txn.write_entry list)
(** Inverse of {!split}: globalize each sub-transaction's keys and
    union the read and write sets (used by the merged-history
    adapter). *)

val pp : Format.formatter -> t -> unit
