(* meerkat_live: the full Meerkat protocol on real OCaml 5 domains.

   Runs the Mk_live runtime — the extracted coordinator state machine
   over real replicas connected by bounded MPSC mailboxes — for one or
   more seeds, prints a report per run, checks every committed history
   for one-copy serializability, and optionally writes the aggregate
   as JSON. Exits non-zero on a serializability violation or when a
   client's transactions went missing.

     dune exec bin/meerkat_live.exe -- --domains 4 --clients 16
     dune exec bin/meerkat_live.exe -- --seeds 8 --json BENCH_live.json *)

module Runtime = Mk_live.Runtime
module Multi = Mk_live.Multi
module Checker = Mk_harness.Checker
module Nemesis = Mk_fault.Nemesis

let parse_workload = function
  | "ycsb-t" | "ycsb_t" | "ycsb" -> Ok Runtime.Ycsb_t
  | "rmw-pair" | "rmw_pair" | "rmw2" -> Ok Runtime.Rmw_pair
  | "retwis" -> Ok Runtime.Retwis
  | s ->
      Error
        (`Msg (Printf.sprintf "unknown workload %S (ycsb-t, rmw-pair, retwis)" s))

(* Multi-group path (--shards > 1): the fault-free Multi runner with
   the cross-shard knob, checking the MERGED global history. *)
let run_sharded shards cross domains replicas coordinators clients keys theta
    workload txns duration seed nseeds no_check json =
  let cfg =
    {
      Multi.default_config with
      shards;
      cross;
      server_domains = domains;
      n_replicas = replicas;
      coordinators;
      clients;
      keys;
      theta;
      workload;
      txns_per_client = txns;
      duration;
    }
  in
  let failures = ref 0 in
  let reports =
    List.map
      (fun seed ->
        let r = Multi.run { cfg with Multi.seed } in
        Format.printf "seed %d:@.  %a@." seed Multi.pp_report r;
        let expected = clients * txns in
        if duration = None && r.Multi.committed_count + r.Multi.aborted <> expected
        then begin
          incr failures;
          Format.printf "  LOST TRANSACTIONS: %d decided, %d submitted@."
            (r.Multi.committed_count + r.Multi.aborted)
            expected
        end;
        if not no_check then begin
          match Checker.check r.Multi.history with
          | Ok () ->
              Format.printf "  merged history serializable: yes (%d commits, %d cross-shard txns)@."
                r.Multi.committed_count r.Multi.cross_shard
          | Error v ->
              incr failures;
              Format.printf "  SERIALIZABILITY VIOLATION: %a@." Checker.pp_violation v
        end;
        (seed, r))
      (List.init nseeds (fun i -> seed + i))
  in
  (match json with
  | None -> ()
  | Some path -> (
      let body =
        String.concat ",\n  "
          (List.map
             (fun (seed, r) ->
               Printf.sprintf "{\"seed\": %d, \"report\": %s}" seed
                 (Multi.report_json r))
             reports)
      in
      try
        let oc = open_out path in
        Printf.fprintf oc
          "{\"experiment\": \"live-sharded\", \"runs\": [\n  %s\n]}\n" body;
        close_out oc;
        Format.printf "wrote %s@." path
      with Sys_error msg -> Format.eprintf "meerkat_live: %s@." msg));
  if !failures > 0 then begin
    Format.printf "%d run(s) FAILED@." !failures;
    exit 1
  end

let run shards cross domains replicas coordinators clients keys theta workload
    txns duration rate max_alloc nemesis seed nseeds no_check json =
  if shards < 1 then begin
    Format.eprintf "meerkat_live: --shards must be >= 1@.";
    exit 2
  end;
  if shards > 1 then begin
    if nemesis <> None then begin
      Format.eprintf
        "meerkat_live: --nemesis needs the single-group runtime (chaos is \
         single-group by design; use meerkat_cluster --kill-node for \
         multi-shard faults)@.";
      exit 2
    end;
    if rate <> None || max_alloc <> None then begin
      Format.eprintf
        "meerkat_live: --rate and --max-alloc-per-txn need the single-group \
         runtime (the multi-group driver is closed-loop)@.";
      exit 2
    end;
    run_sharded shards cross domains replicas coordinators clients keys theta
      workload txns duration seed nseeds no_check json
  end
  else
  let duration =
    (* A nemesis plan needs a horizon; default to one wall second. *)
    match (nemesis, duration) with
    | Some _, None -> Some 1.0
    | _ -> duration
  in
  let chaos_of_seed seed =
    Option.map
      (fun profile ->
        let horizon_us = Option.get duration *. 1e6 in
        {
          Runtime.plan =
            Nemesis.plan ~seed ~profile ~horizon:horizon_us
              ~n_replicas:replicas ~n_clients:clients;
          detector = Runtime.chaos_detector_cfg ~horizon_us;
          horizon_us;
          settle_us = horizon_us /. 2.0;
        })
      nemesis
  in
  let cfg =
    {
      Runtime.default_config with
      server_domains = domains;
      n_replicas = replicas;
      coordinators;
      clients;
      keys;
      theta;
      workload;
      txns_per_client = txns;
      duration;
      offered_rate = rate;
    }
  in
  let cfg =
    (* Chaos-scale retransmission: drops must be retried well inside
       the horizon, not after the fault-free safety-net timeout. *)
    match nemesis with
    | Some _ -> { cfg with Runtime.rto_us = Option.get duration *. 1e6 /. 50.0 }
    | None -> cfg
  in
  let failures = ref 0 in
  let reports =
    List.map
      (fun seed ->
        let r = Runtime.run { cfg with Runtime.seed; chaos = chaos_of_seed seed } in
        Format.printf "seed %d:@.  %a@." seed Runtime.pp_report r;
        let expected = clients * txns in
        if duration = None && r.Runtime.committed_count + r.Runtime.aborted <> expected
        then begin
          incr failures;
          Format.printf "  LOST TRANSACTIONS: %d decided, %d submitted@."
            (r.Runtime.committed_count + r.Runtime.aborted)
            expected
        end;
        if not no_check then begin
          match Checker.check r.Runtime.committed with
          | Ok () -> Format.printf "  serializable: yes (%d commits)@." r.Runtime.committed_count
          | Error v ->
              incr failures;
              Format.printf "  SERIALIZABILITY VIOLATION: %a@." Checker.pp_violation v
        end;
        (match max_alloc with
        | Some bound when r.Runtime.alloc_per_txn > bound ->
            incr failures;
            Format.printf
              "  ALLOC REGRESSION: %d minor words/txn exceeds the bound %d@."
              r.Runtime.alloc_per_txn bound
        | _ -> ());
        (seed, r))
      (List.init nseeds (fun i -> seed + i))
  in
  (match json with
  | None -> ()
  | Some path -> (
      let body =
        String.concat ",\n  "
          (List.map
             (fun (seed, r) ->
               Printf.sprintf "{\"seed\": %d, \"report\": %s}" seed
                 (Runtime.report_json r))
             reports)
      in
      try
        let oc = open_out path in
        Printf.fprintf oc "{\"experiment\": \"live\", \"runs\": [\n  %s\n]}\n" body;
        close_out oc;
        Format.printf "wrote %s@." path
      with Sys_error msg -> Format.eprintf "meerkat_live: %s@." msg));
  if !failures > 0 then begin
    Format.printf "%d run(s) FAILED@." !failures;
    exit 1
  end

let () =
  let open Cmdliner in
  let workload_conv =
    Arg.conv
      ( parse_workload,
        fun ppf w ->
          Format.pp_print_string ppf
            (match w with
             | Runtime.Ycsb_t -> "ycsb-t"
             | Runtime.Rmw_pair -> "rmw-pair"
             | Runtime.Retwis -> "retwis")
      )
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards"; "s" ]
             ~doc:"Shard groups. With more than one, run the multi-group \
                   deployment: independent replica groups per shard, \
                   client-side cross-shard 2PC, and a merged-history \
                   serializability check.")
  in
  let cross =
    Arg.(value & opt float 0.1
         & info [ "cross" ]
             ~doc:"Probability a multi-key transaction spans more than one \
                   shard (only meaningful with --shards > 1).")
  in
  let domains =
    Arg.(value & opt int 2
         & info [ "domains"; "d" ] ~doc:"Server domains (cores per replica).")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replicas (odd, >= 3).")
  in
  let coordinators =
    Arg.(value & opt int 2 & info [ "coordinators" ] ~doc:"Coordinator domains.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.")
  in
  let keys = Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Keyspace size.") in
  let theta =
    Arg.(value & opt float 0.6 & info [ "theta" ] ~doc:"Zipf skew in [0, 1).")
  in
  let workload =
    Arg.(value & opt workload_conv Runtime.Ycsb_t
         & info [ "workload"; "w" ] ~doc:"Workload: ycsb-t or retwis.")
  in
  let txns =
    Arg.(value & opt int 50
         & info [ "txns" ] ~doc:"Transactions per client (ignored with --duration).")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Keep submitting for $(docv) of wall time instead of a \
                   per-client transaction quota.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"TXN_PER_S"
             ~doc:"Open-loop load generation: offer $(docv) transactions per \
                   second in aggregate across all clients, on a fixed \
                   phase-staggered schedule. Latency is measured from each \
                   transaction's intended launch instant, so a saturated \
                   system reports its queueing delay (no coordinated \
                   omission). Without this flag the clients run closed-loop.")
  in
  let max_alloc =
    Arg.(value & opt (some int) None
         & info [ "max-alloc-per-txn" ] ~docv:"WORDS"
             ~doc:"Fail (exit non-zero) if any run allocates more than \
                   $(docv) minor words per committed transaction — the CI \
                   allocation-regression guard.")
  in
  let nemesis_conv =
    Arg.conv
      ( (fun s ->
          match Nemesis.of_string s with
          | Some p -> Ok p
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown profile %S (known: %s)" s
                      (String.concat ", "
                         (List.map Nemesis.to_string Nemesis.all))))),
        fun ppf p -> Format.pp_print_string ppf (Nemesis.to_string p) )
  in
  let nemesis =
    Arg.(value & opt (some nemesis_conv) None
         & info [ "nemesis" ] ~docv:"PROFILE"
             ~doc:"Inject a seeded nemesis plan ($(docv): one of calm, dup, \
                   reorder, partition, crash-replica, crash-coordinator, \
                   combo) and run detector-driven recovery. Implies \
                   --duration 1.0 unless --duration is given.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First seed.") in
  let nseeds =
    Arg.(value & opt int 1 & info [ "seeds" ] ~doc:"Number of seeds to run.")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ]
             ~doc:"Skip the serializability check of the committed history.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write all reports to $(docv) as JSON.")
  in
  let term =
    Term.(const run $ shards $ cross $ domains $ replicas $ coordinators
          $ clients $ keys $ theta $ workload $ txns $ duration $ rate
          $ max_alloc $ nemesis $ seed $ nseeds $ no_check $ json)
  in
  let info =
    Cmd.info "meerkat_live"
      ~doc:"Meerkat on real OCaml 5 domains with a live message-passing runtime"
  in
  exit (Cmd.eval (Cmd.v info term))
