(* meerkat_sim: ad-hoc experiment driver.

   Run any of the four systems under any workload/contention/transport
   combination and print goodput, abort rate, latency percentiles and
   protocol counters — the knobs behind every figure, exposed for
   exploration.

     dune exec bin/meerkat_sim.exe -- --system meerkat --threads 32
     dune exec bin/meerkat_sim.exe -- --system tapir --workload retwis --zipf 0.9
     dune exec bin/meerkat_sim.exe -- --transport udp --drop 0.01 *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Cluster = Mk_cluster.Cluster
module Systems = Mk_systems.Systems
module Workload = Mk_workload.Workload
module Runner = Mk_harness.Runner

module Nemesis = Mk_fault.Nemesis

let system_of_string = function
  | "meerkat" -> Ok Systems.Meerkat
  | "meerkat-pb" | "pb" -> Ok Systems.Meerkat_pb
  | "tapir" -> Ok Systems.Tapir
  | "kuafu" | "kuafu++" -> Ok Systems.Kuafupp
  | s -> Error (`Msg (Printf.sprintf "unknown system %S" s))

(* Build the Meerkat system directly (rather than through
   [Systems.build]) so the nemesis can reach its crash entry points and
   failure detectors: injected crashes must be recovered by the
   in-system detectors, not by the driver. *)
let build_with_nemesis ~obs ~engine ~config ~profile ~nemesis_seed ~horizon =
  let module S = Mk_meerkat.Sim_system in
  let sys = S.create ~obs engine config in
  let plan =
    Nemesis.plan ~seed:nemesis_seed ~profile ~horizon
      ~n_replicas:config.Cluster.n_replicas ~n_clients:config.Cluster.n_clients
  in
  Format.printf "nemesis: %a@." Nemesis.pp_plan plan;
  Nemesis.install ~engine ~net:(S.network sys) ~obs
    ~callbacks:
      {
        Nemesis.crash_replica =
          (fun ~victim ~down_for -> S.crash_replica ~down_for sys victim);
        crash_coordinator =
          (fun ~client ~down_for -> S.crash_coordinator sys ~client ~down_for);
      }
    plan;
  S.start_detectors sys ~until:horizon ();
  let packed =
    Mk_model.System_intf.Packed
      ( (module struct
          type t = S.t

          let name = S.name
          let threads = S.threads
          let submit = S.submit
          let obs = S.obs
        end),
        sys )
  in
  (packed, fun () -> S.server_busy_fraction sys)

let run system workload_name threads replicas zipf keys_per_thread clients_per_thread
    transport_name drop measure seed peak trace metrics nemesis nemesis_seed =
  let transport =
    match transport_name with
    | "erpc" -> Transport.erpc
    | "udp" -> Transport.udp
    | s -> failwith (Printf.sprintf "unknown transport %S (erpc|udp)" s)
  in
  let transport = if drop > 0.0 then Transport.with_drop transport drop else transport in
  let keys = keys_per_thread * threads in
  let workload ~rng ~keys =
    match workload_name with
    | "ycsb-t" | "ycsbt" -> Workload.ycsb_t ~rng ~keys ~theta:zipf
    | "retwis" -> Workload.retwis ~rng ~keys ~theta:zipf
    | s -> failwith (Printf.sprintf "unknown workload %S (ycsb-t|retwis)" s)
  in
  let config =
    {
      Cluster.default_config with
      n_replicas = replicas;
      threads;
      keys;
      transport;
      seed;
    }
  in
  Format.printf "system=%s workload=%s replicas=%d threads=%d keys=%d zipf=%.2f %a@."
    (Systems.name system) workload_name replicas threads keys zipf Transport.pp
    transport;
  if peak && (trace <> None || metrics) then begin
    Format.eprintf "meerkat_sim: --trace/--metrics need a single run: drop --peak@.";
    exit 2
  end;
  (match nemesis with
  | None -> ()
  | Some _ ->
      if peak then begin
        Format.eprintf "meerkat_sim: --nemesis needs a single run: drop --peak@.";
        exit 2
      end;
      if system <> Systems.Meerkat then begin
        Format.eprintf
          "meerkat_sim: --nemesis needs --system meerkat (the only system with \
           detector-driven recovery)@.";
        exit 2
      end);
  let clients, result, obs =
    if peak then begin
      let clients, result =
        Systems.sweep system ~config ~workload ~warmup:(measure /. 2.0) ~measure
      in
      (clients, result, None)
    end
    else begin
      let n_clients = clients_per_thread * threads in
      let engine = Engine.create ~seed () in
      let obs =
        Mk_obs.Obs.create ~trace:(trace <> None)
          ~clock:(fun () -> Engine.now engine)
          ()
      in
      let packed, busy =
        match nemesis with
        | None -> Systems.build ~obs system engine { config with n_clients }
        | Some profile ->
            build_with_nemesis ~obs ~engine ~config:{ config with n_clients }
              ~profile
              ~nemesis_seed:(Option.value nemesis_seed ~default:seed)
              ~horizon:(1.5 *. measure)
      in
      let wl = workload ~rng:(Mk_util.Rng.create ~seed:(seed + 7919)) ~keys in
      ( n_clients,
        Runner.run ~engine ~system:packed ~workload:wl ~n_clients
          ~warmup:(measure /. 2.0) ~measure ~busy,
        Some obs )
    end
  in
  Format.printf "clients=%d (%s)@." clients
    (if peak then "peak search" else "fixed");
  Format.printf "%a@." Runner.pp_result result;
  Format.printf
    "window: %d committed, %d aborted; %d retransmissions@."
    result.Runner.committed result.Runner.aborted result.Runner.retransmits;
  match obs with
  | None -> ()
  | Some obs ->
      if nemesis <> None then
        Format.printf
          "nemesis outcome: %d fault events, %d epoch changes, %d view changes@."
          (Mk_obs.Obs.counter_value obs "fault.windows")
          (Mk_obs.Obs.counter_value obs "recovery.epoch_changes")
          (Mk_obs.Obs.counter_value obs "recovery.view_changes");
      (match trace with
      | None -> ()
      | Some path -> (
          try
            Mk_obs.Obs.write_chrome_trace obs ~path;
            Format.printf "wrote %d trace events to %s@."
              (Mk_obs.Tracer.length (Mk_obs.Obs.tracer obs))
              path
          with Sys_error msg ->
            Format.eprintf "meerkat_sim: cannot write trace: %s@." msg;
            exit 1));
      if metrics then print_string (Mk_obs.Obs.metrics_dump obs)

let () =
  let open Cmdliner in
  let system =
    let sys_conv =
      Arg.conv
        ( (fun s -> system_of_string s),
          fun ppf k -> Format.pp_print_string ppf (Systems.name k) )
    in
    Arg.(value & opt sys_conv Systems.Meerkat
         & info [ "system"; "s" ] ~doc:"System: meerkat, meerkat-pb, tapir, kuafu.")
  in
  let workload =
    Arg.(value & opt string "ycsb-t" & info [ "workload"; "w" ] ~doc:"ycsb-t or retwis.")
  in
  let threads =
    Arg.(value & opt int 16 & info [ "threads"; "t" ] ~doc:"Server threads per replica.")
  in
  let replicas = Arg.(value & opt int 3 & info [ "replicas"; "n" ] ~doc:"Replica count (odd).") in
  let zipf = Arg.(value & opt float 0.0 & info [ "zipf"; "z" ] ~doc:"Zipf coefficient in [0,1).") in
  let keys_per_thread =
    Arg.(value & opt int 4096 & info [ "keys-per-thread" ] ~doc:"Keyspace scale (paper: 1M).")
  in
  let clients_per_thread =
    Arg.(value & opt int 8 & info [ "clients-per-thread" ] ~doc:"Closed-loop clients per thread.")
  in
  let transport = Arg.(value & opt string "erpc" & info [ "transport" ] ~doc:"erpc or udp.") in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Message drop probability.")
  in
  let measure =
    Arg.(value & opt float 2000.0 & info [ "measure" ] ~doc:"Measurement window, simulated us.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let peak =
    Arg.(value & flag & info [ "peak" ] ~doc:"Search client counts for peak throughput.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace (trace_event JSON) of the run to $(docv). \
                   Fixed-clients runs only (not --peak).")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metrics registry dump after the run (not --peak).")
  in
  let nemesis =
    let profile_conv =
      Arg.conv
        ( (fun s ->
            match Nemesis.of_string s with
            | Some p -> Ok p
            | None ->
                Error
                  (`Msg
                     (Printf.sprintf "unknown nemesis profile %S; known: %s" s
                        (String.concat ", "
                           (List.map Nemesis.to_string Nemesis.all))))),
          fun ppf p -> Format.pp_print_string ppf (Nemesis.to_string p) )
    in
    Arg.(value & opt (some profile_conv) None
         & info [ "nemesis" ] ~docv:"PROFILE"
             ~doc:"Inject a seeded nemesis fault schedule (calm, dup, reorder, \
                   partition, crash-replica, crash-coordinator, combo) and arm \
                   the failure detectors. Meerkat only, not --peak.")
  in
  let nemesis_seed =
    Arg.(value & opt (some int) None
         & info [ "nemesis-seed" ]
             ~doc:"Seed for the nemesis schedule (default: --seed).")
  in
  let term =
    Term.(const run $ system $ workload $ threads $ replicas $ zipf $ keys_per_thread
          $ clients_per_thread $ transport $ drop $ measure $ seed $ peak $ trace
          $ metrics $ nemesis $ nemesis_seed)
  in
  let info =
    Cmd.info "meerkat_sim" ~doc:"Run one simulated experiment on the Meerkat systems"
  in
  exit (Cmd.eval (Cmd.v info term))
