(* meerkat_cluster: fork an N-node Meerkat cluster on localhost and
   drive it end to end (DESIGN.md §11).

   The launcher forks N meerkat_node processes (each one whole
   replica: its own domains, detector, and UDP socket), completes the
   port handshake — every node binds an ephemeral port and announces
   `port <n>'; the launcher assembles the cluster config and writes it
   back over each node's stdin — then runs closed-loop client driver
   domains in-process against the cluster, optionally SIGKILLs one
   node mid-run (and with --reboot restarts it from its data
   directory), broadcasts Shutdown, gathers per-node exit stats, and
   checks the merged committed history for one-copy serializability.

     dune exec bin/meerkat_cluster.exe -- --nodes 3 --clients 8
     dune exec bin/meerkat_cluster.exe -- --nodes 3 --duration 2 \
       --kill-node 1 --kill-after 0.5 --json BENCH_cluster.json
     dune exec bin/meerkat_cluster.exe -- --nodes 3 --duration 4 \
       --kill-node 1 --kill-after 0.5 --reboot

   Exit status is non-zero on a serializability violation, lost
   transactions, a surviving node exiting non-zero, or (with
   --kill-node) no surviving node having detected the victim. With
   --reboot the detection verdict is replaced by the recovery one:
   the victim must replay its WAL (wal_replayed > 0 in its exit
   stats) and some node must complete the §5.3.1 epoch change that
   merges it back (epoch_changes > 0). *)

module Cluster_config = Mk_node.Cluster_config
module Driver = Mk_node.Client_driver
module Shard_driver = Mk_node.Shard_driver
module Router = Mk_shard.Router
module Checker = Mk_harness.Checker
module Spawn = Mk_live.Spawn

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "meerkat_cluster: %s\n%!" msg;
      exit 2)
    fmt

(* ------------------------------------------------------------------ *)
(* Child process plumbing                                              *)
(* ------------------------------------------------------------------ *)

(* Line-oriented reading straight off the pipe fd (no in_channel
   buffering, so select-based timeouts stay accurate). *)
type child = {
  name : string;
  pid : int;
  to_child : Unix.file_descr;
  from_child : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
}

let read_line_timeout child ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 4096 in
  let rec line_of_buf () =
    let s = Buffer.contents child.buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear child.buf;
        Buffer.add_string child.buf
          (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
    | None -> fill ()
  and fill () =
    if child.eof then None
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then None
      else
        match Unix.select [ child.from_child ] [] [] remaining with
        | [], _, _ -> None
        | _ -> (
            match Unix.read child.from_child chunk 0 (Bytes.length chunk) with
            | 0 ->
                child.eof <- true;
                None
            | n ->
                Buffer.add_subbytes child.buf chunk 0 n;
                line_of_buf ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> line_of_buf ())
  in
  line_of_buf ()

let spawn_node ~node_exe ~name ~port_arg ~cores ~keys ~shard ~heartbeat_ms
    ~data_dir ~fsync ~metrics =
  (* cloexec everywhere: create_process dup2s the child's ends onto
     fds 0/1 (clearing the flag on the duplicates), and no later
     sibling inherits this child's pipes — otherwise node0 would
     never see EOF on its config while node1's copy of the write end
     stays open. *)
  let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:true () in
  let args =
    [
      node_exe;
      "--me";
      name;
      "--cluster";
      "-";
      "--port";
      port_arg;
      "--cores";
      string_of_int cores;
      "--keys";
      string_of_int keys;
      "--heartbeat-ms";
      string_of_float heartbeat_ms;
    ]
    @ (if shard > 0 then [ "--shard"; string_of_int shard ] else [])
    @ (match data_dir with
      | Some dir -> [ "--data-dir"; dir; "--fsync"; fsync ]
      | None -> [])
    @ (if metrics then [ "--metrics" ] else [])
  in
  let pid =
    Unix.create_process node_exe (Array.of_list args) stdin_r stdout_w
      Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  {
    name;
    pid;
    to_child = stdin_w;
    from_child = stdout_r;
    buf = Buffer.create 256;
    eof = false;
  }

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Stats-line parsing (detection check)                                *)
(* ------------------------------------------------------------------ *)

(* The stats line is JSON we wrote ourselves (Node.stats_json); pull
   the suspected list out with a string scan instead of a JSON
   dependency. *)
let suspected_of_stats json =
  let key = "\"suspected\": [" in
  let rec find i =
    if i + String.length key > String.length json then None
    else if String.sub json i (String.length key) = key then
      Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start -> (
      match String.index_from_opt json start ']' with
      | None -> []
      | Some stop ->
          String.sub json start (stop - start)
          |> String.split_on_char ','
          |> List.filter_map (fun s -> int_of_string_opt (String.trim s)))

(* Pull one integer field out of a stats line (same JSON-we-wrote
   rationale as above); -1 when absent. *)
let int_field_of_stats json name =
  let key = Printf.sprintf "\"%s\": " name in
  let rec find i =
    if i + String.length key > String.length json then None
    else if String.sub json i (String.length key) = key then
      Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> -1
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length json
        && (match json.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      Option.value ~default:(-1)
        (int_of_string_opt (String.sub json start (!stop - start)))

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let parse_workload = function
  | "ycsb-t" | "ycsb_t" | "ycsb" -> Ok Driver.Ycsb_t
  | "rmw-pair" | "rmw_pair" | "rmw2" -> Ok Driver.Rmw_pair
  | "retwis" -> Ok Driver.Retwis
  | s -> Error (`Msg (Printf.sprintf "unknown workload %S (ycsb-t, retwis)" s))

let run_single nodes cores coordinators clients keys theta workload txns
    duration seed heartbeat_ms kill_node kill_after reboot data_dir fsync
    no_check metrics json =
  if nodes < 3 || nodes mod 2 = 0 then fail "--nodes must be odd and >= 3";
  (match kill_node with
  | Some v when v < 0 || v >= nodes -> fail "--kill-node out of range"
  | Some _ when nodes < 3 -> fail "--kill-node needs >= 3 nodes"
  | _ -> ());
  if reboot && kill_node = None then fail "--reboot needs --kill-node";
  let node_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "meerkat_node.exe"
  in
  if not (Sys.file_exists node_exe) then
    fail "%s not found (build bin/meerkat_node.exe first)" node_exe;
  (* A reboot needs somewhere durable to reboot from. *)
  let data_base =
    match data_dir with
    | Some _ as d -> d
    | None ->
        if reboot then
          Some
            (Filename.concat
               (Filename.get_temp_dir_name ())
               (Printf.sprintf "meerkat-cluster-%d" (Unix.getpid ())))
        else None
  in
  (match data_base with
  | Some base -> (
      try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  let node_data_dir i =
    Option.map
      (fun base -> Filename.concat base (Printf.sprintf "node%d" i))
      data_base
  in
  (* Fork the nodes and complete the port handshake. *)
  let children =
    Array.init nodes (fun i ->
        spawn_node ~node_exe
          ~name:(Printf.sprintf "node%d" i)
          ~port_arg:"auto" ~cores ~keys ~shard:0 ~heartbeat_ms
          ~data_dir:(node_data_dir i) ~fsync ~metrics)
  in
  let ports =
    Array.map
      (fun child ->
        match read_line_timeout child ~timeout_s:10.0 with
        | Some line -> (
            match String.split_on_char ' ' line with
            | [ "port"; p ] -> (
                match int_of_string_opt p with
                | Some p -> p
                | None -> fail "%s: bad port announcement %S" child.name line)
            | _ -> fail "%s: expected `port <n>', got %S" child.name line)
        | None -> fail "%s: no port announcement" child.name)
      children
  in
  let cluster =
    Array.mapi
      (fun i child ->
        { Cluster_config.name = child.name; host = "127.0.0.1"; port = ports.(i) })
      children
  in
  let config_text = Cluster_config.to_string cluster in
  Array.iter
    (fun child ->
      write_all child.to_child config_text;
      Unix.close child.to_child)
    children;
  Printf.printf "cluster up: %d nodes x %d cores\n%s%!" nodes cores config_text;
  (* Arm the killer, drive the workload. With --reboot the killer is a
     kill-and-reboot: reap the SIGKILLed process, then restart it on
     its original port with its original data directory — the new
     incarnation replays its WAL, advertises itself paused, and the
     survivors' detectors drive the epoch change that merges it
     back. *)
  let killer =
    Option.map
      (fun victim ->
        Spawn.spawn (fun () ->
            Unix.sleepf kill_after;
            Printf.printf "SIGKILL %s (pid %d) at t=%.2fs\n%!"
              children.(victim).name children.(victim).pid kill_after;
            Unix.kill children.(victim).pid Sys.sigkill;
            if reboot then begin
              ignore
                (Unix.waitpid [] children.(victim).pid
                  : int * Unix.process_status);
              (try Unix.close children.(victim).from_child
               with Unix.Unix_error (_, _, _) -> ());
              let child =
                spawn_node ~node_exe ~name:children.(victim).name
                  ~port_arg:(string_of_int ports.(victim))
                  ~cores ~keys ~shard:0 ~heartbeat_ms
                  ~data_dir:(node_data_dir victim) ~fsync ~metrics
              in
              (match read_line_timeout child ~timeout_s:10.0 with
              | Some _ -> ()
              | None ->
                  Printf.eprintf
                    "meerkat_cluster: %s: no port announcement on reboot\n%!"
                    child.name);
              write_all child.to_child config_text;
              Unix.close child.to_child;
              children.(victim) <- child;
              Printf.printf "rebooted %s (pid %d) on port %d\n%!" child.name
                child.pid ports.(victim)
            end))
      kill_node
  in
  let dcfg =
    {
      Driver.default_config with
      coordinators;
      clients;
      keys;
      theta;
      workload;
      txns_per_client = txns;
      duration;
      seed;
    }
  in
  let result =
    match Driver.run dcfg ~cluster with
    | Ok r -> r
    | Error msg -> fail "driver: %s" msg
  in
  Option.iter Spawn.join killer;
  (* Shut the nodes down and gather their exit stats. The Shutdown
     frame is UDP: resend until the stats line (or EOF) arrives. *)
  let stats_lines = Array.make nodes None in
  (* With --reboot the victim's replacement is a full cluster member
     again and owes us stats like everyone else. *)
  let killed_for_good i = Some i = kill_node && not reboot in
  Array.iteri
    (fun i child ->
      let rec gather attempts =
        if attempts > 0 && stats_lines.(i) = None then begin
          (match Driver.shutdown ~cluster () with Ok () | Error _ -> ());
          let rec scan () =
            match read_line_timeout child ~timeout_s:2.0 with
            | None -> ()
            | Some line ->
                if String.length line >= 6 && String.sub line 0 6 = "stats "
                then
                  stats_lines.(i) <-
                    Some (String.sub line 6 (String.length line - 6))
                else scan ()
          in
          scan ();
          gather (attempts - 1)
        end
      in
      gather 5;
      if stats_lines.(i) = None && not (killed_for_good i) then begin
        Printf.eprintf "meerkat_cluster: %s: no stats; killing\n%!" child.name;
        try Unix.kill child.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ()
      end)
    children;
  let exits =
    Array.map (fun child -> snd (Unix.waitpid [] child.pid)) children
  in
  (* Verdicts. *)
  let failures = ref 0 in
  let fail_check fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAILED: %s\n%!" msg)
      fmt
  in
  Printf.printf
    "driver: %d committed, %d aborted (%d fast / %d slow), %d retransmits, \
     %.0f txn/s, p50 %.0f us, p99 %.0f us\n\
     wire: %d tx, %d rx, %d decode errors\n\
     %!"
    result.Driver.committed_count result.Driver.aborted result.Driver.fast_path
    result.Driver.slow_path result.Driver.retransmits result.Driver.throughput
    result.Driver.p50_us result.Driver.p99_us result.Driver.wire_msgs_tx
    result.Driver.wire_msgs_rx result.Driver.wire_decode_errors;
  (if duration = None then
     let decided = result.Driver.committed_count + result.Driver.aborted in
     let expected = clients * txns in
     if decided <> expected then
       fail_check "lost transactions: %d decided, %d submitted" decided expected);
  let serializable =
    if no_check then true
    else
      match Checker.check result.Driver.committed with
      | Ok () ->
          Printf.printf "serializable: yes (%d commits)\n%!"
            result.Driver.committed_count;
          true
      | Error v ->
          fail_check "serializability violation: %s"
            (Format.asprintf "%a" Checker.pp_violation v);
          false
  in
  let detected_by = ref [] in
  Array.iteri
    (fun i child ->
      let killed = killed_for_good i in
      (match (stats_lines.(i), killed) with
      | Some json, _ -> (
          Printf.printf "%s: %s\n%!" child.name json;
          match kill_node with
          | Some victim when List.mem victim (suspected_of_stats json) ->
              detected_by := i :: !detected_by
          | _ -> ())
      | None, true -> Printf.printf "%s: killed (no stats)\n%!" child.name
      | None, false -> fail_check "%s: no exit stats" child.name);
      match (exits.(i), killed) with
      | Unix.WEXITED 0, false -> ()
      | Unix.WSIGNALED _, true -> ()
      | status, _ ->
          let s =
            match status with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
          in
          fail_check "%s: unexpected status (%s)" child.name s)
    children;
  (match kill_node with
  | Some victim when reboot ->
      (* Kill-and-reboot verdicts: the victim must have rebooted from
         its data directory (it restored snapshots and/or replayed log
         records — a snapshot written just before the SIGKILL can
         leave an empty log suffix, so neither alone is required), and
         the cluster must have driven the §5.3.1 epoch change that
         merged it back. Suspicion at shutdown is NOT required — a
         successfully reintegrated replica earns a fresh grace period,
         so lingering suspicion would be the bug, not the proof. *)
      (match stats_lines.(victim) with
      | None -> fail_check "node%d: no stats after reboot" victim
      | Some json ->
          let replayed = int_field_of_stats json "wal_replayed" in
          let snaps = int_field_of_stats json "wal_snapshots_used" in
          if replayed + snaps <= 0 then
            fail_check
              "node%d rebooted without recovering anything from its data \
               directory"
              victim
          else
            Printf.printf
              "node%d rebooted: %d snapshot(s) restored, %d log records \
               replayed\n\
               %!"
              victim snaps replayed);
      let epoch_changes =
        Array.fold_left
          (fun acc line ->
            match line with
            | Some json -> acc + max 0 (int_field_of_stats json "epoch_changes")
            | None -> acc)
          0 stats_lines
      in
      if epoch_changes <= 0 then
        fail_check "no node completed an epoch change merging node%d back"
          victim
      else
        Printf.printf "epoch changes: %d (node%d merged back)\n%!" epoch_changes
          victim
  | Some victim ->
      if !detected_by = [] then
        fail_check "no surviving node suspected node%d" victim
      else
        Printf.printf "node%d suspected by: %s\n%!" victim
          (String.concat ", "
             (List.map (Printf.sprintf "node%d") (List.rev !detected_by)))
  | None -> ());
  (match json with
  | None -> ()
  | Some path -> (
      let node_stats =
        String.concat ",\n    "
          (Array.to_list
             (Array.map
                (fun s -> match s with Some j -> j | None -> "null")
                stats_lines))
      in
      let body =
        Printf.sprintf
          "{\"experiment\": \"cluster\", \"nodes\": %d, \"cores\": %d, \
           \"coordinators\": %d, \"clients\": %d, \"killed\": %d, \
           \"rebooted\": %b, \"detected_by\": [%s], \"serializable\": %b, \
           \"failures\": %d,\n\
          \  \"driver\": %s,\n\
          \  \"node_stats\": [\n\
          \    %s\n\
          \  ]}\n"
          nodes cores coordinators clients
          (match kill_node with Some v -> v | None -> -1)
          reboot
          (String.concat ", "
             (List.map string_of_int (List.rev !detected_by)))
          serializable !failures
          (Driver.result_json result)
          node_stats
      in
      try
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc body);
        Printf.printf "wrote %s\n%!" path
      with Sys_error msg -> Printf.eprintf "meerkat_cluster: %s\n%!" msg));
  if !failures > 0 then begin
    Printf.printf "%d check(s) FAILED\n%!" !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The sharded run (--shards > 1)                                      *)
(* ------------------------------------------------------------------ *)

(* S independent fleets of the same size, each its own shard group:
   its own cluster config, detector gossip, WAL directories and — on
   the wire — its own shard stamp. The in-process driver is the
   cross-shard 2PC coordinator ({!Shard_driver}); a --kill-node victim
   is killed in shard 0's fleet, and the other shards must keep
   committing around it. *)
let run_sharded ~shards nodes cores coordinators clients keys theta workload
    txns duration seed cross heartbeat_ms kill_node kill_after reboot data_dir
    fsync no_check metrics json =
  if nodes < 3 || nodes mod 2 = 0 then fail "--nodes must be odd and >= 3";
  (match kill_node with
  | Some v when v < 0 || v >= nodes -> fail "--kill-node out of range"
  | _ -> ());
  if reboot && kill_node = None then fail "--reboot needs --kill-node";
  let node_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "meerkat_node.exe"
  in
  if not (Sys.file_exists node_exe) then
    fail "%s not found (build bin/meerkat_node.exe first)" node_exe;
  (* One router decides placement for the fleets AND the driver: shard
     [s] serves the local keyspace of the global [keys] under Mod
     placement, so every node is launched with its shard's local key
     count. *)
  let router = Router.create ~shards ~keys () in
  let shard_keys s = Router.local_keys router ~shard:s in
  let data_base =
    match data_dir with
    | Some _ as d -> d
    | None ->
        if reboot then
          Some
            (Filename.concat
               (Filename.get_temp_dir_name ())
               (Printf.sprintf "meerkat-cluster-%d" (Unix.getpid ())))
        else None
  in
  let mkdir_p dir =
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  in
  (match data_base with
  | Some base ->
      mkdir_p base;
      for s = 0 to shards - 1 do
        mkdir_p (Filename.concat base (Printf.sprintf "shard%d" s))
      done
  | None -> ());
  let node_data_dir s i =
    Option.map
      (fun base ->
        Filename.concat base (Printf.sprintf "shard%d/node%d" s i))
      data_base
  in
  (* Fork shards x nodes processes and complete every port handshake. *)
  let children =
    Array.init shards (fun s ->
        Array.init nodes (fun i ->
            spawn_node ~node_exe
              ~name:(Printf.sprintf "node%d" i)
              ~port_arg:"auto" ~cores ~keys:(shard_keys s) ~shard:s
              ~heartbeat_ms ~data_dir:(node_data_dir s i) ~fsync ~metrics))
  in
  let ports =
    Array.map
      (Array.map (fun child ->
           match read_line_timeout child ~timeout_s:10.0 with
           | Some line -> (
               match String.split_on_char ' ' line with
               | [ "port"; p ] -> (
                   match int_of_string_opt p with
                   | Some p -> p
                   | None -> fail "%s: bad port announcement %S" child.name line)
               | _ -> fail "%s: expected `port <n>', got %S" child.name line)
           | None -> fail "%s: no port announcement" child.name))
      children
  in
  let clusters =
    Array.mapi
      (fun s fleet ->
        Array.mapi
          (fun i child ->
            {
              Cluster_config.name = child.name;
              host = "127.0.0.1";
              port = ports.(s).(i);
            })
          fleet)
      children
  in
  let config_texts = Array.map Cluster_config.to_string clusters in
  Array.iteri
    (fun s fleet ->
      Array.iter
        (fun child ->
          write_all child.to_child config_texts.(s);
          Unix.close child.to_child)
        fleet)
    children;
  Printf.printf "cluster up: %d shards x %d nodes x %d cores\n%!" shards nodes
    cores;
  (* The killer takes out shard 0's victim; the reboot (if asked)
     brings it back on its original port with its shard-0 stamp and
     data directory, and shard 0's survivors drive the epoch change.
     Every other shard never notices. *)
  let killer =
    Option.map
      (fun victim ->
        Spawn.spawn (fun () ->
            Unix.sleepf kill_after;
            Printf.printf "SIGKILL shard0/%s (pid %d) at t=%.2fs\n%!"
              children.(0).(victim).name children.(0).(victim).pid kill_after;
            Unix.kill children.(0).(victim).pid Sys.sigkill;
            if reboot then begin
              ignore
                (Unix.waitpid [] children.(0).(victim).pid
                  : int * Unix.process_status);
              (try Unix.close children.(0).(victim).from_child
               with Unix.Unix_error (_, _, _) -> ());
              let child =
                spawn_node ~node_exe ~name:children.(0).(victim).name
                  ~port_arg:(string_of_int ports.(0).(victim))
                  ~cores ~keys:(shard_keys 0) ~shard:0 ~heartbeat_ms
                  ~data_dir:(node_data_dir 0 victim) ~fsync ~metrics
              in
              (match read_line_timeout child ~timeout_s:10.0 with
              | Some _ -> ()
              | None ->
                  Printf.eprintf
                    "meerkat_cluster: %s: no port announcement on reboot\n%!"
                    child.name);
              write_all child.to_child config_texts.(0);
              Unix.close child.to_child;
              children.(0).(victim) <- child;
              Printf.printf "rebooted shard0/%s (pid %d) on port %d\n%!"
                child.name child.pid ports.(0).(victim)
            end))
      kill_node
  in
  let dcfg =
    {
      Shard_driver.default_config with
      shards;
      coordinators;
      clients;
      keys;
      theta;
      workload;
      cross;
      txns_per_client = txns;
      duration;
      seed;
    }
  in
  let result =
    match Shard_driver.run dcfg ~clusters with
    | Ok r -> r
    | Error msg -> fail "driver: %s" msg
  in
  Option.iter Spawn.join killer;
  (* Shut every fleet down (per-shard Shutdown stamps) and gather the
     exit stats. *)
  let stats_lines = Array.make_matrix shards nodes None in
  let killed_for_good s i = s = 0 && Some i = kill_node && not reboot in
  Array.iteri
    (fun s fleet ->
      Array.iteri
        (fun i child ->
          let rec gather attempts =
            if attempts > 0 && stats_lines.(s).(i) = None then begin
              (match Driver.shutdown ~shard:s ~cluster:clusters.(s) () with
              | Ok () | Error _ -> ());
              let rec scan () =
                match read_line_timeout child ~timeout_s:2.0 with
                | None -> ()
                | Some line ->
                    if String.length line >= 6 && String.sub line 0 6 = "stats "
                    then
                      stats_lines.(s).(i) <-
                        Some (String.sub line 6 (String.length line - 6))
                    else scan ()
              in
              scan ();
              gather (attempts - 1)
            end
          in
          gather 5;
          if stats_lines.(s).(i) = None && not (killed_for_good s i) then begin
            Printf.eprintf "meerkat_cluster: shard%d/%s: no stats; killing\n%!"
              s child.name;
            try Unix.kill child.pid Sys.sigkill
            with Unix.Unix_error (_, _, _) -> ()
          end)
        fleet)
    children;
  let exits =
    Array.map
      (Array.map (fun child -> snd (Unix.waitpid [] child.pid)))
      children
  in
  (* Verdicts. *)
  let failures = ref 0 in
  let fail_check fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAILED: %s\n%!" msg)
      fmt
  in
  Printf.printf
    "driver: %d committed (%d cross-shard), %d aborted (%d fast / %d slow \
     sub-attempts), %d retransmits, %.0f txn/s, p50 %.0f us, p99 %.0f us\n\
     wire: %d tx, %d rx, %d decode errors, %d shard drops\n\
     %!"
    result.Shard_driver.committed_count result.Shard_driver.cross_shard
    result.Shard_driver.aborted result.Shard_driver.fast_path
    result.Shard_driver.slow_path result.Shard_driver.retransmits
    result.Shard_driver.throughput result.Shard_driver.p50_us
    result.Shard_driver.p99_us result.Shard_driver.wire_msgs_tx
    result.Shard_driver.wire_msgs_rx result.Shard_driver.wire_decode_errors
    result.Shard_driver.wire_shard_drops;
  (if duration = None then
     let decided =
       result.Shard_driver.committed_count + result.Shard_driver.aborted
     in
     let expected = clients * txns in
     if decided <> expected then
       fail_check "lost transactions: %d decided, %d submitted" decided expected);
  let serializable =
    if no_check then true
    else
      match Checker.check result.Shard_driver.committed with
      | Ok () ->
          Printf.printf "serializable: yes (%d commits, merged history)\n%!"
            result.Shard_driver.committed_count;
          true
      | Error v ->
          fail_check "serializability violation (merged history): %s"
            (Format.asprintf "%a" Checker.pp_violation v);
          false
  in
  let detected_by = ref [] in
  Array.iteri
    (fun s fleet ->
      Array.iteri
        (fun i child ->
          let killed = killed_for_good s i in
          (match (stats_lines.(s).(i), killed) with
          | Some json, _ -> (
              Printf.printf "shard%d/%s: %s\n%!" s child.name json;
              match kill_node with
              | Some victim
                when s = 0 && List.mem victim (suspected_of_stats json) ->
                  detected_by := i :: !detected_by
              | _ -> ())
          | None, true ->
              Printf.printf "shard%d/%s: killed (no stats)\n%!" s child.name
          | None, false -> fail_check "shard%d/%s: no exit stats" s child.name);
          match (exits.(s).(i), killed) with
          | Unix.WEXITED 0, false -> ()
          | Unix.WSIGNALED _, true -> ()
          | status, _ ->
              let st =
                match status with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED sg -> Printf.sprintf "signal %d" sg
                | Unix.WSTOPPED sg -> Printf.sprintf "stopped %d" sg
              in
              fail_check "shard%d/%s: unexpected status (%s)" s child.name st)
        fleet)
    children;
  (match kill_node with
  | Some victim when reboot ->
      (match stats_lines.(0).(victim) with
      | None -> fail_check "shard0/node%d: no stats after reboot" victim
      | Some json ->
          let replayed = int_field_of_stats json "wal_replayed" in
          let snaps = int_field_of_stats json "wal_snapshots_used" in
          if replayed + snaps <= 0 then
            fail_check
              "shard0/node%d rebooted without recovering anything from its \
               data directory"
              victim
          else
            Printf.printf
              "shard0/node%d rebooted: %d snapshot(s) restored, %d log \
               records replayed\n\
               %!"
              victim snaps replayed);
      let epoch_changes =
        Array.fold_left
          (fun acc line ->
            match line with
            | Some json -> acc + max 0 (int_field_of_stats json "epoch_changes")
            | None -> acc)
          0 stats_lines.(0)
      in
      if epoch_changes <= 0 then
        fail_check
          "no shard-0 node completed an epoch change merging node%d back"
          victim
      else
        Printf.printf "epoch changes: %d (shard0/node%d merged back)\n%!"
          epoch_changes victim
  | Some victim ->
      if !detected_by = [] then
        fail_check "no surviving shard-0 node suspected node%d" victim
      else
        Printf.printf "shard0/node%d suspected by: %s\n%!" victim
          (String.concat ", "
             (List.map (Printf.sprintf "node%d") (List.rev !detected_by)))
  | None -> ());
  (match json with
  | None -> ()
  | Some path -> (
      let node_stats =
        String.concat ",\n    "
          (Array.to_list
             (Array.map
                (fun fleet ->
                  Printf.sprintf "[%s]"
                    (String.concat ", "
                       (Array.to_list
                          (Array.map
                             (fun st ->
                               match st with Some j -> j | None -> "null")
                             fleet))))
                stats_lines))
      in
      let body =
        Printf.sprintf
          "{\"experiment\": \"cluster-sharded\", \"shards\": %d, \"nodes\": \
           %d, \"cores\": %d, \"coordinators\": %d, \"clients\": %d, \
           \"cross\": %.2f, \"killed\": %d, \"rebooted\": %b, \
           \"detected_by\": [%s], \"serializable\": %b, \"failures\": %d,\n\
          \  \"driver\": %s,\n\
          \  \"node_stats\": [\n\
          \    %s\n\
          \  ]}\n"
          shards nodes cores coordinators clients cross
          (match kill_node with Some v -> v | None -> -1)
          reboot
          (String.concat ", " (List.map string_of_int (List.rev !detected_by)))
          serializable !failures
          (Shard_driver.result_json result)
          node_stats
      in
      try
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc body);
        Printf.printf "wrote %s\n%!" path
      with Sys_error msg -> Printf.eprintf "meerkat_cluster: %s\n%!" msg));
  if !failures > 0 then begin
    Printf.printf "%d check(s) FAILED\n%!" !failures;
    exit 1
  end

let run shards nodes cores coordinators clients keys theta workload txns
    duration seed cross heartbeat_ms kill_node kill_after reboot data_dir fsync
    no_check metrics json =
  if shards < 1 then fail "--shards must be >= 1";
  if cross < 0.0 || cross > 1.0 then fail "--cross must be in [0, 1]";
  if shards = 1 then
    run_single nodes cores coordinators clients keys theta workload txns
      duration seed heartbeat_ms kill_node kill_after reboot data_dir fsync
      no_check metrics json
  else
    run_sharded ~shards nodes cores coordinators clients keys theta workload
      txns duration seed cross heartbeat_ms kill_node kill_after reboot
      data_dir fsync no_check metrics json

let () =
  let open Cmdliner in
  let workload_conv =
    Arg.conv
      ( parse_workload,
        fun ppf w ->
          Format.pp_print_string ppf
            (match w with
             | Driver.Ycsb_t -> "ycsb-t"
             | Driver.Rmw_pair -> "rmw-pair"
             | Driver.Retwis -> "retwis")
      )
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Shard groups (DESIGN.md §13): fork $(docv) independent fleets of \
             --nodes each and drive them with the cross-shard 2PC client \
             driver. The default 1 is the single-group deployment.")
  in
  let nodes =
    Arg.(
      value & opt int 3
      & info [ "nodes"; "n" ] ~doc:"Nodes per shard group (odd, >= 3).")
  in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~doc:"Server domains per node.")
  in
  let coordinators =
    Arg.(
      value & opt int 2
      & info [ "coordinators" ] ~doc:"Client driver domains (in-process).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.")
  in
  let keys = Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Keyspace size.") in
  let theta =
    Arg.(value & opt float 0.6 & info [ "theta" ] ~doc:"Zipf skew in [0, 1).")
  in
  let workload =
    Arg.(
      value & opt workload_conv Driver.Ycsb_t
      & info [ "workload"; "w" ] ~doc:"Workload: ycsb-t or retwis.")
  in
  let txns =
    Arg.(
      value & opt int 50
      & info [ "txns" ] ~doc:"Transactions per client (ignored with --duration).")
  in
  let duration =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Keep submitting for $(docv) of wall time instead of a quota.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let cross =
    Arg.(
      value & opt float 0.1
      & info [ "cross" ] ~docv:"P"
          ~doc:
            "Probability a multi-key transaction spans more than one shard \
             (only meaningful with --shards > 1).")
  in
  let heartbeat_ms =
    Arg.(
      value & opt float 25.0
      & info [ "heartbeat-ms" ] ~doc:"Node heartbeat period (milliseconds).")
  in
  let kill_node =
    Arg.(
      value & opt (some int) None
      & info [ "kill-node" ] ~docv:"ID"
          ~doc:
            "SIGKILL node $(docv) after --kill-after seconds; surviving nodes \
             must detect it (exit stats' suspected list).")
  in
  let kill_after =
    Arg.(
      value & opt float 0.5
      & info [ "kill-after" ] ~docv:"SECONDS" ~doc:"When to kill (--kill-node).")
  in
  let reboot =
    Arg.(
      value & flag
      & info [ "reboot" ]
          ~doc:
            "After SIGKILLing the --kill-node victim, restart it on its \
             original port from its data directory; the run then checks that \
             it replayed its WAL and that an epoch change merged it back.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Give each node a WAL + snapshot directory under $(docv). \
             Implied (in a temp directory) by --reboot.")
  in
  let fsync =
    Arg.(
      value & opt string "every=8"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"Node WAL fsync policy: always, every=N, or never.")
  in
  let no_check =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:"Skip the serializability check of the committed history.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Nodes dump their metrics registry at exit.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the run summary to $(docv).")
  in
  let term =
    Term.(
      const run $ shards $ nodes $ cores $ coordinators $ clients $ keys
      $ theta $ workload $ txns $ duration $ seed $ cross $ heartbeat_ms
      $ kill_node $ kill_after $ reboot $ data_dir $ fsync $ no_check $ metrics
      $ json)
  in
  let info =
    Cmd.info "meerkat_cluster"
      ~doc:
        "Fork an N-node Meerkat cluster on localhost (one OS process per \
         replica, UDP transport) and drive it end to end"
  in
  exit (Cmd.eval (Cmd.v info term))
