(* ZCP-conformance linter CLI.

   Usage: mk_lint [--config mk_lint.toml] PATH...
   Exits 0 when clean, 1 on findings, 2 on usage/config errors — so CI
   can gate on it. *)

module Lint_config = Mk_check_lint.Lint_config
module Lint_engine = Mk_check_lint.Lint_engine

let usage = "usage: mk_lint [--config FILE] PATH...\n"

let rec parse_args (config, paths) = function
  | [] -> (config, List.rev paths)
  | "--config" :: file :: rest -> parse_args (Some file, paths) rest
  | [ "--config" ] ->
      prerr_string usage;
      exit 2
  | ("-h" | "--help") :: _ ->
      print_string usage;
      exit 0
  | p :: rest -> parse_args (config, p :: paths) rest

let () =
  let config_path, paths =
    parse_args (None, []) (List.tl (Array.to_list Sys.argv))
  in
  if paths = [] then begin
    prerr_string usage;
    exit 2
  end;
  let config =
    match config_path with
    | Some file -> begin
        match Lint_config.load file with
        | cfg -> cfg
        | exception Lint_config.Parse_error msg ->
            Printf.eprintf "mk_lint: %s: %s\n" file msg;
            exit 2
        | exception Sys_error msg ->
            Printf.eprintf "mk_lint: %s\n" msg;
            exit 2
      end
    | None ->
        if Sys.file_exists "mk_lint.toml" then Lint_config.load "mk_lint.toml"
        else Lint_config.default
  in
  let result = Lint_engine.run ~config ~paths in
  print_string (Lint_engine.render result);
  exit (if result.Lint_engine.findings = [] then 0 else 1)
