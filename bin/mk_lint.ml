(* ZCP-conformance linter CLI.

   Usage: mk_lint [--config mk_lint.toml] [--json FILE] [--rules z1,z7] PATH...
   Exits 0 when clean, 1 on findings, 2 on usage/config errors — so CI
   can gate on it. [--json] additionally writes the report as JSON (for
   artifact upload); [--rules] keeps only the named rules' findings
   (PARSE always survives), so CI can gate per rule. *)

module Lint_config = Mk_check_lint.Lint_config
module Lint_engine = Mk_check_lint.Lint_engine

let usage =
  "usage: mk_lint [--config FILE] [--json FILE] [--rules z1,z7,...] PATH...\n"

type opts = {
  config : string option;
  json : string option;
  rules : string list option;
  paths : string list;
}

let rec parse_args o = function
  | [] -> { o with paths = List.rev o.paths }
  | "--config" :: file :: rest -> parse_args { o with config = Some file } rest
  | "--json" :: file :: rest -> parse_args { o with json = Some file } rest
  | "--rules" :: spec :: rest ->
      let rules =
        String.split_on_char ',' spec |> List.filter (fun r -> r <> "")
      in
      if rules = [] then begin
        prerr_string usage;
        exit 2
      end;
      parse_args { o with rules = Some rules } rest
  | [ ("--config" | "--json" | "--rules") ] ->
      prerr_string usage;
      exit 2
  | ("-h" | "--help") :: _ ->
      print_string usage;
      exit 0
  | p :: rest -> parse_args { o with paths = p :: o.paths } rest

let () =
  let o =
    parse_args
      { config = None; json = None; rules = None; paths = [] }
      (List.tl (Array.to_list Sys.argv))
  in
  if o.paths = [] then begin
    prerr_string usage;
    exit 2
  end;
  let config =
    match o.config with
    | Some file -> begin
        match Lint_config.load file with
        | cfg -> cfg
        | exception Lint_config.Parse_error msg ->
            Printf.eprintf "mk_lint: %s: %s\n" file msg;
            exit 2
        | exception Sys_error msg ->
            Printf.eprintf "mk_lint: %s\n" msg;
            exit 2
      end
    | None ->
        if Sys.file_exists "mk_lint.toml" then Lint_config.load "mk_lint.toml"
        else Lint_config.default
  in
  let result = Lint_engine.run ~config ~paths:o.paths in
  let result =
    match o.rules with
    | Some rules -> Lint_engine.filter_rules rules result
    | None -> result
  in
  (match o.json with
  | Some file ->
      let oc = open_out file in
      output_string oc (Lint_engine.render_json result);
      close_out oc
  | None -> ());
  print_string (Lint_engine.render result);
  exit (if result.Lint_engine.findings = [] then 0 else 1)
