(* meerkat_node: one Meerkat server node — one whole replica in one
   OS process, speaking the wire protocol over UDP (DESIGN.md §11).

   Launcher protocol (what meerkat_cluster drives over pipes):
   - the node binds its socket first ([--port auto] picks an
     ephemeral one) and prints `port <n>' on stdout before anything
     else;
   - [--cluster -] then reads the membership (`name host:port' lines)
     from stdin until EOF — the launcher assembles it from every
     node's port announcement and closes the pipe;
   - on a Shutdown frame the node stops and prints `stats <json>'.

   Standalone use works too, with a config file and fixed ports:

     meerkat_node --me node0 --cluster cluster.conf --port 7000 &
     meerkat_node --me node1 --cluster cluster.conf --port 7001 &
     meerkat_node --me node2 --cluster cluster.conf --port 7002 & *)

module Node = Mk_node.Node
module Cluster_config = Mk_node.Cluster_config

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "meerkat_node: %s\n%!" msg;
      exit 2)
    fmt

let parse_port = function
  | "auto" -> Ok 0
  | s -> (
      match int_of_string_opt s with
      | Some p when p >= 1 && p <= 65535 -> Ok p
      | Some p -> Error (`Msg (Printf.sprintf "port %d out of range" p))
      | None -> Error (`Msg (Printf.sprintf "bad port %S (number or auto)" s)))

let run me cluster_src port cores keys shard heartbeat_ms no_detector rto_ms
    data_dir fsync metrics =
  (* Bind before reading the config: with `--cluster -' the launcher
     needs our `port' line to finish assembling the config it will
     send us. *)
  let bound =
    match Node.bind ~port () with
    | Ok b -> b
    | Error msg -> fail "bind: %s" msg
  in
  Printf.printf "port %d\n%!" (Node.bound_port bound);
  let cluster =
    match
      match cluster_src with
      | `File path -> Cluster_config.load path
      | `Stdin -> Cluster_config.parse (In_channel.input_all In_channel.stdin)
    with
    | Ok c -> c
    | Error msg -> fail "cluster config: %s" msg
  in
  let id =
    match Cluster_config.find cluster me with
    | Some id -> id
    | None -> fail "node %S not in the cluster config" me
  in
  let cfg =
    {
      Node.default_config with
      me = id;
      cores;
      keys;
      shard;
      detector =
        (if no_detector then None else Some (Node.detector_cfg ~heartbeat_ms));
      rto_us = rto_ms *. 1000.0;
      data_dir;
      fsync =
        (match Mk_durable.Wal.policy_of_string fsync with
        | Some p -> p
        | None -> fail "bad --fsync %S (always, never, or every=N)" fsync);
    }
  in
  let node = Node.create bound cfg ~n_replicas:(Array.length cluster) in
  (match Node.launch node ~cluster with
  | Ok () -> ()
  | Error msg -> fail "launch: %s" msg);
  let stats = Node.wait node in
  if metrics then print_string (Mk_obs.Obs.metrics_dump (Node.obs node));
  Printf.printf "stats %s\n%!" (Node.stats_json stats)

let () =
  let open Cmdliner in
  let port_conv =
    Arg.conv (parse_port, fun ppf p -> Format.fprintf ppf "%d" p)
  in
  let me =
    Arg.(
      required
      & opt (some string) None
      & info [ "me" ] ~docv:"NAME" ~doc:"This node's name in the cluster config.")
  in
  let cluster =
    Arg.(
      required
      & opt (some string) None
      & info [ "cluster" ] ~docv:"FILE"
          ~doc:
            "Cluster config: `name host:port' lines, replica ids by line \
             order. `-' reads it from stdin (until EOF) $(i,after) the port \
             announcement — the launcher handshake.")
  in
  let port =
    Arg.(
      value & opt port_conv 0
      & info [ "port" ] ~docv:"PORT|auto"
          ~doc:
            "UDP port to bind; `auto' (the default) binds an ephemeral port. \
             Either way the bound port is printed as `port <n>' on stdout \
             first.")
  in
  let cores =
    Arg.(
      value & opt int 2
      & info [ "cores" ] ~doc:"Server domains (trecord cores) in this node.")
  in
  let keys = Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Keyspace size.") in
  let shard =
    Arg.(
      value & opt int 0
      & info [ "shard" ] ~docv:"S"
          ~doc:
            "Shard group this node belongs to (multi-group deployments, \
             DESIGN.md §13). Every frame is stamped with it; frames stamped \
             otherwise are counted drops. The default 0 is a single-group \
             deployment.")
  in
  let heartbeat_ms =
    Arg.(
      value & opt float 25.0
      & info [ "heartbeat-ms" ]
          ~doc:"Failure-detector heartbeat period (milliseconds).")
  in
  let no_detector =
    Arg.(
      value & flag
      & info [ "no-detector" ]
          ~doc:"Disable heartbeats, suspicion and view changes.")
  in
  let rto_ms =
    Arg.(
      value & opt float 100.0
      & info [ "rto-ms" ] ~doc:"View-change retransmission base (milliseconds).")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Persist per-core WAL + snapshot files under $(docv) (created if \
             absent). A process SIGKILLed and restarted with the same \
             $(docv) replays its state and rejoins via the epoch change.")
  in
  let fsync =
    Arg.(
      value & opt string "every=8"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: `always' (durable on ack), `every=N' (group \
             commit), or `never' (crash-consistent only). Only meaningful \
             with $(b,--data-dir).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Dump the metrics registry (wire counters included) at exit.")
  in
  let wrap me cluster port cores keys shard heartbeat_ms no_detector rto_ms
      data_dir fsync metrics =
    let src = if cluster = "-" then `Stdin else `File cluster in
    run me src port cores keys shard heartbeat_ms no_detector rto_ms data_dir
      fsync metrics
  in
  let term =
    Term.(
      const wrap $ me $ cluster $ port $ cores $ keys $ shard $ heartbeat_ms
      $ no_detector $ rto_ms $ data_dir $ fsync $ metrics)
  in
  let info =
    Cmd.info "meerkat_node"
      ~doc:"One Meerkat server node (one replica per OS process, UDP transport)"
  in
  exit (Cmd.eval (Cmd.v info term))
