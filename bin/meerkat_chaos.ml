(* meerkat_chaos: the Jepsen-style chaos matrix as a command.

   Runs the Mk_harness.Chaos runner over a seed × nemesis-profile
   matrix with detector-driven recovery only, prints one report line
   per run, and exits non-zero if any invariant failed. The default
   backend is the deterministic simulator; --live runs the same plans
   and invariants against the Mk_live runtime on real OCaml 5 domains.
   Failing sim runs are re-run deterministically with tracing on and
   their Chrome traces written to --trace-dir for offline forensics.

     dune exec bin/meerkat_chaos.exe -- --seeds 8 --profiles all
     dune exec bin/meerkat_chaos.exe -- --profiles combo --seeds 2 --trace-dir /tmp/chaos
     dune exec bin/meerkat_chaos.exe -- --live --seeds 4 --profiles combo --json chaos.json *)

module Chaos = Mk_harness.Chaos
module Shard_chaos = Mk_systems.Shard_chaos
module Nemesis = Mk_fault.Nemesis

let parse_profiles s =
  if s = "all" then Ok Nemesis.all
  else begin
    let names = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Nemesis.of_string (String.trim name) with
          | Some p -> go (p :: acc) rest
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown profile %S (known: %s, or 'all')" name
                      (String.concat ", " (List.map Nemesis.to_string Nemesis.all)))))
    in
    go [] names
  end

let run nseeds seed_base profiles live shards horizon grace threads clients
    keys trace_dir json verbose =
  if shards < 1 then begin
    Format.eprintf "meerkat_chaos: --shards must be >= 1@.";
    exit 2
  end;
  if shards > 1 && live then begin
    Format.eprintf
      "meerkat_chaos: --shards is sim-only (sharded crashes on real \
       processes: meerkat_cluster --shards --kill-node)@.";
    exit 2
  end;
  let seeds = List.init nseeds (fun i -> seed_base + i) in
  let base = if live then Chaos.default_live_cfg else Chaos.default_cfg in
  (* Per-backend envelope defaults: 60 ms virtual for the simulator,
     0.8 s of wall time for real domains. *)
  let horizon = Option.value horizon ~default:base.Chaos.horizon in
  let grace = Option.value grace ~default:base.Chaos.grace in
  let cfg =
    {
      base with
      Chaos.horizon;
      grace;
      threads;
      n_clients = clients;
      keys;
    }
  in
  Format.printf
    "chaos matrix (%s): %d seeds x %d profiles (horizon %.0fus, grace %.0fus)@."
    (if live then "live domains"
     else if shards > 1 then Printf.sprintf "sim, %d shards" shards
     else "sim")
    nseeds (List.length profiles) horizon grace;
  let reports =
    if shards > 1 then Shard_chaos.matrix ~shards ~seeds ~profiles ~cfg
    else Chaos.matrix ~seeds ~profiles ~cfg
  in
  let failures = List.filter (fun r -> not (Chaos.passed r)) reports in
  List.iter
    (fun r ->
      if verbose || not (Chaos.passed r) then
        Format.printf "%a" Chaos.pp_report r
      else
        Format.printf "seed %d, profile %s: PASS (%d commits, %d aborts, %d ec, %d vc)@."
          r.Chaos.r_cfg.Chaos.seed
          (Nemesis.to_string r.Chaos.r_cfg.Chaos.profile)
          r.Chaos.committed_acks r.Chaos.aborted_acks r.Chaos.epoch_changes
          r.Chaos.view_changes)
    reports;
  (match json with
  | None -> ()
  | Some path -> (
      let body =
        String.concat ",\n  " (List.map Chaos.report_json reports)
      in
      try
        let oc = open_out path in
        Printf.fprintf oc
          "{\"experiment\": \"chaos\", \"backend\": \"%s\", \"shards\": %d, \
           \"runs\": [\n  %s\n]}\n"
          (if live then "live" else "sim")
          shards body;
        close_out oc;
        Format.printf "wrote %s@." path
      with Sys_error msg -> Format.eprintf "meerkat_chaos: %s@." msg));
  (match trace_dir with
  | None -> ()
  | Some dir ->
      if live then
        Format.eprintf
          "meerkat_chaos: --trace-dir records simulator traces; ignored with --live@."
      else
        List.iter
          (fun (r : Chaos.report) ->
            (* Same cfg + same seed = the same run, this time traced. *)
            let traced_cfg = { r.Chaos.r_cfg with trace = true } in
            let traced =
              if shards > 1 then Shard_chaos.run ~shards traced_cfg
              else Chaos.run traced_cfg
            in
            let path =
              Filename.concat dir
                (Printf.sprintf "chaos-%s-seed%d.json"
                   (Nemesis.to_string r.Chaos.r_cfg.Chaos.profile)
                   r.Chaos.r_cfg.Chaos.seed)
            in
            (try
               if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
               Mk_obs.Obs.write_chrome_trace traced.Chaos.obs ~path;
               Format.printf "wrote failing-run trace to %s@." path
             with Sys_error msg ->
               Format.eprintf "meerkat_chaos: cannot write trace: %s@." msg))
          failures);
  if failures = [] then
    Format.printf "all %d runs passed@." (List.length reports)
  else begin
    Format.printf "%d of %d runs FAILED@." (List.length failures)
      (List.length reports);
    exit 1
  end

let () =
  let open Cmdliner in
  let profiles_conv =
    Arg.conv
      ( parse_profiles,
        fun ppf ps ->
          Format.pp_print_string ppf
            (String.concat "," (List.map Nemesis.to_string ps)) )
  in
  let nseeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~doc:"Number of seeds to run.")
  in
  let seed_base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed of the range.")
  in
  let profiles =
    Arg.(value & opt profiles_conv Nemesis.all
         & info [ "profiles"; "p" ]
             ~doc:"Comma-separated nemesis profiles, or 'all'.")
  in
  let live =
    Arg.(value & flag
         & info [ "live" ]
             ~doc:"Run against the live runtime on real OCaml 5 domains \
                   instead of the simulator (horizon and grace become wall \
                   microseconds).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Shard groups (sim only). With more than one, the nemesis \
                   targets shard 0's replicas while cross-shard 2PC traffic \
                   keeps flowing through every group; invariants run against \
                   the merged global history.")
  in
  let horizon =
    Arg.(value & opt (some float) None
         & info [ "horizon" ]
             ~doc:"Client submission horizon, us (simulated, or wall with \
                   --live). Default: 60000 sim, 800000 live.")
  in
  let grace =
    Arg.(value & opt (some float) None
         & info [ "grace" ]
             ~doc:"Drain/recovery window after the horizon, us. Default: \
                   30000 sim, 400000 live.")
  in
  let threads =
    Arg.(value & opt int 2
         & info [ "threads"; "t" ]
             ~doc:"Server threads per replica (sim) / server domains (live).")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.")
  in
  let keys = Arg.(value & opt int 256 & info [ "keys" ] ~doc:"Hot keyspace size.") in
  let trace_dir =
    Arg.(value & opt (some string) None
         & info [ "trace-dir" ] ~docv:"DIR"
             ~doc:"Re-run failing seeds with tracing and write their Chrome \
                   traces into $(docv) (sim only).")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write all run reports to $(docv) as JSON.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Full report for passing runs too.")
  in
  let term =
    Term.(const run $ nseeds $ seed_base $ profiles $ live $ shards $ horizon
          $ grace $ threads $ clients $ keys $ trace_dir $ json $ verbose)
  in
  let info =
    Cmd.info "meerkat_chaos"
      ~doc:"Seeded chaos matrix over the simulated or live Meerkat deployment"
  in
  exit (Cmd.eval (Cmd.v info term))
