(* Coordinator recovery (§5.3.2): outcome selection and an end-to-end
   backup-coordinator run over real replicas. *)

module Timestamp = Mk_clock.Timestamp
module Txn = Mk_storage.Txn
module Quorum = Mk_meerkat.Quorum
module Replica = Mk_meerkat.Replica
module Recovery = Mk_meerkat.Recovery

let q3 = Quorum.create ~n:3
let q5 = Quorum.create ~n:5
let ts time = Timestamp.make ~time ~client_id:1

let rmw ~seq key =
  Txn.make
    ~tid:(Timestamp.Tid.make ~seq ~client_id:1)
    ~read_set:[ { key; wts = Timestamp.zero } ]
    ~write_set:[ { key; value = seq } ]

let record ?(v = 0) ?accept_view ~status ~from txn : int * Recovery.reply =
  (from, Recovery.Record { Replica.txn; ts = ts 1.0; status; view = v; accept_view })

let no_record from : int * Recovery.reply = (from, Recovery.No_record)

let test_needs_majority () =
  Alcotest.check_raises "one reply"
    (Invalid_argument "Recovery.choose: needs a majority of distinct replicas")
    (fun () -> ignore (Recovery.choose ~quorum:q3 ~replies:[ no_record 0 ]))

let test_priority1_final () =
  let t = rmw ~seq:1 0 in
  Alcotest.(check bool) "committed anywhere -> commit" true
    (Recovery.choose ~quorum:q3
       ~replies:[ record ~from:0 ~status:Txn.Committed t; no_record 1 ]
    = `Commit);
  Alcotest.(check bool) "aborted anywhere -> abort" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [ record ~from:0 ~status:Txn.Aborted t; record ~from:1 ~status:Txn.Validated_ok t ]
    = `Abort)

let test_priority2_accepted () =
  let t = rmw ~seq:1 0 in
  Alcotest.(check bool) "accepted commit wins over validated" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~v:1 ~accept_view:1 ~status:Txn.Accepted_commit t;
           record ~from:1 ~status:Txn.Validated_abort t;
         ]
    = `Commit);
  (* Competing accepted proposals: the higher view decides. *)
  Alcotest.(check bool) "higher accept view wins" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~v:2 ~accept_view:2 ~status:Txn.Accepted_abort t;
           record ~from:1 ~v:5 ~accept_view:5 ~status:Txn.Accepted_commit t;
         ]
    = `Commit)

let test_priority3_fast_path_possibility () =
  let t = rmw ~seq:1 0 in
  (* n=3, fast_recovery = 2: two VALIDATED-OK replies mean the fast
     path may have committed; propose commit. *)
  Alcotest.(check bool) "2 ok -> commit" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_ok t;
           record ~from:1 ~status:Txn.Validated_ok t;
         ]
    = `Commit);
  (* One OK, one no-record: a fast commit (3 matching) would have left
     ≥2 OKs in any majority; safe to abort. *)
  Alcotest.(check bool) "1 ok -> abort" true
    (Recovery.choose ~quorum:q3
       ~replies:[ record ~from:0 ~status:Txn.Validated_ok t; no_record 1 ]
    = `Abort)

let test_priority4_default_abort () =
  let t = rmw ~seq:1 0 in
  Alcotest.(check bool) "no records -> abort" true
    (Recovery.choose ~quorum:q3 ~replies:[ no_record 0; no_record 1 ] = `Abort);
  Alcotest.(check bool) "all validated-abort -> abort" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_abort t;
           record ~from:1 ~status:Txn.Validated_abort t;
         ]
    = `Abort)

let test_n5_thresholds () =
  let t = rmw ~seq:1 0 in
  (* n=5, fast_recovery = 2: a majority (3) with 2 OKs must commit. *)
  Alcotest.(check bool) "2 of 3 ok -> commit" true
    (Recovery.choose ~quorum:q5
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_ok t;
           record ~from:1 ~status:Txn.Validated_ok t;
           record ~from:2 ~status:Txn.Validated_abort t;
         ]
    = `Commit);
  Alcotest.(check bool) "1 of 3 ok -> abort" true
    (Recovery.choose ~quorum:q5
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_ok t;
           record ~from:1 ~status:Txn.Validated_abort t;
           no_record 2;
         ]
    = `Abort)

(* --- Duplicated / reordered replies (at-most-once dedup). --- *)

let test_duplicate_replies_not_double_counted () =
  let t = rmw ~seq:9 0 in
  (* n=3, fast_recovery = 2: the same replica reporting VALIDATED-OK
     twice (a duplicated or retransmitted reply) is ONE distinct OK —
     the safe choice is abort, and counting the duplicate would
     wrongly flip it to commit. *)
  Alcotest.(check bool) "dup ok counts once -> abort" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_ok t;
           record ~from:0 ~status:Txn.Validated_ok t;
           no_record 1;
         ]
    = `Abort);
  (* n=5: replica 0's duplicate must not lift one OK to the ⌈f/2⌉+1 =
     2 bound either. *)
  Alcotest.(check bool) "n=5 dup ok counts once -> abort" true
    (Recovery.choose ~quorum:q5
       ~replies:
         [
           record ~from:0 ~status:Txn.Validated_ok t;
           record ~from:0 ~status:Txn.Validated_ok t;
           no_record 1;
           no_record 2;
         ]
    = `Abort)

let test_duplicates_do_not_reach_majority () =
  (* Two replies from the same replica are one distinct replica: no
     majority, so choose must refuse rather than decide. *)
  Alcotest.check_raises "dup is not a majority"
    (Invalid_argument "Recovery.choose: needs a majority of distinct replicas")
    (fun () ->
      ignore (Recovery.choose ~quorum:q3 ~replies:[ no_record 0; no_record 0 ]))

let test_reordered_replies_same_outcome () =
  let t = rmw ~seq:10 0 in
  let replies =
    [
      record ~from:0 ~status:Txn.Validated_ok t;
      record ~from:1 ~v:3 ~accept_view:3 ~status:Txn.Accepted_abort t;
      no_record 2;
    ]
  in
  let reordered = List.rev replies in
  Alcotest.(check bool) "order irrelevant" true
    (Recovery.choose ~quorum:q3 ~replies
    = Recovery.choose ~quorum:q3 ~replies:reordered);
  (* First reply from a replica wins: a stale duplicate arriving after
     a newer reply from the same replica does not overwrite it. *)
  Alcotest.(check bool) "first reply per replica wins" true
    (Recovery.choose ~quorum:q3
       ~replies:
         [
           record ~from:0 ~v:3 ~accept_view:3 ~status:Txn.Accepted_commit t;
           record ~from:0 ~status:Txn.Validated_abort t;
           no_record 1;
         ]
    = `Commit)

(* --- End-to-end: a backup coordinator finishes an orphaned
   transaction across three real replicas. --- *)

let make_cluster () =
  let replicas = Array.init 3 (fun id -> Replica.create ~id ~quorum:q3 ~cores:2) in
  Array.iter
    (fun r ->
      for key = 0 to 7 do
        Replica.load r ~key ~value:0
      done)
    replicas;
  replicas

(* Drive the full §5.3.2 procedure: prepare (coord-change) at a
   majority, choose, accept at the new view, commit everywhere. *)
let run_backup_coordinator replicas ~core ~txn ~ts:tstamp ~view =
  let replies =
    Array.to_list replicas
    |> List.filter_map (fun r ->
           match Replica.handle_coord_change r ~core ~tid:txn.Txn.tid ~view with
           | Some (`View_ok None) -> Some (Replica.id r, Recovery.No_record)
           | Some (`View_ok (Some record)) ->
               Some (Replica.id r, Recovery.Record record)
           | Some (`Stale _) | None -> None)
  in
  let outcome = Recovery.choose ~quorum:q3 ~replies in
  let decision = match outcome with `Commit -> `Commit | `Abort -> `Abort in
  let acks =
    Array.to_list replicas
    |> List.filter_map (fun r ->
           Replica.handle_accept r ~core ~txn ~ts:tstamp ~decision ~view)
    |> List.filter (fun reply -> reply = `Accepted)
  in
  Alcotest.(check bool) "accept quorum" true (List.length acks >= Quorum.majority q3);
  Array.iter
    (fun r ->
      ignore
        (Replica.handle_commit r ~core:0 ~txn ~ts:tstamp
           ~commit:(outcome = `Commit)))
    replicas;
  outcome

let test_backup_finishes_validated_txn () =
  let replicas = make_cluster () in
  let t = rmw ~seq:1 3 in
  (* The original coordinator validated at 2 of 3 replicas, then died
     before sending any commit. *)
  ignore (Replica.handle_validate replicas.(0) ~core:0 ~txn:t ~ts:(ts 1.0));
  ignore (Replica.handle_validate replicas.(1) ~core:0 ~txn:t ~ts:(ts 1.0));
  let outcome = run_backup_coordinator replicas ~core:0 ~txn:t ~ts:(ts 1.0) ~view:1 in
  Alcotest.(check bool) "committed" true (outcome = `Commit);
  (* All replicas converge on the value. *)
  Array.iter
    (fun r ->
      match Replica.handle_get r ~key:3 with
      | Some (1, _) -> ()
      | _ -> Alcotest.fail "value missing after recovery")
    replicas

let test_backup_aborts_unseen_txn () =
  let replicas = make_cluster () in
  let t = rmw ~seq:2 4 in
  (* Only one replica ever validated it. *)
  ignore (Replica.handle_validate replicas.(2) ~core:0 ~txn:t ~ts:(ts 2.0));
  let outcome = run_backup_coordinator replicas ~core:0 ~txn:t ~ts:(ts 2.0) ~view:1 in
  Alcotest.(check bool) "aborted" true (outcome = `Abort);
  Array.iter
    (fun r ->
      match Replica.handle_get r ~key:4 with
      | Some (0, _) -> ()
      | _ -> Alcotest.fail "aborted write leaked")
    replicas;
  (* The pending marks the lone validation installed were cleaned. *)
  Alcotest.(check (pair int int)) "no residue" (0, 0)
    (Mk_storage.Vstore.pending_counts (Replica.vstore replicas.(2)))

let test_two_backups_agree () =
  (* Two successive backup coordinators (views 1 then 2) must reach
     the same outcome even though the second starts after the first
     already drove accepts. *)
  let replicas = make_cluster () in
  let t = rmw ~seq:3 5 in
  ignore (Replica.handle_validate replicas.(0) ~core:0 ~txn:t ~ts:(ts 3.0));
  ignore (Replica.handle_validate replicas.(1) ~core:0 ~txn:t ~ts:(ts 3.0));
  (* Backup 1 (view 1) runs prepare + accept but dies before commit. *)
  let replies =
    [ 0; 1 ]
    |> List.filter_map (fun i ->
           match
             Replica.handle_coord_change replicas.(i) ~core:0 ~tid:t.Txn.tid ~view:1
           with
           | Some (`View_ok (Some record)) -> Some (i, Recovery.Record record)
           | Some (`View_ok None) -> Some (i, Recovery.No_record)
           | Some (`Stale _) | None -> None)
  in
  let outcome1 = Recovery.choose ~quorum:q3 ~replies in
  ignore
    (Replica.handle_accept replicas.(0) ~core:0 ~txn:t ~ts:(ts 3.0)
       ~decision:(outcome1 :> [ `Commit | `Abort ])
       ~view:1);
  (* Backup 2 (view 2) takes over and completes. *)
  let outcome2 = run_backup_coordinator replicas ~core:0 ~txn:t ~ts:(ts 3.0) ~view:2 in
  Alcotest.(check bool) "same decision" true (outcome1 = outcome2)

let test_original_coordinator_fenced () =
  (* After a backup coordinator moved the transaction to view 1, the
     original coordinator's view-0 accept must be rejected. *)
  let replicas = make_cluster () in
  let t = rmw ~seq:4 6 in
  ignore (Replica.handle_validate replicas.(0) ~core:0 ~txn:t ~ts:(ts 4.0));
  ignore
    (Replica.handle_coord_change replicas.(0) ~core:0 ~tid:t.Txn.tid ~view:1);
  match
    Replica.handle_accept replicas.(0) ~core:0 ~txn:t ~ts:(ts 4.0) ~decision:`Commit
      ~view:0
  with
  | Some (`Stale 1) -> ()
  | _ -> Alcotest.fail "view-0 accept should be fenced"

let () =
  Alcotest.run "recovery"
    [
      ( "choose",
        [
          Alcotest.test_case "requires majority" `Quick test_needs_majority;
          Alcotest.test_case "priority 1: final" `Quick test_priority1_final;
          Alcotest.test_case "priority 2: accepted" `Quick test_priority2_accepted;
          Alcotest.test_case "priority 3: fast-path possibility" `Quick
            test_priority3_fast_path_possibility;
          Alcotest.test_case "priority 4: default abort" `Quick
            test_priority4_default_abort;
          Alcotest.test_case "n=5 thresholds" `Quick test_n5_thresholds;
          Alcotest.test_case "duplicate replies count once" `Quick
            test_duplicate_replies_not_double_counted;
          Alcotest.test_case "duplicates are not a majority" `Quick
            test_duplicates_do_not_reach_majority;
          Alcotest.test_case "reordered replies, same outcome" `Quick
            test_reordered_replies_same_outcome;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "backup commits validated txn" `Quick
            test_backup_finishes_validated_txn;
          Alcotest.test_case "backup aborts unseen txn" `Quick
            test_backup_aborts_unseen_txn;
          Alcotest.test_case "successive backups agree" `Quick test_two_backups_agree;
          Alcotest.test_case "original coordinator fenced" `Quick
            test_original_coordinator_fenced;
        ] );
    ]
