(* Unit tests for the nemesis schedule (Mk_fault.Nemesis). *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Network = Mk_net.Network
module Nemesis = Mk_fault.Nemesis
module Obs = Mk_obs.Obs

let horizon = 60_000.0

let plan ?(seed = 5) profile =
  Nemesis.plan ~seed ~profile ~horizon ~n_replicas:3 ~n_clients:8

let test_profile_names_roundtrip () =
  List.iter
    (fun p ->
      match Nemesis.of_string (Nemesis.to_string p) with
      | Some p' ->
          Alcotest.(check string) "roundtrip" (Nemesis.to_string p)
            (Nemesis.to_string p')
      | None -> Alcotest.failf "profile %s does not parse" (Nemesis.to_string p))
    Nemesis.all;
  Alcotest.(check bool) "unknown rejected" true (Nemesis.of_string "zap" = None)

let test_plan_deterministic_per_seed () =
  List.iter
    (fun profile ->
      let a = plan ~seed:11 profile and b = plan ~seed:11 profile in
      Alcotest.(check string)
        (Nemesis.to_string profile ^ " same seed, same plan")
        (Format.asprintf "%a" Nemesis.pp_plan a)
        (Format.asprintf "%a" Nemesis.pp_plan b))
    Nemesis.all;
  (* Different seeds move the combo schedule around. *)
  let a = plan ~seed:11 Nemesis.Combo and b = plan ~seed:12 Nemesis.Combo in
  Alcotest.(check bool) "seeds vary the plan" true
    (Format.asprintf "%a" Nemesis.pp_plan a
    <> Format.asprintf "%a" Nemesis.pp_plan b)

let test_calm_is_empty () =
  let p = plan Nemesis.Calm in
  Alcotest.(check int) "no windows" 0 (List.length p.Nemesis.windows);
  Alcotest.(check int) "no crashes" 0 (List.length p.Nemesis.crashes)

let test_combo_staggers_partition_and_crash () =
  (* The combo keeps f = 1: the partition heals before the same victim
     crashes, and windows sit inside the horizon. *)
  for seed = 1 to 20 do
    let p = plan ~seed Nemesis.Combo in
    let partition =
      List.find
        (fun (w : Nemesis.window) ->
          String.length w.w_name >= 9 && String.sub w.w_name 0 9 = "partition")
        p.Nemesis.windows
    in
    let crash_at, victim =
      List.find_map
        (function
          | Nemesis.Replica_crash { at; victim; _ } -> Some (at, victim)
          | Nemesis.Coordinator_crash _ -> None)
        p.Nemesis.crashes
      |> Option.get
    in
    (match partition.Nemesis.scope with
    | Nemesis.From_replica v ->
        Alcotest.(check int) "crash victim = partition victim" v victim
    | _ -> Alcotest.fail "partition scope not From_replica");
    Alcotest.(check bool) "partition heals before the crash" true
      (partition.Nemesis.until_t < crash_at);
    List.iter
      (fun (w : Nemesis.window) ->
        Alcotest.(check bool) "window within horizon" true
          (w.Nemesis.from_t >= 0.0 && w.Nemesis.until_t <= horizon))
      p.Nemesis.windows
  done

let test_install_gates_windows_by_time () =
  let engine = Engine.create ~seed:3 () in
  let net =
    Network.create engine ~rng:(Mk_util.Rng.create ~seed:4)
      ~transport:{ Transport.erpc with Transport.jitter = 0.0 }
  in
  let obs = Obs.create ~clock:(fun () -> Engine.now engine) () in
  let p =
    {
      Nemesis.windows =
        [
          {
            Nemesis.w_name = "blk";
            from_t = 100.0;
            until_t = 200.0;
            scope = Nemesis.All_links;
            rule = Network.block;
          };
        ];
      crashes = [];
    }
  in
  Nemesis.install ~engine ~net ~obs
    ~callbacks:
      {
        Nemesis.crash_replica = (fun ~victim:_ ~down_for:_ -> ());
        crash_coordinator = (fun ~client:_ ~down_for:_ -> ());
      }
    p;
  let delivered = ref 0 in
  let probe at =
    Engine.schedule_at engine at (fun () ->
        Network.send_to_client net
          ~link:(Network.Client 0, Network.Replica 0)
          (fun () -> incr delivered))
  in
  probe 50.0 (* before: passes *);
  probe 150.0 (* inside: dropped *);
  probe 250.0 (* after: passes *);
  Engine.run engine;
  Alcotest.(check int) "only the in-window send dropped" 2 !delivered;
  Alcotest.(check int) "drop counted" 1 (Network.messages_dropped net);
  (* Window open + close were mirrored into the registry. *)
  Alcotest.(check int) "fault events noted" 2 (Obs.counter_value obs "fault.windows")

let test_crash_callbacks_fire () =
  let engine = Engine.create ~seed:3 () in
  let net =
    Network.create engine ~rng:(Mk_util.Rng.create ~seed:4)
      ~transport:Transport.erpc
  in
  let obs = Obs.create ~clock:(fun () -> Engine.now engine) () in
  let crashes = ref [] in
  let p =
    {
      Nemesis.windows = [];
      crashes =
        [
          Nemesis.Replica_crash { at = 10.0; victim = 2; down_for = 5.0 };
          Nemesis.Coordinator_crash { at = 20.0; client = 4; down_for = 7.0 };
        ];
    }
  in
  Nemesis.install ~engine ~net ~obs
    ~callbacks:
      {
        Nemesis.crash_replica =
          (fun ~victim ~down_for ->
            crashes := ("r", victim, down_for, Engine.now engine) :: !crashes);
        crash_coordinator =
          (fun ~client ~down_for ->
            crashes := ("c", client, down_for, Engine.now engine) :: !crashes);
      }
    p;
  Engine.run engine;
  Alcotest.(check int) "both fired" 2 (List.length !crashes);
  Alcotest.(check bool) "replica crash as planned" true
    (List.mem ("r", 2, 5.0, 10.0) !crashes);
  Alcotest.(check bool) "coordinator crash as planned" true
    (List.mem ("c", 4, 7.0, 20.0) !crashes);
  (* A windowless plan leaves the network's fault hook untouched. *)
  Alcotest.(check bool) "no fault_fn installed" true
    (Network.link_faults net = None)

let () =
  Alcotest.run "fault"
    [
      ( "nemesis",
        [
          Alcotest.test_case "profile names roundtrip" `Quick
            test_profile_names_roundtrip;
          Alcotest.test_case "plans are seed-deterministic" `Quick
            test_plan_deterministic_per_seed;
          Alcotest.test_case "calm is empty" `Quick test_calm_is_empty;
          Alcotest.test_case "combo staggering keeps f=1" `Quick
            test_combo_staggers_partition_and_crash;
          Alcotest.test_case "windows open and close on time" `Quick
            test_install_gates_windows_by_time;
          Alcotest.test_case "crash callbacks fire" `Quick test_crash_callbacks_fire;
        ] );
    ]
