(* Chaos tests: Jepsen-style nemesis runs through Mk_harness.Chaos.

   Every fault here — duplicates, delay spikes, asymmetric partitions,
   replica crashes, mid-protocol coordinator crashes — is injected by
   the seeded nemesis, and every recovery is driven by the in-system
   failure detectors. The test never calls an epoch change or view
   change itself; it only checks the end-of-run invariants. *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Network = Mk_net.Network
module Intf = Mk_model.System_intf
module S = Mk_meerkat.Sim_system
module Chaos = Mk_harness.Chaos
module Shard_chaos = Mk_systems.Shard_chaos
module Txn = Mk_storage.Txn
module Nemesis = Mk_fault.Nemesis
module Obs = Mk_obs.Obs
module Rng = Mk_util.Rng

let failf_report fmt r =
  Alcotest.failf "%s:@.%s" fmt (Format.asprintf "%a" Chaos.pp_report r)

let check_passed r =
  if not (Chaos.passed r) then failf_report "invariant failed" r

(* --- The acceptance run: the combo profile (duplication + reordering
   + asymmetric partition + replica crash + coordinator crashes) on
   eight seeds, all recovering detector-only. --- *)

let test_combo_matrix () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let reports =
    Chaos.matrix ~seeds ~profiles:[ Nemesis.Combo ] ~cfg:Chaos.default_cfg
  in
  List.iter
    (fun (r : Chaos.report) ->
      check_passed r;
      (* The nemesis crashed a replica, so the detectors must have
         recovered it through at least one epoch change. *)
      if r.Chaos.epoch_changes < 1 then
        failf_report "no detector-driven epoch change" r;
      if r.Chaos.committed_acks < 1000 then failf_report "too little progress" r;
      if r.Chaos.duplicated = 0 then failf_report "nemesis injected no dups" r;
      if r.Chaos.fault_events = 0 then failf_report "no fault windows opened" r)
    reports

(* --- Crash-reboot: the same victim fail-stops twice; each reboot
   replays its WAL + snapshot images and rejoins via a detector-driven
   §5.3.1 epoch change. The sixth (durable) invariant re-runs the
   exact Recover path over every replica's in-memory device and
   checks both final completeness and the commits that were durable
   at each crash instant. --- *)

let test_crash_reboot_matrix () =
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let reports =
    Chaos.matrix ~seeds ~profiles:[ Nemesis.Crash_reboot ]
      ~cfg:Chaos.default_cfg
  in
  List.iter
    (fun (r : Chaos.report) ->
      check_passed r;
      if r.Chaos.epoch_changes < 2 then
        failf_report "both reboots should merge back via epoch changes" r;
      (* The WAL devices saw real traffic and the durable check
         actually replayed it. *)
      if Obs.counter_value r.Chaos.obs "wal.appends" = 0 then
        failf_report "no WAL appends recorded" r;
      if Obs.counter_value r.Chaos.obs "wal.replayed" = 0 then
        failf_report "durable check replayed nothing" r;
      if Obs.counter_value r.Chaos.obs "wal.decode_errors" <> 0 then
        failf_report "clean devices decoded with errors" r)
    reports

(* --- Individual profiles, one seed each, as fast regressions. --- *)

let test_partition_profile () =
  let r = Chaos.run { Chaos.default_cfg with profile = Nemesis.Partition } in
  check_passed r;
  if r.Chaos.epoch_changes < 1 then
    failf_report "partition should trigger an epoch change" r

let test_crash_coordinator_profile () =
  let r =
    Chaos.run { Chaos.default_cfg with profile = Nemesis.Crash_coordinator }
  in
  check_passed r;
  (* A mid-protocol coordinator crash leaves VALIDATED records behind;
     the stuck-record detector must finish them via view changes. *)
  if r.Chaos.view_changes < 1 then
    failf_report "coordinator crash should trigger a view change" r

(* --- Satellite: dropped final acks never wedge the closed loop.
   Lossy transport under the calm profile: retransmissions must get
   every submission acked exactly once and leave no stuck records. --- *)

let test_dropped_acks_bounded () =
  let r =
    Chaos.run
      {
        Chaos.default_cfg with
        profile = Nemesis.Calm;
        transport = Transport.with_drop Transport.erpc 0.08;
      }
  in
  check_passed r;
  if r.Chaos.dropped = 0 then failf_report "transport dropped nothing" r

(* --- Sharded chaos (DESIGN.md §13): crash one shard's replica while
   the other shard keeps committing. Two replicated groups on one
   engine, most transactions cross-shard via the client-side 2PC; the
   nemesis fail-stops replicas of shard 0 only, the detectors recover
   them, and all six invariants must hold with the serializability and
   agreement verdicts computed against the *merged* cross-shard
   history. --- *)

let spans_both_shards ((txn : Txn.t), _ts) =
  (* Mod placement over 2 shards: a global key's shard is key mod 2. *)
  let shard_of k = k mod 2 in
  let shards_touched = Array.make 2 false in
  Array.iter
    (fun (r : Txn.read_entry) -> shards_touched.(shard_of r.key) <- true)
    txn.Txn.read_set;
  Array.iter
    (fun (w : Txn.write_entry) -> shards_touched.(shard_of w.key) <- true)
    txn.Txn.write_set;
  shards_touched.(0) && shards_touched.(1)

let test_shard_crash_matrix () =
  let seeds = [ 1; 2; 3; 4 ] in
  let reports =
    Shard_chaos.matrix ~shards:2 ~seeds ~profiles:[ Nemesis.Crash_replica ]
      ~cfg:Chaos.default_cfg
  in
  List.iter
    (fun (r : Chaos.report) ->
      check_passed r;
      if r.Chaos.epoch_changes < 1 then
        failf_report "shard 0's crashed replica should rejoin via epoch change"
          r;
      if r.Chaos.fault_events = 0 then failf_report "no fault windows opened" r;
      if r.Chaos.committed_acks < 100 then failf_report "too little progress" r;
      (* The run must actually exercise the cross-shard 2PC: committed
         transactions spanning both groups in the merged history. *)
      let cross = List.filter spans_both_shards r.Chaos.committed in
      if List.length cross < 50 then
        failf_report "expected plenty of committed cross-shard transactions" r;
      (* Both groups armed durable devices and the per-shard durable
         verdict replayed them. *)
      if Obs.counter_value r.Chaos.obs "wal.replayed" = 0 then
        failf_report "durable check replayed nothing" r)
    reports

(* --- Golden equivalence for the detector extraction: the refactored
   simulator (detection logic in Mk_meerkat.Detector, Sim_system only
   driving it) makes bit-identical epoch/view-change decisions — and
   with them identical commit/abort counts — to the pre-extraction
   code. The tuples below were captured from the pre-refactor tree at
   Chaos.default_cfg over the three recovery-heavy profiles; same
   methodology as the 24-run protocol-extraction suite in test_live. --- *)

let detector_golden =
  [
    ( Nemesis.Crash_replica,
      [
        (7239, 428, 1, 0);
        (7128, 421, 1, 0);
        (7109, 419, 1, 0);
        (7183, 432, 1, 0);
        (7095, 444, 1, 0);
        (7125, 438, 1, 0);
        (7095, 411, 1, 0);
        (7159, 431, 1, 0);
      ] );
    ( Nemesis.Crash_coordinator,
      [
        (7848, 462, 0, 1);
        (7769, 469, 0, 1);
        (7842, 466, 0, 1);
        (7864, 451, 0, 1);
        (7812, 497, 0, 1);
        (7942, 470, 0, 1);
        (7875, 452, 0, 1);
        (7855, 481, 0, 1);
      ] );
    ( Nemesis.Combo,
      [
        (4771, 286, 2, 0);
        (5080, 297, 2, 1);
        (4554, 271, 2, 2);
        (5134, 307, 2, 2);
        (5155, 330, 2, 1);
        (4939, 298, 2, 1);
        (5099, 287, 2, 2);
        (5357, 328, 2, 2);
      ] );
  ]

let test_detector_extraction_golden () =
  List.iter
    (fun (profile, expected) ->
      List.iteri
        (fun i (commits, aborts, ec, vc) ->
          let seed = i + 1 in
          let r = Chaos.run { Chaos.default_cfg with seed; profile } in
          check_passed r;
          Alcotest.(check (list int))
            (Printf.sprintf "%s seed %d unchanged by the extraction"
               (Nemesis.to_string profile) seed)
            [ commits; aborts; ec; vc ]
            [
              r.Chaos.committed_acks;
              r.Chaos.aborted_acks;
              r.Chaos.epoch_changes;
              r.Chaos.view_changes;
            ])
        expected)
    detector_golden

(* --- Acceptance: duplicate delivery at probability 1.0 (no drops)
   changes no commit/abort outcome vs a fault-free run on the same
   seed. Duplicates are absorbed by replica- and coordinator-side
   dedup at zero CPU cost, so the two runs are the same run. The
   jitter-free transport makes the fault-free network consume no RNG
   draws, keeping the streams aligned. --- *)

let run_outcomes ~dup seed =
  let cfg =
    {
      S.default_config with
      threads = 2;
      n_clients = 4;
      keys = 128;
      transport = { Transport.erpc with Transport.jitter = 0.0 };
      seed;
    }
  in
  let engine = Engine.create ~seed () in
  let obs = Obs.create ~clock:(fun () -> Engine.now engine) () in
  let sys = S.create ~obs engine cfg in
  if dup then
    Nemesis.install ~engine ~net:(S.network sys) ~obs
      ~callbacks:
        {
          Nemesis.crash_replica = (fun ~victim:_ ~down_for:_ -> ());
          crash_coordinator = (fun ~client:_ ~down_for:_ -> ());
        }
      (Nemesis.dup_all ~prob:1.0);
  let rng = Rng.create ~seed:(seed lxor 0x64757031) in
  let horizon = 20_000.0 in
  let outcomes = ref [] in
  let rec client c =
    if Engine.now engine < horizon then begin
      let key1 = Rng.int rng cfg.S.keys in
      let key2 =
        let k = Rng.int rng cfg.S.keys in
        if k = key1 then (k + 1) mod cfg.S.keys else k
      in
      S.submit sys ~client:c
        {
          Intf.reads = [| key1 |];
          writes = [| (key1, Rng.int rng 1000); (key2, c) |];
        }
        ~on_done:(fun ~committed ->
          outcomes := (c, committed, Engine.now engine) :: !outcomes;
          client c)
    end
  in
  for c = 0 to cfg.S.n_clients - 1 do
    client c
  done;
  Engine.run engine;
  (List.rev !outcomes, Network.messages_duplicated (S.network sys))

let test_dup_one_same_outcomes () =
  let seed = 42 in
  let base, base_dups = run_outcomes ~dup:false seed in
  let dup, dup_dups = run_outcomes ~dup:true seed in
  Alcotest.(check int) "fault-free run has no dups" 0 base_dups;
  Alcotest.(check bool) "dup run duplicated every message" true (dup_dups > 0);
  Alcotest.(check int) "same number of outcomes" (List.length base)
    (List.length dup);
  List.iter2
    (fun (c, ok, t) (c', ok', t') ->
      Alcotest.(check int) "same client" c c';
      Alcotest.(check bool) "same commit/abort outcome" ok ok';
      Alcotest.(check (float 0.0)) "same ack time" t t')
    base dup

let () =
  (* Chaos runs double as lock-discipline stress: the dynamic checker
     is armed for the whole matrix. *)
  Mk_check.Owner.enable ();
  Alcotest.run "chaos"
    [
      ( "nemesis runs",
        [
          Alcotest.test_case "combo matrix, 8 seeds" `Quick test_combo_matrix;
          Alcotest.test_case "crash-reboot matrix, 8 seeds" `Quick
            test_crash_reboot_matrix;
          Alcotest.test_case "asymmetric partition" `Quick test_partition_profile;
          Alcotest.test_case "coordinator crash" `Quick
            test_crash_coordinator_profile;
          Alcotest.test_case "dropped acks stay bounded" `Quick
            test_dropped_acks_bounded;
          Alcotest.test_case "sharded: shard-0 crash, 4 seeds" `Quick
            test_shard_crash_matrix;
          Alcotest.test_case "detector extraction golden, 24 runs" `Quick
            test_detector_extraction_golden;
          Alcotest.test_case "dup 1.0 changes no outcome" `Quick
            test_dup_one_same_outcomes;
        ] );
    ]
