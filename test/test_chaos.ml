(* Chaos test: a long run with message loss, repeated replica crashes
   and message-driven epoch-change recoveries, while closed-loop
   clients keep submitting. At the end, every acknowledged commit must
   form a serializable history and all live replicas must agree.

   This is the closest thing to a Jepsen run the simulator offers: the
   fault schedule is random but seeded, so failures interleave with the
   protocol differently on every seed yet reproducibly. *)

module Engine = Mk_sim.Engine
module Transport = Mk_net.Transport
module Intf = Mk_model.System_intf
module Txn = Mk_storage.Txn
module S = Mk_meerkat.Sim_system
module Replica = Mk_meerkat.Replica
module Checker = Mk_harness.Checker
module Rng = Mk_util.Rng

let run_chaos ?(keys = 64) ~seed ~drop ~crashes () =
  let cfg =
    {
      S.default_config with
      threads = 2;
      n_clients = 8;
      keys;
      transport = Transport.with_drop Transport.erpc drop;
      seed;
    }
  in
  let engine = Engine.create ~seed () in
  let sys = S.create engine cfg in
  let rng = Rng.create ~seed:(seed * 31) in
  let committed_acks = ref 0 and aborted_acks = ref 0 in
  let horizon = 60_000.0 in
  (* Closed-loop clients on a small hot keyspace. *)
  let rec client c =
    let key1 = Rng.int rng keys and key2 = Rng.int rng keys in
    S.submit sys ~client:c
      { Intf.reads = [| key1 |]; writes = [| (key1, Rng.int rng 1000); (key2, c) |] }
      ~on_done:(fun ~committed ->
        if committed then incr committed_acks else incr aborted_acks;
        if Engine.now engine < horizon then client c)
  in
  for c = 0 to cfg.S.n_clients - 1 do
    client c
  done;
  (* Fault schedule: [crashes] crash→recover cycles at random times,
     never taking down more than one replica at once (f = 1). *)
  let slot = horizon /. float_of_int (crashes + 1) in
  for i = 0 to crashes - 1 do
    let at = (float_of_int (i + 1) *. slot) +. Rng.float rng (slot /. 4.0) in
    let victim = Rng.int rng 3 in
    Engine.schedule_at engine at (fun () ->
        if Array.for_all (fun r -> not (Replica.is_crashed r)) (S.replicas sys) then begin
          S.crash_replica sys victim;
          (* Recover through the message-driven protocol shortly after. *)
          Engine.schedule engine ~delay:(2_000.0 +. Rng.float rng 2_000.0) (fun () ->
              S.trigger_epoch_change sys ~recovering:[ victim ]
                ~on_complete:(fun ~success:_ -> ()))
        end)
  done;
  Engine.run ~until:(horizon +. 30_000.0) ~max_events:40_000_000 engine;
  (* Collect the union of committed records across replicas. *)
  let seen = Hashtbl.create 1024 in
  let committed = ref [] in
  Array.iter
    (fun r ->
      if not (Replica.is_crashed r) then
        List.iter
          (fun (_, (e : Mk_storage.Trecord.entry)) ->
            if e.status = Txn.Committed && not (Hashtbl.mem seen e.txn.Txn.tid) then begin
              Hashtbl.add seen e.txn.Txn.tid ();
              committed := (e.txn, e.ts) :: !committed
            end)
          (Mk_storage.Trecord.entries (Replica.trecord r)))
    (S.replicas sys);
  (sys, !committed_acks, !aborted_acks, !committed)

let check_serializable committed =
  match Checker.check committed with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "serializability violated: %s"
        (Format.asprintf "%a" Checker.pp_violation v)

let test_chaos_drops_only () =
  (* A roomy keyspace: this case isolates loss tolerance, not
     contention. *)
  let _, acks, _, committed = run_chaos ~keys:1024 ~seed:101 ~drop:0.1 ~crashes:0 () in
  Alcotest.(check bool) "progress" true (acks > 500);
  check_serializable committed

let test_chaos_crashes_only () =
  let sys, acks, _, committed = run_chaos ~keys:1024 ~seed:202 ~drop:0.0 ~crashes:3 () in
  Alcotest.(check bool) "progress" true (acks > 500);
  check_serializable committed;
  (* After the final recovery all replicas are up and share the same
     epoch-era state for every key they agree on. *)
  Array.iter
    (fun r -> Alcotest.(check bool) "replica up" true (Replica.is_available r))
    (S.replicas sys)

let test_chaos_everything () =
  let _, acks, aborts, committed = run_chaos ~seed:303 ~drop:0.08 ~crashes:3 () in
  Alcotest.(check bool) "progress" true (acks > 100);
  (* Contention on 64 hot keys guarantees real aborts too. *)
  Alcotest.(check bool) "aborts occurred" true (aborts > 0);
  check_serializable committed

let test_chaos_seeds_vary_but_all_safe () =
  List.iter
    (fun seed ->
      let _, acks, _, committed = run_chaos ~keys:256 ~seed ~drop:0.05 ~crashes:2 () in
      Alcotest.(check bool) (Printf.sprintf "seed %d progress" seed) true (acks > 200);
      check_serializable committed)
    [ 7; 77; 777 ]

let () =
  (* Chaos runs double as lock-discipline stress: the dynamic checker
     is armed for the whole matrix. *)
  Mk_check.Owner.enable ();
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "message loss only" `Quick test_chaos_drops_only;
          Alcotest.test_case "crash/recover cycles" `Quick test_chaos_crashes_only;
          Alcotest.test_case "losses + crashes + contention" `Quick
            test_chaos_everything;
          Alcotest.test_case "multiple seeds" `Slow test_chaos_seeds_vary_but_all_safe;
        ] );
    ]
