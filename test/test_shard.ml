(* Unit tests for the transport-agnostic lib/shard subsystem
   (DESIGN.md §13): router placement round-trips, the Xcoord 2PC
   action machine, and the merged-history checker adapter — including
   the cross-shard anomaly fixtures. *)

module Timestamp = Mk_clock.Timestamp
module Tid = Timestamp.Tid
module Txn = Mk_storage.Txn
module Router = Mk_shard.Router
module Xcoord = Mk_shard.Xcoord
module History = Mk_shard.History
module Checker = Mk_harness.Checker

let tid n = Tid.make ~seq:n ~client_id:0
let ts time = Timestamp.make ~time ~client_id:0

let txn ?(tid = tid 0) ~reads ~writes () =
  Txn.make ~tid
    ~read_set:(List.map (fun (key, wts) -> { Txn.key; wts }) reads)
    ~write_set:(List.map (fun (key, value) -> { Txn.key; value }) writes)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_roundtrip () =
  List.iter
    (fun policy ->
      List.iter
        (fun (shards, keys) ->
          let r = Router.create ~policy ~shards ~keys () in
          (* Every global key round-trips through (shard, local). *)
          for k = 0 to keys - 1 do
            let s = Router.shard_of_key r k in
            Alcotest.(check bool)
              (Printf.sprintf "%s s%d k%d shard in range"
                 (Router.policy_to_string policy) shards k)
              true
              (s >= 0 && s < shards);
            let local = Router.local_key r k in
            Alcotest.(check bool)
              (Printf.sprintf "local key %d below local_keys" k)
              true
              (local >= 0 && local < Router.local_keys r ~shard:s);
            Alcotest.(check int)
              (Printf.sprintf "roundtrip key %d" k)
              k
              (Router.global_key r ~shard:s local)
          done;
          (* The local keyspaces partition the global one. *)
          let total = ref 0 in
          for s = 0 to shards - 1 do
            total := !total + Router.local_keys r ~shard:s
          done;
          Alcotest.(check int) "local keyspaces sum to keys" keys !total)
        [ (1, 10); (2, 64); (3, 64); (4, 7); (8, 5); (5, 100) ])
    [ Router.Mod; Router.Range ]

let test_router_total () =
  (* Hostile keys must map into range, never raise. *)
  List.iter
    (fun policy ->
      let r = Router.create ~policy ~shards:3 ~keys:9 () in
      List.iter
        (fun k ->
          let s = Router.shard_of_key r k in
          Alcotest.(check bool)
            (Printf.sprintf "key %d in range" k)
            true
            (s >= 0 && s < 3))
        [ -1; -1000; min_int; 9; 10_000; max_int ])
    [ Router.Mod; Router.Range ]

let test_router_split_merge () =
  let r = Router.create ~shards:3 ~keys:30 () in
  let t =
    txn
      ~reads:[ (0, ts 1.0); (4, ts 2.0); (8, ts 3.0) ]
      ~writes:[ (0, 10); (5, 11) ]
      ()
  in
  let subs = Router.split r t in
  Alcotest.(check (list int)) "involved shards" [ 0; 1; 2 ]
    (List.map fst subs);
  Alcotest.(check (list int)) "involved agrees with split"
    (List.map fst subs) (Router.involved r t);
  (* Shard 1 owns global keys 4 (read) and nothing written; shard 2
     owns 5 (write) and 8 (read). *)
  let sub1 = List.assoc 1 subs and sub2 = List.assoc 2 subs in
  Alcotest.(check int) "shard 1 reads" 1 (Array.length sub1.Txn.read_set);
  Alcotest.(check int) "shard 1 writes" 0 (Array.length sub1.Txn.write_set);
  Alcotest.(check int) "shard 2 reads" 1 (Array.length sub2.Txn.read_set);
  Alcotest.(check int) "shard 2 writes" 1 (Array.length sub2.Txn.write_set);
  (* Local keys round-trip back to the original global sets. *)
  let reads, writes = Router.merge_sub r subs in
  let sort_reads l =
    List.sort compare (List.map (fun (e : Txn.read_entry) -> e.key) l)
  in
  let sort_writes l =
    List.sort compare (List.map (fun (w : Txn.write_entry) -> (w.key, w.value)) l)
  in
  Alcotest.(check (list int)) "read keys restored" [ 0; 4; 8 ] (sort_reads reads);
  Alcotest.(check (list (pair int int))) "write set restored"
    [ (0, 10); (5, 11) ]
    (sort_writes writes)

let test_router_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Router.create: shards must be >= 1") (fun () ->
      ignore (Router.create ~shards:0 ~keys:4 ()));
  Alcotest.check_raises "zero keys"
    (Invalid_argument "Router.create: keys must be >= 1") (fun () ->
      ignore (Router.create ~shards:2 ~keys:0 ()))

(* ------------------------------------------------------------------ *)
(* Xcoord                                                              *)
(* ------------------------------------------------------------------ *)

let router2 = Router.create ~shards:2 ~keys:16 ()

let read_actions actions =
  List.filter_map
    (function Xcoord.Read { shard; key; index } -> Some (shard, key, index) | _ -> None)
    actions

let test_xcoord_happy_path () =
  (* Read keys 0 (shard 0) and 1 (shard 1), write both: full 2PC. *)
  let m, actions = Xcoord.start ~router:router2 ~reads:[| 0; 1 |] in
  Alcotest.(check (list (triple int int int))) "reads issued"
    [ (0, 0, 0); (1, 0, 1) ]
    (read_actions actions);
  Alcotest.(check (list pass)) "no stamp yet" []
    (List.filter (function Xcoord.Need_stamp -> true | _ -> false) actions);
  let a1 = Xcoord.handle m (Xcoord.Read_done { index = 0; value = 7; wts = ts 1.0 }) in
  Alcotest.(check int) "first read: no actions" 0 (List.length a1);
  let a2 = Xcoord.handle m (Xcoord.Read_done { index = 1; value = 9; wts = ts 2.0 }) in
  (match a2 with
  | [ Xcoord.Need_stamp ] -> ()
  | _ -> Alcotest.fail "expected Need_stamp after last read");
  Alcotest.(check (array int)) "values in request order" [| 7; 9 |]
    (Xcoord.values m);
  let a3 =
    Xcoord.handle m
      (Xcoord.Stamped { tid = tid 1; ts = ts 5.0; writes = [| (0, 70); (1, 90) |] })
  in
  let prepares =
    List.filter_map
      (function Xcoord.Prepare { shard; txn; _ } -> Some (shard, txn) | _ -> None)
      a3
  in
  Alcotest.(check (list int)) "prepares in both shards" [ 0; 1 ]
    (List.map fst prepares);
  List.iter
    (fun (_, (sub : Txn.t)) ->
      Alcotest.(check int) "sub carries 1 read" 1 (Array.length sub.Txn.read_set);
      Alcotest.(check int) "sub carries 1 write" 1 (Array.length sub.Txn.write_set))
    prepares;
  let a4 = Xcoord.handle m (Xcoord.Prepared { shard = 0; commit = true }) in
  Alcotest.(check int) "one vote: no decision" 0 (List.length a4);
  Alcotest.(check bool) "not decided yet" false (Xcoord.decided m);
  let a5 = Xcoord.handle m (Xcoord.Prepared { shard = 1; commit = true }) in
  let finalizes =
    List.filter_map
      (function Xcoord.Finalize { shard; commit; _ } -> Some (shard, commit) | _ -> None)
      a5
  in
  Alcotest.(check (list (pair int bool))) "finalize commit everywhere"
    [ (0, true); (1, true) ]
    finalizes;
  (match List.rev a5 with
  | Xcoord.Done { committed = true; involved = [ 0; 1 ] } :: _ -> ()
  | _ -> Alcotest.fail "expected Done committed in both shards");
  Alcotest.(check bool) "decided" true (Xcoord.decided m);
  Alcotest.(check bool) "committed" true (Xcoord.committed m)

let test_xcoord_abort_conjunction () =
  (* One shard voting abort forces the global abort everywhere. *)
  let m, _ = Xcoord.start ~router:router2 ~reads:[||] in
  let a =
    Xcoord.handle m
      (Xcoord.Stamped { tid = tid 2; ts = ts 1.0; writes = [| (0, 1); (1, 2) |] })
  in
  Alcotest.(check int) "two prepares" 2
    (List.length (List.filter (function Xcoord.Prepare _ -> true | _ -> false) a));
  ignore (Xcoord.handle m (Xcoord.Prepared { shard = 0; commit = true }));
  let last = Xcoord.handle m (Xcoord.Prepared { shard = 1; commit = false }) in
  let finalizes =
    List.filter_map
      (function Xcoord.Finalize { shard; commit; _ } -> Some (shard, commit) | _ -> None)
      last
  in
  Alcotest.(check (list (pair int bool))) "finalize abort everywhere"
    [ (0, false); (1, false) ]
    finalizes;
  Alcotest.(check bool) "not committed" false (Xcoord.committed m)

let test_xcoord_single_shard_and_empty () =
  (* Single-shard write set: exactly one Prepare/Finalize pair. *)
  let m, a0 = Xcoord.start ~router:router2 ~reads:[||] in
  (match a0 with
  | [ Xcoord.Need_stamp ] -> ()
  | _ -> Alcotest.fail "no reads: stamp immediately");
  let a =
    Xcoord.handle m
      (Xcoord.Stamped { tid = tid 3; ts = ts 1.0; writes = [| (2, 5) |] })
  in
  (match a with
  | [ Xcoord.Prepare { shard = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single shard-0 prepare");
  let last = Xcoord.handle m (Xcoord.Prepared { shard = 0; commit = true }) in
  Alcotest.(check int) "finalize + done" 2 (List.length last);
  (* Empty transaction: trivially committed, touching nothing. *)
  let m2, _ = Xcoord.start ~router:router2 ~reads:[||] in
  let a2 =
    Xcoord.handle m2 (Xcoord.Stamped { tid = tid 4; ts = ts 1.0; writes = [||] })
  in
  (match a2 with
  | [ Xcoord.Done { committed = true; involved = [] } ] -> ()
  | _ -> Alcotest.fail "empty txn must be Done immediately")

let test_xcoord_duplicates_ignored () =
  let m, _ = Xcoord.start ~router:router2 ~reads:[| 0 |] in
  ignore (Xcoord.handle m (Xcoord.Read_done { index = 0; value = 1; wts = ts 1.0 }));
  (* A duplicate read answer must not advance anything. *)
  Alcotest.(check int) "dup read ignored" 0
    (List.length
       (Xcoord.handle m (Xcoord.Read_done { index = 0; value = 2; wts = ts 2.0 })));
  ignore
    (Xcoord.handle m
       (Xcoord.Stamped { tid = tid 5; ts = ts 3.0; writes = [| (0, 1); (1, 1) |] }));
  ignore (Xcoord.handle m (Xcoord.Prepared { shard = 0; commit = true }));
  (* Same shard voting twice must not complete the conjunction. *)
  Alcotest.(check int) "dup vote ignored" 0
    (List.length (Xcoord.handle m (Xcoord.Prepared { shard = 0; commit = true })));
  (* A shard that is not involved cannot vote at all. *)
  Alcotest.(check int) "stray shard ignored" 0
    (List.length (Xcoord.handle m (Xcoord.Prepared { shard = 7; commit = true })));
  Alcotest.(check bool) "still undecided" false (Xcoord.decided m);
  ignore (Xcoord.handle m (Xcoord.Prepared { shard = 1; commit = true }));
  Alcotest.(check bool) "decided after real second vote" true (Xcoord.decided m);
  (* Post-decision events are inert. *)
  Alcotest.(check int) "late vote ignored" 0
    (List.length (Xcoord.handle m (Xcoord.Prepared { shard = 1; commit = false })))

(* ------------------------------------------------------------------ *)
(* History merge + checker adapter                                     *)
(* ------------------------------------------------------------------ *)

let test_history_merge_roundtrip () =
  let r = Router.create ~shards:2 ~keys:8 () in
  (* A cross-shard transaction split by the router, committed in both
     shards, must merge back into the original global transaction. *)
  let global =
    txn ~tid:(tid 1)
      ~reads:[ (0, ts 0.0); (1, ts 0.0) ]
      ~writes:[ (0, 5); (1, 6) ]
      ()
  in
  let subs = Router.split r global in
  let per_shard =
    List.map (fun (s, sub) -> (s, [ (sub, ts 1.0) ])) subs
  in
  match History.merge ~router:r per_shard with
  | [ (merged, mts) ] ->
      Alcotest.(check bool) "tid restored" true (Tid.equal merged.Txn.tid (tid 1));
      Alcotest.(check bool) "ts kept" true (Timestamp.equal mts (ts 1.0));
      Alcotest.(check int) "reads restored" 2 (Array.length merged.Txn.read_set);
      Alcotest.(check int) "writes restored" 2 (Array.length merged.Txn.write_set)
  | l -> Alcotest.failf "expected one merged txn, got %d" (List.length l)

let test_history_merge_serializable () =
  (* A clean cross-shard execution merges into a history the checker
     accepts. *)
  let r = Router.create ~shards:2 ~keys:4 () in
  let init = txn ~tid:(tid 0) ~reads:[] ~writes:[ (0, 1); (1, 1) ] () in
  let t1 =
    txn ~tid:(tid 1)
      ~reads:[ (0, ts 1.0); (1, ts 1.0) ]
      ~writes:[ (0, 2); (1, 2) ]
      ()
  in
  let per_shard =
    [
      (0, [ (List.assoc 0 (Router.split r init), ts 1.0);
            (List.assoc 0 (Router.split r t1), ts 2.0) ]);
      (1, [ (List.assoc 1 (Router.split r init), ts 1.0);
            (List.assoc 1 (Router.split r t1), ts 2.0) ]);
    ]
  in
  match Checker.check (History.merge ~router:r per_shard) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected violation: %a" Checker.pp_violation v

let test_cross_shard_write_skew_rejected () =
  (* The classic write skew, split across shards: key 0 on shard 0,
     key 1 on shard 1. A reads both at the initial version and writes
     key 0; B reads both at the initial version and writes key 1.
     Serial execution cannot produce both reads — the merged history
     must be rejected. *)
  let r = Router.create ~shards:2 ~keys:4 () in
  let init = txn ~tid:(tid 0) ~reads:[] ~writes:[ (0, 0); (1, 0) ] () in
  let a =
    txn ~tid:(tid 1) ~reads:[ (0, ts 1.0); (1, ts 1.0) ] ~writes:[ (0, 1) ] ()
  in
  let b =
    txn ~tid:(tid 2) ~reads:[ (0, ts 1.0); (1, ts 1.0) ] ~writes:[ (1, 1) ] ()
  in
  let sub s t = List.assoc_opt s (Router.split r t) in
  let hist s l =
    List.filter_map (fun (t, ts) -> Option.map (fun x -> (x, ts)) (sub s t)) l
  in
  let commits = [ (init, ts 1.0); (a, ts 2.0); (b, ts 3.0) ] in
  let merged =
    History.merge ~router:r [ (0, hist 0 commits); (1, hist 1 commits) ]
  in
  match Checker.check merged with
  | Ok () -> Alcotest.fail "cross-shard write skew accepted"
  | Error v ->
      (* B (commit ts 3) read key 0 at the initial version although A
         (commit ts 2) had overwritten it. *)
      Alcotest.(check bool) "violating reader is B" true
        (Tid.equal v.Checker.tid (tid 2))

let test_per_shard_serializable_globally_broken () =
  (* Regression fixture: a 2PC implementation bug that stamps the two
     halves of one cross-shard transaction with different timestamps.
     Each shard's own history replays serializably, but the union is
     not a history of atomic transactions — the adapter must refuse to
     merge it rather than wave it through. *)
  let r = Router.create ~shards:2 ~keys:4 () in
  let half0 = txn ~tid:(tid 9) ~reads:[] ~writes:[ (0, 7) ] () in
  let half1 = txn ~tid:(tid 9) ~reads:[] ~writes:[ (1, 7) ] () in
  let h0 = [ (List.assoc 0 (Router.split r half0), ts 1.0) ] in
  let h1 = [ (List.assoc 1 (Router.split r half1), ts 2.0) ] in
  (* Per-shard projections pass in isolation... *)
  (match (Checker.check h0, Checker.check h1) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "per-shard projections should be serializable");
  (* ...but the union is not mergeable into atomic transactions. *)
  match History.merge ~router:r [ (0, h0); (1, h1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "split-timestamp transaction must be refused"

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "roundtrip both policies" `Quick test_router_roundtrip;
          Alcotest.test_case "total on hostile keys" `Quick test_router_total;
          Alcotest.test_case "split and merge_sub" `Quick test_router_split_merge;
          Alcotest.test_case "config validation" `Quick test_router_validation;
        ] );
      ( "xcoord",
        [
          Alcotest.test_case "happy path" `Quick test_xcoord_happy_path;
          Alcotest.test_case "abort conjunction" `Quick test_xcoord_abort_conjunction;
          Alcotest.test_case "single shard and empty" `Quick
            test_xcoord_single_shard_and_empty;
          Alcotest.test_case "duplicates ignored" `Quick
            test_xcoord_duplicates_ignored;
        ] );
      ( "history",
        [
          Alcotest.test_case "merge roundtrip" `Quick test_history_merge_roundtrip;
          Alcotest.test_case "merge serializable" `Quick
            test_history_merge_serializable;
          Alcotest.test_case "cross-shard write skew rejected" `Quick
            test_cross_shard_write_skew_rejected;
          Alcotest.test_case "per-shard ok, globally broken" `Quick
            test_per_shard_serializable_globally_broken;
        ] );
    ]
