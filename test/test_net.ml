(* Unit tests for the transport cost model and message delivery. *)

module Engine = Mk_sim.Engine
module Core = Mk_sim.Core
module Transport = Mk_net.Transport
module Network = Mk_net.Network

let make_net ?(transport = Transport.erpc) () =
  let engine = Engine.create ~seed:2 () in
  let rng = Mk_util.Rng.create ~seed:3 in
  (engine, Network.create engine ~rng ~transport)

let test_transport_presets () =
  Alcotest.(check bool) "erpc cheaper rx" true
    (Transport.erpc.Transport.rx_cpu < Transport.udp.Transport.rx_cpu);
  Alcotest.(check bool) "erpc cheaper tx" true
    (Transport.erpc.Transport.tx_cpu < Transport.udp.Transport.tx_cpu);
  Alcotest.(check bool) "erpc lower latency" true
    (Transport.erpc.Transport.latency < Transport.udp.Transport.latency);
  (* The per-message CPU gap is what produces Fig. 1's ~8x. *)
  let total t = t.Transport.rx_cpu +. t.Transport.tx_cpu in
  Alcotest.(check bool) "per-message gap is large" true
    (total Transport.udp /. total Transport.erpc > 5.0);
  Alcotest.(check (float 1e-9)) "no drops by default" 0.0
    Transport.erpc.Transport.drop_prob

let test_with_drop () =
  let t = Transport.with_drop Transport.erpc 0.25 in
  Alcotest.(check (float 1e-9)) "drop set" 0.25 t.Transport.drop_prob;
  Alcotest.(check string) "otherwise unchanged" Transport.erpc.Transport.name
    t.Transport.name

let test_with_drop_clamps () =
  let drop p = (Transport.with_drop Transport.erpc p).Transport.drop_prob in
  Alcotest.(check (float 1e-9)) "above 1 clamps" 1.0 (drop 1.5);
  Alcotest.(check (float 1e-9)) "below 0 clamps" 0.0 (drop (-3.0));
  Alcotest.(check (float 1e-9)) "nan clamps to 0" 0.0 (drop Float.nan);
  Alcotest.(check (float 1e-9)) "in range untouched" 0.125 (drop 0.125)

let test_delivery_latency_and_rx_cost () =
  let engine, net = make_net ~transport:{ Transport.erpc with jitter = 0.0 } () in
  let dst = Core.create engine ~id:0 in
  let handled_at = ref 0.0 in
  Network.send_work_to_core net ~dst ~cost:1.0 (fun () -> handled_at := Engine.now engine);
  Engine.run engine;
  (* latency 2.0 + (rx 0.25 + handler 1.0) of core time. *)
  Alcotest.(check (float 1e-9)) "arrival + service" (2.0 +. 0.25 +. 1.0) !handled_at;
  Alcotest.(check (float 1e-9)) "core charged rx+handler" 1.25 (Core.busy_time dst);
  Alcotest.(check int) "sent" 1 (Network.messages_sent net)

let test_jitter_within_bounds () =
  let engine, net =
    make_net ~transport:{ Transport.erpc with latency = 5.0; jitter = 2.0 } ()
  in
  let arrivals = ref [] in
  for _ = 1 to 200 do
    Network.send_to_client net (fun () -> arrivals := Engine.now engine :: !arrivals)
  done;
  Engine.run engine;
  List.iter
    (fun at -> Alcotest.(check bool) "within [5,7)" true (at >= 5.0 && at < 7.0))
    !arrivals;
  (* Jitter actually varies. *)
  let distinct = List.sort_uniq compare !arrivals in
  Alcotest.(check bool) "jitter varies" true (List.length distinct > 100)

let test_drops () =
  let engine, net = make_net ~transport:(Transport.with_drop Transport.erpc 0.5) () in
  let delivered = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    Network.send_to_client net (fun () -> incr delivered)
  done;
  Engine.run engine;
  Alcotest.(check int) "accounting" n (Network.messages_sent net);
  Alcotest.(check int) "dropped + delivered = sent" n
    (!delivered + Network.messages_dropped net);
  let rate = float_of_int (Network.messages_dropped net) /. float_of_int n in
  Alcotest.(check bool) "drop rate near 0.5" true (abs_float (rate -. 0.5) < 0.05)

let test_send_to_client_no_core_cost () =
  let engine, net = make_net () in
  let got = ref false in
  Network.send_to_client net (fun () -> got := true);
  Engine.run engine;
  Alcotest.(check bool) "delivered" true !got

let test_tx_cpu_accessor () =
  let _, net = make_net () in
  Alcotest.(check (float 1e-9)) "tx cpu" Transport.erpc.Transport.tx_cpu
    (Network.tx_cpu net)

(* --- Per-link fault rules. --- *)

let no_jitter = { Transport.erpc with Transport.jitter = 0.0 }

let rule_on pred rule ~src ~dst = if pred ~src ~dst then Some rule else None

let test_partition_blocks_one_direction () =
  let engine, net = make_net ~transport:no_jitter () in
  (* Block replica 1's outbound traffic only. *)
  Network.set_link_faults net
    (Some
       (rule_on (fun ~src ~dst:_ -> src = Network.Replica 1) Network.block));
  let from_r1 = ref 0 and to_r1 = ref 0 and unlabelled = ref 0 in
  for _ = 1 to 50 do
    Network.send_to_client net
      ~link:(Network.Replica 1, Network.Client 0)
      (fun () -> incr from_r1);
    Network.send_to_client net
      ~link:(Network.Client 0, Network.Replica 1)
      (fun () -> incr to_r1);
    Network.send_to_client net (fun () -> incr unlabelled)
  done;
  Engine.run engine;
  Alcotest.(check int) "outbound all dropped" 0 !from_r1;
  Alcotest.(check int) "inbound all delivered" 50 !to_r1;
  Alcotest.(check int) "unlabelled bypasses rules" 50 !unlabelled;
  Alcotest.(check int) "drop accounting" 50 (Network.messages_dropped net)

let test_duplicates_delivered_twice_at_zero_cost () =
  let engine, net = make_net ~transport:no_jitter () in
  Network.set_link_faults net
    (Some
       (rule_on
          (fun ~src:_ ~dst:_ -> true)
          { Network.pass with Network.dup = 1.0 }));
  let dst = Core.create engine ~id:0 in
  let handled = ref 0 in
  Network.send_work_to_core net
    ~link:(Network.Client 0, Network.Replica 0)
    ~dst ~cost:1.0
    (fun () -> incr handled);
  Engine.run engine;
  Alcotest.(check int) "handler ran twice" 2 !handled;
  Alcotest.(check int) "counted once" 1 (Network.messages_duplicated net);
  (* The duplicate is absorbed by the receiver's dedup: zero CPU, so a
     dup-only faulty run keeps fault-free timing. *)
  Alcotest.(check (float 1e-9)) "duplicate costs nothing" 1.25 (Core.busy_time dst)

let test_delay_spike_reorders () =
  let engine, net = make_net ~transport:no_jitter () in
  Network.set_link_faults net
    (Some
       (rule_on
          (fun ~src ~dst:_ -> src = Network.Client 1)
          { Network.pass with Network.delay_prob = 1.0; Network.delay = 100.0 }));
  let order = ref [] in
  Network.send_to_client net
    ~link:(Network.Client 1, Network.Replica 0)
    (fun () -> order := "spiked" :: !order);
  Network.send_to_client net
    ~link:(Network.Client 0, Network.Replica 0)
    (fun () -> order := "normal" :: !order);
  Engine.run engine;
  (* The spiked message was sent first but arrives last: reordering. *)
  Alcotest.(check (list string)) "overtaken" [ "spiked"; "normal" ] !order;
  Alcotest.(check int) "delay accounting" 1 (Network.messages_delayed net)

let test_combine_rules () =
  let a = { Network.drop = 0.1; dup = 0.0; delay_prob = 0.5; delay = 10.0 } in
  let b = { Network.drop = 0.3; dup = 0.2; delay_prob = 0.1; delay = 5.0 } in
  let c = Network.combine a b in
  Alcotest.(check (float 1e-9)) "max drop" 0.3 c.Network.drop;
  Alcotest.(check (float 1e-9)) "max dup" 0.2 c.Network.dup;
  Alcotest.(check (float 1e-9)) "max delay prob" 0.5 c.Network.delay_prob;
  Alcotest.(check (float 1e-9)) "delays add" 15.0 c.Network.delay

let test_fault_free_rules_leave_rng_stream_alone () =
  (* A jittery transport consumes one RNG draw per delivery. Installing
     an all-zero rule must not consume any extra draws, so arrival
     times stay bit-identical — seeded fault-free runs are unchanged
     by the existence of the fault layer. *)
  let arrivals faults =
    let engine, net = make_net ~transport:{ Transport.erpc with jitter = 3.0 } () in
    if faults then
      Network.set_link_faults net
        (Some (rule_on (fun ~src:_ ~dst:_ -> true) Network.pass));
    let times = ref [] in
    for _ = 1 to 100 do
      Network.send_to_client net
        ~link:(Network.Client 0, Network.Replica 0)
        (fun () -> times := Engine.now engine :: !times)
    done;
    Engine.run engine;
    List.rev !times
  in
  let base = arrivals false and faulty = arrivals true in
  List.iter2
    (fun a b -> Alcotest.(check (float 0.0)) "same arrival" a b)
    base faulty

let () =
  Alcotest.run "net"
    [
      ( "transport",
        [
          Alcotest.test_case "preset relationships" `Quick test_transport_presets;
          Alcotest.test_case "with_drop" `Quick test_with_drop;
          Alcotest.test_case "with_drop clamps" `Quick test_with_drop_clamps;
        ] );
      ( "network",
        [
          Alcotest.test_case "latency and rx cost" `Quick test_delivery_latency_and_rx_cost;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_within_bounds;
          Alcotest.test_case "drops" `Quick test_drops;
          Alcotest.test_case "client delivery" `Quick test_send_to_client_no_core_cost;
          Alcotest.test_case "tx_cpu accessor" `Quick test_tx_cpu_accessor;
        ] );
      ( "link faults",
        [
          Alcotest.test_case "asymmetric partition" `Quick
            test_partition_blocks_one_direction;
          Alcotest.test_case "duplication is free" `Quick
            test_duplicates_delivered_twice_at_zero_cost;
          Alcotest.test_case "delay spike reorders" `Quick test_delay_spike_reorders;
          Alcotest.test_case "combine" `Quick test_combine_rules;
          Alcotest.test_case "fault-free RNG stream unchanged" `Quick
            test_fault_free_rules_leave_rng_stream_alone;
        ] );
    ]
